// Prefix-similarity measurement (paper §3.2, Fig. 5): quantifies prefix
// reuse within/across users and regions over a request trace, using the
// paper's metric len(common_prefix(a,b)) / min(len(a), len(b)).

#ifndef SKYWALKER_ANALYSIS_PREFIX_SIMILARITY_H_
#define SKYWALKER_ANALYSIS_PREFIX_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/conversation.h"

namespace skywalker {

struct SimilarityStats {
  double within_user = 0;
  double across_user = 0;
  double within_region = 0;
  double across_region = 0;
  size_t within_user_pairs = 0;
  size_t across_user_pairs = 0;
  size_t within_region_pairs = 0;
  size_t across_region_pairs = 0;
};

// Computes mean prefix similarity across request pairs, grouped by whether
// the pair shares a user and whether it shares a region. For tractability at
// most `max_pairs_per_class` uniformly sampled pairs contribute per class.
SimilarityStats ComputePrefixSimilarity(
    const std::vector<ConversationGenerator::TraceRecord>& trace,
    size_t max_pairs_per_class, uint64_t seed);

// Mean pairwise similarity between users: cell (i, j) is the average
// similarity of requests from user i against requests from user j (diagonal:
// within-user). Users are the first `num_users` distinct ids in the trace.
std::vector<std::vector<double>> SimilarityHeatmap(
    const std::vector<ConversationGenerator::TraceRecord>& trace,
    size_t num_users, size_t samples_per_cell, uint64_t seed);

}  // namespace skywalker

#endif  // SKYWALKER_ANALYSIS_PREFIX_SIMILARITY_H_
