#include "src/analysis/cost_model.h"

#include <cmath>

namespace skywalker {

RegionDemand CostModel::DemandFromRequests(const BinnedSeries& requests,
                                           double requests_per_replica_hour) {
  RegionDemand demand(requests.num_bins());
  for (size_t h = 0; h < requests.num_bins(); ++h) {
    demand.Add(h, std::ceil(requests.bin(h) / requests_per_replica_hour));
  }
  return demand;
}

double CostModel::RegionLocalReservedCost(
    const std::vector<RegionDemand>& demand) const {
  double replica_hours = 0;
  for (const RegionDemand& region : demand) {
    replica_hours += region.MaxBin() * static_cast<double>(region.num_bins());
  }
  return replica_hours * pricing_.reserved_hourly;
}

double CostModel::AggregatedReservedCost(
    const std::vector<RegionDemand>& demand) const {
  if (demand.empty()) {
    return 0;
  }
  size_t bins = demand.front().num_bins();
  double peak = 0;
  for (size_t h = 0; h < bins; ++h) {
    double total = 0;
    for (const RegionDemand& region : demand) {
      total += region.bin(h);
    }
    peak = std::max(peak, total);
  }
  return peak * static_cast<double>(bins) * pricing_.reserved_hourly;
}

double CostModel::PerfectAutoscalingCost(
    const std::vector<RegionDemand>& demand) const {
  double replica_hours = 0;
  for (const RegionDemand& region : demand) {
    replica_hours += region.Total();
  }
  return replica_hours * pricing_.on_demand_hourly;
}

}  // namespace skywalker
