#include "src/analysis/prefix_similarity.h"

#include <algorithm>
#include <map>

namespace skywalker {
namespace {

struct Accumulator {
  double sum = 0;
  size_t count = 0;
  void Add(double v) {
    sum += v;
    ++count;
  }
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }
};

}  // namespace

SimilarityStats ComputePrefixSimilarity(
    const std::vector<ConversationGenerator::TraceRecord>& trace,
    size_t max_pairs_per_class, uint64_t seed) {
  SimilarityStats stats;
  if (trace.size() < 2) {
    return stats;
  }
  Rng rng(seed);
  Accumulator within_user;
  Accumulator across_user;
  Accumulator within_region;
  Accumulator across_region;

  // Within-user pairs need targeted sampling (they are rare among random
  // pairs): group record indices by user first.
  std::map<UserId, std::vector<size_t>> by_user;
  for (size_t i = 0; i < trace.size(); ++i) {
    by_user[trace[i].user_id].push_back(i);
  }
  std::vector<const std::vector<size_t>*> users_with_pairs;
  for (const auto& [user, indices] : by_user) {
    if (indices.size() >= 2) {
      users_with_pairs.push_back(&indices);
    }
  }
  for (size_t n = 0; n < max_pairs_per_class && !users_with_pairs.empty();
       ++n) {
    const auto& indices = *users_with_pairs[static_cast<size_t>(rng.UniformInt(
        0, static_cast<int64_t>(users_with_pairs.size()) - 1))];
    size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(indices.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(indices.size()) - 1));
    if (a == b) {
      continue;
    }
    within_user.Add(
        PrefixSimilarity(trace[indices[a]].prompt, trace[indices[b]].prompt));
  }

  // Random pairs classify into across-user and within/across-region.
  size_t budget = max_pairs_per_class * 3;
  for (size_t n = 0; n < budget; ++n) {
    size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(trace.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(trace.size()) - 1));
    if (a == b) {
      continue;
    }
    double sim = PrefixSimilarity(trace[a].prompt, trace[b].prompt);
    if (trace[a].user_id != trace[b].user_id) {
      if (across_user.count < max_pairs_per_class) {
        across_user.Add(sim);
      }
      // Region classes exclude same-user pairs so they measure the
      // geographic effect, not the user effect.
      if (trace[a].region == trace[b].region) {
        if (within_region.count < max_pairs_per_class) {
          within_region.Add(sim);
        }
      } else if (across_region.count < max_pairs_per_class) {
        across_region.Add(sim);
      }
    }
  }

  stats.within_user = within_user.Mean();
  stats.across_user = across_user.Mean();
  stats.within_region = within_region.Mean();
  stats.across_region = across_region.Mean();
  stats.within_user_pairs = within_user.count;
  stats.across_user_pairs = across_user.count;
  stats.within_region_pairs = within_region.count;
  stats.across_region_pairs = across_region.count;
  return stats;
}

std::vector<std::vector<double>> SimilarityHeatmap(
    const std::vector<ConversationGenerator::TraceRecord>& trace,
    size_t num_users, size_t samples_per_cell, uint64_t seed) {
  Rng rng(seed);
  // First `num_users` distinct user ids in trace order.
  std::vector<UserId> users;
  std::map<UserId, std::vector<size_t>> by_user;
  for (size_t i = 0; i < trace.size(); ++i) {
    auto [it, inserted] = by_user.try_emplace(trace[i].user_id);
    if (inserted && users.size() < num_users) {
      users.push_back(trace[i].user_id);
    }
    it->second.push_back(i);
  }
  size_t n = users.size();
  std::vector<std::vector<double>> heat(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const auto& rows = by_user[users[i]];
      const auto& cols = by_user[users[j]];
      double sum = 0;
      size_t count = 0;
      for (size_t s = 0; s < samples_per_cell; ++s) {
        size_t a = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(rows.size()) - 1));
        size_t b = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(cols.size()) - 1));
        if (i == j && rows.size() > 1 && rows[a] == cols[b]) {
          continue;  // Skip self-pairs on the diagonal.
        }
        sum += PrefixSimilarity(trace[rows[a]].prompt, trace[cols[b]].prompt);
        ++count;
      }
      heat[i][j] = count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  }
  return heat;
}

}  // namespace skywalker
