// Provisioning cost model (paper §2.1/§2.2, Fig. 3b and Fig. 10).
//
// Prices follow the paper: a 3-year-reserved p5.48xlarge costs $37.56/h vs
// $98.32/h on demand — a 2.617x premium. Costs are expressed per replica so
// the model applies to any instance type with the same ratio.

#ifndef SKYWALKER_ANALYSIS_COST_MODEL_H_
#define SKYWALKER_ANALYSIS_COST_MODEL_H_

#include <vector>

#include "src/common/histogram.h"

namespace skywalker {

struct Pricing {
  // Per replica-hour. Defaults scale the paper's 8-GPU instance prices to
  // one GPU.
  double reserved_hourly = 37.56 / 8.0;
  double on_demand_hourly = 98.32 / 8.0;
};

// Demand expressed as replicas required per hour bucket (one day).
using RegionDemand = BinnedSeries;

class CostModel {
 public:
  explicit CostModel(const Pricing& pricing = {}) : pricing_(pricing) {}

  // Converts a per-hour request series into replicas required, given each
  // replica sustains `requests_per_replica_hour`.
  static RegionDemand DemandFromRequests(const BinnedSeries& requests,
                                         double requests_per_replica_hour);

  // Region-local reserved provisioning: every region reserves its own peak
  // for the whole day. Σ_r peak_r × 24 × reserved price.
  double RegionLocalReservedCost(const std::vector<RegionDemand>& demand) const;

  // Aggregated reserved provisioning (the paper's proposal): reserve the
  // peak of the *summed* demand. peak(Σ_r) × 24 × reserved price.
  double AggregatedReservedCost(const std::vector<RegionDemand>& demand) const;

  // Perfect on-demand autoscaling: pay exactly the instantaneous demand at
  // on-demand prices (idealized lower bound for autoscaling).
  double PerfectAutoscalingCost(const std::vector<RegionDemand>& demand) const;

  const Pricing& pricing() const { return pricing_; }

 private:
  Pricing pricing_;
};

}  // namespace skywalker

#endif  // SKYWALKER_ANALYSIS_COST_MODEL_H_
