#include "src/analysis/metrics.h"

#include <algorithm>

namespace skywalker {

void MetricsCollector::SetMeasurementWindow(SimTime start, SimTime end) {
  window_start_ = start;
  window_end_ = end;
}

void MetricsCollector::RecordOutcome(const RequestOutcome& outcome) {
  outcomes_.push_back(outcome);
}

bool MetricsCollector::InWindow(const RequestOutcome& o) const {
  return o.completion_time >= window_start_ && o.completion_time < window_end_;
}

double MetricsCollector::WindowSeconds() const {
  SimTime end = window_end_;
  if (end == kSimTimeMax) {
    // Open window: use the last completion as the effective end.
    end = 0;
    for (const auto& o : outcomes_) {
      end = std::max(end, o.completion_time);
    }
  }
  return std::max(1e-9, ToSeconds(end - window_start_));
}

size_t MetricsCollector::CountInWindow() const {
  size_t n = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      ++n;
    }
  }
  return n;
}

Distribution MetricsCollector::TtftSeconds() const {
  Distribution d;
  for (const auto& o : outcomes_) {
    if (InWindow(o) && o.first_token_time > 0) {
      d.Add(ToSeconds(o.first_token_time - o.submit_time));
    }
  }
  return d;
}

Distribution MetricsCollector::E2eSeconds() const {
  Distribution d;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      d.Add(ToSeconds(o.completion_time - o.submit_time));
    }
  }
  return d;
}

double MetricsCollector::ThroughputTokensPerSec() const {
  double tokens = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      tokens += static_cast<double>(o.prompt_tokens + o.output_tokens);
    }
  }
  return tokens / WindowSeconds();
}

double MetricsCollector::OutputThroughputTokensPerSec() const {
  double tokens = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      tokens += static_cast<double>(o.output_tokens);
    }
  }
  return tokens / WindowSeconds();
}

double MetricsCollector::CacheHitRate() const {
  double cached = 0;
  double prompt = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      cached += static_cast<double>(o.cached_prompt_tokens);
      prompt += static_cast<double>(o.prompt_tokens);
    }
  }
  return prompt <= 0 ? 0.0 : cached / prompt;
}

double MetricsCollector::ForwardedFraction() const {
  size_t forwarded = 0;
  size_t total = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      ++total;
      if (o.forwarded) {
        ++forwarded;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(forwarded) /
                          static_cast<double>(total);
}

std::map<ReplicaId, int64_t> MetricsCollector::PerReplicaCounts() const {
  std::map<ReplicaId, int64_t> counts;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      ++counts[o.replica];
    }
  }
  return counts;
}

void MetricsCollector::Clear() { outcomes_.clear(); }

MetricRow& MetricRow::Set(std::string key, double value) {
  for (auto& [k, v] : metrics) {
    if (k == key) {
      v = value;
      return *this;
    }
  }
  metrics.emplace_back(std::move(key), value);
  return *this;
}

const double* MetricRow::Find(std::string_view key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

const std::vector<std::string>& StandardExperimentMetricKeys() {
  static const std::vector<std::string> keys = {
      metric_keys::kThroughputTokS, metric_keys::kOutputTokS,
      metric_keys::kTtftP50,        metric_keys::kTtftP90,
      metric_keys::kTtftP99,        metric_keys::kTtftMean,
      metric_keys::kE2eP50,         metric_keys::kE2eP90,
      metric_keys::kE2eP99,         metric_keys::kCacheHitRate,
      metric_keys::kForwardRate,    metric_keys::kImbalance,
      metric_keys::kCompleted,      metric_keys::kCostUsdPerHour,
  };
  return keys;
}

const std::vector<std::string>& KvMemoryMetricKeys() {
  static const std::vector<std::string> keys = {
      metric_keys::kPreemptions,          metric_keys::kSwapOuts,
      metric_keys::kSwapIns,              metric_keys::kSwapTransferSec,
      metric_keys::kKvFragmentationPct,   metric_keys::kKvWatermarkRejections,
  };
  return keys;
}

const std::vector<std::string>& ResilienceMetricKeys() {
  static const std::vector<std::string> keys = {
      metric_keys::kGoodputReqS, metric_keys::kLostForever,
      metric_keys::kMisrouted,   metric_keys::kEjections,
      metric_keys::kRecoveries,  metric_keys::kClientErrors,
      metric_keys::kConfigSwaps,
  };
  return keys;
}

MetricRow& SetKvMetrics(MetricRow& row, const KvCounters& counters,
                        int64_t capacity_tokens_total) {
  row.Set(metric_keys::kPreemptions,
          static_cast<double>(counters.preempt_recompute +
                              counters.preempt_swap));
  row.Set(metric_keys::kSwapOuts, static_cast<double>(counters.preempt_swap));
  row.Set(metric_keys::kSwapIns, static_cast<double>(counters.swap_ins));
  row.Set(metric_keys::kSwapTransferSec, counters.swap_transfer_us * 1e-6);
  row.Set(metric_keys::kKvFragmentationPct,
          capacity_tokens_total <= 0
              ? 0.0
              : 100.0 *
                    static_cast<double>(counters.peak_fragmentation_tokens) /
                    static_cast<double>(capacity_tokens_total));
  row.Set(metric_keys::kKvWatermarkRejections,
          static_cast<double>(counters.watermark_rejections));
  return row;
}

Json MetricRowJson(const MetricRow& row) {
  Json j = Json::Object();
  j.Set("label", row.label);
  if (!row.dims.empty()) {
    Json dims = Json::Object();
    for (const auto& [k, v] : row.dims) {
      dims.Set(k, v);
    }
    j.Set("dims", std::move(dims));
  }
  Json metrics = Json::Object();
  for (const auto& [k, v] : row.metrics) {
    metrics.Set(k, v);
  }
  j.Set("metrics", std::move(metrics));
  return j;
}

std::vector<MetricRow> MeanRowsByLabel(
    const std::vector<std::vector<MetricRow>>& per_trial_rows) {
  std::vector<MetricRow> means;
  std::vector<std::map<std::string, int>> counts;  // Parallel to `means`.
  for (const auto& rows : per_trial_rows) {
    for (const MetricRow& row : rows) {
      MetricRow* mean = nullptr;
      std::map<std::string, int>* count = nullptr;
      for (size_t i = 0; i < means.size(); ++i) {
        if (means[i].label == row.label) {
          mean = &means[i];
          count = &counts[i];
          break;
        }
      }
      if (mean == nullptr) {
        MetricRow fresh;
        fresh.label = row.label;
        fresh.dims = row.dims;
        means.push_back(std::move(fresh));
        counts.emplace_back();
        mean = &means.back();
        count = &counts.back();
      }
      for (const auto& [key, value] : row.metrics) {
        const double* prev = mean->Find(key);
        mean->Set(key, (prev == nullptr ? 0.0 : *prev) + value);
        ++(*count)[key];
      }
    }
  }
  for (size_t i = 0; i < means.size(); ++i) {
    for (auto& [key, sum] : means[i].metrics) {
      int n = counts[i][key];
      if (n > 1) {
        sum /= n;
      }
    }
  }
  return means;
}

}  // namespace skywalker
