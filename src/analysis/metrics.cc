#include "src/analysis/metrics.h"

#include <algorithm>

namespace skywalker {

void MetricsCollector::SetMeasurementWindow(SimTime start, SimTime end) {
  window_start_ = start;
  window_end_ = end;
}

void MetricsCollector::RecordOutcome(const RequestOutcome& outcome) {
  outcomes_.push_back(outcome);
}

bool MetricsCollector::InWindow(const RequestOutcome& o) const {
  return o.completion_time >= window_start_ && o.completion_time < window_end_;
}

double MetricsCollector::WindowSeconds() const {
  SimTime end = window_end_;
  if (end == kSimTimeMax) {
    // Open window: use the last completion as the effective end.
    end = 0;
    for (const auto& o : outcomes_) {
      end = std::max(end, o.completion_time);
    }
  }
  return std::max(1e-9, ToSeconds(end - window_start_));
}

size_t MetricsCollector::CountInWindow() const {
  size_t n = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      ++n;
    }
  }
  return n;
}

Distribution MetricsCollector::TtftSeconds() const {
  Distribution d;
  for (const auto& o : outcomes_) {
    if (InWindow(o) && o.first_token_time > 0) {
      d.Add(ToSeconds(o.first_token_time - o.submit_time));
    }
  }
  return d;
}

Distribution MetricsCollector::E2eSeconds() const {
  Distribution d;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      d.Add(ToSeconds(o.completion_time - o.submit_time));
    }
  }
  return d;
}

double MetricsCollector::ThroughputTokensPerSec() const {
  double tokens = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      tokens += static_cast<double>(o.prompt_tokens + o.output_tokens);
    }
  }
  return tokens / WindowSeconds();
}

double MetricsCollector::OutputThroughputTokensPerSec() const {
  double tokens = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      tokens += static_cast<double>(o.output_tokens);
    }
  }
  return tokens / WindowSeconds();
}

double MetricsCollector::CacheHitRate() const {
  double cached = 0;
  double prompt = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      cached += static_cast<double>(o.cached_prompt_tokens);
      prompt += static_cast<double>(o.prompt_tokens);
    }
  }
  return prompt <= 0 ? 0.0 : cached / prompt;
}

double MetricsCollector::ForwardedFraction() const {
  size_t forwarded = 0;
  size_t total = 0;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      ++total;
      if (o.forwarded) {
        ++forwarded;
      }
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(forwarded) /
                          static_cast<double>(total);
}

std::map<ReplicaId, int64_t> MetricsCollector::PerReplicaCounts() const {
  std::map<ReplicaId, int64_t> counts;
  for (const auto& o : outcomes_) {
    if (InWindow(o)) {
      ++counts[o.replica];
    }
  }
  return counts;
}

void MetricsCollector::Clear() { outcomes_.clear(); }

}  // namespace skywalker
