// Experiment metric collection: per-request outcomes with a configurable
// steady-state measurement window, producing the quantities every figure of
// the paper reports — service throughput (token/s), TTFT and end-to-end
// latency distributions, cache hit rates, and forwarding fractions.
//
// Also defines the machine-readable metric layer every skybench scenario
// emits: MetricRow (a labeled bag of named scalar metrics) and the JSON
// writers that turn rows and distributions into BENCH_*.json content.

#ifndef SKYWALKER_ANALYSIS_METRICS_H_
#define SKYWALKER_ANALYSIS_METRICS_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/sim_time.h"
#include "src/memory/kv_controller.h"
#include "src/workload/client.h"
#include "src/workload/request.h"

namespace skywalker {

class MetricsCollector : public MetricsSink {
 public:
  MetricsCollector() = default;

  // Only outcomes completing inside [start, end) count toward summary
  // statistics (warm-up / cool-down exclusion). Default: everything.
  void SetMeasurementWindow(SimTime start, SimTime end);

  void RecordOutcome(const RequestOutcome& outcome) override;

  size_t total_recorded() const { return outcomes_.size(); }
  size_t CountInWindow() const;

  // TTFT in seconds, measured at the client (includes network).
  Distribution TtftSeconds() const;
  // Client-observed end-to-end latency in seconds.
  Distribution E2eSeconds() const;

  // Service throughput over the window: (prompt + output) tokens of
  // completed requests divided by window length.
  double ThroughputTokensPerSec() const;
  double OutputThroughputTokensPerSec() const;

  // Token-weighted prefix-cache hit rate over completed requests.
  double CacheHitRate() const;

  // Fraction of requests served outside their first-contact region's LB.
  double ForwardedFraction() const;

  // Completed requests per replica (imbalance diagnostics).
  std::map<ReplicaId, int64_t> PerReplicaCounts() const;

  const std::vector<RequestOutcome>& outcomes() const { return outcomes_; }

  void Clear();

 private:
  bool InWindow(const RequestOutcome& o) const;
  double WindowSeconds() const;

  std::vector<RequestOutcome> outcomes_;
  SimTime window_start_ = 0;
  SimTime window_end_ = kSimTimeMax;
};

// One labeled result row of a benchmark scenario — e.g. one (system,
// workload) cell of Fig. 8. `label` uniquely identifies the row within its
// scenario; `dims` optionally names the dimensions the label concatenates
// (so tooling can pivot without parsing labels); `metrics` is insertion-
// ordered so serialization is stable.
struct MetricRow {
  std::string label;
  std::vector<std::pair<std::string, std::string>> dims;
  std::vector<std::pair<std::string, double>> metrics;

  MetricRow& Dim(std::string key, std::string value) {
    dims.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  // Appends or overwrites in place (insertion position preserved).
  MetricRow& Set(std::string key, double value);
  const double* Find(std::string_view key) const;
};

// The standard metric keys shared by every simulation-backed scenario.
// Declared here so scenario definitions and schema tests agree on spelling.
namespace metric_keys {
inline constexpr const char* kThroughputTokS = "throughput_tok_s";
inline constexpr const char* kOutputTokS = "output_throughput_tok_s";
inline constexpr const char* kTtftP50 = "ttft_p50_s";
inline constexpr const char* kTtftP90 = "ttft_p90_s";
inline constexpr const char* kTtftP99 = "ttft_p99_s";
inline constexpr const char* kTtftMean = "ttft_mean_s";
inline constexpr const char* kE2eP50 = "e2e_p50_s";
inline constexpr const char* kE2eP90 = "e2e_p90_s";
inline constexpr const char* kE2eP99 = "e2e_p99_s";
inline constexpr const char* kCacheHitRate = "cache_hit_rate";
inline constexpr const char* kForwardRate = "forward_rate";
inline constexpr const char* kImbalance = "outstanding_imbalance";
inline constexpr const char* kCompleted = "completed";
inline constexpr const char* kCostUsdPerHour = "cost_usd_per_hour";

// Paged-KV memory keys (ISSUE 4). Scenarios that report the memory
// subsystem (fig07_memory_pressure, fig09, micro_memory) carry these;
// SetKvMetrics below fills the full set from summed KvCounters.
inline constexpr const char* kPreemptions = "preemptions";
inline constexpr const char* kSwapOuts = "swap_outs";
inline constexpr const char* kSwapIns = "swap_ins";
inline constexpr const char* kSwapTransferSec = "swap_transfer_s";
inline constexpr const char* kKvFragmentationPct = "kv_fragmentation_pct";
inline constexpr const char* kKvWatermarkRejections =
    "kv_watermark_rejections";

// Exact-occupancy keys (ISSUE 5): end-of-run snapshots of the unified block
// ledger, fleet-summed. `kv_cache_blocks` is the exact number of pages the
// radix caches hold (per-node spans, shared pages once), `kv_evictable_
// blocks` the subset a full eviction would free, and `kv_seq_blocks` the
// pages referenced by live sequence tables.
inline constexpr const char* kKvCacheBlocks = "kv_cache_blocks";
inline constexpr const char* kKvEvictableBlocks = "kv_evictable_blocks";
inline constexpr const char* kKvSeqBlocks = "kv_seq_blocks";

// Resilience keys (ISSUE 7): what the hostile-scenario pack reports per cell.
// Goodput is completed requests per measured second; lost_forever counts
// issued requests that neither completed nor errored after the drain;
// misrouted counts requests sent to a replica that never answered in time
// (request timeouts plus post-timeout stragglers).
inline constexpr const char* kGoodputReqS = "goodput_req_s";
inline constexpr const char* kLostForever = "lost_forever";
inline constexpr const char* kMisrouted = "misrouted";
inline constexpr const char* kEjections = "ejections";
inline constexpr const char* kRecoveries = "recoveries";
inline constexpr const char* kClientErrors = "client_errors";
inline constexpr const char* kConfigSwaps = "config_swaps";
}  // namespace metric_keys

// The standard keys above, in canonical order (schema tests iterate this).
const std::vector<std::string>& StandardExperimentMetricKeys();

// The paged-KV keys, in canonical order (what SetKvMetrics writes).
const std::vector<std::string>& KvMemoryMetricKeys();

// The resilience keys, in canonical order (fig_resilience schema).
const std::vector<std::string>& ResilienceMetricKeys();

// Fills the paged-KV metric keys from fleet-summed counters.
// `capacity_tokens_total` is the fleet KV budget (fragmentation is reported
// as peak percent of it; pass 0 to report 0).
MetricRow& SetKvMetrics(MetricRow& row, const KvCounters& counters,
                        int64_t capacity_tokens_total);

// {"label":..,"dims":{..},"metrics":{..}} — dims omitted when empty.
Json MetricRowJson(const MetricRow& row);

// Element-wise mean of rows that share a label across trials. Rows keep
// first-seen order; metrics keep the first row's key order.
std::vector<MetricRow> MeanRowsByLabel(
    const std::vector<std::vector<MetricRow>>& per_trial_rows);

}  // namespace skywalker

#endif  // SKYWALKER_ANALYSIS_METRICS_H_
