// Experiment metric collection: per-request outcomes with a configurable
// steady-state measurement window, producing the quantities every figure of
// the paper reports — service throughput (token/s), TTFT and end-to-end
// latency distributions, cache hit rates, and forwarding fractions.

#ifndef SKYWALKER_ANALYSIS_METRICS_H_
#define SKYWALKER_ANALYSIS_METRICS_H_

#include <map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/workload/client.h"
#include "src/workload/request.h"

namespace skywalker {

class MetricsCollector : public MetricsSink {
 public:
  MetricsCollector() = default;

  // Only outcomes completing inside [start, end) count toward summary
  // statistics (warm-up / cool-down exclusion). Default: everything.
  void SetMeasurementWindow(SimTime start, SimTime end);

  void RecordOutcome(const RequestOutcome& outcome) override;

  size_t total_recorded() const { return outcomes_.size(); }
  size_t CountInWindow() const;

  // TTFT in seconds, measured at the client (includes network).
  Distribution TtftSeconds() const;
  // Client-observed end-to-end latency in seconds.
  Distribution E2eSeconds() const;

  // Service throughput over the window: (prompt + output) tokens of
  // completed requests divided by window length.
  double ThroughputTokensPerSec() const;
  double OutputThroughputTokensPerSec() const;

  // Token-weighted prefix-cache hit rate over completed requests.
  double CacheHitRate() const;

  // Fraction of requests served outside their first-contact region's LB.
  double ForwardedFraction() const;

  // Completed requests per replica (imbalance diagnostics).
  std::map<ReplicaId, int64_t> PerReplicaCounts() const;

  const std::vector<RequestOutcome>& outcomes() const { return outcomes_; }

  void Clear();

 private:
  bool InWindow(const RequestOutcome& o) const;
  double WindowSeconds() const;

  std::vector<RequestOutcome> outcomes_;
  SimTime window_start_ = 0;
  SimTime window_end_ = kSimTimeMax;
};

}  // namespace skywalker

#endif  // SKYWALKER_ANALYSIS_METRICS_H_
