// Lightweight error-handling vocabulary used across the SkyWalker codebase.
//
// The library does not use exceptions for control flow (per the project style
// guide); fallible operations return Status or StatusOr<T>.

#ifndef SKYWALKER_COMMON_STATUS_H_
#define SKYWALKER_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace skywalker {

// Canonical error space, modelled after the widely-used gRPC/absl code set but
// trimmed to what this project needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnavailable = 6,
  kDeadlineExceeded = 7,
  kInternal = 8,
  kUnimplemented = 9,
};

// Human-readable name for a status code, e.g. "NOT_FOUND".
std::string_view StatusCodeToString(StatusCode code);

// Value-type result of an operation: a code plus an optional message.
// Ok statuses carry no message and are cheap to copy.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors mirroring the canonical code set.
Status OkStatus();
Status InvalidArgumentError(std::string_view message);
Status NotFoundError(std::string_view message);
Status AlreadyExistsError(std::string_view message);
Status FailedPreconditionError(std::string_view message);
Status ResourceExhaustedError(std::string_view message);
Status UnavailableError(std::string_view message);
Status DeadlineExceededError(std::string_view message);
Status InternalError(std::string_view message);
Status UnimplementedError(std::string_view message);

// StatusOr<T> holds either an ok value or a non-ok Status. Accessing the value
// of a non-ok StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : status_(OkStatus()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from an OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on a non-ok StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on a non-ok StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on a non-ok StatusOr");
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the contained value or `fallback` when non-ok.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace skywalker

// Propagates a non-ok status from an expression, mirroring RETURN_IF_ERROR.
#define SKYWALKER_RETURN_IF_ERROR(expr)                   \
  do {                                                    \
    ::skywalker::Status status_macro_internal_ = (expr);  \
    if (!status_macro_internal_.ok()) {                   \
      return status_macro_internal_;                      \
    }                                                     \
  } while (0)

#endif  // SKYWALKER_COMMON_STATUS_H_
