// Simulated-time vocabulary. All simulator components express time as
// SimTime (microseconds since simulation start) and intervals as SimDuration.
//
// Integer microseconds keep event ordering exact (no floating-point drift) and
// still provide sub-step resolution: the finest modelled latency is ~10 us.

#ifndef SKYWALKER_COMMON_SIM_TIME_H_
#define SKYWALKER_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace skywalker {

// Absolute simulated time in microseconds since simulation start.
using SimTime = int64_t;

// Interval between two SimTime points, in microseconds.
using SimDuration = int64_t;

constexpr SimTime kSimTimeZero = 0;

// A far-future sentinel (~292 thousand years); used for "never" deadlines.
constexpr SimTime kSimTimeMax = INT64_MAX / 2;

constexpr SimDuration Microseconds(int64_t us) { return us; }
constexpr SimDuration Milliseconds(int64_t ms) { return ms * 1000; }
constexpr SimDuration Seconds(int64_t s) { return s * 1000 * 1000; }
constexpr SimDuration Minutes(int64_t m) { return Seconds(m * 60); }
constexpr SimDuration Hours(int64_t h) { return Minutes(h * 60); }

// Fractional-second construction, e.g. SecondsF(0.3) == 300'000 us.
constexpr SimDuration SecondsF(double s) {
  return static_cast<SimDuration>(s * 1e6);
}
constexpr SimDuration MillisecondsF(double ms) {
  return static_cast<SimDuration>(ms * 1e3);
}

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }
constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / 1e3;
}

// Renders a duration with an adaptive unit, e.g. "1.500s", "300.0ms", "42us".
std::string FormatDuration(SimDuration d);

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_SIM_TIME_H_
