// Deterministic random-number generation for the simulator.
//
// Every stochastic component owns its own Rng (seeded from a parent), so
// experiments are reproducible bit-for-bit and adding randomness to one
// component never perturbs another.

#ifndef SKYWALKER_COMMON_RNG_H_
#define SKYWALKER_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace skywalker {

// Default seed used when none is supplied; fixed for reproducibility.
inline constexpr uint64_t kDefaultRngSeed = 0x5eed;

// xoshiro256++ generator seeded via splitmix64. Small, fast, and good enough
// statistical quality for workload synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed = kDefaultRngSeed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Derives an independent child generator; `stream` distinguishes children
  // created from the same parent state.
  Rng Fork(uint64_t stream);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Bernoulli trial with probability `p` of true.
  bool Bernoulli(double p);

  // Exponential with rate lambda (mean 1/lambda). Requires lambda > 0.
  double Exponential(double lambda);

  // Normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)). Heavy-tailed; used for LLM output
  // lengths (matches the long-tail CDF in Fig. 4a of the paper).
  double LogNormal(double mu, double sigma);

  // Pareto with scale x_m and shape alpha (> 0).
  double Pareto(double x_m, double alpha);

  // Geometric number of trials until first success (>= 1), success prob p.
  int64_t Geometric(double p);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  int64_t Poisson(double mean);

  // Zipf-distributed rank in [1, n] with exponent s (rejection sampling).
  int64_t Zipf(int64_t n, double s);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_RNG_H_
