// ASCII table / CSV rendering for benchmark output. Every figure bench prints
// its rows through this so output is uniform and machine-parsable.

#ifndef SKYWALKER_COMMON_TABLE_H_
#define SKYWALKER_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace skywalker {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; pads/truncates to the header width.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 2);

  std::string ToAscii() const;
  std::string ToCsv() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_TABLE_H_
