#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace skywalker {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) {
    lane = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

Rng Rng::Fork(uint64_t stream) {
  // Mix current state with the stream id so repeated forks differ.
  uint64_t seed = Next() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567);
  return Rng(seed);
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) {
    return static_cast<int64_t>(Next());  // Full 64-bit range.
  }
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t v;
  do {
    v = Next();
  } while (v >= limit);
  return lo + static_cast<int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Exponential(double lambda) {
  assert(lambda > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

double Rng::Pareto(double x_m, double alpha) {
  assert(alpha > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

int64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) {
    return 1;
  }
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return 1 + static_cast<int64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
}

int64_t Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean <= 0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction for large means.
    double v = Normal(mean, std::sqrt(mean));
    return v < 0 ? 0 : static_cast<int64_t>(v + 0.5);
  }
  double threshold = std::exp(-mean);
  double product = 1.0;
  int64_t count = -1;
  do {
    ++count;
    product *= NextDouble();
  } while (product > threshold);
  return count;
}

int64_t Rng::Zipf(int64_t n, double s) {
  assert(n >= 1);
  // Rejection-inversion sampling (Hormann & Derflinger).
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    return s == 1.0 ? std::exp(y) : std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hx0 = h(0.5) - 1.0;
  const double hn = h(static_cast<double>(n) + 0.5);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double u = hx0 + NextDouble() * (hn - hx0);
    double x = h_inv(u);
    int64_t k = static_cast<int64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    }
    if (k > n) {
      k = n;
    }
    double ratio = std::pow(static_cast<double>(k), -s);
    if (u >= h(static_cast<double>(k) + 0.5) - ratio) {
      return k;
    }
  }
  return 1;  // Statistically unreachable; bounded loop for safety.
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  assert(total > 0);
  double target = NextDouble() * total;
  double cumulative = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace skywalker
