// 64-bit hashing utilities used by the consistent-hash ring and token
// sequence fingerprinting. Not cryptographic.

#ifndef SKYWALKER_COMMON_HASH_H_
#define SKYWALKER_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace skywalker {

// Strong 64-bit integer mixer (splitmix64 finalizer). Good avalanche; used to
// place virtual nodes on the hash ring.
constexpr uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// FNV-1a over bytes with a 64-bit mixing finalizer.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0);

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

// Order-dependent combination of two hashes.
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_HASH_H_
