// Chunked object arena with stable addresses, 32-bit ids, and a free list.
//
// The radix structures link nodes by SlabId instead of pointers: ids are half
// the size of pointers (children lists stay compact), and allocation is a
// free-list pop or a bump within a chunk — no per-node malloc. Chunks are
// never deallocated while the slab lives, so `T&` references remain valid
// across Alloc/Free; freed objects are NOT destroyed, they are recycled
// as-is so their internal buffers (e.g. a spilled child vector's capacity)
// survive for the next user. Callers reset logical state on reuse.

#ifndef SKYWALKER_COMMON_SLAB_H_
#define SKYWALKER_COMMON_SLAB_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace skywalker {

using SlabId = uint32_t;
inline constexpr SlabId kNilSlabId = UINT32_MAX;

template <typename T, size_t kChunkSizeLog2 = 8>
class Slab {
 public:
  static constexpr size_t kChunkSize = size_t{1} << kChunkSizeLog2;
  static constexpr size_t kChunkMask = kChunkSize - 1;

  Slab() = default;
  Slab(const Slab&) = delete;
  Slab& operator=(const Slab&) = delete;

  // Returns a recycled object (state as left by its previous user) or a
  // freshly default-constructed one.
  SlabId Alloc() {
    ++live_;
    if (free_head_ != kNilSlabId) {
      SlabId id = free_head_;
      free_head_ = free_next_[id];
      return id;
    }
    SlabId id = static_cast<SlabId>(high_water_++);
    if ((id >> kChunkSizeLog2) == chunks_.size()) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
      free_next_.resize(chunks_.size() << kChunkSizeLog2, kNilSlabId);
    }
    return id;
  }

  // Returns the object to the free list. Does not run its destructor; the
  // object must already be in a reusable state.
  void Free(SlabId id) {
    assert(id < high_water_);
    free_next_[id] = free_head_;
    free_head_ = id;
    --live_;
  }

  T& operator[](SlabId id) {
    return chunks_[id >> kChunkSizeLog2][id & kChunkMask];
  }
  const T& operator[](SlabId id) const {
    return chunks_[id >> kChunkSizeLog2][id & kChunkMask];
  }

  // Base address of one chunk (for the cursors).
  T* ChunkBase(uint32_t chunk) { return chunks_[chunk].get(); }
  const T* ChunkBase(uint32_t chunk) const { return chunks_[chunk].get(); }

  // Walk-local id->address cache. Tree walks visit runs of nodes from the
  // same chunk (ids are allocated roughly in insertion order), so caching
  // the last chunk base replaces a dependent pointer load on the hot path
  // with a predictable compare. ConstCursor is the read-only variant for
  // const walks (e.g. a trie match), which must not obtain mutable nodes.
  template <typename SlabPtr, typename Ptr>
  class BasicCursor {
   public:
    explicit BasicCursor(SlabPtr slab) : slab_(slab) {}
    Ptr Deref(SlabId id) {
      const uint32_t chunk = id >> kChunkSizeLog2;
      if (chunk != chunk_index_) {
        chunk_index_ = chunk;
        base_ = slab_->ChunkBase(chunk);
      }
      return base_ + (id & kChunkMask);
    }

   private:
    SlabPtr slab_;
    uint32_t chunk_index_ = UINT32_MAX;
    Ptr base_ = nullptr;
  };
  using Cursor = BasicCursor<Slab*, T*>;
  using ConstCursor = BasicCursor<const Slab*, const T*>;

  // Objects currently allocated (excludes free-listed ones).
  size_t live() const { return live_; }
  // Total objects ever created (allocated + free-listed).
  size_t high_water() const { return high_water_; }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  // Free-list links live outside T so recycled objects keep their state.
  std::vector<SlabId> free_next_;
  SlabId free_head_ = kNilSlabId;
  size_t high_water_ = 0;
  size_t live_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_SLAB_H_
