// Statistics collection: exact-sample distributions with percentile queries,
// plus a light running-moments accumulator. These back every latency /
// throughput number the benchmark harness reports.

#ifndef SKYWALKER_COMMON_HISTOGRAM_H_
#define SKYWALKER_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace skywalker {

// Running mean / variance / extrema without storing samples (Welford).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Stores every sample; supports exact percentiles. LLM-serving experiments in
// this repo collect at most a few million samples per run, so exact storage
// is affordable and avoids sketch error in reported tail latencies.
class Distribution {
 public:
  void Add(double x);
  void Merge(const Distribution& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  double stddev() const;

  // Exact percentile with linear interpolation; `p` in [0, 100].
  double Percentile(double p) const;

  double Median() const { return Percentile(50); }

  // "count=.. mean=.. p50=.. p90=.. p99=.. max=.." one-liner.
  std::string Summary() const;

  // Read-only access for CDF exports.
  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-bucket histogram with explicit upper bounds (strictly increasing)
// plus an implicit overflow bucket. Unlike Distribution it stores counts,
// not samples, so it is mergeable across shards/replicas at O(buckets) and
// its memory is independent of sample volume — the representation the
// metrics registry (src/obs/registry.h) tags per replica/region/policy.
//
// Quantiles interpolate linearly inside the covering bucket, clamped to the
// exact observed [min, max] so degenerate shapes stay truthful:
//   * empty histogram        -> every quantile is 0;
//   * all samples equal      -> every quantile is that value;
//   * single occupied bucket -> p50/p99 land inside [min, max], never at a
//     bucket bound no sample reached;
//   * overflow bucket        -> quantiles in it return values in
//     [last bound, max], never infinity.
// Merge requires identical bucket bounds, except that a histogram with no
// observations (notably a default-constructed one) merges as a no-op /
// bound-adopting copy — so reducing a vector of per-shard histograms never
// trips on an untouched element. tests/histogram_test.cc pins these edges.
class Histogram {
 public:
  // No bounds: everything lands in the overflow bucket (still mergeable,
  // still exact for count/sum/min/max, quantiles clamp to [min, max]).
  Histogram() = default;
  // `upper_bounds` must be strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  // `count` buckets at first, first*factor, first*factor^2, ... —
  // the usual latency-style geometric grid. Requires first > 0, factor > 1.
  static Histogram Exponential(double first, double factor, int count);

  void Add(double x);
  // Adds `other`'s counts bucket-wise. Either side may be empty (see above);
  // otherwise the bounds must match exactly.
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // `q` in [0, 1]. Interpolated within the covering bucket, clamped to the
  // observed [min, max]; 0 when empty.
  double Quantile(double q) const;
  double Percentile(double p) const { return Quantile(p / 100.0); }

  const std::vector<double>& bounds() const { return bounds_; }
  // counts()[i] covers (bounds()[i-1], bounds()[i]]; the final entry is the
  // overflow bucket (counts().size() == bounds().size() + 1).
  const std::vector<uint64_t>& counts() const { return counts_; }

  // "count=.. mean=.. p50=.. p90=.. p99=.. max=.." one-liner.
  std::string Summary() const;

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_ = {0};  // bounds_.size() + 1 entries.
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Fixed-width binned counter keyed by integer bucket. Used for time-series
// (e.g. requests per hour-of-day in the diurnal figures).
class BinnedSeries {
 public:
  explicit BinnedSeries(size_t num_bins) : bins_(num_bins, 0.0) {}

  void Add(size_t bin, double value = 1.0);

  size_t num_bins() const { return bins_.size(); }
  double bin(size_t i) const { return bins_.at(i); }
  const std::vector<double>& bins() const { return bins_; }
  double Total() const;
  double MaxBin() const;
  double MinBin() const;
  // max/min over non-zero support; returns 0 if empty.
  double PeakToTroughRatio() const;

 private:
  std::vector<double> bins_;
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_HISTOGRAM_H_
