// Statistics collection: exact-sample distributions with percentile queries,
// plus a light running-moments accumulator. These back every latency /
// throughput number the benchmark harness reports.

#ifndef SKYWALKER_COMMON_HISTOGRAM_H_
#define SKYWALKER_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace skywalker {

// Running mean / variance / extrema without storing samples (Welford).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

// Stores every sample; supports exact percentiles. LLM-serving experiments in
// this repo collect at most a few million samples per run, so exact storage
// is affordable and avoids sketch error in reported tail latencies.
class Distribution {
 public:
  void Add(double x);
  void Merge(const Distribution& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double sum() const;
  double min() const;
  double max() const;
  double stddev() const;

  // Exact percentile with linear interpolation; `p` in [0, 100].
  double Percentile(double p) const;

  double Median() const { return Percentile(50); }

  // "count=.. mean=.. p50=.. p90=.. p99=.. max=.." one-liner.
  std::string Summary() const;

  // Read-only access for CDF exports.
  const std::vector<double>& samples() const { return samples_; }

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Fixed-width binned counter keyed by integer bucket. Used for time-series
// (e.g. requests per hour-of-day in the diurnal figures).
class BinnedSeries {
 public:
  explicit BinnedSeries(size_t num_bins) : bins_(num_bins, 0.0) {}

  void Add(size_t bin, double value = 1.0);

  size_t num_bins() const { return bins_.size(); }
  double bin(size_t i) const { return bins_.at(i); }
  const std::vector<double>& bins() const { return bins_; }
  double Total() const;
  double MaxBin() const;
  double MinBin() const;
  // max/min over non-zero support; returns 0 if empty.
  double PeakToTroughRatio() const;

 private:
  std::vector<double> bins_;
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_HISTOGRAM_H_
