// Leveled logging with an optional simulated-time prefix.
//
// Usage:
//   SKYWALKER_LOG(INFO) << "replica " << id << " admitted " << n;
//
// The global level defaults to kWarning so benchmark output stays clean;
// tests and examples raise it as needed.

#ifndef SKYWALKER_COMMON_LOGGING_H_
#define SKYWALKER_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

#include "src/common/sim_time.h"

namespace skywalker {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum level; messages below it are compiled but not emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Installs a clock so log lines carry simulated timestamps. Pass nullptr to
// revert to wall-clock-free output.
void SetLogClock(std::function<SimTime()> clock);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the stream when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace skywalker

#define SKYWALKER_LOG(severity)                                              \
  (::skywalker::LogLevel::k##severity < ::skywalker::GetLogLevel())          \
      ? (void)0                                                              \
      : ::skywalker::internal::LogVoidify() &                                \
            ::skywalker::internal::LogMessage(                               \
                ::skywalker::LogLevel::k##severity, __FILE__, __LINE__)      \
                .stream()

// Always-on invariant check (independent of NDEBUG); logs and aborts.
#define SKYWALKER_CHECK(condition)                                           \
  (condition) ? (void)0                                                      \
              : ::skywalker::internal::LogVoidify() &                        \
                    ::skywalker::internal::LogMessage(                       \
                        ::skywalker::LogLevel::kFatal, __FILE__, __LINE__)   \
                        .stream()                                            \
                    << "Check failed: " #condition " "

namespace skywalker {
namespace internal {

// Makes the macro usable as a statement with a void result.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace skywalker

#endif  // SKYWALKER_COMMON_LOGGING_H_
