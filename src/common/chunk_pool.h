// Pooled immutable storage for slab-backed radix structures (ISSUE 3/5).
//
// The seed trees copied their per-node payloads (edge labels; since ISSUE 5
// also per-node KV block-id spans) into per-node std::vector buffers: every
// insert allocated, and every edge split copied both halves. A ChunkPool<T>
// instead appends inserted spans into large shared chunks exactly once;
// nodes hold PoolSlice<T> views {data pointer, chunk id, length} into those
// chunks. Splitting an edge is pointer arithmetic (both halves alias the
// same chunk — views may even overlap, as block-span splits do at a
// straddled page), and the only steady-state cost is a per-chunk reference
// count.
//
// Chunks are reference-counted by the number of slices viewing them and are
// recycled through a free list once sealed and unreferenced, so eviction
// churn returns memory to the pool rather than the heap. The cost is
// fragmentation: a chunk survives while ANY slice into it lives, so the
// worst case is one 64 KiB chunk pinned per live node — far above the
// seed's per-node buffers. That pathology needs most of a chunk's interners
// to die while a tiny slice survives every chunk; LRU eviction kills
// same-era edges together, which keeps real occupancy near the live element
// count (verify with num_chunks()/free_chunks() before suspecting the trees
// themselves).
//
// Slices never span chunks; a span longer than kChunkElems gets a dedicated
// exactly-sized chunk that is freed (not recycled) on release.

#ifndef SKYWALKER_COMMON_CHUNK_POOL_H_
#define SKYWALKER_COMMON_CHUNK_POOL_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace skywalker {

// Non-owning view of pooled elements. The owner (a radix node) must pair
// every retained slice with ChunkPool::AddRef/Release on the slice's chunk.
template <typename T>
struct PoolSlice {
  const T* data = nullptr;
  uint32_t chunk = UINT32_MAX;  // Pool chunk id for refcounting.
  uint32_t len = 0;

  bool empty() const { return len == 0; }
  size_t size() const { return len; }
  T front() const { return data[0]; }
  T back() const { return data[len - 1]; }
  T operator[](size_t i) const { return data[i]; }

  // Sub-views alias the same chunk; the caller owns the refcounting. Views
  // may overlap (block-span splits share the straddled page id).
  PoolSlice Prefix(size_t n) const {
    return PoolSlice{data, chunk, static_cast<uint32_t>(n)};
  }
  PoolSlice Suffix(size_t from) const {
    return PoolSlice{data + from, chunk, static_cast<uint32_t>(len - from)};
  }
};

template <typename T>
class ChunkPool {
 public:
  // 16K elements = 64 KiB per chunk (for 4-byte T): large enough that
  // steady-state inserts amortize to zero allocations, small enough that a
  // few retained slices don't strand much memory.
  static constexpr uint32_t kChunkElems = 16 * 1024;

  ChunkPool() = default;
  ChunkPool(const ChunkPool&) = delete;
  ChunkPool& operator=(const ChunkPool&) = delete;
  ~ChunkPool() = default;

  // Copies `len` elements into pooled storage and returns a slice holding
  // one reference on its chunk.
  PoolSlice<T> Intern(const T* elems, size_t len) {
    assert(len > 0);
    uint32_t id;
    if (len > kChunkElems) {
      id = AcquireChunk(len);  // Dedicated, exactly-sized chunk.
    } else {
      if (open_ == UINT32_MAX ||
          chunks_[open_].used + len > chunks_[open_].capacity) {
        // Seal the old open chunk; if nothing references it any more, it
        // can be recycled immediately.
        if (open_ != UINT32_MAX && chunks_[open_].refs == 0) {
          free_standard_.push_back(open_);
        }
        open_ = AcquireChunk(len);
      }
      id = open_;
    }
    Chunk& chunk = chunks_[id];
    T* dst = chunk.elems.get() + chunk.used;
    std::memcpy(dst, elems, len * sizeof(T));
    chunk.used += static_cast<uint32_t>(len);
    chunk.refs += 1;
    live_refs_ += 1;
    return PoolSlice<T>{dst, id, static_cast<uint32_t>(len)};
  }

  // One additional retained slice views the chunk (e.g. an edge split).
  void AddRef(const PoolSlice<T>& slice) {
    if (slice.chunk == UINT32_MAX) {
      return;  // Null slice (e.g. a root node's empty edge).
    }
    chunks_[slice.chunk].refs += 1;
    live_refs_ += 1;
  }

  // A retained slice was dropped. When a sealed chunk's count reaches zero
  // it is recycled (or deallocated, for oversized chunks).
  void Release(const PoolSlice<T>& slice) {
    if (slice.chunk == UINT32_MAX) {
      return;
    }
    Chunk& chunk = chunks_[slice.chunk];
    assert(chunk.refs > 0);
    chunk.refs -= 1;
    live_refs_ -= 1;
    if (chunk.refs != 0 || slice.chunk == open_) {
      return;  // Still referenced, or still accepting appends.
    }
    if (chunk.oversized) {
      // Oversized chunks are one-shot: return the memory, recycle the slot.
      chunk.elems.reset();
      chunk.capacity = 0;
      chunk.used = 0;
      free_slots_.push_back(slice.chunk);
    } else {
      chunk.used = 0;
      free_standard_.push_back(slice.chunk);
    }
  }

  // Diagnostics (CheckInvariants / DESIGN.md numbers).
  size_t num_chunks() const { return chunks_.size(); }
  size_t free_chunks() const { return free_standard_.size(); }
  int64_t live_refs() const { return live_refs_; }

 private:
  struct Chunk {
    // Deliberately uninitialized storage (new T[n], not vector): a fresh
    // chunk is written before it is read, and zero-filling 64 KiB would
    // dominate the cost of short-lived caches (one per simulated replica).
    std::unique_ptr<T[]> elems;
    uint32_t capacity = 0;
    uint32_t used = 0;
    int64_t refs = 0;
    bool oversized = false;
  };

  uint32_t AcquireChunk(size_t min_elems) {
    if (min_elems <= kChunkElems && !free_standard_.empty()) {
      uint32_t id = free_standard_.back();
      free_standard_.pop_back();
      chunks_[id].used = 0;
      return id;
    }
    uint32_t id;
    if (!free_slots_.empty()) {
      id = free_slots_.back();
      free_slots_.pop_back();
    } else {
      id = static_cast<uint32_t>(chunks_.size());
      chunks_.emplace_back();
      // The free lists never hold more entries than chunks exist, so
      // growing their capacity alongside the chunk vector (geometrically)
      // keeps steady-state Release/Intern churn strictly allocation-free.
      if (free_standard_.capacity() < chunks_.size()) {
        free_standard_.reserve(chunks_.capacity());
      }
      if (free_slots_.capacity() < chunks_.size()) {
        free_slots_.reserve(chunks_.capacity());
      }
    }
    Chunk& chunk = chunks_[id];
    chunk.oversized = min_elems > kChunkElems;
    chunk.capacity =
        static_cast<uint32_t>(chunk.oversized ? min_elems : kChunkElems);
    chunk.elems.reset(new T[chunk.capacity]);  // Uninitialized on purpose.
    chunk.used = 0;
    chunk.refs = 0;
    return id;
  }

  std::vector<Chunk> chunks_;
  std::vector<uint32_t> free_standard_;  // Recyclable standard-size chunks.
  std::vector<uint32_t> free_slots_;  // Chunk ids whose storage was freed.
  uint32_t open_ = UINT32_MAX;        // Chunk accepting appends.
  int64_t live_refs_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_CHUNK_POOL_H_
