#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace skywalker {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> row) {
  row.resize(headers_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::ToAscii() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) {
    emit_row(row);
  }
  emit_sep();
  return os.str();
}

std::string Table::ToCsv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return os.str();
}

}  // namespace skywalker
