#include "src/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace skywalker {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Distribution::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Distribution::Merge(const Distribution& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Distribution::Clear() {
  samples_.clear();
  sorted_ = true;
}

double Distribution::mean() const {
  if (samples_.empty()) {
    return 0;
  }
  return sum() / static_cast<double>(samples_.size());
}

double Distribution::sum() const {
  double s = 0;
  for (double x : samples_) {
    s += x;
  }
  return s;
}

double Distribution::min() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return samples_.front();
}

double Distribution::max() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return samples_.back();
}

double Distribution::stddev() const {
  if (samples_.size() < 2) {
    return 0;
  }
  double m = mean();
  double acc = 0;
  for (double x : samples_) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Distribution::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  assert(p >= 0 && p <= 100);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Distribution::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                count(), mean(), Percentile(50), Percentile(90), Percentile(99),
                max());
  return buf;
}

void Distribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i] > bounds_[i - 1] && "bounds must strictly increase");
  }
}

Histogram Histogram::Exponential(double first, double factor, int count) {
  assert(first > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double b = first;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return Histogram(std::move(bounds));
}

void Histogram::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  // First bucket whose upper bound covers x; past-the-end is the overflow.
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), x) - bounds_.begin());
  ++counts_[i];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;  // Empty-merge: a fresh/cleared histogram adds nothing.
  }
  if (count_ == 0) {
    *this = other;  // Adopt bounds and counts wholesale.
    return;
  }
  assert(bounds_ == other.bounds_ && "merging histograms with unequal grids");
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  assert(q >= 0 && q <= 1);
  // Rank of the requested quantile among `count_` ordered samples.
  double rank = q * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    double lo = i == 0 ? min_ : bounds_[i - 1];
    double hi = i < bounds_.size() ? bounds_[i] : max_;
    if (static_cast<double>(cumulative + counts_[i]) >= rank) {
      // Linear interpolation inside the covering bucket, clamped to the
      // observed range — a single occupied bucket yields values in
      // [min, max], not the bucket's nominal bounds.
      double within =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(counts_[i]);
      double v = lo + (hi - lo) * within;
      return std::min(std::max(v, min_), max_);
    }
    cumulative += counts_[i];
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "count=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
      static_cast<unsigned long long>(count_), mean(), Quantile(0.5),
      Quantile(0.9), Quantile(0.99), max());
  return buf;
}

void BinnedSeries::Add(size_t bin, double value) {
  assert(bin < bins_.size());
  bins_[bin] += value;
}

double BinnedSeries::Total() const {
  double t = 0;
  for (double b : bins_) {
    t += b;
  }
  return t;
}

double BinnedSeries::MaxBin() const {
  double m = 0;
  for (double b : bins_) {
    m = std::max(m, b);
  }
  return m;
}

double BinnedSeries::MinBin() const {
  if (bins_.empty()) {
    return 0;
  }
  double m = bins_[0];
  for (double b : bins_) {
    m = std::min(m, b);
  }
  return m;
}

double BinnedSeries::PeakToTroughRatio() const {
  double lo = MinBin();
  double hi = MaxBin();
  if (lo <= 0) {
    // Avoid division by zero: treat empty troughs as 1 request.
    lo = 1.0;
  }
  return hi / lo;
}

}  // namespace skywalker
