#include "src/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace skywalker {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Distribution::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Distribution::Merge(const Distribution& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Distribution::Clear() {
  samples_.clear();
  sorted_ = true;
}

double Distribution::mean() const {
  if (samples_.empty()) {
    return 0;
  }
  return sum() / static_cast<double>(samples_.size());
}

double Distribution::sum() const {
  double s = 0;
  for (double x : samples_) {
    s += x;
  }
  return s;
}

double Distribution::min() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return samples_.front();
}

double Distribution::max() const {
  if (samples_.empty()) {
    return 0;
  }
  EnsureSorted();
  return samples_.back();
}

double Distribution::stddev() const {
  if (samples_.size() < 2) {
    return 0;
  }
  double m = mean();
  double acc = 0;
  for (double x : samples_) {
    acc += (x - m) * (x - m);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Distribution::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  assert(p >= 0 && p <= 100);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Distribution::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%zu mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
                count(), mean(), Percentile(50), Percentile(90), Percentile(99),
                max());
  return buf;
}

void Distribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

void BinnedSeries::Add(size_t bin, double value) {
  assert(bin < bins_.size());
  bins_[bin] += value;
}

double BinnedSeries::Total() const {
  double t = 0;
  for (double b : bins_) {
    t += b;
  }
  return t;
}

double BinnedSeries::MaxBin() const {
  double m = 0;
  for (double b : bins_) {
    m = std::max(m, b);
  }
  return m;
}

double BinnedSeries::MinBin() const {
  if (bins_.empty()) {
    return 0;
  }
  double m = bins_[0];
  for (double b : bins_) {
    m = std::min(m, b);
  }
  return m;
}

double BinnedSeries::PeakToTroughRatio() const {
  double lo = MinBin();
  double hi = MaxBin();
  if (lo <= 0) {
    // Avoid division by zero: treat empty troughs as 1 request.
    lo = 1.0;
  }
  return hi / lo;
}

}  // namespace skywalker
