// Move-only `void()` callable with small-buffer storage, built for the
// simulator's event hot path: a lambda whose captures fit in the inline
// buffer is stored in place and never touches the heap, unlike
// std::function, which allocates for anything beyond two pointers of
// captures. Oversized or throwing-move callables fall back to a single heap
// allocation so correctness never depends on the capture size.
//
// Moves are noexcept (heap-fallback callables move by pointer swap; inline
// callables require nothrow-move-constructible functors), so containers of
// InlineFunction can reallocate without the strong-exception-safety copy
// penalty.

#ifndef SKYWALKER_COMMON_INLINE_FUNCTION_H_
#define SKYWALKER_COMMON_INLINE_FUNCTION_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace skywalker {

class InlineFunction {
 public:
  // 48 bytes holds every scheduling lambda in the simulator today (the
  // largest captures a handful of pointers/ints); bigger functors still
  // work via the heap path.
  static constexpr size_t kInlineSize = 48;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &InlineOps<Fn>::kOps;
    } else {
      *PtrSlot() = new Fn(std::forward<F>(f));
      ops_ = &HeapOps<Fn>::kOps;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Move-constructs the payload into `dst` storage and destroys `src`.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* storage) noexcept;
    // Trivially copyable + destructible payload: relocation is a memcpy and
    // destruction a no-op, skipping both indirect calls. Heap-sift moves in
    // the event queue relocate tens of millions of times per benchmark cell
    // and nearly every scheduling lambda (pointer/int captures) qualifies.
    bool trivial;
  };

  template <typename Fn>
  struct InlineOps {
    static void Invoke(void* s) { (*static_cast<Fn*>(s))(); }
    static void Relocate(void* src, void* dst) noexcept {
      Fn* f = static_cast<Fn*>(src);
      ::new (dst) Fn(std::move(*f));
      f->~Fn();
    }
    static void Destroy(void* s) noexcept { static_cast<Fn*>(s)->~Fn(); }
    static constexpr Ops kOps{Invoke, Relocate, Destroy,
                              std::is_trivially_copyable_v<Fn> &&
                                  std::is_trivially_destructible_v<Fn>};
  };

  template <typename Fn>
  struct HeapOps {
    static Fn* Get(void* s) { return *static_cast<Fn**>(s); }
    static void Invoke(void* s) { (*Get(s))(); }
    static void Relocate(void* src, void* dst) noexcept {
      *static_cast<void**>(dst) = Get(src);
    }
    static void Destroy(void* s) noexcept { delete Get(s); }
    // Not trivial: the owned heap object must be deleted on destruction.
    static constexpr Ops kOps{Invoke, Relocate, Destroy, false};
  };

  void** PtrSlot() { return reinterpret_cast<void**>(buf_); }

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        // Whole-buffer copy: branchless on size, and cheaper than the
        // indirect relocate call it replaces.
        std::memcpy(buf_, other.buf_, kInlineSize);
      } else {
        ops_->relocate(other.buf_, buf_);
      }
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) {
        ops_->destroy(buf_);
      }
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_INLINE_FUNCTION_H_
