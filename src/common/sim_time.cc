#include "src/common/sim_time.h"

#include <cstdio>

namespace skywalker {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  if (d >= Seconds(1) || d <= -Seconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(d));
  } else if (d >= Milliseconds(1) || d <= -Milliseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.1fms", ToMilliseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%ldus", static_cast<long>(d));
  }
  return buf;
}

}  // namespace skywalker
