#include "src/common/strings.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace skywalker {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; inputs here are CLI-scenario-name sized.
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diagonal = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

std::vector<std::string> SuggestClosest(
    std::string_view name, const std::vector<std::string>& candidates) {
  const size_t threshold = std::max<size_t>(2, name.size() / 4);
  std::vector<std::pair<size_t, std::string>> scored;
  for (const std::string& candidate : candidates) {
    const size_t distance = EditDistance(name, candidate);
    if (distance <= threshold) {
      scored.emplace_back(distance, candidate);
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& lhs, const auto& rhs) {
                     return lhs.first < rhs.first;
                   });
  std::vector<std::string> out;
  out.reserve(scored.size());
  for (auto& [distance, candidate] : scored) {
    out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace skywalker
