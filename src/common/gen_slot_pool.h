// Generation-stamped slot pool: free-listed payload slots addressed by a
// 32-bit index, each carrying a 32-bit generation that is bumped on every
// release. A handle packs (slot << 32) | gen; since the generation moves on
// release, a stale handle (double-cancel, double-unref, reuse after pop)
// fails the validity check in O(1) with no tombstone bookkeeping. Both the
// event queue (pending callbacks) and the prefix cache (pins) sit on this
// pool, so the encoding and wrap rules live in exactly one place.
//
// Generation 0 is reserved: handles are never 0, so callers may use 0 (or
// any negative value, for signed handle types) as their "invalid" sentinel.

#ifndef SKYWALKER_COMMON_GEN_SLOT_POOL_H_
#define SKYWALKER_COMMON_GEN_SLOT_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace skywalker {

template <typename T>
class GenSlotPool {
 public:
  using Handle = uint64_t;

  static uint32_t HandleSlot(Handle h) { return static_cast<uint32_t>(h >> 32); }
  static uint32_t HandleGen(Handle h) { return static_cast<uint32_t>(h); }

  // Takes a slot off the free list (payload in whatever state the previous
  // user left it) or appends a fresh one. Returns the slot index; the
  // matching handle is `MakeHandle(slot)`.
  uint32_t Acquire() {
    ++live_;
    if (!free_.empty()) {
      uint32_t slot = free_.back();
      free_.pop_back();
      return slot;
    }
    return Grow();
  }

  // Invalidates every outstanding handle for `slot` and returns it to the
  // free list. The payload is left as-is; reset it before or after if it
  // holds resources.
  void Release(uint32_t slot) {
    Slot& s = slots_[slot];
    if (++s.gen == 0) {
      s.gen = 1;  // Keep generation 0 reserved across wrap-around.
    }
    free_.push_back(slot);
    --live_;
  }

  Handle MakeHandle(uint32_t slot) const {
    return (static_cast<Handle>(slot) << 32) | slots_[slot].gen;
  }

  // True iff `h` was minted for its slot's current generation (i.e. the
  // slot has not been released since).
  bool IsValid(Handle h) const {
    uint32_t slot = HandleSlot(h);
    uint32_t gen = HandleGen(h);
    return gen != 0 && slot < slots_.size() && slots_[slot].gen == gen;
  }

  uint32_t gen(uint32_t slot) const { return slots_[slot].gen; }
  T& operator[](uint32_t slot) { return slots_[slot].value; }
  const T& operator[](uint32_t slot) const { return slots_[slot].value; }

  // Acquired (not yet released) slots.
  size_t live() const { return live_; }

 private:
  struct Slot {
    uint32_t gen = 1;
    T value{};
  };

  // Cold growth path, kept out of Acquire so the free-list fast path stays
  // small enough to inline. The free list never holds more entries than
  // slots exist; growing its capacity alongside the slot vector
  // (geometrically, so backlog growth stays amortized-linear) keeps
  // steady-state Acquire/Release churn strictly allocation-free.
  __attribute__((noinline)) uint32_t Grow() {
    uint32_t slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
    if (free_.capacity() < slots_.size()) {
      free_.reserve(slots_.capacity());
    }
    return slot;
  }

  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
  size_t live_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_GEN_SLOT_POOL_H_
