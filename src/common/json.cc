#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace skywalker {

Json& Json::Set(std::string key, Json value) {
  type_ = Type::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json& Json::Append(Json value) {
  type_ = Type::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

std::string Json::FormatNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  // Integral values within the exact-double range print without a decimal
  // point; everything else uses the shortest precision that round-trips.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) {
      break;
    }
  }
  return buf;
}

namespace {

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void Newline(std::string* out, bool indent, int depth) {
  if (!indent) {
    return;
  }
  out->push_back('\n');
  out->append(static_cast<size_t>(depth) * 2, ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, bool indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += FormatNumber(number_);
      return;
    case Type::kString:
      EscapeString(string_, out);
      return;
    case Type::kArray: {
      if (elements_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        elements_[i].DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          out->push_back(',');
        }
        Newline(out, indent, depth + 1);
        EscapeString(members_[i].first, out);
        *out += indent ? ": " : ":";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      Newline(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(bool indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  if (indent) {
    out.push_back('\n');
  }
  return out;
}

// --- Parser ----------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> Run() {
    SkipWs();
    std::optional<Json> value = ParseValue();
    if (!value.has_value()) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return std::nullopt;  // Trailing garbage.
    }
    return value;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Json> ParseValue() {
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    // Bounded nesting so corrupted input fails with nullopt instead of
    // overflowing the stack. BENCH files nest ~5 deep.
    if (depth_ >= 256) {
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        std::optional<std::string> s = ParseString();
        if (!s.has_value()) {
          return std::nullopt;
        }
        return Json(std::move(*s));
      }
      case 't':
        return ConsumeLiteral("true") ? std::optional<Json>(Json(true))
                                      : std::nullopt;
      case 'f':
        return ConsumeLiteral("false") ? std::optional<Json>(Json(false))
                                       : std::nullopt;
      case 'n':
        return ConsumeLiteral("null") ? std::optional<Json>(Json())
                                      : std::nullopt;
      default:
        return ParseNumber();
    }
  }

  std::optional<Json> ParseObject() {
    ++pos_;  // '{'
    ++depth_;
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      SkipWs();
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      SkipWs();
      if (!Consume(':')) {
        return std::nullopt;
      }
      SkipWs();
      std::optional<Json> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      obj.Set(std::move(*key), std::move(*value));
      SkipWs();
      if (Consume('}')) {
        --depth_;
        return obj;
      }
      if (!Consume(',')) {
        return std::nullopt;
      }
    }
  }

  std::optional<Json> ParseArray() {
    ++pos_;  // '['
    ++depth_;
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      SkipWs();
      std::optional<Json> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      arr.Append(std::move(*value));
      SkipWs();
      if (Consume(']')) {
        --depth_;
        return arr;
      }
      if (!Consume(',')) {
        return std::nullopt;
      }
    }
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return std::nullopt;  // RFC 8259: control chars must be escaped.
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return std::nullopt;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // benchmark output is ASCII).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // Unterminated.
  }

  // Strict JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  std::optional<Json> ParseNumber() {
    const size_t start = pos_;
    auto digits = [this] {
      size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    Consume('-');
    if (Consume('0')) {
      // A leading zero must stand alone (no 007).
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return std::nullopt;
      }
    } else if (digits() == 0) {
      return std::nullopt;  // '-', '.5', '+5', etc.
    }
    if (Consume('.') && digits() == 0) {
      return std::nullopt;  // '1.' has no fraction digits.
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (!Consume('+')) {
        Consume('-');
      }
      if (digits() == 0) {
        return std::nullopt;
      }
    }
    std::string token(text_.substr(start, pos_ - start));
    return Json(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace skywalker
