#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace skywalker {
namespace {

LogLevel g_level = LogLevel::kWarning;
std::function<SimTime()>* GlobalClock() {
  static std::function<SimTime()> clock;
  return &clock;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetLogClock(std::function<SimTime()> clock) {
  *GlobalClock() = std::move(clock);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " ";
  const auto& clock = *GlobalClock();
  if (clock) {
    stream_ << "t=" << FormatDuration(clock()) << " ";
  }
  stream_ << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal
}  // namespace skywalker
