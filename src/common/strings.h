// Minimal string formatting helpers (GCC 12 lacks std::format).

#ifndef SKYWALKER_COMMON_STRINGS_H_
#define SKYWALKER_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace skywalker {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

bool StartsWith(std::string_view s, std::string_view prefix);

// Levenshtein edit distance (insert/delete/substitute, all cost 1).
size_t EditDistance(std::string_view a, std::string_view b);

// Candidates within edit distance <= max(2, |name| / 4) of `name`, closest
// first (ties keep candidate order). Backs "unknown scenario" suggestions in
// the skybench CLI.
std::vector<std::string> SuggestClosest(
    std::string_view name, const std::vector<std::string>& candidates);

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_STRINGS_H_
