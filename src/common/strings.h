// Minimal string formatting helpers (GCC 12 lacks std::format).

#ifndef SKYWALKER_COMMON_STRINGS_H_
#define SKYWALKER_COMMON_STRINGS_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace skywalker {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts, std::string_view sep);

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> StrSplit(std::string_view s, char delim);

bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_STRINGS_H_
