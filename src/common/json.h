// Minimal JSON document model for machine-readable benchmark output.
//
// Design constraints (see DESIGN.md §"skybench"):
//  * deterministic serialization — object keys keep insertion order and
//    doubles print as the shortest string that round-trips, so identical
//    results serialize to identical bytes regardless of thread count;
//  * no external dependencies;
//  * a parser (for tests and future tooling that diffs BENCH_*.json files).

#ifndef SKYWALKER_COMMON_JSON_H_
#define SKYWALKER_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace skywalker {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}                  // NOLINT
  Json(double v) : type_(Type::kNumber), number_(v) {}            // NOLINT
  Json(int v) : type_(Type::kNumber), number_(v) {}               // NOLINT
  Json(int64_t v)                                                 // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(uint64_t v)                                                // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : Json(std::string(s)) {}              // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                   // NOLINT

  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return number_; }
  const std::string& AsString() const { return string_; }

  // Object access. Set() appends or overwrites in place, preserving the
  // original insertion position on overwrite.
  Json& Set(std::string key, Json value);
  const Json* Find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& items() const {
    return members_;
  }

  // Array access.
  Json& Append(Json value);
  const std::vector<Json>& elements() const { return elements_; }
  size_t size() const {
    return is_object() ? members_.size() : elements_.size();
  }

  // Serializes with two-space indentation when `indent` is true, compact
  // otherwise. Non-finite numbers serialize as null (JSON has no NaN/Inf).
  std::string Dump(bool indent = true) const;

  // Strict parser; returns nullopt on any syntax error or trailing garbage.
  static std::optional<Json> Parse(std::string_view text);

  // Shortest decimal string that parses back to exactly `v`.
  static std::string FormatNumber(double v);

 private:
  void DumpTo(std::string* out, bool indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> elements_;                         // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

}  // namespace skywalker

#endif  // SKYWALKER_COMMON_JSON_H_
