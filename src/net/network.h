// Message-level network model over the discrete-event simulator.
//
// A "send" schedules a delivery closure at the destination after the one-way
// topology latency (plus optional jitter). Higher layers pass lambdas rather
// than serialized payloads — standard practice for discrete-event simulation,
// and it keeps the routing logic identical to what a real RPC layer would
// invoke on receipt. Deliveries are EventFn (small-buffer callables), so a
// message whose captures fit inline reaches the event queue without any
// heap allocation.
//
// Sharded mode (ISSUE 6): constructed over a ShardedSimulator, the network
// becomes the sole cross-region channel. A send executes on the sender
// region's shard; same-shard deliveries go straight into that shard's keyed
// queue, cross-shard deliveries into the (src, dst) mailbox drained at the
// next window barrier. Delivery keys are allocated from the *sender* region's
// sequence, so the destination's execution order is independent of shard and
// thread count. Jitter draws come from per-region RNG streams for the same
// reason. In plain (single-Simulator) mode behavior is byte-identical to the
// pre-sharding network.

#ifndef SKYWALKER_NET_NETWORK_H_
#define SKYWALKER_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/net/topology.h"
#include "src/sim/sharded_simulator.h"
#include "src/sim/simulator.h"

namespace skywalker {

class Network {
 public:
  // `jitter_fraction` adds uniform noise in [1-j, 1+j] to each delivery,
  // deterministic under the given seed. 0 disables jitter.
  Network(Simulator* sim, Topology topology, double jitter_fraction = 0.0,
          uint64_t seed = kDefaultRngSeed);

  // Sharded mode: topology comes from the sharded simulator. The simulator
  // must have been built with a jitter bound >= `jitter_fraction`, or the
  // lookahead window would admit jittered deliveries into its own window.
  explicit Network(ShardedSimulator* sharded, double jitter_fraction = 0.0,
                   uint64_t seed = kDefaultRngSeed);

  // Delivers `deliver` at the destination after Latency(from, to) (+jitter).
  void Send(RegionId from, RegionId to, EventFn deliver);

  // Coalesced fan-out (ISSUE 10): one event standing in for `count`
  // logical messages from `from` to `to`. Message counters advance by
  // `count` — accounting parity with per-message sends — but only one
  // delivery closure is scheduled. Jitter-free networks only (a batch
  // would otherwise consume one jitter draw where `count` sends consume
  // `count`, shifting every later draw); CHECKed. The caller must make
  // the closure perform the per-message work in the order back-to-back
  // individual sends would have (see DispatchEngine::ProbeAll).
  void SendBatch(RegionId from, RegionId to, int count, EventFn deliver);

  // True when deliveries carry no jitter — the precondition for
  // coalescing sends without perturbing the RNG streams.
  bool ZeroJitter() const { return jitter_fraction_ <= 0.0; }

  // Delivers `fn` in region `to` after an explicit `delay`, charged to no
  // message counter: the response leg of an exchange whose latency the
  // caller already computed (e.g. streaming token callbacks). In plain mode
  // this is exactly sim()->ScheduleAfter(delay, fn). In sharded mode
  // cross-shard delays must be >= Latency(from, to) or the lookahead
  // contract is violated (CHECKed at the window barrier).
  void Deliver(RegionId from, RegionId to, SimDuration delay, EventFn fn);

  // Expected (jitter-free) one-way latency.
  SimDuration Latency(RegionId from, RegionId to) const {
    return topology_.Latency(from, to);
  }

  // The shard-local simulator owning `region` (plain mode: the one
  // simulator). Actor construction and "what time is it here?" reads must
  // use this, never another region's clock.
  Simulator* SimForRegion(RegionId region) const {
    return sharded_ ? sharded_->SimForRegion(region) : sim_;
  }

  Simulator* sim() const { return sim_; }
  ShardedSimulator* sharded() const { return sharded_; }
  const Topology& topology() const { return topology_; }

  // Total messages sent (probing-overhead accounting in benches). Counters
  // are sharded by sender shard and summed here; read after RunUntil
  // returns (mid-run reads from another thread would race).
  uint64_t messages_sent() const;
  // Messages whose source and destination regions differ.
  uint64_t cross_region_messages() const;

 private:
  // Per-shard message counters: each is written only by the thread running
  // its shard, on its own cache line, so counting stays synchronization-free
  // under parallel windows.
  struct alignas(64) ShardCounters {
    uint64_t messages_sent = 0;
    uint64_t cross_region = 0;
  };

  Simulator* sim_ = nullptr;          // Plain mode only.
  ShardedSimulator* sharded_ = nullptr;
  Topology topology_;
  double jitter_fraction_;
  Rng rng_;                  // Plain-mode jitter stream (seed-compatible).
  std::vector<Rng> region_rngs_;  // Sharded-mode per-region jitter streams.
  std::vector<ShardCounters> counters_;
};

}  // namespace skywalker

#endif  // SKYWALKER_NET_NETWORK_H_
