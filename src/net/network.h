// Message-level network model over the discrete-event simulator.
//
// A "send" schedules a delivery closure at the destination after the one-way
// topology latency (plus optional jitter). Higher layers pass lambdas rather
// than serialized payloads — standard practice for discrete-event simulation,
// and it keeps the routing logic identical to what a real RPC layer would
// invoke on receipt. Deliveries are EventFn (small-buffer callables), so a
// message whose captures fit inline reaches the event queue without any
// heap allocation.

#ifndef SKYWALKER_NET_NETWORK_H_
#define SKYWALKER_NET_NETWORK_H_

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace skywalker {

class Network {
 public:
  // `jitter_fraction` adds uniform noise in [1-j, 1+j] to each delivery,
  // deterministic under the given seed. 0 disables jitter.
  Network(Simulator* sim, Topology topology, double jitter_fraction = 0.0,
          uint64_t seed = kDefaultRngSeed);

  // Delivers `deliver` at the destination after Latency(from, to) (+jitter).
  void Send(RegionId from, RegionId to, EventFn deliver);

  // Expected (jitter-free) one-way latency.
  SimDuration Latency(RegionId from, RegionId to) const {
    return topology_.Latency(from, to);
  }

  Simulator* sim() const { return sim_; }
  const Topology& topology() const { return topology_; }

  // Total messages sent (probing-overhead accounting in benches).
  uint64_t messages_sent() const { return messages_sent_; }
  // Messages whose source and destination regions differ.
  uint64_t cross_region_messages() const { return cross_region_messages_; }

 private:
  Simulator* sim_;
  Topology topology_;
  double jitter_fraction_;
  Rng rng_;
  uint64_t messages_sent_ = 0;
  uint64_t cross_region_messages_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_NET_NETWORK_H_
