#include "src/net/network.h"

#include <utility>

namespace skywalker {

Network::Network(Simulator* sim, Topology topology, double jitter_fraction,
                 uint64_t seed)
    : sim_(sim),
      topology_(std::move(topology)),
      jitter_fraction_(jitter_fraction),
      rng_(seed) {}

void Network::Send(RegionId from, RegionId to, EventFn deliver) {
  ++messages_sent_;
  if (from != to) {
    ++cross_region_messages_;
  }
  SimDuration latency = topology_.Latency(from, to);
  if (jitter_fraction_ > 0) {
    double factor =
        rng_.Uniform(1.0 - jitter_fraction_, 1.0 + jitter_fraction_);
    latency = static_cast<SimDuration>(static_cast<double>(latency) * factor);
  }
  sim_->ScheduleAfter(latency, std::move(deliver));
}

}  // namespace skywalker
