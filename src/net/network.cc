#include "src/net/network.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

Network::Network(Simulator* sim, Topology topology, double jitter_fraction,
                 uint64_t seed)
    : sim_(sim),
      topology_(std::move(topology)),
      jitter_fraction_(jitter_fraction),
      rng_(seed),
      counters_(1) {}

Network::Network(ShardedSimulator* sharded, double jitter_fraction,
                 uint64_t seed)
    : sharded_(sharded),
      topology_(sharded->topology()),
      jitter_fraction_(jitter_fraction),
      rng_(seed),
      counters_(static_cast<size_t>(sharded->num_shards())) {
  // One jitter stream per region: draws are consumed in the region's own
  // deterministic execution order, independent of shard grouping.
  region_rngs_.reserve(topology_.num_regions());
  for (size_t r = 0; r < topology_.num_regions(); ++r) {
    region_rngs_.push_back(rng_.Fork(r));
  }
}

void Network::Send(RegionId from, RegionId to, EventFn deliver) {
  if (sharded_ == nullptr) {
    ++counters_[0].messages_sent;
    if (from != to) {
      ++counters_[0].cross_region;
    }
    SimDuration latency = topology_.Latency(from, to);
    if (jitter_fraction_ > 0) {
      double factor =
          rng_.Uniform(1.0 - jitter_fraction_, 1.0 + jitter_fraction_);
      latency =
          static_cast<SimDuration>(static_cast<double>(latency) * factor);
    }
    sim_->ScheduleAfter(latency, std::move(deliver));
    return;
  }

  const int from_shard = sharded_->ShardOf(from);
  ShardCounters& counters = counters_[static_cast<size_t>(from_shard)];
  ++counters.messages_sent;
  if (from != to) {
    ++counters.cross_region;
  }
  SimDuration latency = topology_.Latency(from, to);
  if (jitter_fraction_ > 0) {
    double factor = region_rngs_[static_cast<size_t>(from)].Uniform(
        1.0 - jitter_fraction_, 1.0 + jitter_fraction_);
    latency = static_cast<SimDuration>(static_cast<double>(latency) * factor);
  }
  Simulator* sender = sharded_->shard(from_shard);
  const SimTime at = sender->now() + latency;
  const uint64_t key = sender->NextOrderKey(from);
  if (sharded_->ShardOf(to) == from_shard) {
    sender->ScheduleKeyedAt(at, key, to, std::move(deliver));
  } else {
    sharded_->PostCrossShard(from_shard, at, key, to, std::move(deliver));
  }
}

void Network::SendBatch(RegionId from, RegionId to, int count,
                        EventFn deliver) {
  SKYWALKER_CHECK(ZeroJitter())
      << "SendBatch requires a jitter-free network";
  SKYWALKER_CHECK(count >= 1);
  if (sharded_ == nullptr) {
    counters_[0].messages_sent += static_cast<uint64_t>(count);
    if (from != to) {
      counters_[0].cross_region += static_cast<uint64_t>(count);
    }
    sim_->ScheduleAfter(topology_.Latency(from, to), std::move(deliver));
    return;
  }
  const int from_shard = sharded_->ShardOf(from);
  ShardCounters& counters = counters_[static_cast<size_t>(from_shard)];
  counters.messages_sent += static_cast<uint64_t>(count);
  if (from != to) {
    counters.cross_region += static_cast<uint64_t>(count);
  }
  Simulator* sender = sharded_->shard(from_shard);
  const SimTime at = sender->now() + topology_.Latency(from, to);
  const uint64_t key = sender->NextOrderKey(from);
  if (sharded_->ShardOf(to) == from_shard) {
    sender->ScheduleKeyedAt(at, key, to, std::move(deliver));
  } else {
    sharded_->PostCrossShard(from_shard, at, key, to, std::move(deliver));
  }
}

void Network::Deliver(RegionId from, RegionId to, SimDuration delay,
                      EventFn fn) {
  delay = std::max<SimDuration>(delay, 0);
  if (sharded_ == nullptr) {
    sim_->ScheduleAfter(delay, std::move(fn));
    return;
  }
  const int from_shard = sharded_->ShardOf(from);
  Simulator* sender = sharded_->shard(from_shard);
  const SimTime at = sender->now() + delay;
  const uint64_t key = sender->NextOrderKey(from);
  if (sharded_->ShardOf(to) == from_shard) {
    sender->ScheduleKeyedAt(at, key, to, std::move(fn));
  } else {
    SKYWALKER_CHECK(delay >= topology_.Latency(from, to))
        << "cross-shard Deliver below the link latency";
    sharded_->PostCrossShard(from_shard, at, key, to, std::move(fn));
  }
}

uint64_t Network::messages_sent() const {
  uint64_t total = 0;
  for (const ShardCounters& c : counters_) {
    total += c.messages_sent;
  }
  return total;
}

uint64_t Network::cross_region_messages() const {
  uint64_t total = 0;
  for (const ShardCounters& c : counters_) {
    total += c.cross_region;
  }
  return total;
}

}  // namespace skywalker
