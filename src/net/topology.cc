#include "src/net/topology.h"

#include <cassert>
#include <limits>

namespace skywalker {

RegionId Topology::AddRegion(std::string name, SimDuration intra) {
  RegionId id = static_cast<RegionId>(names_.size());
  names_.push_back(std::move(name));
  size_t n = names_.size();
  std::vector<SimDuration> next(n * n, -1);
  for (size_t a = 0; a + 1 < n; ++a) {
    for (size_t b = 0; b + 1 < n; ++b) {
      next[a * n + b] = latency_[a * (n - 1) + b];
    }
  }
  latency_ = std::move(next);
  latency_[static_cast<size_t>(id) * n + static_cast<size_t>(id)] = intra;
  return id;
}

void Topology::SetLatency(RegionId a, RegionId b, SimDuration one_way) {
  size_t n = names_.size();
  assert(a >= 0 && static_cast<size_t>(a) < n);
  assert(b >= 0 && static_cast<size_t>(b) < n);
  latency_[static_cast<size_t>(a) * n + static_cast<size_t>(b)] = one_way;
  latency_[static_cast<size_t>(b) * n + static_cast<size_t>(a)] = one_way;
}

SimDuration Topology::Latency(RegionId a, RegionId b) const {
  size_t n = names_.size();
  assert(a >= 0 && static_cast<size_t>(a) < n);
  assert(b >= 0 && static_cast<size_t>(b) < n);
  SimDuration v = latency_[static_cast<size_t>(a) * n + static_cast<size_t>(b)];
  return v >= 0 ? v : kDefaultInterRegionLatency;
}

StatusOr<RegionId> Topology::FindRegion(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<RegionId>(i);
    }
  }
  return NotFoundError("no region named " + std::string(name));
}

RegionId Topology::Nearest(RegionId from,
                           const std::vector<RegionId>& candidates) const {
  RegionId best = kInvalidRegion;
  SimDuration best_latency = std::numeric_limits<SimDuration>::max();
  for (RegionId c : candidates) {
    SimDuration l = Latency(from, c);
    if (l < best_latency || (l == best_latency && c < best)) {
      best = c;
      best_latency = l;
    }
  }
  return best;
}

Topology Topology::ThreeContinents() {
  Topology t;
  RegionId us = t.AddRegion("us-east", Milliseconds(1));
  RegionId eu = t.AddRegion("eu-west", Milliseconds(1));
  RegionId ap = t.AddRegion("ap-southeast", Milliseconds(1));
  // One-way latencies calibrated to public AWS inter-region RTT measurements
  // (~2x these numbers), within the paper's "up to 200 ms RTT" envelope.
  t.SetLatency(us, eu, Milliseconds(40));
  t.SetLatency(us, ap, Milliseconds(85));
  t.SetLatency(eu, ap, Milliseconds(95));
  return t;
}

Topology Topology::FiveRegions() {
  Topology t;
  RegionId use1 = t.AddRegion("us-east-1", Milliseconds(1));
  RegionId usw = t.AddRegion("us-west", Milliseconds(1));
  RegionId euw = t.AddRegion("eu-west", Milliseconds(1));
  RegionId euc = t.AddRegion("eu-central", Milliseconds(1));
  RegionId use2 = t.AddRegion("us-east-2", Milliseconds(1));
  t.SetLatency(use1, usw, Milliseconds(30));
  t.SetLatency(use1, euw, Milliseconds(38));
  t.SetLatency(use1, euc, Milliseconds(45));
  t.SetLatency(use1, use2, Milliseconds(6));
  t.SetLatency(usw, euw, Milliseconds(65));
  t.SetLatency(usw, euc, Milliseconds(72));
  t.SetLatency(usw, use2, Milliseconds(25));
  t.SetLatency(euw, euc, Milliseconds(10));
  t.SetLatency(euw, use2, Milliseconds(42));
  t.SetLatency(euc, use2, Milliseconds(48));
  return t;
}

Topology Topology::FourRegions() {
  Topology t;
  RegionId use = t.AddRegion("us-east", Milliseconds(1));
  RegionId usw = t.AddRegion("us-west", Milliseconds(1));
  RegionId euw = t.AddRegion("eu-west", Milliseconds(1));
  RegionId apn = t.AddRegion("ap-northeast", Milliseconds(1));
  t.SetLatency(use, usw, Milliseconds(33));
  t.SetLatency(use, euw, Milliseconds(40));
  t.SetLatency(use, apn, Milliseconds(75));
  t.SetLatency(usw, euw, Milliseconds(67));
  t.SetLatency(usw, apn, Milliseconds(55));
  t.SetLatency(euw, apn, Milliseconds(110));
  return t;
}

}  // namespace skywalker
