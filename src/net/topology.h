// Geographic topology: named regions plus a one-way latency matrix.
//
// Latencies model AWS-like inter-region links (paper §2.1: cross-region RTT
// up to ~200 ms, i.e. ~100 ms one-way; intra-region ~1 ms).

#ifndef SKYWALKER_NET_TOPOLOGY_H_
#define SKYWALKER_NET_TOPOLOGY_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace skywalker {

// Dense region identifier; assigned by Topology in insertion order.
using RegionId = int32_t;
inline constexpr RegionId kInvalidRegion = -1;

class Topology {
 public:
  Topology() = default;

  // Registers a region and returns its id. Latency to itself defaults to
  // `intra_region_latency`.
  RegionId AddRegion(std::string name,
                     SimDuration intra_region_latency = Milliseconds(1));

  // Sets the one-way latency in both directions between two regions.
  void SetLatency(RegionId a, RegionId b, SimDuration one_way);

  // One-way latency from `a` to `b`. Unset pairs default to
  // kDefaultInterRegionLatency.
  SimDuration Latency(RegionId a, RegionId b) const;

  size_t num_regions() const { return names_.size(); }
  const std::string& name(RegionId id) const { return names_.at(id); }
  StatusOr<RegionId> FindRegion(std::string_view name) const;

  // Among `candidates`, the region with the lowest latency from `from`
  // (ties: lower id). Returns kInvalidRegion for an empty candidate list.
  RegionId Nearest(RegionId from, const std::vector<RegionId>& candidates) const;

  // Canonical three-continent topology used throughout the evaluation:
  // us-east, eu-west, ap-southeast with paper-calibrated latencies.
  static Topology ThreeContinents();

  // Five-region topology used by the Fig. 3 aggregation study
  // (us-east-1, us-west, eu-west, eu-central, us-east-2).
  static Topology FiveRegions();

  // Four-region topology used by the fleet-scale sharded-simulation study
  // (us-east, us-west, eu-west, ap-northeast). One region per shard at the
  // 4-shard sweet spot; min inter-region one-way latency 33 ms bounds the
  // conservative lookahead window.
  static Topology FourRegions();

  static constexpr SimDuration kDefaultInterRegionLatency = Milliseconds(75);

 private:
  std::vector<std::string> names_;
  // Flattened matrix; index a * num_regions + b. Rebuilt on AddRegion.
  std::vector<SimDuration> latency_;
};

}  // namespace skywalker

#endif  // SKYWALKER_NET_TOPOLOGY_H_
