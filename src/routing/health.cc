#include "src/routing/health.h"

#include <algorithm>

namespace skywalker {

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kHealthy:
      return "healthy";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kRecovering:
      return "recovering";
    case HealthStatus::kEjected:
      return "ejected";
    case HealthStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

bool EjectionAllowed(int currently_ejected, size_t fleet_size,
                     double max_ejection_fraction) {
  if (max_ejection_fraction <= 0.0) return false;
  if (currently_ejected == 0) return true;
  return static_cast<double>(currently_ejected + 1) <=
         max_ejection_fraction * static_cast<double>(fleet_size);
}

bool ReplicaHealth::RecordSuccess() {
  consecutive_failures_ = 0;
  if (status_ == HealthStatus::kRecovering) {
    status_ = HealthStatus::kHealthy;
    latency_strikes_ = 0;
    ++recovery_successes_;
    return true;
  }
  return false;
}

void ReplicaHealth::RecordProbeSuccess() { consecutive_failures_ = 0; }

bool ReplicaHealth::RecordFailure(const OutlierConfig& config) {
  // Any failure while half-open is disqualifying: the target had one chance
  // and blew it.
  if (status_ == HealthStatus::kRecovering) return true;
  if (status_ == HealthStatus::kEjected) return false;
  ++consecutive_failures_;
  if (consecutive_failures_ >= config.consecutive_failures) return true;
  // Below the threshold: deprioritize so the failover ladder already routes
  // around a target that has started misbehaving.
  if (status_ == HealthStatus::kHealthy) status_ = HealthStatus::kDegraded;
  return false;
}

LatencyVerdict ReplicaHealth::EvaluateLatency(const OutlierConfig& config,
                                              bool outlier,
                                              bool fresh_sample) {
  if (status_ == HealthStatus::kEjected) return LatencyVerdict::kNone;
  if (status_ == HealthStatus::kRecovering) {
    // Probe reachability alone must not close the half-open state: a
    // latency-ejected straggler answers probes instantly. Require a sample
    // the EWMA has seen since the ejection.
    if (!fresh_sample) return LatencyVerdict::kNone;
    if (outlier) return LatencyVerdict::kWantsEject;
    status_ = HealthStatus::kHealthy;
    latency_strikes_ = 0;
    ++recovery_successes_;
    return LatencyVerdict::kRecovered;
  }
  if (!outlier) {
    latency_strikes_ = 0;
    // Degraded-by-latency targets heal on a clean round; degraded-by-failure
    // targets heal through RecordSuccess, which is indistinguishable here —
    // consecutive_failures_ > 0 keeps them degraded.
    if (status_ == HealthStatus::kDegraded && consecutive_failures_ == 0) {
      status_ = HealthStatus::kHealthy;
    }
    return LatencyVerdict::kNone;
  }
  ++latency_strikes_;
  if (latency_strikes_ >= config.latency_strikes_to_eject) {
    return LatencyVerdict::kWantsEject;
  }
  if (status_ == HealthStatus::kHealthy) {
    status_ = HealthStatus::kDegraded;
    return LatencyVerdict::kDegraded;
  }
  return LatencyVerdict::kNone;
}

void ReplicaHealth::Eject(const OutlierConfig& config, SimTime now) {
  ++ejection_count_;
  int multiplier = std::min(ejection_count_, config.max_ejection_backoff);
  status_ = HealthStatus::kEjected;
  ejected_until_ = now + config.base_ejection_time * multiplier;
  consecutive_failures_ = 0;
  latency_strikes_ = 0;
}

void ReplicaHealth::BeginRecovery() {
  if (status_ != HealthStatus::kEjected) return;
  status_ = HealthStatus::kRecovering;
}

void ReplicaHealth::Reset() {
  status_ = HealthStatus::kHealthy;
  consecutive_failures_ = 0;
  latency_strikes_ = 0;
  ejection_count_ = 0;
  recovery_successes_ = 0;
  ejected_until_ = 0;
}

}  // namespace skywalker
