// Shared dispatch engine under every load-balancer stack (DESIGN.md §5).
//
// The paper's local-placement machinery — per-replica probe state, the FCFS
// request queue, the 100 ms heartbeat probe loop (§4.1), and the three
// pushing disciplines of §3.3 — is policy-agnostic: the baselines of §5.1
// (RR/LL/CH/SGL) and SkyWalker's regional balancer (§3.1) differ only in
// *which* available replica they pick and in what happens when no local
// replica can take the queue head. This engine implements the shared half
// exactly once:
//
//  * PushMode availability (IsAvailable):
//      kBlind                — route immediately on arrival;
//      kSelectiveOutstanding — cap LB-tracked in-flight per replica (SP-O);
//      kSelectivePending     — push only to replicas whose last probe saw an
//                              empty pending queue (SP-P, the paper's
//                              proposal), with an optimistic push-slack bound
//                              between probes (DESIGN.md §5.3).
//  * The FCFS queue with head-of-line blocking and queue-wait statistics.
//  * The probe loop: LB -> replica (read the ProbePayload) -> LB round trips
//    every probe_interval.
//  * Dispatch mechanics: outcome assembly, response-path latency (including
//    the extra origin-LB hop for forwarded-in requests), and completion
//    accounting.
//  * The resilience control plane (DESIGN.md §10): a per-replica passive
//    health state machine (src/routing/health.h) driven by request timeouts,
//    probe misses, and latency-outlier detection against the fleet median,
//    with bounded max-ejection fraction and half-open recovery. Entirely
//    inert unless DispatchConfig::outlier.enabled.
//
// Placement policy plugs in through ReplicaSelector::SelectReplica over a
// CandidateView; the cross-region half of a balancer (peer probing,
// forwarding, stickiness, overload advertisement — src/core) plugs in
// through the HostCallbacks struct — a documented, narrow surface where
// every hook has a neutral default (a default-constructed HostCallbacks is
// a purely local balancer).
//
// Replica state lives in a flat vector with an id -> index side map, so the
// per-dispatch hot path (availability scans, outstanding updates) is O(1)
// amortized instead of O(log n) map walks.
//
// Selection is indexed (ISSUE 10): the engine maintains a gen-stamped lazy
// min-heap over (EffectiveLoad, position) plus incremental available/ejected
// counters, refreshed at every state mutation point (dispatch, completion,
// probe response, health transition, config swap). LeastLoadedAvailable,
// AnyAvailable, AvailableCount, and EjectedCount are O(log R) amortized /
// O(1) instead of O(R) scans, with tie-breaking fixed to the lowest replica
// position so decisions are provably identical to the retained linear scan
// (the debug-mode differential oracle, see set_verify_selection).

#ifndef SKYWALKER_ROUTING_DISPATCH_ENGINE_H_
#define SKYWALKER_ROUTING_DISPATCH_ENGINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/routing/health.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

// Pushing disciplines analysed in §3.3.
enum class PushMode {
  kBlind,
  kSelectiveOutstanding,
  kSelectivePending,
};

// Engine knobs shared by every balancer; policy-specific knobs stay in the
// owning stack's config (LbConfig / SkyWalkerConfig). This struct is the
// `dispatch` half of a RuntimeConfig snapshot (src/core/runtime_config.h)
// and can be swapped mid-run via DispatchEngine::ApplyConfig.
struct DispatchConfig {
  PushMode push_mode = PushMode::kBlind;

  // Heartbeat probe period (paper §4.1 uses 100 ms).
  SimDuration probe_interval = Milliseconds(100);

  // SP-O: fixed cap on outstanding requests per replica.
  int max_outstanding_per_replica = 24;

  // SP-P: optimistic pushes allowed per replica between two probes. Bounds
  // burst overshoot caused by probe staleness (DESIGN.md §5.3) while still
  // letting an empty continuous batch fill within one probe window.
  int push_slack = 32;

  // Free-block-aware routing gate (ISSUE 4): a probed replica whose last
  // snapshot shows fewer than this fraction of its KV blocks free is
  // treated as unavailable, on top of the push-mode test. 0 disables (the
  // seed behavior); kBlind never probes, so the gate cannot affect it.
  double min_free_block_fraction = 0.0;

  // Preemption-aware selective pushing (ISSUE 5): least-loaded scans score
  // a replica as outstanding + penalty * (preemptions observed between its
  // last two probes), so replicas thrashing their KV pool lose ties — and,
  // at higher penalties, whole requests — to calm ones. The delta rides
  // the probe payload; 0 disables (seed behavior). kBlind never probes, so
  // the penalty cannot affect it.
  double preemption_penalty = 0.0;

  // Passive outlier detection + request/probe timeouts (DESIGN.md §10).
  // Disabled by default: every resilience code path is gated on
  // outlier.enabled, keeping default-config runs byte-identical to the
  // pre-resilience engine.
  OutlierConfig outlier;

  // Per-step batch composition pushed to every managed replica (ISSUE 8).
  // Only applied when manage_composition is true — the balancer layer then
  // owns the knob and AttachReplica/ApplyConfig propagate `composition` to
  // the engines, making it reswappable and ablatable from RuntimeConfig.
  // False leaves each replica's own configuration untouched.
  bool manage_composition = false;
  BatchCompositionConfig composition;

  // Debug oracle (ISSUE 10): every LeastLoadedAvailable answer is checked
  // against the retained linear scan (fatal on divergence). Config-level so
  // whole fleets — including sharded multi-threaded runs — can flip it on in
  // tests; far too slow for benchmarks.
  bool verify_selection = false;
};

// Engine-tracked state for one managed replica, refreshed by the probe loop.
struct ReplicaState {
  Replica* replica = nullptr;
  int outstanding = 0;        // LB-tracked in-flight (pushed, not completed).
  // Decoded payload of the last heartbeat probe (one construction site on
  // the replica — Replica::Probe — and this one decode site).
  ProbePayload probed;
  int pushes_since_probe = 0;
  bool probed_once = false;
  // Passive health state machine (src/routing/health.h). Stays kHealthy
  // forever when outlier detection is disabled.
  ReplicaHealth health;
  // Probe-miss detection: every probe sent carries epoch = ++probe_epoch_sent
  // and the response records it; a timeout whose epoch was never received is
  // a miss. Tracked unconditionally (cheap), acted on only when enabled.
  int64_t probe_epoch_sent = 0;
  int64_t probe_epoch_received = 0;
  // Latency-sample count at the moment of the last ejection: a recovering
  // replica only exits half-open on evidence newer than this.
  int64_t latency_samples_at_ejection = 0;

  // Free-block fraction from the last probe; 1 when never probed or the
  // replica reports no block budget.
  double ProbedFreeBlockFraction() const {
    if (!probed_once || probed.total_blocks <= 0) {
      return 1.0;
    }
    return static_cast<double>(probed.free_blocks) /
           static_cast<double>(probed.total_blocks);
  }
};

// One FCFS-queued request. `lb_arrival` is stamped by Enqueue.
// `forwarded_in` marks a request another region offloaded here (terminal:
// it must be placed locally; its response path hops back through the
// origin LB).
struct Queued {
  Request req;
  RequestCallbacks callbacks;
  SimTime lb_arrival = 0;
  bool forwarded_in = false;
  RegionId origin_lb_region = kInvalidRegion;
};

// What a host's queue-head hooks tell the engine to do with the head.
enum class HeadAction {
  kPlaceLocal,  // Proceed to local placement via the selector.
  kTaken,       // Host consumed the request (moved it out); pop and
                // continue with the next queue head.
  kStall,       // Stop dispatching; the head stays queued.
};

// The cross-region half of a balancer (src/core) plugs into the engine
// through these hooks. Every member has a neutral default when null, so a
// default-constructed HostCallbacks is a purely local balancer; adding a
// hook is a change to this struct and its call site, nothing else.
struct HostCallbacks {
  // Gate on every dispatch iteration (e.g. LB health). Null = always true.
  std::function<bool()> should_dispatch;

  // Pre-placement intercept for the queue head (e.g. sticky remote
  // affinity). kTaken means the hook moved the request out of `head`.
  // Null = kPlaceLocal.
  std::function<HeadAction(Queued& head)> on_queue_head;

  // Local placement failed for `head` (no available replica accepted by
  // the selector). The hook may consume it (cross-region forwarding) by
  // moving it out and returning kTaken; kStall keeps it queued.
  // kPlaceLocal is treated as kStall. Null = kStall.
  std::function<HeadAction(Queued& head)> on_unplaced;

  // A request was committed to a local replica (record placement in
  // policy state, refresh last-local-availability, ...). Null = no-op.
  std::function<void(const Queued& queued, ReplicaId replica_id)>
      on_local_dispatch;

  // Probe-loop extension points: start of a probe tick (before replica
  // probes go out), after replica probes were sent (peer probing), and
  // each time a replica probe response lands (before the engine's
  // TryDispatch). Null = no-op.
  std::function<void()> on_probe_tick;
  std::function<void()> on_after_replica_probes;
  std::function<void()> on_replica_probe_result;
};

class DispatchEngine;

// Read-only window over the engine's replicas that a selector sees: indexed
// iteration in attach order, id lookup, and the engine's push-mode
// availability test. Also carries the least-loaded scans that several
// policies share as their fallback.
class CandidateView {
 public:
  explicit CandidateView(const DispatchEngine* engine) : engine_(engine) {}

  size_t size() const;
  const ReplicaState& operator[](size_t index) const;
  const ReplicaState* Find(ReplicaId id) const;

  // Pushing-discipline availability test (§3.3), delegated to the engine.
  bool IsAvailable(const ReplicaState& state) const;
  bool IsAvailable(ReplicaId id) const;

  // Load score the least-loaded selection minimizes: outstanding, plus the
  // configured penalty per recently-probed preemption, plus the degraded
  // penalty for replicas the health machine has deprioritized (the soft
  // priority tier of DESIGN.md §10). With the penalties at their default 0
  // and health disabled this is exactly the outstanding count (ties
  // resolved by scan order, as ever).
  double EffectiveLoad(const ReplicaState& state) const;

  // Lowest-EffectiveLoad *available* replica, or kInvalidReplica.
  ReplicaId LeastLoadedAvailable() const;

  // Least-outstanding among `candidates` (already filtered for availability
  // by the caller, e.g. a trie match); kInvalidReplica when none is known.
  ReplicaId LeastLoadedAmong(const std::vector<int32_t>& candidates) const;

 private:
  const DispatchEngine* engine_;
};

// Placement policy: chooses a replica for the queue head, or kInvalidReplica
// to keep it queued. Implementations must only return available replicas
// (per CandidateView::IsAvailable). A non-invalid return commits the
// dispatch, so selectors may update their routing state (trie/ring/counters)
// before returning.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  virtual ReplicaId SelectReplica(const Queued& queued,
                                  const CandidateView& candidates) = 0;

  // Registry lifecycle notifications (keep rings/tries in sync).
  virtual void OnReplicaAttached(Replica* /*replica*/) {}
  virtual void OnReplicaDetached(ReplicaId /*replica_id*/) {}
};

// The policy-agnostic dispatch machinery. One instance per balancer.
class DispatchEngine {
 public:
  struct Stats {
    int64_t received = 0;
    int64_t dispatched = 0;
    int64_t completed = 0;
    int64_t probes_sent = 0;
    int64_t max_queue_len = 0;
    Distribution queue_wait_sec;  // Time spent in the FCFS queue.
    // Resilience counters (all zero unless outlier detection is enabled).
    int64_t request_timeouts = 0;   // Dispatched, never answered in time.
    int64_t probe_misses = 0;       // Heartbeats that timed out.
    int64_t ejections = 0;          // Transitions into kEjected.
    int64_t recoveries = 0;         // kRecovering -> kHealthy confirmations.
    int64_t late_completions = 0;   // Replies landing after their timeout.
  };

  // `selector` is borrowed and must outlive the engine. `callbacks` hooks
  // may capture the owning balancer; null members take their neutral
  // defaults.
  DispatchEngine(Simulator* sim, Network* net, RegionId region,
                 const DispatchConfig& config, ReplicaSelector* selector,
                 HostCallbacks callbacks = {});
  ~DispatchEngine();

  DispatchEngine(const DispatchEngine&) = delete;
  DispatchEngine& operator=(const DispatchEngine&) = delete;

  // --- replica registry ---
  void AttachReplica(Replica* replica);
  bool DetachReplica(ReplicaId replica_id);

  const std::vector<ReplicaState>& replicas() const { return replicas_; }
  size_t num_replicas() const { return replicas_.size(); }
  ReplicaState* FindReplica(ReplicaId id);
  const ReplicaState* FindReplica(ReplicaId id) const;

  // --- probe loop ---
  // Starts the heartbeat probe loop when the configuration needs one
  // (selective pushing probes for load; outlier detection probes for
  // liveness even under kBlind).
  void Start();
  void Stop();
  // Clears probe freshness and per-replica health so a restarted loop
  // re-establishes availability (LB recovery).
  void ResetProbeState();

  // --- runtime config (DESIGN.md §10) ---
  // Swaps the engine onto a new knob snapshot mid-run: push mode, probe
  // interval (takes effect at the next tick), slack, gates, and the outlier
  // machinery can all change without dropping queue or replica state.
  void ApplyConfig(const DispatchConfig& next);

  // --- request path ---
  // Admits a request into the FCFS queue (stamping its arrival time) and
  // dispatches as far as possible.
  void Enqueue(Queued queued);
  // Dispatches queue-head requests while a policy target exists (FCFS
  // head-of-line blocking otherwise).
  void TryDispatch();
  // Errors out every queued request (LB failure); returns how many.
  int64_t FlushQueueWithError();

  // --- availability (§3.3 + §10) ---
  bool IsAvailable(const ReplicaState& state) const;
  bool IsAvailable(ReplicaId id) const;
  // The load score selection minimizes (see CandidateView::EffectiveLoad).
  double EffectiveLoadOf(const ReplicaState& state) const;
  // O(1) reads of the incrementally maintained availability counters.
  bool AnyAvailable() const { return available_count_ > 0; }
  int AvailableCount() const { return available_count_; }
  std::vector<ReplicaId> AvailableReplicas() const;

  // Replicas currently in kEjected (max-ejection-fraction accounting).
  int EjectedCount() const { return ejected_count_; }

  // --- indexed selection (ISSUE 10) ---
  // Lowest-EffectiveLoad available replica via the selection index,
  // tie-broken by lowest position (attach order) — provably the same
  // decision as the linear scan. O(log R) amortized.
  ReplicaId LeastLoadedAvailable() const;
  // The retained linear scan — the differential oracle the index is
  // verified against (property test + verify mode below).
  ReplicaId LeastLoadedAvailableLinear() const;
  // Rebuilds the index from scratch. Only needed after out-of-band
  // mutations of ReplicaState through the mutable FindReplica (tests);
  // every engine-internal mutation path refreshes the index itself.
  void RefreshSelectionIndex() { RebuildSelectionIndex(); }
  // Re-indexes a single replica after an out-of-band ReplicaState mutation
  // — the O(log R) alternative to RefreshSelectionIndex when the caller
  // knows exactly which replica changed (tests, microbenchmarks).
  void NoteReplicaMutated(ReplicaId id);
  // Debug-mode differential oracle: when on, every indexed query is
  // cross-checked against the linear scan and CHECK-fails on divergence.
  void set_verify_selection(bool on) { verify_selection_ = on; }

  // Per-engine selection counters for the timing sidecar (never part of
  // deterministic results): indexed queries answered and index entries
  // (re)built — the denominators of the O(log R)-vs-O(R) claim.
  int64_t selection_queries() const { return selection_queries_; }
  int64_t index_touches() const { return index_touches_; }

  // Current LB-tracked outstanding per replica (imbalance metrics).
  std::vector<int> OutstandingSnapshot() const;

  size_t queue_size() const { return queue_.size(); }
  const Stats& stats() const { return stats_; }
  const DispatchConfig& config() const { return config_; }
  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }
  RegionId region() const { return region_; }

 private:
  // Shared per-dispatch context: outcome + client callbacks, plus the
  // timeout guard flags (all reads/writes happen on this engine's shard).
  struct DispatchCtx {
    RequestOutcome outcome;
    RequestCallbacks callbacks;
    bool finished = false;   // Completion accounted (timeout must no-op).
    bool timed_out = false;  // Timeout fired (completion must no-op).
  };

  // Commits `queued` to `replica_id`: bookkeeping, outcome assembly,
  // response-path latency, network round trips, completion accounting.
  void DispatchTo(Queued queued, ReplicaId replica_id);
  void ProbeAll();
  // One probe response landing at the LB: refresh the replica's probed
  // snapshot + index entry, then dispatch. Shared verbatim by the
  // per-replica and batched fan-out paths so they cannot diverge.
  void ApplyProbeResponse(ReplicaId replica_id, int64_t epoch,
                          const ProbePayload& payload);
  // Latency-outlier pass over the fleet, run at each probe tick when
  // enabled: expire ejections into half-open, compare probed decode-latency
  // EWMAs against the fleet median, apply verdicts under the ejection clamp.
  void EvaluateOutliers();
  void RecordDequeue(SimTime lb_arrival);

  bool ProbeLoopNeeded() const {
    return config_.push_mode != PushMode::kBlind || config_.outlier.enabled;
  }

  // Health bookkeeping entry points (no-ops when outlier detection is off).
  void NoteReplicaSuccess(ReplicaState& state);
  void NoteReplicaFailure(ReplicaState& state);
  // `latency_outlier` distinguishes the two ejection causes in traces.
  void EjectReplica(ReplicaState& state, bool latency_outlier = false);

  // --- selection index internals (ISSUE 10) ---
  // One lazily invalidated heap candidate: the replica at `pos` had
  // EffectiveLoad `load` when stamp_[pos] was `stamp`. A stamp mismatch
  // means the replica mutated since and the entry is dead weight.
  struct HeapEntry {
    double load;
    uint32_t pos;
    uint32_t stamp;
  };
  static bool EntryGreater(const HeapEntry& a, const HeapEntry& b) {
    if (a.load != b.load) {
      return a.load > b.load;
    }
    return a.pos > b.pos;  // Min-heap tie-break: lowest position wins.
  }

  // Re-derives availability/ejection bits, counters, and (when available)
  // a fresh heap entry for the replica at `pos`. Must run after *every*
  // mutation that can change IsAvailable or EffectiveLoad.
  void TouchReplica(size_t pos);
  void TouchReplica(ReplicaState& state) {
    TouchReplica(static_cast<size_t>(&state - replicas_.data()));
  }
  void RebuildSelectionIndex();
  // Drops dead entries once the heap outgrows the live set; cached loads
  // are recomputed but bit-identical (pure function of unchanged state).
  void CompactSelectionHeap() const;

  Simulator* sim_;
  Network* net_;
  RegionId region_;
  DispatchConfig config_;
  ReplicaSelector* selector_;
  HostCallbacks callbacks_;

  // Flat registry: hot-path scans iterate `replicas_`; `index_` maps
  // ReplicaId -> position (swap-remove keeps it dense on detach).
  std::vector<ReplicaState> replicas_;
  std::unordered_map<ReplicaId, size_t> index_;

  std::deque<Queued> queue_;
  std::unique_ptr<PeriodicTask> probe_task_;
  bool started_ = false;
  Stats stats_;

  // Selection index (ISSUE 10). The heap is mutable because const queries
  // pop stale tops and may compact; both are pure bookkeeping — the set of
  // live (load, pos) candidates they expose never changes.
  mutable std::vector<HeapEntry> heap_;
  std::vector<uint32_t> stamp_;     // Per-position generation stamps.
  std::vector<uint8_t> avail_bit_;  // Cached IsAvailable per position.
  std::vector<uint8_t> ejected_bit_;
  int available_count_ = 0;
  int ejected_count_ = 0;
  bool verify_selection_ = false;
  mutable int64_t selection_queries_ = 0;
  int64_t index_touches_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_ROUTING_DISPATCH_ENGINE_H_
