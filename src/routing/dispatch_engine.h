// Shared dispatch engine under every load-balancer stack (DESIGN.md §5).
//
// The paper's local-placement machinery — per-replica probe state, the FCFS
// request queue, the 100 ms heartbeat probe loop (§4.1), and the three
// pushing disciplines of §3.3 — is policy-agnostic: the baselines of §5.1
// (RR/LL/CH/SGL) and SkyWalker's regional balancer (§3.1) differ only in
// *which* available replica they pick and in what happens when no local
// replica can take the queue head. This engine implements the shared half
// exactly once:
//
//  * PushMode availability (IsAvailable):
//      kBlind                — route immediately on arrival;
//      kSelectiveOutstanding — cap LB-tracked in-flight per replica (SP-O);
//      kSelectivePending     — push only to replicas whose last probe saw an
//                              empty pending queue (SP-P, the paper's
//                              proposal), with an optimistic push-slack bound
//                              between probes (DESIGN.md §5.3).
//  * The FCFS queue with head-of-line blocking and queue-wait statistics.
//  * The probe loop: LB -> replica (read pending count + admission headroom)
//    -> LB round trips every probe_interval.
//  * Dispatch mechanics: outcome assembly, response-path latency (including
//    the extra origin-LB hop for forwarded-in requests), and completion
//    accounting.
//
// Placement policy plugs in through ReplicaSelector::SelectReplica over a
// CandidateView; the cross-region half of a balancer (peer probing,
// forwarding, stickiness, overload advertisement — src/core) plugs in
// through DispatchEngine::Host hooks.
//
// Replica state lives in a flat vector with an id -> index side map, so the
// per-dispatch hot path (availability scans, outstanding updates) is O(1)
// amortized instead of O(log n) map walks.

#ifndef SKYWALKER_ROUTING_DISPATCH_ENGINE_H_
#define SKYWALKER_ROUTING_DISPATCH_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

// Pushing disciplines analysed in §3.3.
enum class PushMode {
  kBlind,
  kSelectiveOutstanding,
  kSelectivePending,
};

// Engine knobs shared by every balancer; policy-specific knobs stay in the
// owning stack's config (LbConfig / SkyWalkerConfig).
struct DispatchConfig {
  PushMode push_mode = PushMode::kBlind;

  // Heartbeat probe period (paper §4.1 uses 100 ms).
  SimDuration probe_interval = Milliseconds(100);

  // SP-O: fixed cap on outstanding requests per replica.
  int max_outstanding_per_replica = 24;

  // SP-P: optimistic pushes allowed per replica between two probes. Bounds
  // burst overshoot caused by probe staleness (DESIGN.md §5.3) while still
  // letting an empty continuous batch fill within one probe window.
  int push_slack = 32;

  // Free-block-aware routing gate (ISSUE 4): a probed replica whose last
  // snapshot shows fewer than this fraction of its KV blocks free is
  // treated as unavailable, on top of the push-mode test. 0 disables (the
  // seed behavior); kBlind never probes, so the gate cannot affect it.
  double min_free_block_fraction = 0.0;

  // Preemption-aware selective pushing (ISSUE 5): least-loaded scans score
  // a replica as outstanding + penalty * (preemptions observed between its
  // last two probes), so replicas thrashing their KV pool lose ties — and,
  // at higher penalties, whole requests — to calm ones. The counters ride
  // the existing probe snapshot; 0 disables (seed behavior). kBlind never
  // probes, so the penalty cannot affect it.
  double preemption_penalty = 0.0;
};

// Engine-tracked state for one managed replica, refreshed by the probe loop.
struct ReplicaState {
  Replica* replica = nullptr;
  int outstanding = 0;        // LB-tracked in-flight (pushed, not completed).
  // Full payload of the last probe: the pending count plus the paged-KV
  // headroom signals (free/total blocks, fragmentation, preemption
  // counters — see Replica::LoadSnapshot).
  Replica::LoadSnapshot probed;
  // Preemptions the replica reported between its last two probes — the
  // "recent churn" signal preemption-aware pushing scores on. 0 until two
  // probes have landed.
  int64_t recent_preemptions = 0;
  int pushes_since_probe = 0;
  bool probed_once = false;
  bool healthy = true;

  // Free-block fraction from the last probe; 1 when never probed or the
  // replica reports no block budget.
  double ProbedFreeBlockFraction() const {
    if (!probed_once || probed.total_blocks <= 0) {
      return 1.0;
    }
    return static_cast<double>(probed.free_blocks) /
           static_cast<double>(probed.total_blocks);
  }
};

// One FCFS-queued request. `lb_arrival` is stamped by Enqueue.
// `forwarded_in` marks a request another region offloaded here (terminal:
// it must be placed locally; its response path hops back through the
// origin LB).
struct Queued {
  Request req;
  RequestCallbacks callbacks;
  SimTime lb_arrival = 0;
  bool forwarded_in = false;
  RegionId origin_lb_region = kInvalidRegion;
};

class DispatchEngine;

// Read-only window over the engine's replicas that a selector sees: indexed
// iteration in attach order, id lookup, and the engine's push-mode
// availability test. Also carries the least-loaded scans that several
// policies share as their fallback.
class CandidateView {
 public:
  explicit CandidateView(const DispatchEngine* engine) : engine_(engine) {}

  size_t size() const;
  const ReplicaState& operator[](size_t index) const;
  const ReplicaState* Find(ReplicaId id) const;

  // Pushing-discipline availability test (§3.3), delegated to the engine.
  bool IsAvailable(const ReplicaState& state) const;
  bool IsAvailable(ReplicaId id) const;

  // Load score the least-loaded scans minimize: outstanding, plus the
  // configured penalty per recently-probed preemption. With the penalty at
  // its default 0 this is exactly the outstanding count (ties resolved by
  // scan order, as ever).
  double EffectiveLoad(const ReplicaState& state) const;

  // Lowest-EffectiveLoad *available* replica, or kInvalidReplica.
  ReplicaId LeastLoadedAvailable() const;

  // Least-outstanding among `candidates` (already filtered for availability
  // by the caller, e.g. a trie match); kInvalidReplica when none is known.
  ReplicaId LeastLoadedAmong(const std::vector<int32_t>& candidates) const;

 private:
  const DispatchEngine* engine_;
};

// Placement policy: chooses a replica for the queue head, or kInvalidReplica
// to keep it queued. Implementations must only return available replicas
// (per CandidateView::IsAvailable). A non-invalid return commits the
// dispatch, so selectors may update their routing state (trie/ring/counters)
// before returning.
class ReplicaSelector {
 public:
  virtual ~ReplicaSelector() = default;

  virtual ReplicaId SelectReplica(const Queued& queued,
                                  const CandidateView& candidates) = 0;

  // Registry lifecycle notifications (keep rings/tries in sync).
  virtual void OnReplicaAttached(Replica* /*replica*/) {}
  virtual void OnReplicaDetached(ReplicaId /*replica_id*/) {}
};

// The policy-agnostic dispatch machinery. One instance per balancer.
class DispatchEngine {
 public:
  struct Stats {
    int64_t received = 0;
    int64_t dispatched = 0;
    int64_t completed = 0;
    int64_t probes_sent = 0;
    int64_t max_queue_len = 0;
    Distribution queue_wait_sec;  // Time spent in the FCFS queue.
  };

  // Hooks for the cross-region half of a balancer (src/core). Every hook has
  // a neutral default, so purely local balancers pass host == nullptr.
  class Host {
   public:
    enum class HeadAction {
      kPlaceLocal,  // Proceed to local placement via the selector.
      kTaken,       // Host consumed the request (moved it out); pop and
                    // continue with the next queue head.
      kStall,       // Stop dispatching; the head stays queued.
    };

    virtual ~Host() = default;

    // Gate on every dispatch iteration (e.g. LB health).
    virtual bool ShouldDispatch() const { return true; }

    // Pre-placement intercept for the queue head (e.g. sticky remote
    // affinity). kTaken means the host moved the request out of `head`.
    virtual HeadAction OnQueueHead(Queued& /*head*/) {
      return HeadAction::kPlaceLocal;
    }

    // Local placement failed for `head` (no available replica accepted by
    // the selector). The host may consume it (cross-region forwarding) by
    // moving it out and returning kTaken; kStall keeps it queued.
    // kPlaceLocal is treated as kStall.
    virtual HeadAction OnUnplaced(Queued& /*head*/) {
      return HeadAction::kStall;
    }

    // A request was committed to a local replica (record placement in
    // policy state, refresh last-local-availability, ...).
    virtual void OnLocalDispatch(const Queued& /*queued*/,
                                 ReplicaId /*replica_id*/) {}

    // Probe-loop extension points: start of a probe tick (before replica
    // probes go out), after replica probes were sent (peer probing), and
    // each time a replica probe response lands (before the engine's
    // TryDispatch).
    virtual void OnProbeTick() {}
    virtual void OnAfterReplicaProbes() {}
    virtual void OnReplicaProbeResult() {}
  };

  // `selector` and `host` are borrowed and must outlive the engine
  // (`host` may be nullptr for purely local balancers).
  DispatchEngine(Simulator* sim, Network* net, RegionId region,
                 const DispatchConfig& config, ReplicaSelector* selector,
                 Host* host = nullptr);
  ~DispatchEngine();

  DispatchEngine(const DispatchEngine&) = delete;
  DispatchEngine& operator=(const DispatchEngine&) = delete;

  // --- replica registry ---
  void AttachReplica(Replica* replica);
  bool DetachReplica(ReplicaId replica_id);

  const std::vector<ReplicaState>& replicas() const { return replicas_; }
  size_t num_replicas() const { return replicas_.size(); }
  ReplicaState* FindReplica(ReplicaId id);
  const ReplicaState* FindReplica(ReplicaId id) const;

  // --- probe loop ---
  // Starts the heartbeat probe loop (no-op for kBlind: nothing to probe).
  void Start();
  void Stop();
  // Clears probe freshness so a restarted loop re-establishes availability
  // (LB recovery).
  void ResetProbeState();

  // --- request path ---
  // Admits a request into the FCFS queue (stamping its arrival time) and
  // dispatches as far as possible.
  void Enqueue(Queued queued);
  // Dispatches queue-head requests while a policy target exists (FCFS
  // head-of-line blocking otherwise).
  void TryDispatch();
  // Errors out every queued request (LB failure); returns how many.
  int64_t FlushQueueWithError();

  // --- availability (§3.3) ---
  bool IsAvailable(const ReplicaState& state) const;
  bool IsAvailable(ReplicaId id) const;
  bool AnyAvailable() const;
  int AvailableCount() const;
  std::vector<ReplicaId> AvailableReplicas() const;

  // Current LB-tracked outstanding per replica (imbalance metrics).
  std::vector<int> OutstandingSnapshot() const;

  size_t queue_size() const { return queue_.size(); }
  const Stats& stats() const { return stats_; }
  const DispatchConfig& config() const { return config_; }
  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }
  RegionId region() const { return region_; }

 private:
  // Commits `queued` to `replica_id`: bookkeeping, outcome assembly,
  // response-path latency, network round trips, completion accounting.
  void DispatchTo(Queued queued, ReplicaId replica_id);
  void ProbeAll();
  void RecordDequeue(SimTime lb_arrival);

  Simulator* sim_;
  Network* net_;
  RegionId region_;
  DispatchConfig config_;
  ReplicaSelector* selector_;
  Host* host_;

  // Flat registry: hot-path scans iterate `replicas_`; `index_` maps
  // ReplicaId -> position (swap-remove keeps it dense on detach).
  std::vector<ReplicaState> replicas_;
  std::unordered_map<ReplicaId, size_t> index_;

  std::deque<Queued> queue_;
  std::unique_ptr<PeriodicTask> probe_task_;
  Stats stats_;
};

}  // namespace skywalker

#endif  // SKYWALKER_ROUTING_DISPATCH_ENGINE_H_
