#include "src/routing/dispatch_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace skywalker {

// --- CandidateView -----------------------------------------------------

size_t CandidateView::size() const { return engine_->num_replicas(); }

const ReplicaState& CandidateView::operator[](size_t index) const {
  return engine_->replicas()[index];
}

const ReplicaState* CandidateView::Find(ReplicaId id) const {
  return engine_->FindReplica(id);
}

bool CandidateView::IsAvailable(const ReplicaState& state) const {
  return engine_->IsAvailable(state);
}

bool CandidateView::IsAvailable(ReplicaId id) const {
  return engine_->IsAvailable(id);
}

double CandidateView::EffectiveLoad(const ReplicaState& state) const {
  return engine_->EffectiveLoadOf(state);
}

ReplicaId CandidateView::LeastLoadedAvailable() const {
  return engine_->LeastLoadedAvailable();
}

ReplicaId CandidateView::LeastLoadedAmong(
    const std::vector<int32_t>& candidates) const {
  ReplicaId best = kInvalidReplica;
  double best_load = std::numeric_limits<double>::infinity();
  for (int32_t candidate : candidates) {
    const ReplicaState* state = Find(candidate);
    if (state == nullptr) {
      continue;
    }
    const double load = EffectiveLoad(*state);
    if (load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  return best;
}

// --- DispatchEngine ----------------------------------------------------

DispatchEngine::DispatchEngine(Simulator* sim, Network* net, RegionId region,
                               const DispatchConfig& config,
                               ReplicaSelector* selector,
                               HostCallbacks callbacks)
    : sim_(sim),
      net_(net),
      region_(region),
      config_(config),
      selector_(selector),
      callbacks_(std::move(callbacks)) {
  SKYWALKER_CHECK(selector_ != nullptr) << "engine needs a replica selector";
  verify_selection_ = config_.verify_selection;
  probe_task_ = std::make_unique<PeriodicTask>(sim_, config_.probe_interval,
                                               [this] { ProbeAll(); });
  RebuildSelectionIndex();
}

DispatchEngine::~DispatchEngine() = default;

void DispatchEngine::AttachReplica(Replica* replica) {
  if (index_.count(replica->id()) > 0) {
    return;
  }
  ReplicaState state;
  state.replica = replica;
  index_.emplace(replica->id(), replicas_.size());
  replicas_.push_back(std::move(state));
  if (config_.manage_composition) {
    replica->ApplyComposition(config_.composition);
  }
  RebuildSelectionIndex();
  selector_->OnReplicaAttached(replica);
  TryDispatch();
}

bool DispatchEngine::DetachReplica(ReplicaId replica_id) {
  auto it = index_.find(replica_id);
  if (it == index_.end()) {
    return false;
  }
  size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != replicas_.size()) {
    replicas_[pos] = std::move(replicas_.back());
    index_[replicas_[pos].replica->id()] = pos;
  }
  replicas_.pop_back();
  RebuildSelectionIndex();  // Swap-remove moved a position; stamps reset.
  selector_->OnReplicaDetached(replica_id);
  return true;
}

ReplicaState* DispatchEngine::FindReplica(ReplicaId id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &replicas_[it->second];
}

const ReplicaState* DispatchEngine::FindReplica(ReplicaId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &replicas_[it->second];
}

void DispatchEngine::Start() {
  started_ = true;
  if (ProbeLoopNeeded()) {
    probe_task_->StartWithDelay(0);
  }
}

void DispatchEngine::Stop() {
  started_ = false;
  probe_task_->Stop();
}

void DispatchEngine::ResetProbeState() {
  for (ReplicaState& state : replicas_) {
    state.probed_once = false;
    state.pushes_since_probe = 0;
    state.probed.preemption_delta = 0;
    state.health.Reset();
    state.latency_samples_at_ejection = 0;
  }
  RebuildSelectionIndex();
}

void DispatchEngine::ApplyConfig(const DispatchConfig& next) {
  config_ = next;
  verify_selection_ = config_.verify_selection;
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kConfigSwap, region_,
              kInvalidReplica, -1, static_cast<int64_t>(config_.push_mode));
  }
  if (config_.manage_composition) {
    // Push the step-composition snapshot to every managed replica; each
    // picks it up at its next step plan (in-flight steps are untouched).
    for (ReplicaState& state : replicas_) {
      state.replica->ApplyComposition(config_.composition);
    }
  }
  // The probe task picks the new interval up at its next reschedule; the
  // loop itself starts or stops with the need for one (a kBlind engine
  // gaining outlier detection must begin probing for liveness).
  probe_task_->set_interval(config_.probe_interval);
  if (started_) {
    if (ProbeLoopNeeded() && !probe_task_->running()) {
      probe_task_->StartWithDelay(0);
    } else if (!ProbeLoopNeeded() && probe_task_->running()) {
      probe_task_->Stop();
    }
  }
  // Config participates in every availability/load computation, so the
  // whole index is stale after a swap.
  RebuildSelectionIndex();
  // Availability may have widened (e.g. push slack raised, gate lowered).
  TryDispatch();
}

double DispatchEngine::EffectiveLoadOf(const ReplicaState& state) const {
  // With penalty == 0 this is the exact outstanding count (int -> double is
  // lossless here), so the strict-less comparisons keep the seed tie-breaks.
  double load = static_cast<double>(state.outstanding) +
                config_.preemption_penalty *
                    static_cast<double>(state.probed.preemption_delta);
  // Soft failover priority (DESIGN.md §10): degraded and half-open replicas
  // lose least-loaded selection to healthy ones until the healthy tier is
  // this many requests deeper. Unreachable while health is disabled (status
  // stays kHealthy).
  const HealthStatus status = state.health.status();
  if (status == HealthStatus::kDegraded ||
      status == HealthStatus::kRecovering) {
    load += config_.outlier.degraded_load_penalty;
  }
  return load;
}

bool DispatchEngine::IsAvailable(const ReplicaState& state) const {
  const HealthStatus status = state.health.status();
  if (!CanServe(status)) {
    return false;
  }
  // Half-open (DESIGN.md §10): a recovering replica takes one request at a
  // time until a success confirms it.
  if (status == HealthStatus::kRecovering && state.outstanding > 0) {
    return false;
  }
  // Free-block-aware gate (ISSUE 4): route around replicas whose probed KV
  // headroom is below the floor, whatever the push mode decides. Inactive
  // at the default 0 and before the first probe.
  if (config_.min_free_block_fraction > 0.0 &&
      state.ProbedFreeBlockFraction() < config_.min_free_block_fraction) {
    return false;
  }
  switch (config_.push_mode) {
    case PushMode::kBlind:
      return true;
    case PushMode::kSelectiveOutstanding:
      return state.outstanding < config_.max_outstanding_per_replica;
    case PushMode::kSelectivePending:
      // Fresh engines have not probed yet; treat as available so cold starts
      // make progress (the first probe lands within one interval).
      if (!state.probed_once) {
        return state.pushes_since_probe < config_.push_slack;
      }
      // Selective pushing by pending requests (§3.3): a replica is full when
      // its continuous batch cannot admit more work, i.e. it has pending
      // requests. Optimistic pushes between probes are bounded by push_slack
      // (DESIGN.md §5.3).
      return state.probed.pending == 0 &&
             state.pushes_since_probe < config_.push_slack;
  }
  return false;
}

bool DispatchEngine::IsAvailable(ReplicaId id) const {
  const ReplicaState* state = FindReplica(id);
  return state != nullptr && IsAvailable(*state);
}

// --- selection index (ISSUE 10) ------------------------------------------

void DispatchEngine::TouchReplica(size_t pos) {
  ReplicaState& state = replicas_[pos];
  const bool avail = IsAvailable(state);
  const bool ejected = state.health.status() == HealthStatus::kEjected;
  available_count_ += (avail ? 1 : 0) - (avail_bit_[pos] ? 1 : 0);
  ejected_count_ += (ejected ? 1 : 0) - (ejected_bit_[pos] ? 1 : 0);
  avail_bit_[pos] = avail ? 1 : 0;
  ejected_bit_[pos] = ejected ? 1 : 0;
  ++stamp_[pos];
  ++index_touches_;
  if (avail) {
    heap_.push_back({EffectiveLoadOf(state), static_cast<uint32_t>(pos),
                     stamp_[pos]});
    std::push_heap(heap_.begin(), heap_.end(), EntryGreater);
    if (heap_.size() > 4 * replicas_.size() + 64) {
      CompactSelectionHeap();
    }
  }
}

void DispatchEngine::RebuildSelectionIndex() {
  const size_t n = replicas_.size();
  stamp_.assign(n, 0);
  avail_bit_.assign(n, 0);
  ejected_bit_.assign(n, 0);
  available_count_ = 0;
  ejected_count_ = 0;
  heap_.clear();
  for (size_t pos = 0; pos < n; ++pos) {
    const ReplicaState& state = replicas_[pos];
    if (state.health.status() == HealthStatus::kEjected) {
      ejected_bit_[pos] = 1;
      ++ejected_count_;
    }
    if (IsAvailable(state)) {
      avail_bit_[pos] = 1;
      ++available_count_;
      heap_.push_back({EffectiveLoadOf(state), static_cast<uint32_t>(pos), 0});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), EntryGreater);
  ++index_touches_;
}

void DispatchEngine::NoteReplicaMutated(ReplicaId id) {
  auto it = index_.find(id);
  SKYWALKER_CHECK(it != index_.end()) << "unknown replica " << id;
  TouchReplica(it->second);
}

void DispatchEngine::CompactSelectionHeap() const {
  heap_.clear();
  for (size_t pos = 0; pos < replicas_.size(); ++pos) {
    if (avail_bit_[pos]) {
      heap_.push_back({EffectiveLoadOf(replicas_[pos]),
                       static_cast<uint32_t>(pos), stamp_[pos]});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), EntryGreater);
}

ReplicaId DispatchEngine::LeastLoadedAvailable() const {
  ++selection_queries_;
  ReplicaId best = kInvalidReplica;
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.front();
    if (top.pos < replicas_.size() && stamp_[top.pos] == top.stamp &&
        avail_bit_[top.pos]) {
      best = replicas_[top.pos].replica->id();
      break;
    }
    std::pop_heap(heap_.begin(), heap_.end(), EntryGreater);
    heap_.pop_back();
  }
  if (verify_selection_) {
    const ReplicaId oracle = LeastLoadedAvailableLinear();
    SKYWALKER_CHECK(best == oracle)
        << "selection index diverged from linear scan: indexed=" << best
        << " oracle=" << oracle;
  }
  return best;
}

ReplicaId DispatchEngine::LeastLoadedAvailableLinear() const {
  ReplicaId best = kInvalidReplica;
  double best_load = std::numeric_limits<double>::infinity();
  for (const ReplicaState& state : replicas_) {
    if (!IsAvailable(state)) {
      continue;
    }
    const double load = EffectiveLoadOf(state);
    if (load < best_load) {
      best = state.replica->id();
      best_load = load;
    }
  }
  return best;
}

std::vector<ReplicaId> DispatchEngine::AvailableReplicas() const {
  std::vector<ReplicaId> out;
  for (const ReplicaState& state : replicas_) {
    if (IsAvailable(state)) {
      out.push_back(state.replica->id());
    }
  }
  return out;
}

std::vector<int> DispatchEngine::OutstandingSnapshot() const {
  std::vector<int> out;
  out.reserve(replicas_.size());
  for (const ReplicaState& state : replicas_) {
    out.push_back(state.outstanding);
  }
  return out;
}

void DispatchEngine::Enqueue(Queued queued) {
  ++stats_.received;
  queued.lb_arrival = sim_->now();
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, queued.lb_arrival, TraceEventType::kLbEnqueue, region_,
              kInvalidReplica, static_cast<int64_t>(queued.req.id),
              static_cast<int64_t>(queue_.size()) + 1,
              queued.forwarded_in ? 1 : 0);
  }
  queue_.push_back(std::move(queued));
  stats_.max_queue_len = std::max<int64_t>(
      stats_.max_queue_len, static_cast<int64_t>(queue_.size()));
  TryDispatch();
}

void DispatchEngine::RecordDequeue(SimTime lb_arrival) {
  stats_.queue_wait_sec.Add(ToSeconds(sim_->now() - lb_arrival));
}

void DispatchEngine::TryDispatch() {
  while ((!callbacks_.should_dispatch || callbacks_.should_dispatch()) &&
         !queue_.empty()) {
    Queued& head = queue_.front();
    const SimTime lb_arrival = head.lb_arrival;
    if (callbacks_.on_queue_head) {
      HeadAction action = callbacks_.on_queue_head(head);
      if (action == HeadAction::kStall) {
        return;
      }
      if (action == HeadAction::kTaken) {
        RecordDequeue(lb_arrival);
        queue_.pop_front();
        continue;
      }
    }
    ReplicaId target = selector_->SelectReplica(head, CandidateView(this));
    if (target != kInvalidReplica) {
      if (Tracer* t = sim_->tracer()) {
        // Route decision with the candidate scores the selector saw: one
        // record per candidate (availability + effective load), then the
        // decision itself. Emitted only on a committed placement so a
        // head-of-line-blocked queue does not flood the trace.
        const CandidateView view(this);
        const int64_t rid = static_cast<int64_t>(head.req.id);
        for (const ReplicaState& state : replicas_) {
          EmitTrace(t, sim_->now(), TraceEventType::kRouteCandidate, region_,
                    state.replica->id(), rid, IsAvailable(state) ? 1 : 0, 0,
                    view.EffectiveLoad(state));
        }
        EmitTrace(t, sim_->now(), TraceEventType::kRouteDecision, region_,
                  target, rid, static_cast<int64_t>(queue_.size()), 0,
                  static_cast<double>(sim_->now() - head.lb_arrival));
      }
      Queued queued = std::move(head);
      queue_.pop_front();
      DispatchTo(std::move(queued), target);
      continue;
    }
    if (callbacks_.on_unplaced &&
        callbacks_.on_unplaced(head) == HeadAction::kTaken) {
      RecordDequeue(lb_arrival);
      queue_.pop_front();
      continue;
    }
    return;  // FCFS head-of-line: wait for capacity.
  }
}

void DispatchEngine::NoteReplicaSuccess(ReplicaState& state) {
  if (!config_.outlier.enabled) {
    return;
  }
  if (state.health.RecordSuccess()) {
    ++stats_.recoveries;
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kRecover, region_,
                state.replica->id(), -1);
    }
  }
}

void DispatchEngine::NoteReplicaFailure(ReplicaState& state) {
  if (!config_.outlier.enabled) {
    return;
  }
  if (state.health.RecordFailure(config_.outlier) &&
      EjectionAllowed(EjectedCount(), replicas_.size(),
                      config_.outlier.max_ejection_fraction)) {
    EjectReplica(state);
  }
}

void DispatchEngine::EjectReplica(ReplicaState& state, bool latency_outlier) {
  state.health.Eject(config_.outlier, sim_->now());
  state.latency_samples_at_ejection = state.probed.latency_samples;
  TouchReplica(state);
  ++stats_.ejections;
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kEject, region_,
              state.replica->id(), -1, latency_outlier ? 1 : 0);
  }
}

void DispatchEngine::DispatchTo(Queued queued, ReplicaId replica_id) {
  ReplicaState* state = FindReplica(replica_id);
  SKYWALKER_CHECK(state != nullptr) << "dispatch to unknown replica";
  Replica* replica = state->replica;
  ++state->outstanding;
  ++state->pushes_since_probe;
  TouchReplica(*state);
  ++stats_.dispatched;
  RecordDequeue(queued.lb_arrival);
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kDispatch, region_, replica_id,
              static_cast<int64_t>(queued.req.id), 0, 0,
              static_cast<double>(sim_->now() - queued.lb_arrival));
  }
  if (callbacks_.on_local_dispatch) {
    callbacks_.on_local_dispatch(queued, replica_id);
  }

  const RegionId client_region = queued.req.client_region;
  const RegionId replica_region = replica->region();
  // Streamed responses travel replica -> LB -> client; a forwarded-in
  // request additionally hops back through its origin LB.
  SimDuration response_latency = net_->Latency(replica_region, region_);
  int hops = 1;
  if (queued.forwarded_in) {
    response_latency += net_->Latency(region_, queued.origin_lb_region) +
                        net_->Latency(queued.origin_lb_region, client_region);
    hops = 2;
  } else {
    response_latency += net_->Latency(region_, client_region);
  }

  auto ctx = std::make_shared<DispatchCtx>();
  ctx->callbacks = std::move(queued.callbacks);
  RequestOutcome& outcome = ctx->outcome;
  outcome.id = queued.req.id;
  outcome.user_id = queued.req.user_id;
  outcome.client_region = client_region;
  outcome.served_region = replica_region;
  outcome.replica = replica_id;
  outcome.submit_time = queued.req.submit_time;
  outcome.prompt_tokens = queued.req.prompt_tokens();
  outcome.output_tokens = queued.req.output_tokens();
  outcome.hops = hops;
  outcome.forwarded = queued.forwarded_in;

  const bool guarded =
      config_.outlier.enabled && config_.outlier.request_timeout > 0;
  Simulator* replica_sim = net_->SimForRegion(replica_region);
  Replica::Handlers handlers;
  if (!guarded) {
    // The handlers below run on the *replica's* shard (the replica invokes
    // them), so times come from the replica-side clock and client callbacks
    // travel back through the network; in plain mode both reduce to the seed
    // behavior (one simulator, Deliver == ScheduleAfter).
    handlers.on_first_token = [this, ctx, response_latency, replica_sim,
                               replica_region, client_region](
                                  const Request& /*req*/, int64_t cached) {
      ctx->outcome.cached_prompt_tokens = cached;
      ctx->outcome.first_token_time = replica_sim->now() + response_latency;
      if (ctx->callbacks.on_first_token) {
        net_->Deliver(replica_region, client_region, response_latency,
                      [ctx] { ctx->callbacks.on_first_token(ctx->outcome); });
      }
    };
    handlers.on_complete = [this, ctx, response_latency, replica_sim,
                            replica_region, client_region,
                            replica_id](const Request& /*req*/,
                                        int64_t cached) {
      ctx->outcome.cached_prompt_tokens = cached;
      ctx->outcome.completion_time = replica_sim->now() + response_latency;
      if (ctx->callbacks.on_complete) {
        net_->Deliver(replica_region, client_region, response_latency,
                      [ctx] { ctx->callbacks.on_complete(ctx->outcome); });
      }
      // LB-side accounting flows back over the replica->LB hop only.
      net_->Send(ctx->outcome.served_region, region_, [this, replica_id] {
        ReplicaState* rs = FindReplica(replica_id);
        if (rs != nullptr && rs->outstanding > 0) {
          --rs->outstanding;
          TouchReplica(*rs);
        }
        ++stats_.completed;
        TryDispatch();
      });
    };
  } else {
    // Guarded dispatch (DESIGN.md §10): the response path becomes two hops —
    // replica -> LB (timeout adjudication on this engine's shard) ->
    // client — so the outstanding slot, the health machine, and the timeout
    // flags are only ever touched on the LB shard. A request unanswered
    // within request_timeout is failed here (on_error sends the client
    // elsewhere) and its eventual completion, if any, is suppressed.
    const SimDuration first_hop = net_->Latency(replica_region, region_);
    const SimDuration remainder = response_latency - first_hop;

    sim_->ScheduleAfter(
        config_.outlier.request_timeout,
        [this, ctx, replica_id, client_region] {
          if (ctx->finished || ctx->timed_out) {
            return;
          }
          ctx->timed_out = true;
          ++stats_.request_timeouts;
          if (Tracer* t = sim_->tracer()) {
            EmitTrace(t, sim_->now(), TraceEventType::kTimeout, region_,
                      replica_id, static_cast<int64_t>(ctx->outcome.id));
          }
          ReplicaState* rs = FindReplica(replica_id);
          if (rs != nullptr) {
            if (rs->outstanding > 0) {
              --rs->outstanding;
            }
            NoteReplicaFailure(*rs);
            TouchReplica(*rs);
          }
          if (ctx->callbacks.on_error) {
            net_->Deliver(region_, client_region,
                          net_->Latency(region_, client_region),
                          [ctx] { ctx->callbacks.on_error(); });
          }
          TryDispatch();
        });

    handlers.on_first_token = [this, ctx, response_latency, first_hop,
                               remainder, replica_sim, replica_region,
                               client_region](const Request& /*req*/,
                                              int64_t cached) {
      ctx->outcome.cached_prompt_tokens = cached;
      ctx->outcome.first_token_time = replica_sim->now() + response_latency;
      net_->Deliver(replica_region, region_, first_hop,
                    [this, ctx, remainder, client_region] {
                      if (ctx->timed_out) {
                        return;  // Client already saw the error.
                      }
                      if (ctx->callbacks.on_first_token) {
                        net_->Deliver(region_, client_region, remainder,
                                      [ctx] {
                                        ctx->callbacks.on_first_token(
                                            ctx->outcome);
                                      });
                      }
                    });
    };
    handlers.on_complete = [this, ctx, response_latency, first_hop, remainder,
                            replica_sim, replica_region, client_region,
                            replica_id](const Request& /*req*/,
                                        int64_t cached) {
      ctx->outcome.cached_prompt_tokens = cached;
      ctx->outcome.completion_time = replica_sim->now() + response_latency;
      net_->Deliver(
          replica_region, region_, first_hop,
          [this, ctx, remainder, replica_id, client_region] {
            if (ctx->timed_out) {
              ++stats_.late_completions;
              return;
            }
            ctx->finished = true;
            ReplicaState* rs = FindReplica(replica_id);
            if (rs != nullptr) {
              if (rs->outstanding > 0) {
                --rs->outstanding;
              }
              NoteReplicaSuccess(*rs);
              TouchReplica(*rs);
            }
            ++stats_.completed;
            if (ctx->callbacks.on_complete) {
              net_->Deliver(region_, client_region, remainder, [ctx] {
                ctx->callbacks.on_complete(ctx->outcome);
              });
            }
            TryDispatch();
          });
    };
  }

  net_->Send(region_, replica_region,
             [replica, req = std::move(queued.req),
              handlers = std::move(handlers)]() mutable {
               replica->Enqueue(std::move(req), std::move(handlers));
             });
}

void DispatchEngine::EvaluateOutliers() {
  const OutlierConfig& outlier = config_.outlier;
  // Expired ejections go half-open: eligible for exactly one request, and
  // for latency re-evaluation once fresh samples arrive.
  for (ReplicaState& state : replicas_) {
    if (state.health.EjectionExpired(sim_->now())) {
      state.health.BeginRecovery();
      TouchReplica(state);
    }
  }
  if (outlier.latency_factor <= 0.0) {
    return;
  }
  // Fleet median of the probed decode-latency EWMAs, over replicas that are
  // reporting enough samples to mean something.
  std::vector<double> ewmas;
  ewmas.reserve(replicas_.size());
  for (const ReplicaState& state : replicas_) {
    if (state.probed_once && state.probed.latency_samples >= 3 &&
        CanServe(state.health.status())) {
      ewmas.push_back(state.probed.ewma_decode_us_per_token);
    }
  }
  if (static_cast<int>(ewmas.size()) < outlier.min_latency_hosts) {
    return;
  }
  std::nth_element(ewmas.begin(), ewmas.begin() + ewmas.size() / 2,
                   ewmas.end());
  const double median = ewmas[ewmas.size() / 2];
  if (median <= 0.0) {
    return;
  }
  for (ReplicaState& state : replicas_) {
    if (!state.probed_once || state.probed.latency_samples < 3) {
      continue;
    }
    const bool is_outlier =
        state.probed.ewma_decode_us_per_token > outlier.latency_factor * median;
    const bool fresh_sample =
        state.probed.latency_samples > state.latency_samples_at_ejection;
    switch (state.health.EvaluateLatency(outlier, is_outlier, fresh_sample)) {
      case LatencyVerdict::kWantsEject:
        if (EjectionAllowed(EjectedCount(), replicas_.size(),
                            outlier.max_ejection_fraction)) {
          EjectReplica(state, /*latency_outlier=*/true);
        }
        break;
      case LatencyVerdict::kRecovered:
        ++stats_.recoveries;
        if (Tracer* t = sim_->tracer()) {
          EmitTrace(t, sim_->now(), TraceEventType::kRecover, region_,
                    state.replica->id(), -1, /*a=*/1);
        }
        break;
      case LatencyVerdict::kDegraded:
      case LatencyVerdict::kNone:
        break;
    }
    // EvaluateLatency may have moved the health machine (degraded,
    // recovered, ejected); refresh this replica's index entry either way.
    TouchReplica(state);
  }
}

void DispatchEngine::ApplyProbeResponse(ReplicaId replica_id, int64_t epoch,
                                        const ProbePayload& payload) {
  ReplicaState* rs = FindReplica(replica_id);
  if (rs == nullptr) {
    return;
  }
  rs->probe_epoch_received = std::max(rs->probe_epoch_received, epoch);
  rs->probed = payload;
  rs->pushes_since_probe = 0;
  rs->probed_once = true;
  if (config_.outlier.enabled) {
    rs->health.RecordProbeSuccess();
  }
  TouchReplica(*rs);
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kProbe, region_, replica_id, -1,
              payload.version, payload.pending,
              payload.ewma_decode_us_per_token);
  }
  if (callbacks_.on_replica_probe_result) {
    callbacks_.on_replica_probe_result();
  }
  TryDispatch();
}

void DispatchEngine::ProbeAll() {
  if (callbacks_.on_probe_tick) {
    callbacks_.on_probe_tick();
  }
  if (config_.outlier.enabled) {
    EvaluateOutliers();
  }
  // Batched fan-out (ISSUE 10): with jitter-free links and the outlier
  // machinery off (its per-replica timeout events interleave sender keys),
  // the per-replica probe round trips coalesce into one event per
  // destination region in each direction. This is byte-identical to the
  // per-replica path: within one destination the per-replica work runs in
  // attach order, exactly the order the individual events would have
  // executed (they carry consecutive sender keys at one timestamp, which
  // admit no interleaving event); across destinations ordering is governed
  // by (time, origin region) both ways; and per-origin response keys are
  // assigned in the same order, so downstream ordering is unchanged.
  // Message counters advance per logical message (SendBatch).
  if (!config_.outlier.enabled && net_->ZeroJitter() && !replicas_.empty()) {
    struct ProbeTarget {
      Replica* replica;
      int64_t epoch;
    };
    struct ProbeReply {
      ReplicaId id;
      int64_t epoch;
      ProbePayload payload;
    };
    // Group targets by destination region in first-appearance (attach)
    // order; almost always a single group (engines manage local replicas).
    std::vector<std::pair<RegionId, std::vector<ProbeTarget>>> groups;
    for (ReplicaState& state : replicas_) {
      ++stats_.probes_sent;
      const int64_t epoch = ++state.probe_epoch_sent;
      const RegionId dst = state.replica->region();
      std::vector<ProbeTarget>* bucket = nullptr;
      for (auto& group : groups) {
        if (group.first == dst) {
          bucket = &group.second;
          break;
        }
      }
      if (bucket == nullptr) {
        groups.emplace_back(dst, std::vector<ProbeTarget>());
        bucket = &groups.back().second;
        bucket->reserve(replicas_.size());
      }
      bucket->push_back(ProbeTarget{state.replica, epoch});
    }
    for (auto& group : groups) {
      const RegionId dst = group.first;
      // The count must be read before the capture moves the vector out
      // (argument evaluation order is unspecified).
      const int fanout = static_cast<int>(group.second.size());
      net_->SendBatch(
          region_, dst, fanout,
          [this, dst, targets = std::move(group.second)] {
            // A non-serving (crashed) replica never answers; with the
            // outlier machinery off its silence is simply ignored, as in
            // the per-replica path.
            std::vector<ProbeReply> replies;
            replies.reserve(targets.size());
            for (const ProbeTarget& target : targets) {
              if (!target.replica->serving()) {
                continue;
              }
              replies.push_back(ProbeReply{target.replica->id(), target.epoch,
                                           target.replica->Probe()});
            }
            if (replies.empty()) {
              return;
            }
            const int respondents = static_cast<int>(replies.size());
            net_->SendBatch(dst, region_, respondents,
                            [this, replies = std::move(replies)] {
                              for (const ProbeReply& reply : replies) {
                                ApplyProbeResponse(reply.id, reply.epoch,
                                                   reply.payload);
                              }
                            });
          });
    }
    if (callbacks_.on_after_replica_probes) {
      callbacks_.on_after_replica_probes();
    }
    return;
  }
  for (ReplicaState& state : replicas_) {
    ++stats_.probes_sent;
    Replica* replica = state.replica;
    RegionId replica_region = replica->region();
    ReplicaId replica_id = replica->id();
    const int64_t epoch = ++state.probe_epoch_sent;
    // Probe round trip: LB -> replica (read the probe payload) -> LB. A
    // non-serving (crashed) replica never answers; the probe-timeout event
    // below converts its silence into a health failure.
    net_->Send(region_, replica_region, [this, replica, replica_id,
                                         replica_region, epoch] {
      if (!replica->serving()) {
        return;
      }
      ProbePayload payload = replica->Probe();
      net_->Send(replica_region, region_, [this, replica_id, payload, epoch] {
        ApplyProbeResponse(replica_id, epoch, payload);
      });
    });
    if (config_.outlier.enabled && config_.outlier.probe_timeout > 0) {
      sim_->ScheduleAfter(config_.outlier.probe_timeout,
                          [this, replica_id, epoch] {
                            ReplicaState* rs = FindReplica(replica_id);
                            if (rs == nullptr ||
                                rs->probe_epoch_received >= epoch) {
                              return;
                            }
                            ++stats_.probe_misses;
                            NoteReplicaFailure(*rs);
                            TouchReplica(*rs);
                          });
    }
  }
  if (callbacks_.on_after_replica_probes) {
    callbacks_.on_after_replica_probes();
  }
}

int64_t DispatchEngine::FlushQueueWithError() {
  std::deque<Queued> drained;
  drained.swap(queue_);
  for (Queued& queued : drained) {
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kLbError, region_,
                kInvalidReplica, static_cast<int64_t>(queued.req.id));
    }
    if (queued.callbacks.on_error) {
      queued.callbacks.on_error();
    }
  }
  return static_cast<int64_t>(drained.size());
}

}  // namespace skywalker
