#include "src/routing/dispatch_engine.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

// --- CandidateView -----------------------------------------------------

size_t CandidateView::size() const { return engine_->num_replicas(); }

const ReplicaState& CandidateView::operator[](size_t index) const {
  return engine_->replicas()[index];
}

const ReplicaState* CandidateView::Find(ReplicaId id) const {
  return engine_->FindReplica(id);
}

bool CandidateView::IsAvailable(const ReplicaState& state) const {
  return engine_->IsAvailable(state);
}

bool CandidateView::IsAvailable(ReplicaId id) const {
  return engine_->IsAvailable(id);
}

double CandidateView::EffectiveLoad(const ReplicaState& state) const {
  // With penalty == 0 this is the exact outstanding count (int -> double is
  // lossless here), so the strict-less scan keeps the seed tie-breaks.
  return static_cast<double>(state.outstanding) +
         engine_->config().preemption_penalty *
             static_cast<double>(state.recent_preemptions);
}

ReplicaId CandidateView::LeastLoadedAvailable() const {
  ReplicaId best = kInvalidReplica;
  double best_load = std::numeric_limits<double>::infinity();
  for (const ReplicaState& state : engine_->replicas()) {
    if (!IsAvailable(state)) {
      continue;
    }
    const double load = EffectiveLoad(state);
    if (load < best_load) {
      best = state.replica->id();
      best_load = load;
    }
  }
  return best;
}

ReplicaId CandidateView::LeastLoadedAmong(
    const std::vector<int32_t>& candidates) const {
  ReplicaId best = kInvalidReplica;
  double best_load = std::numeric_limits<double>::infinity();
  for (int32_t candidate : candidates) {
    const ReplicaState* state = Find(candidate);
    if (state == nullptr) {
      continue;
    }
    const double load = EffectiveLoad(*state);
    if (load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  return best;
}

// --- DispatchEngine ----------------------------------------------------

DispatchEngine::DispatchEngine(Simulator* sim, Network* net, RegionId region,
                               const DispatchConfig& config,
                               ReplicaSelector* selector, Host* host)
    : sim_(sim),
      net_(net),
      region_(region),
      config_(config),
      selector_(selector),
      host_(host) {
  SKYWALKER_CHECK(selector_ != nullptr) << "engine needs a replica selector";
  probe_task_ = std::make_unique<PeriodicTask>(sim_, config_.probe_interval,
                                               [this] { ProbeAll(); });
}

DispatchEngine::~DispatchEngine() = default;

void DispatchEngine::AttachReplica(Replica* replica) {
  if (index_.count(replica->id()) > 0) {
    return;
  }
  ReplicaState state;
  state.replica = replica;
  index_.emplace(replica->id(), replicas_.size());
  replicas_.push_back(state);
  selector_->OnReplicaAttached(replica);
  TryDispatch();
}

bool DispatchEngine::DetachReplica(ReplicaId replica_id) {
  auto it = index_.find(replica_id);
  if (it == index_.end()) {
    return false;
  }
  size_t pos = it->second;
  index_.erase(it);
  if (pos + 1 != replicas_.size()) {
    replicas_[pos] = std::move(replicas_.back());
    index_[replicas_[pos].replica->id()] = pos;
  }
  replicas_.pop_back();
  selector_->OnReplicaDetached(replica_id);
  return true;
}

ReplicaState* DispatchEngine::FindReplica(ReplicaId id) {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &replicas_[it->second];
}

const ReplicaState* DispatchEngine::FindReplica(ReplicaId id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &replicas_[it->second];
}

void DispatchEngine::Start() {
  if (config_.push_mode != PushMode::kBlind) {
    probe_task_->StartWithDelay(0);
  }
}

void DispatchEngine::Stop() { probe_task_->Stop(); }

void DispatchEngine::ResetProbeState() {
  for (ReplicaState& state : replicas_) {
    state.probed_once = false;
    state.pushes_since_probe = 0;
    state.recent_preemptions = 0;
  }
}

bool DispatchEngine::IsAvailable(const ReplicaState& state) const {
  if (!state.healthy) {
    return false;
  }
  // Free-block-aware gate (ISSUE 4): route around replicas whose probed KV
  // headroom is below the floor, whatever the push mode decides. Inactive
  // at the default 0 and before the first probe.
  if (config_.min_free_block_fraction > 0.0 &&
      state.ProbedFreeBlockFraction() < config_.min_free_block_fraction) {
    return false;
  }
  switch (config_.push_mode) {
    case PushMode::kBlind:
      return true;
    case PushMode::kSelectiveOutstanding:
      return state.outstanding < config_.max_outstanding_per_replica;
    case PushMode::kSelectivePending:
      // Fresh engines have not probed yet; treat as available so cold starts
      // make progress (the first probe lands within one interval).
      if (!state.probed_once) {
        return state.pushes_since_probe < config_.push_slack;
      }
      // Selective pushing by pending requests (§3.3): a replica is full when
      // its continuous batch cannot admit more work, i.e. it has pending
      // requests. Optimistic pushes between probes are bounded by push_slack
      // (DESIGN.md §5.3).
      return state.probed.pending == 0 &&
             state.pushes_since_probe < config_.push_slack;
  }
  return false;
}

bool DispatchEngine::IsAvailable(ReplicaId id) const {
  const ReplicaState* state = FindReplica(id);
  return state != nullptr && IsAvailable(*state);
}

bool DispatchEngine::AnyAvailable() const {
  for (const ReplicaState& state : replicas_) {
    if (IsAvailable(state)) {
      return true;
    }
  }
  return false;
}

int DispatchEngine::AvailableCount() const {
  int count = 0;
  for (const ReplicaState& state : replicas_) {
    if (IsAvailable(state)) {
      ++count;
    }
  }
  return count;
}

std::vector<ReplicaId> DispatchEngine::AvailableReplicas() const {
  std::vector<ReplicaId> out;
  for (const ReplicaState& state : replicas_) {
    if (IsAvailable(state)) {
      out.push_back(state.replica->id());
    }
  }
  return out;
}

std::vector<int> DispatchEngine::OutstandingSnapshot() const {
  std::vector<int> out;
  out.reserve(replicas_.size());
  for (const ReplicaState& state : replicas_) {
    out.push_back(state.outstanding);
  }
  return out;
}

void DispatchEngine::Enqueue(Queued queued) {
  ++stats_.received;
  queued.lb_arrival = sim_->now();
  queue_.push_back(std::move(queued));
  stats_.max_queue_len = std::max<int64_t>(
      stats_.max_queue_len, static_cast<int64_t>(queue_.size()));
  TryDispatch();
}

void DispatchEngine::RecordDequeue(SimTime lb_arrival) {
  stats_.queue_wait_sec.Add(ToSeconds(sim_->now() - lb_arrival));
}

void DispatchEngine::TryDispatch() {
  while ((host_ == nullptr || host_->ShouldDispatch()) && !queue_.empty()) {
    Queued& head = queue_.front();
    const SimTime lb_arrival = head.lb_arrival;
    if (host_ != nullptr) {
      Host::HeadAction action = host_->OnQueueHead(head);
      if (action == Host::HeadAction::kStall) {
        return;
      }
      if (action == Host::HeadAction::kTaken) {
        RecordDequeue(lb_arrival);
        queue_.pop_front();
        continue;
      }
    }
    ReplicaId target = selector_->SelectReplica(head, CandidateView(this));
    if (target != kInvalidReplica) {
      Queued queued = std::move(head);
      queue_.pop_front();
      DispatchTo(std::move(queued), target);
      continue;
    }
    if (host_ != nullptr &&
        host_->OnUnplaced(head) == Host::HeadAction::kTaken) {
      RecordDequeue(lb_arrival);
      queue_.pop_front();
      continue;
    }
    return;  // FCFS head-of-line: wait for capacity.
  }
}

void DispatchEngine::DispatchTo(Queued queued, ReplicaId replica_id) {
  ReplicaState* state = FindReplica(replica_id);
  SKYWALKER_CHECK(state != nullptr) << "dispatch to unknown replica";
  Replica* replica = state->replica;
  ++state->outstanding;
  ++state->pushes_since_probe;
  ++stats_.dispatched;
  RecordDequeue(queued.lb_arrival);
  if (host_ != nullptr) {
    host_->OnLocalDispatch(queued, replica_id);
  }

  const RegionId client_region = queued.req.client_region;
  const RegionId replica_region = replica->region();
  // Streamed responses travel replica -> LB -> client; a forwarded-in
  // request additionally hops back through its origin LB.
  SimDuration response_latency = net_->Latency(replica_region, region_);
  int hops = 1;
  if (queued.forwarded_in) {
    response_latency += net_->Latency(region_, queued.origin_lb_region) +
                        net_->Latency(queued.origin_lb_region, client_region);
    hops = 2;
  } else {
    response_latency += net_->Latency(region_, client_region);
  }

  auto outcome = std::make_shared<RequestOutcome>();
  outcome->id = queued.req.id;
  outcome->user_id = queued.req.user_id;
  outcome->client_region = client_region;
  outcome->served_region = replica_region;
  outcome->replica = replica_id;
  outcome->submit_time = queued.req.submit_time;
  outcome->prompt_tokens = queued.req.prompt_tokens();
  outcome->output_tokens = queued.req.output_tokens();
  outcome->hops = hops;
  outcome->forwarded = queued.forwarded_in;

  auto callbacks =
      std::make_shared<RequestCallbacks>(std::move(queued.callbacks));

  // The handlers below run on the *replica's* shard (the replica invokes
  // them), so times come from the replica-side clock and client callbacks
  // travel back through the network; in plain mode both reduce to the seed
  // behavior (one simulator, Deliver == ScheduleAfter).
  Simulator* replica_sim = net_->SimForRegion(replica_region);
  Replica::Handlers handlers;
  handlers.on_first_token = [this, outcome, callbacks, response_latency,
                             replica_sim, replica_region, client_region](
                                const Request& /*req*/, int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->first_token_time = replica_sim->now() + response_latency;
    if (callbacks->on_first_token) {
      net_->Deliver(replica_region, client_region, response_latency,
                    [callbacks, outcome] {
                      callbacks->on_first_token(*outcome);
                    });
    }
  };
  handlers.on_complete = [this, outcome, callbacks, response_latency,
                          replica_sim, replica_region, client_region,
                          replica_id](const Request& /*req*/,
                                      int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->completion_time = replica_sim->now() + response_latency;
    if (callbacks->on_complete) {
      net_->Deliver(replica_region, client_region, response_latency,
                    [callbacks, outcome] {
                      callbacks->on_complete(*outcome);
                    });
    }
    // LB-side accounting flows back over the replica->LB hop only.
    net_->Send(outcome->served_region, region_, [this, replica_id] {
      ReplicaState* rs = FindReplica(replica_id);
      if (rs != nullptr && rs->outstanding > 0) {
        --rs->outstanding;
      }
      ++stats_.completed;
      TryDispatch();
    });
  };

  net_->Send(region_, replica_region,
             [replica, req = std::move(queued.req),
              handlers = std::move(handlers)]() mutable {
               replica->Enqueue(std::move(req), std::move(handlers));
             });
}

void DispatchEngine::ProbeAll() {
  if (host_ != nullptr) {
    host_->OnProbeTick();
  }
  for (const ReplicaState& state : replicas_) {
    if (!state.healthy) {
      continue;
    }
    ++stats_.probes_sent;
    Replica* replica = state.replica;
    RegionId replica_region = replica->region();
    ReplicaId replica_id = replica->id();
    // Probe round trip: LB -> replica (read the load snapshot) -> LB.
    net_->Send(region_, replica_region, [this, replica, replica_id,
                                         replica_region] {
      Replica::LoadSnapshot snapshot = replica->Snapshot();
      net_->Send(replica_region, region_,
                 [this, replica_id, snapshot] {
                   ReplicaState* rs = FindReplica(replica_id);
                   if (rs == nullptr) {
                     return;
                   }
                   // Preemption delta between consecutive probes — the
                   // "recent churn" the penalty scores on (0 until the
                   // second probe; the counter is cumulative).
                   rs->recent_preemptions =
                       rs->probed_once
                           ? snapshot.preemptions - rs->probed.preemptions
                           : 0;
                   rs->probed = snapshot;
                   rs->pushes_since_probe = 0;
                   rs->probed_once = true;
                   if (host_ != nullptr) {
                     host_->OnReplicaProbeResult();
                   }
                   TryDispatch();
                 });
    });
  }
  if (host_ != nullptr) {
    host_->OnAfterReplicaProbes();
  }
}

int64_t DispatchEngine::FlushQueueWithError() {
  std::deque<Queued> drained;
  drained.swap(queue_);
  for (Queued& queued : drained) {
    if (queued.callbacks.on_error) {
      queued.callbacks.on_error();
    }
  }
  return static_cast<int64_t>(drained.size());
}

}  // namespace skywalker
