// Health vocabulary shared by the dispatch engine, the controller, and DNS
// (DESIGN.md §10): a five-state per-target health status, the HealthSource
// interface that replaces the scattered boolean `healthy()` hooks, and the
// passive outlier-ejection state machine the engine runs per replica
// (consecutive-failure and latency-outlier ejection with a bounded
// max-ejection fraction, cf. Envoy's upstream outlier detection).
//
// State machine (ReplicaHealth):
//
//   kHealthy ──latency outlier──▶ kDegraded ──strikes/failures──▶ kEjected
//      ▲  ▲                          │  ▲                             │
//      │  └────verdict clears────────┘  │                     ejection time
//      │                                │                       elapses
//      └──half-open success── kRecovering ◀─────────────────────────┘
//                                │
//                 any failure / still an outlier: re-eject
//                 (ejection time grows with the ejection count)
//
// kDegraded targets stay eligible but are load-deprioritized (the engine
// adds OutlierConfig::degraded_load_penalty to their effective load), which
// makes {healthy} ≻ {degraded, recovering} ≻ {ejected} a per-region priority
// failover ladder; cross-region forwarding is the tier below that.
// kRecovering targets are half-open: the engine admits at most one
// outstanding request until a success (or a clean latency verdict on a fresh
// sample) confirms recovery.
//
// The machine itself is time- and fleet-agnostic on purpose: callers pass in
// `now`, the latency-outlier verdict, and apply the max-ejection-fraction
// clamp themselves (EjectionAllowed), which keeps every transition unit-
// testable without a simulator.

#ifndef SKYWALKER_ROUTING_HEALTH_H_
#define SKYWALKER_ROUTING_HEALTH_H_

#include <cstddef>
#include <cstdint>

#include "src/common/sim_time.h"

namespace skywalker {

enum class HealthStatus {
  kHealthy,     // Full member of the serving set.
  kDegraded,    // Eligible but load-deprioritized (suspected outlier).
  kRecovering,  // Half-open: probing its way back after an ejection.
  kEjected,     // Passively ejected; takes no traffic until the timer runs.
  kFailed,      // Administratively down (LB failure, §4.2).
};

const char* HealthStatusName(HealthStatus status);

// Whether a target in `status` may take traffic at all. The half-open
// restriction on kRecovering (one request at a time) is the caller's job.
inline bool CanServe(HealthStatus status) {
  return status != HealthStatus::kEjected && status != HealthStatus::kFailed;
}

// One authority for "can this target take traffic": the engine's
// availability test, the controller's failover detection, and DNS resolution
// all read it instead of keeping private booleans.
class HealthSource {
 public:
  virtual ~HealthSource() = default;
  virtual HealthStatus Status() const = 0;
  bool Serving() const { return CanServe(Status()); }
};

// Passive outlier-detection knobs (all inert at the defaults: `enabled`
// gates every code path, so default-config runs are byte-identical to the
// pre-resilience engine).
struct OutlierConfig {
  bool enabled = false;

  // A dispatched request unanswered for this long counts as a failure: the
  // engine reclaims its outstanding slot, reports on_error to the client
  // (which retries elsewhere), and suppresses the late completion if the
  // replica was merely slow. 0 disables timeouts even when enabled.
  SimDuration request_timeout = Seconds(30);

  // A heartbeat probe unanswered for this long counts as a failure. Must
  // comfortably exceed the probe round trip to the farthest managed replica
  // (failover can attach remote replicas). 0 disables probe-miss detection.
  SimDuration probe_timeout = Seconds(1);

  // Consecutive failures (request timeouts + probe misses) that eject.
  int consecutive_failures = 3;

  // Latency-outlier ejection: a replica whose probed EWMA decode latency
  // exceeds `latency_factor` x the fleet median collects a strike per probe
  // round; `latency_strikes_to_eject` strikes eject it. The first strike
  // degrades it (load-deprioritized). <= 0 disables latency detection.
  double latency_factor = 3.0;
  int latency_strikes_to_eject = 3;
  // Latency detection needs at least this many eligible replicas reporting
  // samples before a median is meaningful.
  int min_latency_hosts = 3;

  // At most this fraction of the fleet may be ejected at once; one ejection
  // is always allowed when the fraction is > 0 (small fleets must still be
  // able to shed their one straggler). Failures past the clamp leave the
  // replica degraded instead of ejected.
  double max_ejection_fraction = 0.5;

  // Ejection duration: base * min(ejection_count, max_ejection_backoff),
  // Envoy-style linear backoff for repeat offenders.
  SimDuration base_ejection_time = Seconds(5);
  int max_ejection_backoff = 8;

  // Added to a kDegraded replica's effective load in least-loaded scans:
  // the soft priority that makes healthy replicas win until they are this
  // many requests deep.
  double degraded_load_penalty = 8.0;
};

// Max-ejection-fraction clamp: may one more target be ejected? The first
// ejection is always allowed (fraction > 0), so a two-replica region can
// still shed its straggler.
bool EjectionAllowed(int currently_ejected, size_t fleet_size,
                     double max_ejection_fraction);

// Latency-outlier verdict for one evaluation round (see EvaluateLatency).
enum class LatencyVerdict {
  kNone,        // No state change.
  kDegraded,    // Newly degraded (first strike).
  kWantsEject,  // Strikes exhausted — eject if the clamp allows.
  kRecovered,   // Recovering target confirmed clean on a fresh sample.
};

// Per-replica passive health state machine. Pure bookkeeping: the caller
// supplies time, verdicts, and the ejection clamp.
class ReplicaHealth {
 public:
  HealthStatus status() const { return status_; }
  int consecutive_failures() const { return consecutive_failures_; }
  int latency_strikes() const { return latency_strikes_; }
  int ejection_count() const { return ejection_count_; }
  SimTime ejected_until() const { return ejected_until_; }

  // A request completed against this target. Returns true when this success
  // closes a half-open recovery (kRecovering -> kHealthy).
  bool RecordSuccess();

  // A probe response arrived: the target is reachable. Clears the
  // consecutive-failure count but does NOT confirm recovery — a latency-
  // ejected straggler answers probes just fine.
  void RecordProbeSuccess();

  // A request timeout or probe miss. Returns true when the failure warrants
  // ejection (threshold reached, or any failure while half-open); the caller
  // applies EjectionAllowed and calls Eject. Below the threshold the target
  // degrades so failover ordering already routes around it.
  bool RecordFailure(const OutlierConfig& config);

  // One latency-evaluation round. `outlier` is this round's verdict against
  // the fleet median; `fresh_sample` is whether the EWMA has incorporated a
  // completion since the last ejection (half-open evidence). Returns what
  // happened; on kWantsEject the caller applies the clamp and calls Eject.
  LatencyVerdict EvaluateLatency(const OutlierConfig& config, bool outlier,
                                 bool fresh_sample);

  // Transitions to kEjected until now + base * min(count+1, backoff cap).
  void Eject(const OutlierConfig& config, SimTime now);

  bool EjectionExpired(SimTime now) const {
    return status_ == HealthStatus::kEjected && now >= ejected_until_;
  }

  // kEjected -> kRecovering (half-open) once the ejection timer ran out.
  void BeginRecovery();

  void Reset();  // Back to kHealthy with cleared counters (LB recovery).

 private:
  HealthStatus status_ = HealthStatus::kHealthy;
  int consecutive_failures_ = 0;
  int latency_strikes_ = 0;
  int ejection_count_ = 0;
  int recovery_successes_ = 0;
  SimTime ejected_until_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_ROUTING_HEALTH_H_
