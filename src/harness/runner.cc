#include "src/harness/runner.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/harness/parallel.h"

namespace skywalker {

ShardTimingRegistry& ShardTimingRegistry::Instance() {
  static ShardTimingRegistry* registry = new ShardTimingRegistry();
  return *registry;
}

void ShardTimingRegistry::Record(CellShardTiming timing) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(timing));
}

std::vector<CellShardTiming> ShardTimingRegistry::Drain() {
  std::vector<CellShardTiming> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(records_);
  }
  std::sort(out.begin(), out.end(),
            [](const CellShardTiming& a, const CellShardTiming& b) {
              return std::tie(a.scenario, a.cell, a.shards, a.threads) <
                     std::tie(b.scenario, b.cell, b.shards, b.threads);
            });
  return out;
}

namespace {

// One planned trial: the plan plus slots for its cells' rows.
struct PlannedTrial {
  const Scenario* scenario = nullptr;
  int trial = 0;
  uint64_t seed_stream = 0;
  ScenarioPlan plan;
  std::vector<std::vector<MetricRow>> cell_rows;  // Indexed by cell.
  std::vector<double> cell_seconds;               // Indexed by cell.
};

ScenarioReport Finalize(const PlannedTrial& planned) {
  if (planned.plan.finalize != nullptr) {
    return planned.plan.finalize(planned.cell_rows);
  }
  ScenarioReport report;
  for (const auto& rows : planned.cell_rows) {
    report.rows.insert(report.rows.end(), rows.begin(), rows.end());
  }
  return report;
}

}  // namespace

std::vector<ScenarioRunResult> RunScenarios(
    const std::vector<const Scenario*>& scenarios, const RunConfig& config,
    RunTiming* timing) {
  SKYWALKER_CHECK(config.trials >= 1);
  const auto run_start = std::chrono::steady_clock::now();

  // Plan sequentially (plans are cheap); collect a flat job list.
  std::vector<PlannedTrial> planned;
  struct Job {
    size_t planned_index;
    size_t cell_index;
  };
  std::vector<Job> jobs;
  for (const Scenario* scenario : scenarios) {
    for (int trial = 0; trial < config.trials; ++trial) {
      PlannedTrial pt;
      pt.scenario = scenario;
      pt.trial = trial;
      pt.seed_stream = TrialSeedStream(config.seed, trial);
      ScenarioOptions options;
      options.seed_stream = pt.seed_stream;
      options.smoke = config.smoke;
      options.trace = config.trace && scenario->traceable;
      options.trace_dir = config.trace_dir;
      pt.plan = scenario->plan(options);
      if (!config.cell_filter.empty()) {
        // Keep only the requested labels (plan order preserved). Finalizers
        // are written against FindRow-style null guards, so derived metrics
        // over absent rows drop out instead of faulting.
        std::vector<ScenarioCell> kept;
        for (ScenarioCell& cell : pt.plan.cells) {
          for (const std::string& want : config.cell_filter) {
            if (cell.label == want) {
              kept.push_back(std::move(cell));
              break;
            }
          }
        }
        pt.plan.cells = std::move(kept);
      }
      pt.cell_rows.resize(pt.plan.cells.size());
      pt.cell_seconds.resize(pt.plan.cells.size(), 0);
      planned.push_back(std::move(pt));
      for (size_t c = 0; c < planned.back().plan.cells.size(); ++c) {
        jobs.push_back(Job{planned.size() - 1, c});
      }
    }
  }

  // Every cell owns its world and writes only its indexed slot, so the pool
  // schedule cannot affect the merged result. Per-cell wall time feeds the
  // --timing sidecar only, never the merged metrics.
  ParallelFor(jobs.size(), config.threads, [&](size_t i) {
    PlannedTrial& pt = planned[jobs[i].planned_index];
    const ScenarioCell& cell = pt.plan.cells[jobs[i].cell_index];
    const auto start = std::chrono::steady_clock::now();
    try {
      pt.cell_rows[jobs[i].cell_index] = cell.run();
    } catch (const std::exception& e) {
      throw std::runtime_error(pt.scenario->name + "/" + cell.label + ": " +
                               e.what());
    }
    pt.cell_seconds[jobs[i].cell_index] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  });

  std::vector<ScenarioRunResult> results;
  size_t planned_index = 0;
  for (const Scenario* scenario : scenarios) {
    ScenarioRunResult result;
    result.scenario = scenario;
    result.config = config;
    for (int trial = 0; trial < config.trials; ++trial) {
      PlannedTrial& pt = planned[planned_index++];
      for (double seconds : pt.cell_seconds) {
        result.cell_seconds += seconds;
        ++result.cells;
      }
      TrialResult tr;
      tr.trial = pt.trial;
      tr.seed_stream = pt.seed_stream;
      tr.report = Finalize(pt);
      result.trials.push_back(std::move(tr));
    }
    results.push_back(std::move(result));
  }
  // Always drain: records from this run must not bleed into the next
  // RunScenarios call in the same process (e.g. back-to-back tests).
  std::vector<CellShardTiming> shard_cells = ShardTimingRegistry::Instance().Drain();
  if (timing != nullptr) {
    timing->wall_seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - run_start)
                               .count();
    timing->shard_cells = std::move(shard_cells);
  }
  return results;
}

Json TimingJson(const std::vector<ScenarioRunResult>& results,
                const RunConfig& config, const RunTiming& timing) {
  Json doc = Json::Object();
  doc.Set("schema_version", 1);
  doc.Set("kind", "timing_sidecar");
  doc.Set("trials", config.trials);
  doc.Set("smoke", config.smoke);
  doc.Set("threads", config.threads);
  doc.Set("hardware_concurrency",
          static_cast<int>(std::thread::hardware_concurrency()));
  doc.Set("wall_seconds", timing.wall_seconds);
  Json scenarios = Json::Array();
  for (const ScenarioRunResult& result : results) {
    Json entry = Json::Object();
    entry.Set("scenario", result.scenario->name);
    entry.Set("cells", static_cast<int>(result.cells));
    entry.Set("cell_seconds", result.cell_seconds);
    scenarios.Append(std::move(entry));
  }
  doc.Set("scenarios", std::move(scenarios));
  // Shard-level breakdowns for cells that ran on a ShardedSimulator: busy vs
  // barrier-wait wall time per shard (the load-balance picture for the
  // conservative-lookahead windows).
  if (!timing.shard_cells.empty()) {
    Json cells = Json::Array();
    for (const CellShardTiming& cell : timing.shard_cells) {
      Json cj = Json::Object();
      cj.Set("scenario", cell.scenario);
      cj.Set("cell", cell.cell);
      cj.Set("shards", cell.shards);
      cj.Set("threads", cell.threads);
      cj.Set("wall_seconds", cell.wall_seconds);
      cj.Set("windows", static_cast<double>(cell.windows));
      Json per_shard = Json::Array();
      for (const ShardWallTime& shard : cell.per_shard) {
        Json sj = Json::Object();
        sj.Set("busy_seconds", shard.busy_seconds);
        sj.Set("barrier_seconds", shard.barrier_seconds);
        sj.Set("executed_events", static_cast<double>(shard.executed_events));
        sj.Set("mailbox_in", static_cast<double>(shard.mailbox_in));
        per_shard.Append(std::move(sj));
      }
      cj.Set("per_shard", std::move(per_shard));
      for (const auto& [key, value] : cell.extra) {
        cj.Set(key, value);
      }
      cells.Append(std::move(cj));
    }
    doc.Set("cells", std::move(cells));
  }
  return doc;
}

Json ScenarioRunJson(const ScenarioRunResult& result) {
  const Scenario& scenario = *result.scenario;
  Json doc = Json::Object();
  doc.Set("schema_version", 1);
  doc.Set("scenario", scenario.name);
  doc.Set("title", scenario.title);
  // Seeds are full 64-bit values; doubles lose the low bits above 2^53, so
  // they serialize as decimal strings to keep recorded trials reproducible.
  doc.Set("seed", std::to_string(result.config.seed));
  doc.Set("trials", result.config.trials);
  doc.Set("smoke", result.config.smoke);
  doc.Set("deterministic", scenario.deterministic);
  Json keys = Json::Array();
  for (const std::string& key : scenario.metric_keys) {
    keys.Append(key);
  }
  doc.Set("metric_keys", std::move(keys));

  Json trial_results = Json::Array();
  std::vector<std::vector<MetricRow>> per_trial_rows;
  for (const TrialResult& trial : result.trials) {
    Json tj = Json::Object();
    tj.Set("trial", trial.trial);
    tj.Set("seed_stream", std::to_string(trial.seed_stream));
    Json rows = Json::Array();
    for (const MetricRow& row : trial.report.rows) {
      rows.Append(MetricRowJson(row));
    }
    tj.Set("rows", std::move(rows));
    if (!trial.report.derived.empty()) {
      Json derived = Json::Object();
      for (const auto& [k, v] : trial.report.derived) {
        derived.Set(k, v);
      }
      tj.Set("derived", std::move(derived));
    }
    if (!trial.report.notes.empty()) {
      Json notes = Json::Array();
      for (const std::string& note : trial.report.notes) {
        notes.Append(note);
      }
      tj.Set("notes", std::move(notes));
    }
    trial_results.Append(std::move(tj));
    per_trial_rows.push_back(trial.report.rows);
  }
  doc.Set("trial_results", std::move(trial_results));

  Json summary = Json::Object();
  Json summary_rows = Json::Array();
  for (const MetricRow& row : MeanRowsByLabel(per_trial_rows)) {
    summary_rows.Append(MetricRowJson(row));
  }
  summary.Set("rows", std::move(summary_rows));
  // Mean of derived metrics across trials: reuse the row averager by
  // wrapping each trial's derived pairs in a single pseudo-row.
  std::vector<std::vector<MetricRow>> per_trial_derived;
  for (const TrialResult& trial : result.trials) {
    if (trial.report.derived.empty()) {
      continue;
    }
    MetricRow row;
    row.label = "derived";
    row.metrics = trial.report.derived;
    per_trial_derived.push_back({std::move(row)});
  }
  if (!per_trial_derived.empty()) {
    // Named: a range-for over MeanRowsByLabel(...)[0].metrics would iterate
    // a member of a destroyed temporary.
    const std::vector<MetricRow> derived_means =
        MeanRowsByLabel(per_trial_derived);
    Json derived = Json::Object();
    for (const auto& [k, v] : derived_means[0].metrics) {
      derived.Set(k, v);
    }
    summary.Set("derived", std::move(derived));
  }
  doc.Set("summary", std::move(summary));
  return doc;
}

std::string ScenarioReportText(const Scenario& scenario,
                               const TrialResult& trial) {
  std::string out = "=== " + scenario.name + ": " + scenario.title + " ===\n";
  if (!trial.report.rows.empty()) {
    // Header = label + union of metric keys in first-seen order.
    std::vector<std::string> headers = {"label"};
    for (const MetricRow& row : trial.report.rows) {
      for (const auto& [key, value] : row.metrics) {
        (void)value;
        bool seen = false;
        for (const std::string& h : headers) {
          if (h == key) {
            seen = true;
            break;
          }
        }
        if (!seen) {
          headers.push_back(key);
        }
      }
    }
    Table table(headers);
    for (const MetricRow& row : trial.report.rows) {
      std::vector<std::string> cells = {row.label};
      for (size_t i = 1; i < headers.size(); ++i) {
        const double* v = row.Find(headers[i]);
        cells.push_back(v == nullptr ? "-" : Table::Num(*v, 3));
      }
      table.AddRow(std::move(cells));
    }
    out += table.ToAscii();
  }
  if (!trial.report.derived.empty()) {
    Table derived({"derived metric", "value"});
    for (const auto& [k, v] : trial.report.derived) {
      derived.AddRow({k, Table::Num(v, 3)});
    }
    out += derived.ToAscii();
  }
  for (const std::string& note : trial.report.notes) {
    out += note;
    out.push_back('\n');
  }
  return out;
}

}  // namespace skywalker
