// Fleet-scale experiment harness (ISSUE 6): builds a SkyWalker deployment
// plus its client population on either a plain Simulator (the reference) or
// a region-sharded ShardedSimulator, and runs it to a deterministic result.
//
// Everything that makes the plain harness (src/harness/experiment.h)
// convenient is nondeterministic under sharding — the global request-id
// atomic, the shared conversation generator, the shared stagger RNG, the one
// MetricsCollector appended to from every region. This harness replaces each
// with a per-client / per-region equivalent whose output is a pure function
// of (spec, client index), then canonicalizes the merged outcome stream by
// sorting before any order-sensitive summary (distributions accumulate in
// sorted order), so results are bit-identical across shard counts, thread
// counts, and against the plain reference.

#ifndef SKYWALKER_HARNESS_FLEET_H_
#define SKYWALKER_HARNESS_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/skywalker_lb.h"
#include "src/harness/experiment.h"
#include "src/net/topology.h"
#include "src/replica/replica.h"
#include "src/sim/sharded_simulator.h"
#include "src/workload/client.h"
#include "src/workload/conversation.h"

namespace skywalker {

// A scheduled fault for the resilience scenarios (ISSUE 7). Faults are
// injected as events on the owning region's shard, keyed to that region, so
// sharded runs stay deterministic.
struct FleetFault {
  enum Kind {
    kLbFail,           // Region blackout at the LB (queue errors out).
    kLbRecover,
    kReplicaFail,      // Replica stops serving; running requests vanish.
    kReplicaRecover,
    kReplicaSlowdown,  // Gray failure: decode stretched by `factor`.
  };
  Kind kind = kLbFail;
  SimTime at = 0;
  RegionId region = 0;
  // kReplica*: index within the region's replicas; -1 = every replica
  // in the region. Ignored for LB faults.
  int replica_index = -1;
  double factor = 1.0;  // kReplicaSlowdown only.
};

// A RuntimeConfig snapshot published mid-run through the deployment's
// ConfigStore (created on demand when any update is present).
struct FleetConfigUpdate {
  SimTime at = 0;
  RuntimeConfig config;
};

// An extra client cohort arriving mid-run (flash crowd / diurnal shift).
struct FleetClientWave {
  RegionId region = 0;
  int count = 0;
  SimDuration start = 0;  // First conversations begin here (staggered 5 s).
  SimTime stop_issuing_after = kSimTimeMax;
};

struct FleetSpec {
  Topology topology = Topology::FourRegions();
  std::vector<int> replicas_per_region;
  int clients_per_region = 0;

  ReplicaConfig replica_config;
  SkyWalkerConfig lb;
  ControllerConfig controller;
  ConversationWorkloadConfig conversation =
      ConversationWorkloadConfig::WildChat();
  ClientConfig client;

  SimDuration warmup = Seconds(10);
  SimDuration measure = Seconds(60);
  // Extra simulated time after the measurement window with no new issues
  // (set client.stop_issuing_after accordingly) so in-flight and retried
  // requests settle; required for meaningful lost-forever accounting.
  SimDuration drain = 0;
  uint64_t seed = 7;

  // Resilience hooks (all empty by default — the seed fast path).
  std::vector<FleetFault> faults;
  std::vector<FleetConfigUpdate> config_updates;
  std::vector<FleetClientWave> client_waves;

  // 0: plain single-threaded Simulator (the reference). >= 1: sharded
  // simulation with that many region shards (clamped to the region count)
  // and `num_threads` workers (0 = one per shard).
  int num_shards = 0;
  int num_threads = 1;

  // Serializes every outcome into FleetResult::trace (one line per request,
  // canonical order) for bit-identity tests. Off for large benches.
  bool collect_trace = false;

  // Optional request-lifecycle tracer (ISSUE 9), installed on every shard
  // (or the plain simulator) before any actor is built. Caller-owned; must
  // outlive the run. Tracing never perturbs the simulation, and per-region
  // record streams are identical across shard/thread counts.
  Tracer* tracer = nullptr;
};

struct FleetResult {
  ExperimentResult metrics;
  // One line per completed request, sorted by (completion_time, submit_time,
  // client_region, id). Empty unless FleetSpec::collect_trace.
  std::string trace;

  uint64_t messages_sent = 0;
  uint64_t cross_region_messages = 0;
  size_t executed_events = 0;

  // Resilience accounting (ISSUE 7), summed over all clients / LBs / the
  // controller for the whole run (warmup + measure + drain).
  int64_t issued = 0;           // Client submissions (retries re-count).
  int64_t completed_total = 0;  // Client-side completions.
  int64_t client_errors = 0;    // on_error deliveries (each is retried).
  int64_t lost_forever = 0;     // issued - completed_total - client_errors.
  int64_t request_timeouts = 0;
  int64_t probe_misses = 0;
  int64_t ejections = 0;
  int64_t recoveries = 0;
  int64_t late_completions = 0;
  int64_t config_swaps = 0;
  int64_t failovers = 0;  // Controller failovers handled.

  // Wall-clock telemetry (nondeterministic; BENCH_TIMING.json only).
  double run_wall_seconds = 0;
  std::vector<ShardedSimulator::ShardTiming> shard_timing;  // Sharded only.
  uint64_t windows = 0;
  SimDuration lookahead = 0;
  int num_shards = 0;   // 0 for the plain reference.
  int num_threads = 0;
};

FleetResult RunFleetExperiment(const FleetSpec& spec);

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_FLEET_H_
