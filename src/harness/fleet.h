// Fleet-scale experiment harness (ISSUE 6): builds a SkyWalker deployment
// plus its client population on either a plain Simulator (the reference) or
// a region-sharded ShardedSimulator, and runs it to a deterministic result.
//
// Everything that makes the plain harness (src/harness/experiment.h)
// convenient is nondeterministic under sharding — the global request-id
// atomic, the shared conversation generator, the shared stagger RNG, the one
// MetricsCollector appended to from every region. This harness replaces each
// with a per-client / per-region equivalent whose output is a pure function
// of (spec, client index), then canonicalizes the merged outcome stream by
// sorting before any order-sensitive summary (distributions accumulate in
// sorted order), so results are bit-identical across shard counts, thread
// counts, and against the plain reference.

#ifndef SKYWALKER_HARNESS_FLEET_H_
#define SKYWALKER_HARNESS_FLEET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/controller.h"
#include "src/core/skywalker_lb.h"
#include "src/harness/experiment.h"
#include "src/net/topology.h"
#include "src/replica/replica.h"
#include "src/sim/sharded_simulator.h"
#include "src/workload/client.h"
#include "src/workload/conversation.h"

namespace skywalker {

struct FleetSpec {
  Topology topology = Topology::FourRegions();
  std::vector<int> replicas_per_region;
  int clients_per_region = 0;

  ReplicaConfig replica_config;
  SkyWalkerConfig lb;
  ControllerConfig controller;
  ConversationWorkloadConfig conversation =
      ConversationWorkloadConfig::WildChat();
  ClientConfig client;

  SimDuration warmup = Seconds(10);
  SimDuration measure = Seconds(60);
  uint64_t seed = 7;

  // 0: plain single-threaded Simulator (the reference). >= 1: sharded
  // simulation with that many region shards (clamped to the region count)
  // and `num_threads` workers (0 = one per shard).
  int num_shards = 0;
  int num_threads = 1;

  // Serializes every outcome into FleetResult::trace (one line per request,
  // canonical order) for bit-identity tests. Off for large benches.
  bool collect_trace = false;
};

struct FleetResult {
  ExperimentResult metrics;
  // One line per completed request, sorted by (completion_time, submit_time,
  // client_region, id). Empty unless FleetSpec::collect_trace.
  std::string trace;

  uint64_t messages_sent = 0;
  uint64_t cross_region_messages = 0;
  size_t executed_events = 0;

  // Wall-clock telemetry (nondeterministic; BENCH_TIMING.json only).
  double run_wall_seconds = 0;
  std::vector<ShardedSimulator::ShardTiming> shard_timing;  // Sharded only.
  uint64_t windows = 0;
  SimDuration lookahead = 0;
  int num_shards = 0;   // 0 for the plain reference.
  int num_threads = 0;
};

FleetResult RunFleetExperiment(const FleetSpec& spec);

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_FLEET_H_
