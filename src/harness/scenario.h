// Scenario registry: the data-driven layer under the skybench CLI.
//
// Every figure/ablation/microbenchmark of the paper reproduction registers
// one Scenario — a name, a metric schema, and a plan() that decomposes the
// scenario into independent *cells* (one simulator world each). The runner
// (src/harness/runner.h) schedules all cells of all requested scenarios and
// trials onto one deterministic thread pool and reassembles results in plan
// order, so the full suite parallelizes across scenarios, trials, and cells
// while output stays byte-identical across thread counts.
//
// Seeding: trial 0 always runs with seed_stream == 0, which every scenario
// maps to its canonical (paper-calibrated) seeds — so trial 0 reproduces the
// historical per-figure executables bit for bit. Additional trials receive
// nonzero streams derived from the CLI --seed, giving independent samples
// for variance estimation.

#ifndef SKYWALKER_HARNESS_SCENARIO_H_
#define SKYWALKER_HARNESS_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/metrics.h"

namespace skywalker {

struct ScenarioOptions {
  // 0 selects the scenario's canonical seeds; any other value perturbs every
  // internal seed via MixSeed() below.
  uint64_t seed_stream = 0;
  // Shrinks durations / iteration counts so every cell finishes in well
  // under a second — used by CI's bench-smoke job and the schema tests.
  // Smoke numbers are schema-valid but not comparable to full runs.
  bool smoke = false;
  // Request-lifecycle tracing (ISSUE 9, DESIGN.md §11). When true, a
  // `traceable` scenario installs a Tracer per cell and writes
  // TRACE_<scenario>_<cell>.{bin,json} under trace_dir. Tracing observes
  // without perturbing: metric rows are byte-identical with it on or off.
  bool trace = false;
  std::string trace_dir = ".";
};

// Applies a trial's seed stream to a scenario-canonical seed. Stream 0 is
// the identity, preserving historical results.
uint64_t MixSeed(uint64_t canonical, uint64_t stream);

// Derives the per-trial stream from the CLI seed: trial 0 -> 0 (canonical),
// trial t -> a splitmix of (seed, t).
uint64_t TrialSeedStream(uint64_t cli_seed, int trial);

// One independent unit of work: owns its entire simulated world and returns
// its rows. Cells of one scenario must not share mutable state — the runner
// may execute them concurrently in any order. `label` names the cell in
// error reports when run() throws.
struct ScenarioCell {
  std::string label;
  std::function<std::vector<MetricRow>()> run;
};

// What a scenario reports after all its cells finished.
struct ScenarioReport {
  std::vector<MetricRow> rows;
  // Headline derived quantities (e.g. "spp_vs_bp_throughput_x") — the
  // numbers CI regression checks should watch first.
  std::vector<std::pair<std::string, double>> derived;
  // Human-readable check-vs-paper lines, printed under the table.
  std::vector<std::string> notes;
};

struct ScenarioPlan {
  std::vector<ScenarioCell> cells;
  // Receives each cell's rows in cell order (outer index = cell). Builds
  // the report: typically concatenates rows and computes derived ratios.
  // When null, the runner concatenates rows with no derived metrics.
  std::function<ScenarioReport(
      const std::vector<std::vector<MetricRow>>& cell_rows)>
      finalize;
};

struct Scenario {
  std::string name;         // CLI identifier, e.g. "fig09".
  std::string title;        // Human heading, e.g. "Figure 9: ...".
  std::string description;  // One paragraph for --list.
  // Keys guaranteed present in every row this scenario emits; the golden
  // schema test enforces this contract.
  std::vector<std::string> metric_keys;
  // False for wall-clock microbenchmarks, whose ns_per_op metrics legitimately
  // vary run to run; the determinism test skips those.
  bool deterministic = true;
  // True when plan() honors ScenarioOptions::trace (writes TRACE_* files).
  // `skybench --list` surfaces this; --trace on other scenarios is a no-op.
  bool traceable = false;
  std::function<ScenarioPlan(const ScenarioOptions&)> plan;
};

// Registration-ordered scenario table. Scenarios register explicitly via
// RegisterAllScenarios() (bench/scenarios/) rather than static initializers,
// so static-library linking cannot silently drop them.
class ScenarioRegistry {
 public:
  static ScenarioRegistry& Get();

  // Name must be unique; aborts on duplicates (programming error).
  void Register(Scenario scenario);

  const Scenario* Find(std::string_view name) const;
  std::vector<const Scenario*> All() const;

 private:
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_SCENARIO_H_
