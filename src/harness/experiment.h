// Experiment harness: builds any serving system evaluated in the paper
// (Fig. 8's seven systems plus the Region-Local baseline of Fig. 10) on a
// shared simulator/network, drives it with the macro workloads, and reports
// the paper's metrics.
//
// This is what bench/fig08_macro.cc, fig09, fig10 and the integration tests
// are written against.

#ifndef SKYWALKER_HARNESS_EXPERIMENT_H_
#define SKYWALKER_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/analysis/metrics.h"
#include "src/core/deployment.h"
#include "src/lb/gateway.h"
#include "src/lb/load_balancer.h"
#include "src/lb/policies.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/workload/client.h"
#include "src/workload/spec.h"

namespace skywalker {

enum class SystemKind {
  kGkeGateway,      // Regional gateways, capacity spill, no LLM awareness.
  kRoundRobin,      // Single central LB.
  kLeastLoad,       // Single central LB.
  kConsistentHash,  // Single central LB.
  kSglRouter,       // Single central LB, cache-aware.
  kSkyWalkerCh,     // Regional LBs, two-layer consistent hashing.
  kSkyWalker,       // Regional LBs, prefix trees + regional snapshots.
  kRegionLocal,     // Regional SkyWalker LBs with forwarding disabled.
};

std::string_view SystemKindName(SystemKind kind);

struct SystemSpec {
  SystemKind kind = SystemKind::kSkyWalker;
  std::vector<int> replicas_per_region;
  ReplicaConfig replica_config;
  SkyWalkerConfig skywalker;   // SkyWalker variants and Region-Local.
  LbConfig baseline_lb;        // RR / LL / CH / SGL.
  GatewayConfig gateway;
  // Single-LB baselines are deployed in this region (the paper puts them in
  // the US).
  RegionId central_lb_region = 0;
};

// Owns every serving-side object for one experiment run.
class ServingSystem {
 public:
  static std::unique_ptr<ServingSystem> Build(Simulator* sim, Network* net,
                                              const SystemSpec& spec);
  ~ServingSystem();

  void Start();

  FrontendResolver* resolver() { return resolver_; }
  const std::vector<Replica*>& replicas() const { return replica_ptrs_; }

  // Token-weighted prefix-cache hit rate across all replicas.
  double AggregateCacheHitRate() const;
  // Requests served in a different region than the client's nearest LB
  // (only meaningful for multi-LB systems; 0 otherwise).
  int64_t TotalForwarded() const;

  // Non-null only for the matching system kind.
  Deployment* deployment() { return deployment_.get(); }
  LoadBalancer* baseline_lb() { return baseline_lb_.get(); }
  GatewayLb* gateway() { return gateway_.get(); }

  const SystemSpec& spec() const { return spec_; }

 private:
  ServingSystem() = default;

  SystemSpec spec_;
  std::vector<std::unique_ptr<Replica>> owned_replicas_;
  std::vector<Replica*> replica_ptrs_;

  std::unique_ptr<Deployment> deployment_;           // SkyWalker variants.
  std::unique_ptr<LoadBalancer> baseline_lb_;        // RR/LL/CH/SGL.
  std::unique_ptr<GatewayLb> gateway_;               // GKE Gateway.
  std::unique_ptr<SingleFrontendResolver> single_resolver_;
  std::unique_ptr<NearestFrontendResolver> nearest_resolver_;
  FrontendResolver* resolver_ = nullptr;
};

// ClientGroup and WorkloadSpec live in src/workload/spec.h (included above)
// together with the paper's canonical workload presets.

// Owns generators and clients; starts them staggered to avoid thundering
// herds at t=0.
class WorkloadDriver {
 public:
  WorkloadDriver(Simulator* sim, Network* net, FrontendResolver* resolver,
                 MetricsSink* metrics, const WorkloadSpec& spec,
                 size_t num_regions);
  ~WorkloadDriver();

  void Start();

  size_t TotalCompletedRequests() const;

 private:
  Simulator* sim_;
  std::unique_ptr<ConversationGenerator> conv_gen_;
  std::vector<std::unique_ptr<ToTGenerator>> tot_gens_;  // One per group.
  std::vector<std::unique_ptr<ConversationClient>> conv_clients_;
  std::vector<std::unique_ptr<ToTClient>> tot_clients_;
  Rng stagger_rng_;
};

struct ExperimentResult {
  std::string_view system;
  size_t completed = 0;
  double throughput_tok_s = 0;         // (prompt + output) tokens / s.
  double output_throughput_tok_s = 0;
  double ttft_p50_s = 0;
  double ttft_p90_s = 0;
  double ttft_mean_s = 0;
  double e2e_p50_s = 0;
  double e2e_p90_s = 0;
  double e2e_mean_s = 0;
  double cache_hit_rate = 0;           // Replica-level, token weighted.
  double forwarded_fraction = 0;
  double outstanding_imbalance = 0;    // max/min mean outstanding per replica.
  Distribution ttft;
  Distribution e2e;
};

struct ExperimentConfig {
  SimDuration warmup = Seconds(60);
  SimDuration measure = Seconds(240);
  double network_jitter = 0.0;
  uint64_t seed = 7;
};

// End-to-end run: build system + workload on a fresh simulator, warm up,
// measure, summarize.
ExperimentResult RunExperiment(const Topology& topology,
                               const SystemSpec& system_spec,
                               const WorkloadSpec& workload_spec,
                               const ExperimentConfig& config);

// Converts a result into the standard machine-readable row (all keys of
// StandardExperimentMetricKeys()). `total_replicas` prices the deployment at
// the paper's reserved per-replica-hour rate (cost_usd_per_hour).
MetricRow ExperimentMetricRow(std::string label,
                              const ExperimentResult& result,
                              int total_replicas);

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_EXPERIMENT_H_
