#include "src/harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace skywalker {

int DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  const size_t workers =
      std::min(n, static_cast<size_t>(std::max(1, threads)));
  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) {
          first_error = std::current_exception();
        }
        // Stop claiming new jobs — a failed run should surface the error
        // instead of paying for the remaining cells.
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back(worker);
  }
  for (std::thread& t : pool) {
    t.join();
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace skywalker
