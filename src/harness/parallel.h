// Deterministic thread pool for independent benchmark cells.
//
// Each job owns its entire world (its own Simulator, Network, Rng streams)
// and writes only to its own indexed result slot, so the schedule cannot
// influence results: ParallelFor(n, 1, fn) and ParallelFor(n, 16, fn)
// produce identical outputs, merely at different wall-clock speeds. That is
// what lets skybench run trials in parallel while BENCH_*.json stays
// byte-identical across thread counts.

#ifndef SKYWALKER_HARNESS_PARALLEL_H_
#define SKYWALKER_HARNESS_PARALLEL_H_

#include <functional>

namespace skywalker {

// Invokes fn(0..n-1), each index at most once, on up to `threads` workers
// (inline when threads <= 1 or n <= 1). Blocks until the claimed jobs
// finish. If a job throws, workers stop claiming new indices and the first
// exception is rethrown on the calling thread after all workers join — a
// failing run surfaces its error instead of paying for the remaining jobs.
void ParallelFor(size_t n, int threads, const std::function<void(size_t)>& fn);

// Default worker count: hardware concurrency, at least 1.
int DefaultThreadCount();

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_PARALLEL_H_
