#include "src/harness/experiment.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/analysis/cost_model.h"
#include "src/common/logging.h"

namespace skywalker {

std::string_view SystemKindName(SystemKind kind) {
  switch (kind) {
    case SystemKind::kGkeGateway:
      return "GKE-Gateway";
    case SystemKind::kRoundRobin:
      return "RR";
    case SystemKind::kLeastLoad:
      return "LL";
    case SystemKind::kConsistentHash:
      return "CH";
    case SystemKind::kSglRouter:
      return "SGL";
    case SystemKind::kSkyWalkerCh:
      return "SkyWalker-CH";
    case SystemKind::kSkyWalker:
      return "SkyWalker";
    case SystemKind::kRegionLocal:
      return "Region-Local";
  }
  return "unknown";
}

std::unique_ptr<ServingSystem> ServingSystem::Build(Simulator* sim,
                                                    Network* net,
                                                    const SystemSpec& spec) {
  const Topology& topology = net->topology();
  SKYWALKER_CHECK(spec.replicas_per_region.size() == topology.num_regions());

  auto system = std::unique_ptr<ServingSystem>(new ServingSystem());
  system->spec_ = spec;

  const bool skywalker_kind = spec.kind == SystemKind::kSkyWalker ||
                              spec.kind == SystemKind::kSkyWalkerCh ||
                              spec.kind == SystemKind::kRegionLocal;

  if (skywalker_kind) {
    DeploymentSpec dspec;
    dspec.replicas_per_region = spec.replicas_per_region;
    dspec.replica_config = spec.replica_config;
    dspec.lb_config = spec.skywalker;
    switch (spec.kind) {
      case SystemKind::kSkyWalkerCh:
        dspec.lb_config.routing.policy = RoutingPolicyKind::kConsistentHash;
        break;
      case SystemKind::kSkyWalker:
        dspec.lb_config.routing.policy = RoutingPolicyKind::kPrefixTree;
        break;
      case SystemKind::kRegionLocal:
        dspec.lb_config.routing.enable_forwarding = false;
        break;
      default:
        break;
    }
    system->deployment_ = Deployment::Build(sim, net, dspec);
    for (const auto& replica : system->deployment_->replicas()) {
      system->replica_ptrs_.push_back(replica.get());
    }
    system->resolver_ = system->deployment_->resolver();
    return system;
  }

  // Baselines own their replicas directly.
  ReplicaId next_replica = 0;
  for (RegionId region = 0;
       region < static_cast<RegionId>(topology.num_regions()); ++region) {
    for (int i = 0; i < spec.replicas_per_region[static_cast<size_t>(region)];
         ++i) {
      auto replica = std::make_unique<Replica>(sim, next_replica++, region,
                                               spec.replica_config);
      system->replica_ptrs_.push_back(replica.get());
      system->owned_replicas_.push_back(std::move(replica));
    }
  }

  if (spec.kind == SystemKind::kGkeGateway) {
    system->gateway_ = std::make_unique<GatewayLb>(sim, net, spec.gateway);
    for (Replica* replica : system->replica_ptrs_) {
      system->gateway_->AttachReplica(replica);
    }
    system->nearest_resolver_ =
        std::make_unique<NearestFrontendResolver>(&net->topology());
    for (RegionId region = 0;
         region < static_cast<RegionId>(topology.num_regions()); ++region) {
      system->nearest_resolver_->AddFrontend(
          system->gateway_->EndpointFor(region));
    }
    system->resolver_ = system->nearest_resolver_.get();
    return system;
  }

  // Single centralized LB (Figure 1(b)).
  const LbId lb_id = 0;
  switch (spec.kind) {
    case SystemKind::kRoundRobin:
      system->baseline_lb_ = std::make_unique<RoundRobinLb>(
          sim, net, lb_id, spec.central_lb_region, spec.baseline_lb);
      break;
    case SystemKind::kLeastLoad:
      system->baseline_lb_ = std::make_unique<LeastLoadLb>(
          sim, net, lb_id, spec.central_lb_region, spec.baseline_lb);
      break;
    case SystemKind::kConsistentHash: {
      auto ch = std::make_unique<ConsistentHashLb>(
          sim, net, lb_id, spec.central_lb_region, spec.baseline_lb);
      for (Replica* replica : system->replica_ptrs_) {
        ch->AttachReplicaToRing(replica);
      }
      system->baseline_lb_ = std::move(ch);
      system->single_resolver_ = std::make_unique<SingleFrontendResolver>(
          system->baseline_lb_.get());
      system->resolver_ = system->single_resolver_.get();
      return system;
    }
    case SystemKind::kSglRouter:
      system->baseline_lb_ = std::make_unique<SglRouterLb>(
          sim, net, lb_id, spec.central_lb_region, spec.baseline_lb);
      break;
    default:
      SKYWALKER_CHECK(false) << "unhandled system kind";
  }
  for (Replica* replica : system->replica_ptrs_) {
    system->baseline_lb_->AttachReplica(replica);
  }
  system->single_resolver_ =
      std::make_unique<SingleFrontendResolver>(system->baseline_lb_.get());
  system->resolver_ = system->single_resolver_.get();
  return system;
}

ServingSystem::~ServingSystem() = default;

void ServingSystem::Start() {
  if (deployment_ != nullptr) {
    deployment_->Start();
  }
  if (baseline_lb_ != nullptr) {
    baseline_lb_->Start();
  }
}

double ServingSystem::AggregateCacheHitRate() const {
  int64_t hits = 0;
  int64_t lookups = 0;
  for (const Replica* replica : replica_ptrs_) {
    hits += replica->cache().hit_tokens();
    lookups += replica->cache().lookup_tokens();
  }
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(lookups);
}

int64_t ServingSystem::TotalForwarded() const {
  if (deployment_ != nullptr) {
    return deployment_->TotalForwarded();
  }
  if (gateway_ != nullptr) {
    return gateway_->stats().spilled;
  }
  return 0;
}

WorkloadDriver::WorkloadDriver(Simulator* sim, Network* net,
                               FrontendResolver* resolver,
                               MetricsSink* metrics, const WorkloadSpec& spec,
                               size_t num_regions)
    : sim_(sim), stagger_rng_(spec.seed ^ 0xdead) {
  conv_gen_ = std::make_unique<ConversationGenerator>(spec.conversation,
                                                      num_regions, spec.seed);
  uint64_t client_seed = spec.seed + 1000;
  for (const ClientGroup& group : spec.groups) {
    if (group.kind == ClientGroup::Kind::kConversation) {
      for (int i = 0; i < group.count; ++i) {
        conv_clients_.push_back(std::make_unique<ConversationClient>(
            sim, net, resolver, conv_gen_.get(), metrics, group.region,
            group.client, client_seed++));
      }
    } else {
      // One generator per ToT group so groups can differ in branching
      // (Mixed Tree workload).
      tot_gens_.push_back(
          std::make_unique<ToTGenerator>(group.tot, client_seed++));
      ToTGenerator* gen = tot_gens_.back().get();
      for (int i = 0; i < group.count; ++i) {
        tot_clients_.push_back(std::make_unique<ToTClient>(
            sim, net, resolver, gen, metrics, group.region, group.client,
            client_seed++));
      }
    }
  }
}

WorkloadDriver::~WorkloadDriver() = default;

void WorkloadDriver::Start() {
  // Stagger starts uniformly over the first 5 seconds.
  for (auto& client : conv_clients_) {
    client->Start(
        static_cast<SimDuration>(stagger_rng_.Uniform(0, 5e6)));
  }
  for (auto& client : tot_clients_) {
    client->Start(
        static_cast<SimDuration>(stagger_rng_.Uniform(0, 5e6)));
  }
}

size_t WorkloadDriver::TotalCompletedRequests() const {
  size_t total = 0;
  for (const auto& client : conv_clients_) {
    total += client->completed_requests();
  }
  for (const auto& client : tot_clients_) {
    total += client->completed_requests();
  }
  return total;
}

ExperimentResult RunExperiment(const Topology& topology,
                               const SystemSpec& system_spec,
                               const WorkloadSpec& workload_spec,
                               const ExperimentConfig& config) {
  Simulator sim;
  Network net(&sim, topology, config.network_jitter, config.seed);

  auto system = ServingSystem::Build(&sim, &net, system_spec);
  MetricsCollector metrics;
  metrics.SetMeasurementWindow(config.warmup, config.warmup + config.measure);

  WorkloadDriver driver(&sim, &net, system->resolver(), &metrics,
                        workload_spec, topology.num_regions());

  system->Start();
  driver.Start();

  // Periodically sample per-replica outstanding load for the imbalance
  // metric the paper quotes (§5.1).
  std::vector<RunningStat> outstanding_stats(system->replicas().size());
  PeriodicTask sampler(&sim, Seconds(1), [&] {
    if (sim.now() < config.warmup) {
      return;
    }
    const auto& replicas = system->replicas();
    for (size_t i = 0; i < replicas.size(); ++i) {
      outstanding_stats[i].Add(
          static_cast<double>(replicas[i]->outstanding_count()));
    }
  });
  sampler.Start();

  sim.RunUntil(config.warmup + config.measure);
  sampler.Stop();

  ExperimentResult result;
  result.system = SystemKindName(system_spec.kind);
  result.completed = metrics.CountInWindow();
  result.throughput_tok_s = metrics.ThroughputTokensPerSec();
  result.output_throughput_tok_s = metrics.OutputThroughputTokensPerSec();
  result.ttft = metrics.TtftSeconds();
  result.e2e = metrics.E2eSeconds();
  result.ttft_p50_s = result.ttft.Percentile(50);
  result.ttft_p90_s = result.ttft.Percentile(90);
  result.ttft_mean_s = result.ttft.mean();
  result.e2e_p50_s = result.e2e.Percentile(50);
  result.e2e_p90_s = result.e2e.Percentile(90);
  result.e2e_mean_s = result.e2e.mean();
  result.cache_hit_rate = system->AggregateCacheHitRate();
  result.forwarded_fraction = metrics.ForwardedFraction();

  double min_mean = std::numeric_limits<double>::max();
  double max_mean = 0;
  for (const RunningStat& stat : outstanding_stats) {
    min_mean = std::min(min_mean, stat.mean());
    max_mean = std::max(max_mean, stat.mean());
  }
  result.outstanding_imbalance =
      (outstanding_stats.empty() || min_mean <= 0.0)
          ? 0.0
          : max_mean / min_mean;
  return result;
}

MetricRow ExperimentMetricRow(std::string label,
                              const ExperimentResult& result,
                              int total_replicas) {
  MetricRow row;
  row.label = std::move(label);
  row.Set(metric_keys::kThroughputTokS, result.throughput_tok_s);
  row.Set(metric_keys::kOutputTokS, result.output_throughput_tok_s);
  row.Set(metric_keys::kTtftP50, result.ttft_p50_s);
  row.Set(metric_keys::kTtftP90, result.ttft_p90_s);
  row.Set(metric_keys::kTtftP99,
          result.ttft.empty() ? 0.0 : result.ttft.Percentile(99));
  row.Set(metric_keys::kTtftMean, result.ttft_mean_s);
  row.Set(metric_keys::kE2eP50, result.e2e_p50_s);
  row.Set(metric_keys::kE2eP90, result.e2e_p90_s);
  row.Set(metric_keys::kE2eP99,
          result.e2e.empty() ? 0.0 : result.e2e.Percentile(99));
  row.Set(metric_keys::kCacheHitRate, result.cache_hit_rate);
  row.Set(metric_keys::kForwardRate, result.forwarded_fraction);
  row.Set(metric_keys::kImbalance, result.outstanding_imbalance);
  row.Set(metric_keys::kCompleted, static_cast<double>(result.completed));
  row.Set(metric_keys::kCostUsdPerHour,
          total_replicas * Pricing().reserved_hourly);
  return row;
}

}  // namespace skywalker
