// Executes registered scenarios: plans every (scenario, trial), flattens all
// cells into one job list, runs the jobs on the deterministic pool, then
// reassembles per-trial reports in plan order and serializes BENCH_*.json.

#ifndef SKYWALKER_HARNESS_RUNNER_H_
#define SKYWALKER_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/harness/scenario.h"

namespace skywalker {

struct RunConfig {
  int trials = 1;
  uint64_t seed = 42;    // Perturbs trials >= 1; trial 0 is canonical.
  bool smoke = false;
  int threads = 1;
};

struct TrialResult {
  int trial = 0;
  uint64_t seed_stream = 0;
  ScenarioReport report;
};

struct ScenarioRunResult {
  const Scenario* scenario = nullptr;
  RunConfig config;
  std::vector<TrialResult> trials;
  // Summed wall-clock of this scenario's cells across all trials (cells run
  // interleaved on the shared pool, so per-scenario elapsed time is not
  // well-defined — summed cell time is the scheduler-independent cost).
  double cell_seconds = 0;
  size_t cells = 0;
};

// Wall-clock accounting for one RunScenarios call (the opt-in
// `skybench --timing` sidecar). Never part of BENCH_<scenario>.json: those
// files stay byte-identical across hosts and thread counts, while this is
// nondeterministic by nature.
struct RunTiming {
  double wall_seconds = 0;  // End-to-end, including planning and merging.
};

// Runs every requested scenario. All cells across scenarios and trials share
// one ParallelFor(threads) schedule; results are merged in (scenario, trial,
// cell) declaration order, so output is independent of thread count.
// `timing`, when non-null, receives end-to-end wall-clock for the run.
std::vector<ScenarioRunResult> RunScenarios(
    const std::vector<const Scenario*>& scenarios, const RunConfig& config,
    RunTiming* timing = nullptr);

// The BENCH_TIMING.json document: end-to-end wall seconds plus per-scenario
// summed cell seconds. Excluded from golden/determinism comparisons.
Json TimingJson(const std::vector<ScenarioRunResult>& results,
                const RunConfig& config, const RunTiming& timing);

// The BENCH_<scenario>.json document. Layout:
// {
//   "schema_version": 1,
//   "scenario": "fig09", "title": ..., "seed": ..., "trials": N,
//   "smoke": false, "metric_keys": [...],
//   "trial_results": [
//     {"trial": 0, "seed_stream": 0,
//      "rows": [{"label": ..., "dims": {...}, "metrics": {...}}],
//      "derived": {...}, "notes": [...]}
//   ],
//   "summary": {"rows": [...mean across trials...], "derived": {...}}
// }
// Deliberately excludes anything nondeterministic (wall-clock, host, thread
// count) so that identical seeds yield byte-identical files.
Json ScenarioRunJson(const ScenarioRunResult& result);

// Renders the report as the human-readable table + notes the historical
// per-figure executables printed.
std::string ScenarioReportText(const Scenario& scenario,
                               const TrialResult& trial);

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_RUNNER_H_
