// Executes registered scenarios: plans every (scenario, trial), flattens all
// cells into one job list, runs the jobs on the deterministic pool, then
// reassembles per-trial reports in plan order and serializes BENCH_*.json.

#ifndef SKYWALKER_HARNESS_RUNNER_H_
#define SKYWALKER_HARNESS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/harness/scenario.h"

namespace skywalker {

struct RunConfig {
  int trials = 1;
  uint64_t seed = 42;    // Perturbs trials >= 1; trial 0 is canonical.
  bool smoke = false;
  int threads = 1;
};

struct TrialResult {
  int trial = 0;
  uint64_t seed_stream = 0;
  ScenarioReport report;
};

struct ScenarioRunResult {
  const Scenario* scenario = nullptr;
  RunConfig config;
  std::vector<TrialResult> trials;
};

// Runs every requested scenario. All cells across scenarios and trials share
// one ParallelFor(threads) schedule; results are merged in (scenario, trial,
// cell) declaration order, so output is independent of thread count.
std::vector<ScenarioRunResult> RunScenarios(
    const std::vector<const Scenario*>& scenarios, const RunConfig& config);

// The BENCH_<scenario>.json document. Layout:
// {
//   "schema_version": 1,
//   "scenario": "fig09", "title": ..., "seed": ..., "trials": N,
//   "smoke": false, "metric_keys": [...],
//   "trial_results": [
//     {"trial": 0, "seed_stream": 0,
//      "rows": [{"label": ..., "dims": {...}, "metrics": {...}}],
//      "derived": {...}, "notes": [...]}
//   ],
//   "summary": {"rows": [...mean across trials...], "derived": {...}}
// }
// Deliberately excludes anything nondeterministic (wall-clock, host, thread
// count) so that identical seeds yield byte-identical files.
Json ScenarioRunJson(const ScenarioRunResult& result);

// Renders the report as the human-readable table + notes the historical
// per-figure executables printed.
std::string ScenarioReportText(const Scenario& scenario,
                               const TrialResult& trial);

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_RUNNER_H_
