// Executes registered scenarios: plans every (scenario, trial), flattens all
// cells into one job list, runs the jobs on the deterministic pool, then
// reassembles per-trial reports in plan order and serializes BENCH_*.json.

#ifndef SKYWALKER_HARNESS_RUNNER_H_
#define SKYWALKER_HARNESS_RUNNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"
#include "src/harness/scenario.h"

namespace skywalker {

struct RunConfig {
  int trials = 1;
  uint64_t seed = 42;    // Perturbs trials >= 1; trial 0 is canonical.
  bool smoke = false;
  int threads = 1;
  // Forwarded into ScenarioOptions for traceable scenarios (ISSUE 9).
  bool trace = false;
  std::string trace_dir = ".";
  // Exact cell labels to run; empty = every planned cell (ISSUE 10). Lets
  // CI time one full-size cell without paying for the whole scenario.
  // Determinism note: each cell owns its world, so a filtered run's rows
  // are identical to the same cells of a full run — but derived metrics
  // needing absent rows are skipped, so filtered BENCH output must not be
  // golden-diffed.
  std::vector<std::string> cell_filter;
};

struct TrialResult {
  int trial = 0;
  uint64_t seed_stream = 0;
  ScenarioReport report;
};

struct ScenarioRunResult {
  const Scenario* scenario = nullptr;
  RunConfig config;
  std::vector<TrialResult> trials;
  // Summed wall-clock of this scenario's cells across all trials (cells run
  // interleaved on the shared pool, so per-scenario elapsed time is not
  // well-defined — summed cell time is the scheduler-independent cost).
  double cell_seconds = 0;
  size_t cells = 0;
};

// Per-shard wall-time split for one simulation shard: time spent executing
// events vs. waiting at window barriers (conservative-lookahead sync).
struct ShardWallTime {
  double busy_seconds = 0;
  double barrier_seconds = 0;
  uint64_t executed_events = 0;
  uint64_t mailbox_in = 0;  // Cross-shard messages delivered to the shard.
};

// Shard-level timing for one scenario cell that ran on a ShardedSimulator.
// Cells publish these via ShardTimingRegistry from inside their run()
// closure (cells execute on the shared pool, so a side channel — not the
// MetricRow return path — keeps nondeterministic wall time out of goldens).
struct CellShardTiming {
  std::string scenario;
  std::string cell;
  int shards = 0;
  int threads = 0;
  double wall_seconds = 0;   // Whole-cell simulation wall time.
  uint64_t windows = 0;      // Lookahead windows executed.
  std::vector<ShardWallTime> per_shard;
  // Scenario-specific counters serialized onto the cell object verbatim
  // (e.g. the eviction-churn micro's "evictions" / "pages_per_eviction",
  // ISSUE 8). Keys must not collide with the fixed fields above.
  std::vector<std::pair<std::string, double>> extra;
};

// Process-wide sink for CellShardTiming records. Thread-safe: cells run
// concurrently on the pool. RunScenarios drains it at the end of every run,
// so records never leak across back-to-back runs in one process.
class ShardTimingRegistry {
 public:
  static ShardTimingRegistry& Instance();
  void Record(CellShardTiming timing);
  // Returns and clears all records, sorted by (scenario, cell) so the
  // sidecar layout is independent of pool scheduling.
  std::vector<CellShardTiming> Drain();

 private:
  ShardTimingRegistry() = default;
  std::mutex mu_;
  std::vector<CellShardTiming> records_;
};

// Wall-clock accounting for one RunScenarios call (the opt-in
// `skybench --timing` sidecar). Never part of BENCH_<scenario>.json: those
// files stay byte-identical across hosts and thread counts, while this is
// nondeterministic by nature.
struct RunTiming {
  double wall_seconds = 0;  // End-to-end, including planning and merging.
  // Per-cell shard breakdowns drained from ShardTimingRegistry.
  std::vector<CellShardTiming> shard_cells;
};

// Runs every requested scenario. All cells across scenarios and trials share
// one ParallelFor(threads) schedule; results are merged in (scenario, trial,
// cell) declaration order, so output is independent of thread count.
// `timing`, when non-null, receives end-to-end wall-clock for the run.
std::vector<ScenarioRunResult> RunScenarios(
    const std::vector<const Scenario*>& scenarios, const RunConfig& config,
    RunTiming* timing = nullptr);

// The BENCH_TIMING.json document: end-to-end wall seconds plus per-scenario
// summed cell seconds. Excluded from golden/determinism comparisons.
Json TimingJson(const std::vector<ScenarioRunResult>& results,
                const RunConfig& config, const RunTiming& timing);

// The BENCH_<scenario>.json document. Layout:
// {
//   "schema_version": 1,
//   "scenario": "fig09", "title": ..., "seed": ..., "trials": N,
//   "smoke": false, "metric_keys": [...],
//   "trial_results": [
//     {"trial": 0, "seed_stream": 0,
//      "rows": [{"label": ..., "dims": {...}, "metrics": {...}}],
//      "derived": {...}, "notes": [...]}
//   ],
//   "summary": {"rows": [...mean across trials...], "derived": {...}}
// }
// Deliberately excludes anything nondeterministic (wall-clock, host, thread
// count) so that identical seeds yield byte-identical files.
Json ScenarioRunJson(const ScenarioRunResult& result);

// Renders the report as the human-readable table + notes the historical
// per-figure executables printed.
std::string ScenarioReportText(const Scenario& scenario,
                               const TrialResult& trial);

}  // namespace skywalker

#endif  // SKYWALKER_HARNESS_RUNNER_H_
