#include "src/harness/scenario.h"

#include "src/common/logging.h"

namespace skywalker {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t MixSeed(uint64_t canonical, uint64_t stream) {
  if (stream == 0) {
    return canonical;
  }
  return SplitMix64(canonical ^ stream);
}

uint64_t TrialSeedStream(uint64_t cli_seed, int trial) {
  if (trial == 0) {
    return 0;
  }
  uint64_t stream =
      SplitMix64(SplitMix64(cli_seed) ^ static_cast<uint64_t>(trial));
  // Stream 0 is reserved for "canonical"; remap the (vanishingly unlikely)
  // collision.
  return stream == 0 ? 1 : stream;
}

ScenarioRegistry& ScenarioRegistry::Get() {
  static ScenarioRegistry* registry = new ScenarioRegistry();
  return *registry;
}

void ScenarioRegistry::Register(Scenario scenario) {
  SKYWALKER_CHECK(!scenario.name.empty());
  SKYWALKER_CHECK(scenario.plan != nullptr) << scenario.name;
  SKYWALKER_CHECK(Find(scenario.name) == nullptr)
      << "duplicate scenario: " << scenario.name;
  scenarios_.push_back(std::make_unique<Scenario>(std::move(scenario)));
}

const Scenario* ScenarioRegistry::Find(std::string_view name) const {
  for (const auto& scenario : scenarios_) {
    if (scenario->name == name) {
      return scenario.get();
    }
  }
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::All() const {
  std::vector<const Scenario*> all;
  all.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) {
    all.push_back(scenario.get());
  }
  return all;
}

}  // namespace skywalker
