#include "src/harness/fleet.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <tuple>
#include <utility>

#include "src/common/histogram.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/deployment.h"
#include "src/harness/scenario.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace skywalker {

namespace {

// Canonical outcome order: independent of which shard recorded what when.
bool OutcomeBefore(const RequestOutcome& a, const RequestOutcome& b) {
  return std::tie(a.completion_time, a.submit_time, a.client_region, a.id) <
         std::tie(b.completion_time, b.submit_time, b.client_region, b.id);
}

}  // namespace

FleetResult RunFleetExperiment(const FleetSpec& spec) {
  const Topology& topology = spec.topology;
  const size_t num_regions = topology.num_regions();
  SKYWALKER_CHECK(spec.replicas_per_region.size() == num_regions)
      << "replicas_per_region must match the topology";
  SKYWALKER_CHECK(spec.clients_per_region > 0) << "fleet needs clients";

  // --- simulation substrate: plain reference or sharded ---
  std::unique_ptr<Simulator> plain_sim;
  std::unique_ptr<ShardedSimulator> sharded;
  std::unique_ptr<Network> net;
  if (spec.num_shards <= 0) {
    plain_sim = std::make_unique<Simulator>();
    net = std::make_unique<Network>(plain_sim.get(), topology,
                                    /*jitter_fraction=*/0.0, spec.seed);
    if (spec.tracer != nullptr) {
      plain_sim->SetTracer(spec.tracer);
    }
  } else {
    sharded = std::make_unique<ShardedSimulator>(
        topology, spec.num_shards, spec.num_threads, /*jitter_fraction=*/0.0);
    net = std::make_unique<Network>(sharded.get(), /*jitter_fraction=*/0.0,
                                    spec.seed);
    if (spec.tracer != nullptr) {
      sharded->SetTracer(spec.tracer);
    }
  }

  // --- serving system ---
  DeploymentSpec dspec;
  dspec.replicas_per_region = spec.replicas_per_region;
  dspec.replica_config = spec.replica_config;
  dspec.lb_config = spec.lb;
  dspec.controller_config = spec.controller;
  // Runtime-config store, created only when something will be published
  // (subscription delivery alone must not perturb the static fast path).
  std::unique_ptr<ConfigStore> config_store;
  if (!spec.config_updates.empty()) {
    config_store = std::make_unique<ConfigStore>(spec.lb.runtime());
    dspec.config_store = config_store.get();
  }
  Simulator* controller_sim = net->SimForRegion(dspec.controller_config.home_region);
  auto deployment = Deployment::Build(controller_sim, net.get(), dspec);
  // Setup-time publishes (after Build so every LB is subscribed; see the
  // determinism contract in src/core/runtime_config.h).
  for (const FleetConfigUpdate& update : spec.config_updates) {
    config_store->PublishAt(update.at, update.config);
  }

  // --- per-region metric collectors (each written only by its shard) ---
  const SimTime measure_end = spec.warmup + spec.measure;
  std::vector<std::unique_ptr<MetricsCollector>> collectors;
  collectors.reserve(num_regions);
  for (size_t r = 0; r < num_regions; ++r) {
    auto collector = std::make_unique<MetricsCollector>();
    collector->SetMeasurementWindow(spec.warmup, measure_end);
    collectors.push_back(std::move(collector));
  }

  // --- client population: everything derived from (seed, client index) ---
  ConversationGenerator base_gen(spec.conversation, num_regions, spec.seed);
  std::vector<std::unique_ptr<ConversationGenerator>> generators;
  std::vector<std::unique_ptr<ConversationClient>> clients;
  std::vector<SimDuration> staggers;
  for (RegionId region = 0; region < static_cast<RegionId>(num_regions);
       ++region) {
    Simulator* region_sim = net->SimForRegion(region);
    for (int i = 0; i < spec.clients_per_region; ++i) {
      const uint64_t index =
          static_cast<uint64_t>(region) *
              static_cast<uint64_t>(spec.clients_per_region) +
          static_cast<uint64_t>(i);
      generators.push_back(std::make_unique<ConversationGenerator>(
          base_gen, index, MixSeed(spec.seed + 1000, index + 1)));
      ClientConfig client_config = spec.client;
      client_config.request_id_base =
          static_cast<RequestId>((index + 1) << 32);
      clients.push_back(std::make_unique<ConversationClient>(
          region_sim, net.get(), deployment->resolver(),
          generators.back().get(), collectors[static_cast<size_t>(region)].get(),
          region, client_config, MixSeed(spec.seed + 2000, index + 1)));
      // Stagger start over the first 5 s, independently per client (a shared
      // stagger RNG would be consumed in client-iteration order, which is
      // exactly the order sharding abolishes).
      Rng stagger_rng(MixSeed(spec.seed ^ 0xdead, index + 1));
      staggers.push_back(
          static_cast<SimDuration>(stagger_rng.Uniform(0, 5e6)));
    }
  }

  // --- wave cohorts (flash crowd): same per-index derivation, indices
  // continuing after the base population so id ranges stay disjoint ---
  uint64_t next_index = static_cast<uint64_t>(num_regions) *
                        static_cast<uint64_t>(spec.clients_per_region);
  for (const FleetClientWave& wave : spec.client_waves) {
    Simulator* region_sim = net->SimForRegion(wave.region);
    for (int i = 0; i < wave.count; ++i) {
      const uint64_t index = next_index++;
      generators.push_back(std::make_unique<ConversationGenerator>(
          base_gen, index, MixSeed(spec.seed + 1000, index + 1)));
      ClientConfig client_config = spec.client;
      client_config.request_id_base =
          static_cast<RequestId>((index + 1) << 32);
      client_config.stop_issuing_after = wave.stop_issuing_after;
      clients.push_back(std::make_unique<ConversationClient>(
          region_sim, net.get(), deployment->resolver(),
          generators.back().get(),
          collectors[static_cast<size_t>(wave.region)].get(), wave.region,
          client_config, MixSeed(spec.seed + 2000, index + 1)));
      Rng stagger_rng(MixSeed(spec.seed ^ 0xdead, index + 1));
      staggers.push_back(
          wave.start +
          static_cast<SimDuration>(stagger_rng.Uniform(0, 5e6)));
    }
  }

  deployment->Start();
  for (size_t i = 0; i < clients.size(); ++i) {
    clients[i]->Start(staggers[i]);
  }

  // --- scheduled faults, each an event on the faulted region's shard ---
  for (const FleetFault& fault : spec.faults) {
    Simulator* region_sim = net->SimForRegion(fault.region);
    region_sim->SetCurrentRegion(fault.region);
    switch (fault.kind) {
      case FleetFault::kLbFail: {
        SkyWalkerLb* lb = deployment->LbInRegion(fault.region);
        SKYWALKER_CHECK(lb != nullptr);
        region_sim->ScheduleAt(fault.at, [lb] { lb->Fail(); });
        break;
      }
      case FleetFault::kLbRecover: {
        // Controller-led recovery returns displaced replicas home; if the
        // controller never executed failover, recover the LB directly.
        // Touches two LBs' replica sets — plain-mode (num_shards == 0)
        // scenarios only, like controller failover itself.
        SkyWalkerLb* lb = deployment->LbInRegion(fault.region);
        SKYWALKER_CHECK(lb != nullptr);
        Controller* controller = deployment->controller();
        region_sim->ScheduleAt(fault.at, [controller, lb] {
          if (!controller->RecoverLb(lb->id())) {
            lb->Recover();
          }
        });
        break;
      }
      case FleetFault::kReplicaFail:
      case FleetFault::kReplicaRecover:
      case FleetFault::kReplicaSlowdown: {
        int region_local = 0;
        bool matched = false;
        for (const auto& replica : deployment->replicas()) {
          if (replica->region() != fault.region) {
            continue;
          }
          if (fault.replica_index >= 0 &&
              region_local++ != fault.replica_index) {
            continue;
          }
          matched = true;
          Replica* target = replica.get();
          if (fault.kind == FleetFault::kReplicaFail) {
            region_sim->ScheduleAt(fault.at, [target] { target->Fail(); });
          } else if (fault.kind == FleetFault::kReplicaRecover) {
            region_sim->ScheduleAt(fault.at, [target] { target->Recover(); });
          } else {
            const double factor = fault.factor;
            region_sim->ScheduleAt(
                fault.at, [target, factor] { target->SetSlowdown(factor); });
          }
        }
        SKYWALKER_CHECK(matched) << "fault matched no replica";
        break;
      }
    }
  }

  // --- per-region imbalance samplers (each samples only its own shard's
  // replicas; RunningStat slots are per-replica, so there is no sharing) ---
  std::vector<RunningStat> outstanding_stats(deployment->replicas().size());
  std::vector<std::vector<size_t>> region_replicas(num_regions);
  for (size_t i = 0; i < deployment->replicas().size(); ++i) {
    region_replicas[static_cast<size_t>(deployment->replicas()[i]->region())]
        .push_back(i);
  }
  std::vector<std::unique_ptr<PeriodicTask>> samplers;
  for (RegionId region = 0; region < static_cast<RegionId>(num_regions);
       ++region) {
    Simulator* region_sim = net->SimForRegion(region);
    const std::vector<size_t>& mine = region_replicas[static_cast<size_t>(region)];
    auto sampler = std::make_unique<PeriodicTask>(
        region_sim, Seconds(1),
        [&deployment, &outstanding_stats, &mine, region_sim,
         warmup = spec.warmup, measure_end] {
          // Drain time is settling, not measurement.
          if (region_sim->now() < warmup || region_sim->now() > measure_end) {
            return;
          }
          for (size_t i : mine) {
            outstanding_stats[i].Add(static_cast<double>(
                deployment->replicas()[i]->outstanding_count()));
          }
        });
    region_sim->SetCurrentRegion(region);
    sampler->Start();
    samplers.push_back(std::move(sampler));
  }

  // --- run ---
  const auto wall0 = std::chrono::steady_clock::now();
  const SimTime run_end = measure_end + spec.drain;
  size_t executed = 0;
  if (sharded != nullptr) {
    executed = sharded->RunUntil(run_end);
  } else {
    executed = plain_sim->RunUntil(run_end);
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  for (auto& sampler : samplers) {
    sampler->Stop();
  }

  // --- canonical summarization: merge, sort, re-feed one collector so
  // every order-sensitive accumulation sees the same sequence ---
  std::vector<RequestOutcome> all;
  for (const auto& collector : collectors) {
    all.insert(all.end(), collector->outcomes().begin(),
               collector->outcomes().end());
  }
  std::sort(all.begin(), all.end(), OutcomeBefore);
  MetricsCollector merged;
  merged.SetMeasurementWindow(spec.warmup, measure_end);
  for (const RequestOutcome& outcome : all) {
    merged.RecordOutcome(outcome);
  }

  FleetResult result;
  result.metrics.system = "fleet";
  result.metrics.completed = merged.CountInWindow();
  result.metrics.throughput_tok_s = merged.ThroughputTokensPerSec();
  result.metrics.output_throughput_tok_s =
      merged.OutputThroughputTokensPerSec();
  result.metrics.ttft = merged.TtftSeconds();
  result.metrics.e2e = merged.E2eSeconds();
  result.metrics.ttft_p50_s = result.metrics.ttft.Percentile(50);
  result.metrics.ttft_p90_s = result.metrics.ttft.Percentile(90);
  result.metrics.ttft_mean_s = result.metrics.ttft.mean();
  result.metrics.e2e_p50_s = result.metrics.e2e.Percentile(50);
  result.metrics.e2e_p90_s = result.metrics.e2e.Percentile(90);
  result.metrics.e2e_mean_s = result.metrics.e2e.mean();
  result.metrics.cache_hit_rate = deployment->AggregateCacheHitRate();
  result.metrics.forwarded_fraction = merged.ForwardedFraction();

  double min_mean = std::numeric_limits<double>::max();
  double max_mean = 0;
  for (const RunningStat& stat : outstanding_stats) {
    min_mean = std::min(min_mean, stat.mean());
    max_mean = std::max(max_mean, stat.mean());
  }
  result.metrics.outstanding_imbalance =
      (outstanding_stats.empty() || min_mean <= 0.0) ? 0.0
                                                     : max_mean / min_mean;

  if (spec.collect_trace) {
    std::string trace;
    trace.reserve(all.size() * 64);
    for (const RequestOutcome& o : all) {
      trace += StrFormat(
          "%lld r%d>r%d@%d s%lld f%lld c%lld p%lld k%lld o%lld h%d%s\n",
          static_cast<long long>(o.id), static_cast<int>(o.client_region),
          static_cast<int>(o.served_region), static_cast<int>(o.replica),
          static_cast<long long>(o.submit_time),
          static_cast<long long>(o.first_token_time),
          static_cast<long long>(o.completion_time),
          static_cast<long long>(o.prompt_tokens),
          static_cast<long long>(o.cached_prompt_tokens),
          static_cast<long long>(o.output_tokens), o.hops,
          o.forwarded ? " F" : "");
    }
    result.trace = std::move(trace);
  }

  // --- resilience accounting ---
  for (const auto& client : clients) {
    result.issued += static_cast<int64_t>(client->issued_requests());
    result.completed_total +=
        static_cast<int64_t>(client->completed_requests());
    result.client_errors += static_cast<int64_t>(client->errors());
  }
  result.lost_forever =
      result.issued - result.completed_total - result.client_errors;
  for (const auto& lb : deployment->lbs()) {
    SkyWalkerLb::Stats lb_stats = lb->stats();
    result.request_timeouts += lb_stats.request_timeouts;
    result.probe_misses += lb_stats.probe_misses;
    result.ejections += lb_stats.ejections;
    result.recoveries += lb_stats.recoveries;
    result.late_completions += lb_stats.late_completions;
    result.config_swaps += lb_stats.config_swaps;
  }
  result.failovers = deployment->controller()->stats().failovers_handled;

  result.messages_sent = net->messages_sent();
  result.cross_region_messages = net->cross_region_messages();
  result.executed_events = executed;
  result.run_wall_seconds = wall_seconds;
  if (sharded != nullptr) {
    result.shard_timing = sharded->Timing();
    result.windows = sharded->windows();
    result.lookahead = sharded->lookahead();
    result.num_shards = sharded->num_shards();
    result.num_threads = sharded->num_threads();
  }
  return result;
}

}  // namespace skywalker
