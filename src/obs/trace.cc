#include "src/obs/trace.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/common/json.h"

namespace skywalker {

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kInvalid: return "invalid";
    case TraceEventType::kSubmit: return "submit";
    case TraceEventType::kLbEnqueue: return "lb_enqueue";
    case TraceEventType::kRouteCandidate: return "route_candidate";
    case TraceEventType::kRouteDecision: return "route_decision";
    case TraceEventType::kForward: return "forward";
    case TraceEventType::kDispatch: return "dispatch";
    case TraceEventType::kReplicaArrive: return "replica_arrive";
    case TraceEventType::kAdmit: return "admit";
    case TraceEventType::kPrefillChunk: return "prefill_chunk";
    case TraceEventType::kFirstToken: return "first_token";
    case TraceEventType::kComplete: return "complete";
    case TraceEventType::kTimeout: return "timeout";
    case TraceEventType::kDrop: return "drop";
    case TraceEventType::kLbError: return "lb_error";
    case TraceEventType::kPreempt: return "preempt";
    case TraceEventType::kRestore: return "restore";
    case TraceEventType::kEngineStep: return "engine_step";
    case TraceEventType::kMemSample: return "mem_sample";
    case TraceEventType::kCacheEvict: return "cache_evict";
    case TraceEventType::kKvSwapOut: return "kv_swap_out";
    case TraceEventType::kKvSwapIn: return "kv_swap_in";
    case TraceEventType::kWatermarkReject: return "watermark_reject";
    case TraceEventType::kProbe: return "probe";
    case TraceEventType::kEject: return "eject";
    case TraceEventType::kRecover: return "recover";
    case TraceEventType::kConfigSwap: return "config_swap";
  }
  return "unknown";
}

Tracer::Tracer(int32_t num_regions, int64_t max_records_per_region)
    : rings_(static_cast<size_t>(num_regions) + 1),
      max_slabs_per_ring_(std::max<size_t>(
          1, (static_cast<size_t>(max_records_per_region) + kSlabRecords - 1) /
                 kSlabRecords)) {}

Tracer::Ring& Tracer::RingFor(int16_t region) {
  size_t index = static_cast<size_t>(region + 1);
  assert(index < rings_.size() && "region outside the tracer's ring table");
  if (index >= rings_.size()) {
    index = 0;  // Release builds: misrouted rather than out of bounds.
  }
  return rings_[index];
}

void Tracer::Emit(const TraceRecord& record) {
  Ring& ring = RingFor(record.region);
  if (ring.slabs.empty() || ring.tail_used == kSlabRecords) {
    if (ring.slabs.size() < max_slabs_per_ring_) {
      ring.slabs.push_back(std::make_unique<Slab>());
    } else {
      // Drop-oldest: recycle the head slab as the new tail. Rotating the
      // pointer vector is O(slabs) per 4096 records — amortized O(1)/record
      // — and allocates nothing, which keeps steady state allocation-free.
      std::rotate(ring.slabs.begin(), ring.slabs.begin() + 1,
                  ring.slabs.end());
      ring.dropped += static_cast<int64_t>(kSlabRecords);
    }
    ring.tail_used = 0;
  }
  ring.slabs.back()->records[ring.tail_used++] = record;
}

int64_t Tracer::size() const {
  int64_t total = 0;
  for (const Ring& ring : rings_) {
    if (ring.slabs.empty()) {
      continue;
    }
    total += static_cast<int64_t>((ring.slabs.size() - 1) * kSlabRecords +
                                  ring.tail_used);
  }
  return total;
}

int64_t Tracer::dropped() const {
  int64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.dropped;
  }
  return total;
}

std::vector<TraceRecord> Tracer::Merged() const {
  std::vector<TraceRecord> merged;
  merged.reserve(static_cast<size_t>(size()));
  // Concatenate rings in region order; each ring is already in per-region
  // append order. A stable sort by time then realizes the (time, region,
  // seq) total order — ties keep concatenation order, which is exactly
  // (region, per-region seq).
  for (const Ring& ring : rings_) {
    for (size_t s = 0; s < ring.slabs.size(); ++s) {
      size_t n = s + 1 == ring.slabs.size() ? ring.tail_used : kSlabRecords;
      const TraceRecord* recs = ring.slabs[s]->records;
      merged.insert(merged.end(), recs, recs + n);
    }
  }
  std::stable_sort(
      merged.begin(), merged.end(),
      [](const TraceRecord& a, const TraceRecord& b) { return a.time < b.time; });
  return merged;
}

void Tracer::Clear() {
  for (Ring& ring : rings_) {
    // Keep one slab hot for reuse; release the rest.
    if (ring.slabs.size() > 1) {
      ring.slabs.resize(1);
    }
    ring.tail_used = 0;
    ring.dropped = 0;
  }
}

namespace {

// Chrome trace "phase" for a record: engine steps have a duration, memory
// samples are counters, everything else is an instant.
bool IsCounter(TraceEventType t) { return t == TraceEventType::kMemSample; }
bool IsSlice(TraceEventType t) { return t == TraceEventType::kEngineStep; }

}  // namespace

std::string TraceToChromeJson(
    const std::vector<TraceRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  Json doc = Json::Object();
  Json events = Json::Array();
  for (const TraceRecord& r : records) {
    TraceEventType type = static_cast<TraceEventType>(r.type);
    Json e = Json::Object();
    e.Set("name", TraceEventTypeName(type));
    e.Set("pid", static_cast<int>(r.region));
    e.Set("tid", static_cast<int>(r.replica));
    if (IsSlice(type)) {
      e.Set("ph", "X");
      // The record is stamped at step completion; the slice starts x us
      // earlier.
      e.Set("ts", static_cast<double>(r.time) - r.x);
      e.Set("dur", r.x);
    } else if (IsCounter(type)) {
      e.Set("ph", "C");
      e.Set("ts", static_cast<double>(r.time));
    } else {
      e.Set("ph", "i");
      e.Set("ts", static_cast<double>(r.time));
      e.Set("s", "t");
    }
    Json args = Json::Object();
    if (r.request >= 0) {
      args.Set("request", r.request);
    }
    if (IsCounter(type)) {
      args.Set("free_blocks", r.a);
      args.Set("running", r.b);
      args.Set("memory_utilization", r.x);
    } else {
      args.Set("a", r.a);
      args.Set("b", r.b);
      args.Set("x", r.x);
    }
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  Json m = Json::Object();
  m.Set("schema_version", 1);
  m.Set("records", static_cast<int64_t>(records.size()));
  for (const auto& [key, value] : meta) {
    m.Set(key, value);
  }
  doc.Set("skywalker", std::move(m));
  return doc.Dump(false);
}

namespace {

constexpr char kTraceMagic[8] = {'S', 'K', 'T', 'R', 'A', 'C', 'E', '1'};

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

uint32_t ReadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

std::string TraceToBinary(
    const std::vector<TraceRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta) {
  // Metadata rides as a compact JSON object so the format stays
  // self-describing without a second serializer.
  Json m = Json::Object();
  for (const auto& [key, value] : meta) {
    m.Set(key, value);
  }
  std::string meta_blob = m.Dump(false);

  std::string out;
  out.reserve(32 + meta_blob.size() + records.size() * sizeof(TraceRecord));
  out.append(kTraceMagic, sizeof(kTraceMagic));
  AppendU32(&out, 1);  // Format version.
  AppendU32(&out, static_cast<uint32_t>(sizeof(TraceRecord)));
  AppendU32(&out, static_cast<uint32_t>(records.size()));
  AppendU32(&out, static_cast<uint32_t>(meta_blob.size()));
  out.append(meta_blob);
  if (!records.empty()) {
    out.append(reinterpret_cast<const char*>(records.data()),
               records.size() * sizeof(TraceRecord));
  }
  return out;
}

bool ParseTraceBinary(
    const std::string& bytes, std::vector<TraceRecord>* records,
    std::vector<std::pair<std::string, std::string>>* meta) {
  constexpr size_t kHeader = sizeof(kTraceMagic) + 4 * 4;
  if (bytes.size() < kHeader ||
      std::memcmp(bytes.data(), kTraceMagic, sizeof(kTraceMagic)) != 0) {
    return false;
  }
  const char* p = bytes.data() + sizeof(kTraceMagic);
  uint32_t version = ReadU32(p);
  uint32_t record_size = ReadU32(p + 4);
  uint32_t count = ReadU32(p + 8);
  uint32_t meta_len = ReadU32(p + 12);
  if (version != 1 || record_size != sizeof(TraceRecord)) {
    return false;
  }
  size_t need = kHeader + meta_len +
                static_cast<size_t>(count) * sizeof(TraceRecord);
  if (bytes.size() != need) {
    return false;
  }
  if (meta != nullptr) {
    meta->clear();
    auto parsed = Json::Parse(
        std::string_view(bytes.data() + kHeader, meta_len));
    if (!parsed || !parsed->is_object()) {
      return false;
    }
    for (const auto& [key, value] : parsed->items()) {
      meta->emplace_back(key,
                         value.is_string() ? value.AsString() : value.Dump());
    }
  }
  records->resize(count);
  if (count > 0) {
    std::memcpy(records->data(), bytes.data() + kHeader + meta_len,
                static_cast<size_t>(count) * sizeof(TraceRecord));
  }
  return true;
}

namespace {

bool WriteFileBytes(const std::filesystem::path& path,
                    const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

bool WriteTraceArtifacts(
    const Tracer& tracer, const std::string& dir, const std::string& scenario,
    const std::string& cell,
    std::vector<std::pair<std::string, std::string>> meta) {
  std::string label = cell;
  std::replace(label.begin(), label.end(), '/', '_');
  meta.insert(meta.begin(), {{"scenario", scenario}, {"cell", cell}});
  meta.emplace_back("dropped_records", std::to_string(tracer.dropped()));
  const std::vector<TraceRecord> merged = tracer.Merged();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // Failure surfaces below.
  const std::filesystem::path base =
      std::filesystem::path(dir) / ("TRACE_" + scenario + "_" + label);
  const bool wrote_bin =
      WriteFileBytes(base.string() + ".bin", TraceToBinary(merged, meta));
  const bool wrote_json = WriteFileBytes(base.string() + ".json",
                                         TraceToChromeJson(merged, meta));
  return wrote_bin && wrote_json;
}

}  // namespace skywalker
