#include "src/obs/registry.h"

#include <algorithm>

namespace skywalker {

std::string FormatTags(
    const std::vector<std::pair<std::string, std::string>>& tags) {
  std::string out;
  for (const auto& [key, value] : tags) {
    if (!out.empty()) {
      out += ',';
    }
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string MetricsRegistry::Key(const std::string& name,
                                 const std::string& tags) {
  return tags.empty() ? name : name + "{" + tags + "}";
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& tags) {
  return &counters_[Key(name, tags)];
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& tags) {
  return &gauges_[Key(name, tags)];
}

Histogram* MetricsRegistry::GetHistogram(
    const std::string& name, const std::string& tags,
    const std::vector<double>& upper_bounds) {
  auto [it, inserted] =
      histograms_.try_emplace(Key(name, tags), Histogram(upper_bounds));
  return &it->second;
}

Series* MetricsRegistry::GetSeries(const std::string& name,
                                   const std::string& tags) {
  return &series_[Key(name, tags)];
}

Json MetricsRegistry::Snapshot(bool include_series) const {
  Json root = Json::Object();
  Json counters = Json::Object();
  for (const auto& [key, counter] : counters_) {
    counters.Set(key, counter.value());
  }
  root.Set("counters", std::move(counters));
  Json gauges = Json::Object();
  for (const auto& [key, gauge] : gauges_) {
    gauges.Set(key, gauge.value());
  }
  root.Set("gauges", std::move(gauges));
  Json histograms = Json::Object();
  for (const auto& [key, histogram] : histograms_) {
    Json h = Json::Object();
    h.Set("count", static_cast<int64_t>(histogram.count()));
    h.Set("mean", histogram.mean());
    h.Set("p50", histogram.Quantile(0.5));
    h.Set("p90", histogram.Quantile(0.9));
    h.Set("p99", histogram.Quantile(0.99));
    h.Set("max", histogram.max());
    histograms.Set(key, std::move(h));
  }
  root.Set("histograms", std::move(histograms));
  if (include_series) {
    Json series = Json::Object();
    for (const auto& [key, s] : series_) {
      Json points = Json::Array();
      for (const auto& [t, v] : s.points()) {
        Json point = Json::Array();
        point.Append(t);
        point.Append(v);
        points.Append(std::move(point));
      }
      series.Set(key, std::move(points));
    }
    root.Set("series", std::move(series));
  }
  return root;
}

namespace {

std::string ReplicaTags(const TraceRecord& r) {
  return FormatTags({{"region", std::to_string(r.region)},
                     {"replica", std::to_string(r.replica)}});
}

std::string RegionTags(const TraceRecord& r) {
  return FormatTags({{"region", std::to_string(r.region)}});
}

// Latency-style geometric grid: 1 ms .. ~537 s in x2 steps (microseconds).
std::vector<double> LatencyBoundsUs() {
  return Histogram::Exponential(1000.0, 2.0, 20).bounds();
}

}  // namespace

void BuildMetricsFromTrace(const std::vector<TraceRecord>& records,
                           SimDuration window, MetricsRegistry* registry) {
  const std::vector<double> latency_bounds = LatencyBoundsUs();
  // Per-request submit / first-token times for the TTFT histogram. Request
  // ids are dense enough in practice that a sorted map stays cheap; the map
  // also keeps everything deterministic regardless of id allocation order.
  std::map<int64_t, TraceRecord> submits;
  for (const TraceRecord& r : records) {
    const auto type = static_cast<TraceEventType>(r.type);
    const std::string name = TraceEventTypeName(type);
    registry->GetCounter("trace_records", "type=" + name)->Add();
    switch (type) {
      case TraceEventType::kSubmit:
        registry->GetCounter("requests_submitted", RegionTags(r))->Add();
        submits.emplace(r.request, r);
        break;
      case TraceEventType::kRouteDecision:
        registry
            ->GetHistogram("lb_queue_wait_us", RegionTags(r), latency_bounds)
            ->Add(r.x);
        break;
      case TraceEventType::kForward:
        registry->GetCounter("requests_forwarded", RegionTags(r))->Add();
        break;
      case TraceEventType::kAdmit:
        registry->GetCounter("admissions", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kFirstToken: {
        auto it = submits.find(r.request);
        if (it != submits.end()) {
          registry
              ->GetHistogram("ttft_us", RegionTags(it->second),
                             latency_bounds)
              ->Add(static_cast<double>(r.time - it->second.time));
        }
        break;
      }
      case TraceEventType::kComplete: {
        registry->GetCounter("requests_completed", ReplicaTags(r))->Add();
        auto it = submits.find(r.request);
        if (it != submits.end()) {
          registry
              ->GetHistogram("request_latency_us", RegionTags(it->second),
                             latency_bounds)
              ->Add(static_cast<double>(r.time - it->second.time));
        }
        break;
      }
      case TraceEventType::kTimeout:
        registry->GetCounter("requests_timed_out", RegionTags(r))->Add();
        break;
      case TraceEventType::kDrop:
        registry->GetCounter("requests_dropped", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kLbError:
        registry->GetCounter("lb_errors", RegionTags(r))->Add();
        break;
      case TraceEventType::kPreempt:
        registry->GetCounter("preemptions", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kKvSwapOut:
        registry->GetCounter("kv_swap_outs", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kKvSwapIn:
        registry->GetCounter("kv_swap_ins", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kWatermarkReject:
        registry->GetCounter("watermark_rejections", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kCacheEvict:
        registry->GetCounter("cache_evictions", ReplicaTags(r))
            ->Add(r.a);  // victims
        break;
      case TraceEventType::kEngineStep:
        registry
            ->GetHistogram("engine_step_us", ReplicaTags(r), latency_bounds)
            ->Add(r.x);
        break;
      case TraceEventType::kMemSample:
        registry->GetSeries("memory_utilization", ReplicaTags(r))
            ->Append(r.time, r.x);
        registry->GetGauge("memory_utilization_last", ReplicaTags(r))
            ->Set(r.x);
        break;
      case TraceEventType::kEject:
        registry->GetCounter(
            r.a != 0 ? "ejections_latency" : "ejections_failure",
            ReplicaTags(r))
            ->Add();
        break;
      case TraceEventType::kRecover:
        registry->GetCounter("recoveries", ReplicaTags(r))->Add();
        break;
      case TraceEventType::kConfigSwap:
        registry->GetCounter("config_swaps", RegionTags(r))->Add();
        break;
      default:
        break;
    }
  }
  // Windowed throughput / preemption series over the whole fleet. Records
  // are time-sorted, so one forward pass bins them.
  if (window > 0 && !records.empty()) {
    Series* throughput = registry->GetSeries("completions_per_window");
    Series* preempts = registry->GetSeries("preemptions_per_window");
    SimTime window_end = window;
    double completed = 0;
    double preempted = 0;
    auto flush = [&](SimTime end) {
      throughput->Append(end, completed);
      preempts->Append(end, preempted);
      completed = 0;
      preempted = 0;
    };
    for (const TraceRecord& r : records) {
      while (r.time >= window_end) {
        flush(window_end);
        window_end += window;
      }
      const auto type = static_cast<TraceEventType>(r.type);
      if (type == TraceEventType::kComplete) {
        completed += 1;
      } else if (type == TraceEventType::kPreempt) {
        preempted += 1;
      }
    }
    flush(window_end);
  }
}

}  // namespace skywalker
