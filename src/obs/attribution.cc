#include "src/obs/attribution.h"

#include <algorithm>
#include <map>

#include "src/common/histogram.h"
#include "src/common/table.h"

namespace skywalker {

namespace {

// Per-request accumulator while walking the time-ordered stream.
struct Lifecycle {
  RequestAttribution att;
  SimTime first_enqueue = -1;
  SimTime last_dispatch = -1;
  SimTime replica_arrive = -1;
  SimTime first_admit = -1;
  SimTime pending_preempt = -1;  // Open preemption episode, if any.
  bool saw_first_token = false;
};

}  // namespace

std::vector<RequestAttribution> AttributeRequests(
    const std::vector<TraceRecord>& records) {
  std::map<int64_t, Lifecycle> lifecycles;
  for (const TraceRecord& r : records) {
    if (r.request < 0) {
      continue;
    }
    const auto type = static_cast<TraceEventType>(r.type);
    if (type == TraceEventType::kSubmit) {
      Lifecycle& lc = lifecycles[r.request];
      lc.att.request = r.request;
      lc.att.region = r.region;
      lc.att.submit = r.time;
      lc.att.prompt_tokens = r.a;
      continue;
    }
    auto it = lifecycles.find(r.request);
    if (it == lifecycles.end()) {
      continue;  // No submit record (trace started mid-request).
    }
    Lifecycle& lc = it->second;
    switch (type) {
      case TraceEventType::kLbEnqueue:
        if (lc.first_enqueue < 0) {
          lc.first_enqueue = r.time;
        }
        break;
      case TraceEventType::kForward:
        ++lc.att.forwards;
        break;
      case TraceEventType::kDispatch:
        lc.last_dispatch = r.time;
        break;
      case TraceEventType::kReplicaArrive:
        if (lc.replica_arrive < 0) {
          lc.replica_arrive = r.time;
          lc.att.replica = r.replica;
        }
        break;
      case TraceEventType::kAdmit:
      case TraceEventType::kRestore:
        if (lc.first_admit < 0) {
          lc.first_admit = r.time;
          lc.att.replica = r.replica;
        }
        // Close an open preemption episode (recompute re-admission or
        // swap-in restore) — the gap counts toward preempt time only while
        // the first token is still outstanding.
        if (lc.pending_preempt >= 0) {
          if (!lc.saw_first_token) {
            lc.att.preempt_us += r.time - lc.pending_preempt;
          }
          lc.pending_preempt = -1;
        }
        break;
      case TraceEventType::kPreempt:
        ++lc.att.preemptions;
        if (lc.pending_preempt < 0) {
          lc.pending_preempt = r.time;
        }
        break;
      case TraceEventType::kFirstToken:
        if (!lc.saw_first_token) {
          lc.saw_first_token = true;
          lc.att.first_token = r.time;
          lc.att.cached_tokens = r.a;
        }
        break;
      case TraceEventType::kComplete:
        lc.att.complete = r.time;
        break;
      case TraceEventType::kTimeout:
        lc.att.timed_out = true;
        break;
      default:
        break;
    }
  }

  std::vector<RequestAttribution> out;
  out.reserve(lifecycles.size());
  for (auto& [id, lc] : lifecycles) {
    RequestAttribution& att = lc.att;
    if (att.submit >= 0 && att.complete >= 0) {
      att.latency_us = att.complete - att.submit;
    }
    if (att.submit >= 0 && att.first_token >= 0) {
      att.ttft_us = att.first_token - att.submit;
      // Components; anything un-observed collapses into its neighbor so the
      // sum stays exact (e.g. a trace without LB events attributes the whole
      // pre-arrival span to network).
      const SimTime enqueue =
          lc.first_enqueue >= 0 ? lc.first_enqueue : att.submit;
      const SimTime dispatch =
          lc.last_dispatch >= 0 ? lc.last_dispatch : enqueue;
      const SimTime arrive =
          lc.replica_arrive >= 0 ? lc.replica_arrive : dispatch;
      const SimTime admit = lc.first_admit >= 0 ? lc.first_admit : arrive;
      att.network_us = (enqueue - att.submit) + (arrive - dispatch);
      att.lb_queue_us = dispatch - enqueue;
      att.stall_us = admit - arrive;
      att.prefill_us = (att.first_token - admit) - att.preempt_us;
    }
    out.push_back(std::move(att));
  }
  return out;
}

namespace {

struct ComponentView {
  const char* name;
  int64_t RequestAttribution::* field;
};

constexpr ComponentView kComponents[] = {
    {"network", &RequestAttribution::network_us},
    {"lb_queue", &RequestAttribution::lb_queue_us},
    {"stall", &RequestAttribution::stall_us},
    {"preempt", &RequestAttribution::preempt_us},
    {"prefill", &RequestAttribution::prefill_us},
};

std::string Ms(double us) { return Table::Num(us / 1000.0, 2); }

}  // namespace

std::string AttributionSummaryTable(
    const std::vector<RequestAttribution>& attributions) {
  Distribution ttft;
  for (const RequestAttribution& att : attributions) {
    if (att.ttft_us >= 0) {
      ttft.Add(static_cast<double>(att.ttft_us));
    }
  }
  Table table({"component", "mean_ms", "p50_ms", "p90_ms", "p99_ms",
               "share_of_mean"});
  for (const ComponentView& comp : kComponents) {
    Distribution dist;
    for (const RequestAttribution& att : attributions) {
      if (att.ttft_us >= 0) {
        dist.Add(static_cast<double>(att.*(comp.field)));
      }
    }
    const double share =
        ttft.count() == 0 || ttft.mean() <= 0 ? 0 : dist.mean() / ttft.mean();
    table.AddRow({comp.name, Ms(dist.mean()), Ms(dist.Percentile(50)),
                  Ms(dist.Percentile(90)), Ms(dist.Percentile(99)),
                  Table::Num(share, 3)});
  }
  table.AddRow({"ttft", Ms(ttft.mean()), Ms(ttft.Percentile(50)),
                Ms(ttft.Percentile(90)), Ms(ttft.Percentile(99)),
                Table::Num(1.0, 3)});
  std::string out = "TTFT attribution over " +
                    std::to_string(ttft.count()) + " first tokens\n";
  out += table.ToAscii();
  return out;
}

std::string SlowestRequestsTable(
    const std::vector<RequestAttribution>& attributions, int k) {
  std::vector<const RequestAttribution*> slow;
  for (const RequestAttribution& att : attributions) {
    if (att.ttft_us >= 0) {
      slow.push_back(&att);
    }
  }
  std::stable_sort(slow.begin(), slow.end(),
                   [](const RequestAttribution* a,
                      const RequestAttribution* b) {
                     return a->ttft_us > b->ttft_us;
                   });
  if (static_cast<int>(slow.size()) > k) {
    slow.resize(static_cast<size_t>(k));
  }
  Table table({"request", "replica", "ttft_ms", "network_ms", "lb_queue_ms",
               "stall_ms", "preempt_ms", "prefill_ms", "preemptions",
               "cached"});
  for (const RequestAttribution* att : slow) {
    table.AddRow({std::to_string(att->request),
                  std::to_string(att->replica),
                  Ms(static_cast<double>(att->ttft_us)),
                  Ms(static_cast<double>(att->network_us)),
                  Ms(static_cast<double>(att->lb_queue_us)),
                  Ms(static_cast<double>(att->stall_us)),
                  Ms(static_cast<double>(att->preempt_us)),
                  Ms(static_cast<double>(att->prefill_us)),
                  std::to_string(att->preemptions),
                  std::to_string(att->cached_tokens)});
  }
  std::string out =
      "Slowest " + std::to_string(slow.size()) + " requests by TTFT\n";
  out += table.ToAscii();
  return out;
}

namespace {

struct ReplicaRollup {
  int64_t steps = 0;
  double busy_us = 0;
  int64_t preemptions = 0;
  int64_t swap_outs = 0;
  int64_t completions = 0;
  int64_t ejections = 0;
  int64_t recoveries = 0;
  Distribution utilization;
  SimTime last_event = 0;
};

}  // namespace

std::string ReplicaTimelineTable(const std::vector<TraceRecord>& records) {
  std::map<std::pair<int16_t, int32_t>, ReplicaRollup> rollups;
  SimTime horizon = 0;
  for (const TraceRecord& r : records) {
    horizon = std::max(horizon, r.time);
    if (r.replica < 0) {
      continue;
    }
    ReplicaRollup& roll = rollups[{r.region, r.replica}];
    roll.last_event = std::max(roll.last_event, r.time);
    switch (static_cast<TraceEventType>(r.type)) {
      case TraceEventType::kEngineStep:
        ++roll.steps;
        roll.busy_us += r.x;
        break;
      case TraceEventType::kPreempt:
        ++roll.preemptions;
        break;
      case TraceEventType::kKvSwapOut:
        ++roll.swap_outs;
        break;
      case TraceEventType::kComplete:
        ++roll.completions;
        break;
      case TraceEventType::kMemSample:
        roll.utilization.Add(r.x);
        break;
      case TraceEventType::kEject:
        ++roll.ejections;
        break;
      case TraceEventType::kRecover:
        ++roll.recoveries;
        break;
      default:
        break;
    }
  }
  Table table({"region", "replica", "steps", "busy_frac", "completions",
               "preempts", "swap_outs", "mem_p50", "mem_max", "ejects",
               "recovers"});
  for (const auto& [key, roll] : rollups) {
    const double busy_frac =
        horizon <= 0 ? 0 : roll.busy_us / static_cast<double>(horizon);
    table.AddRow({std::to_string(key.first), std::to_string(key.second),
                  std::to_string(roll.steps), Table::Num(busy_frac, 3),
                  std::to_string(roll.completions),
                  std::to_string(roll.preemptions),
                  std::to_string(roll.swap_outs),
                  Table::Num(roll.utilization.empty()
                                 ? 0
                                 : roll.utilization.Percentile(50),
                             3),
                  Table::Num(roll.utilization.empty()
                                 ? 0
                                 : roll.utilization.max(),
                             3),
                  std::to_string(roll.ejections),
                  std::to_string(roll.recoveries)});
  }
  std::string out = "Per-replica rollup (horizon " +
                    Table::Num(static_cast<double>(horizon) / 1e6, 1) +
                    " s)\n";
  out += table.ToAscii();
  return out;
}

Json AttributionReportJson(const std::vector<TraceRecord>& records,
                           const std::vector<RequestAttribution>& attributions,
                           int top_k) {
  Json root = Json::Object();
  root.Set("schema_version", 1);
  root.Set("records", static_cast<int64_t>(records.size()));
  root.Set("requests", static_cast<int64_t>(attributions.size()));

  Distribution ttft;
  int64_t timed_out = 0;
  int64_t completed = 0;
  for (const RequestAttribution& att : attributions) {
    if (att.ttft_us >= 0) {
      ttft.Add(static_cast<double>(att.ttft_us));
    }
    if (att.timed_out) {
      ++timed_out;
    }
    if (att.complete >= 0) {
      ++completed;
    }
  }
  root.Set("completed", completed);
  root.Set("timed_out", timed_out);

  Json components = Json::Object();
  for (const ComponentView& comp : kComponents) {
    Distribution dist;
    for (const RequestAttribution& att : attributions) {
      if (att.ttft_us >= 0) {
        dist.Add(static_cast<double>(att.*(comp.field)));
      }
    }
    Json c = Json::Object();
    c.Set("mean_us", dist.mean());
    c.Set("p50_us", dist.Percentile(50));
    c.Set("p90_us", dist.Percentile(90));
    c.Set("p99_us", dist.Percentile(99));
    c.Set("share_of_mean_ttft",
          ttft.count() == 0 || ttft.mean() <= 0 ? 0.0
                                                : dist.mean() / ttft.mean());
    components.Set(comp.name, std::move(c));
  }
  root.Set("ttft_components", std::move(components));

  Json ttft_stats = Json::Object();
  ttft_stats.Set("count", static_cast<int64_t>(ttft.count()));
  ttft_stats.Set("mean_us", ttft.mean());
  ttft_stats.Set("p50_us", ttft.Percentile(50));
  ttft_stats.Set("p90_us", ttft.Percentile(90));
  ttft_stats.Set("p99_us", ttft.Percentile(99));
  root.Set("ttft", std::move(ttft_stats));

  std::vector<const RequestAttribution*> slow;
  for (const RequestAttribution& att : attributions) {
    if (att.ttft_us >= 0) {
      slow.push_back(&att);
    }
  }
  std::stable_sort(slow.begin(), slow.end(),
                   [](const RequestAttribution* a,
                      const RequestAttribution* b) {
                     return a->ttft_us > b->ttft_us;
                   });
  if (static_cast<int>(slow.size()) > top_k) {
    slow.resize(static_cast<size_t>(top_k));
  }
  Json slowest = Json::Array();
  for (const RequestAttribution* att : slow) {
    Json row = Json::Object();
    row.Set("request", att->request);
    row.Set("replica", att->replica);
    row.Set("ttft_us", att->ttft_us);
    row.Set("network_us", att->network_us);
    row.Set("lb_queue_us", att->lb_queue_us);
    row.Set("stall_us", att->stall_us);
    row.Set("preempt_us", att->preempt_us);
    row.Set("prefill_us", att->prefill_us);
    row.Set("preemptions", att->preemptions);
    slowest.Append(std::move(row));
  }
  root.Set("slowest_requests", std::move(slowest));
  return root;
}

}  // namespace skywalker
