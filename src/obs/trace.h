// Deterministic request-lifecycle tracer (ISSUE 9, DESIGN.md §11).
//
// A Tracer is a passive sink of fixed-size POD TraceRecords appended by the
// serving stack at lifecycle points: submit -> route decision (with
// per-candidate scores) -> forward -> enqueue -> admit -> prefill chunks ->
// first token -> preempt/swap/restore -> complete|timeout, plus the
// replica-level engine-step / memory-sample stream and the control-plane
// events (ejection, recovery, config reswap). It never schedules events,
// never reads RNG state, and never mutates actor state — tracing observes,
// it cannot perturb: a traced run's metrics are byte-identical to an
// untraced run's, which tests/trace_determinism_test.cc pins.
//
// Zero overhead when off: every emission site is
//     if (Tracer* t = sim->tracer()) { t->Emit({...}); }
// — one pointer load and a predictable branch when no tracer is installed
// (the default). No record is constructed on the off path.
//
// Determinism contract (the §7.2 keyed-ordering extension): records are
// buffered per *region* in slab-backed rings. A region's events execute on
// exactly one shard under the sharded simulator, and keyed ordering makes a
// region's execution history a pure function of the workload — so each
// region's append stream is identical for any grouping of regions into
// shards and any thread count. The merged order is (time, region,
// per-region append seq): concatenate the rings in region order and
// stable-sort by time. Exported trace bytes are therefore bit-identical
// across shard/thread counts.
//
// Memory: each ring grows in 4096-record slabs up to `max_records_per_region`
// and then recycles its oldest slab (drop-oldest, counted in dropped()).
// Steady state allocates nothing — slab recycling reuses storage, and
// dropping is per-region-local, so a capped trace is still deterministic.

#ifndef SKYWALKER_OBS_TRACE_H_
#define SKYWALKER_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace skywalker {

// Stable on-disk ids (the compact binary stores the numeric value; renaming
// an enumerator is fine, renumbering is a format break).
enum class TraceEventType : uint16_t {
  kInvalid = 0,
  // --- request lifecycle -------------------------------------------------
  kSubmit = 1,          // client. a=prompt_tokens.
  kLbEnqueue = 2,       // LB FCFS queue entry. a=queue_len_after, b=forwarded_in.
  kRouteCandidate = 3,  // one per candidate. replica=candidate, a=available, x=effective_load.
  kRouteDecision = 4,   // replica=chosen. a=queue_len_before, x=queue_wait_us.
  kForward = 5,         // cross-region offload. a=dest_region.
  kDispatch = 6,        // committed to replica. x=queue_wait_us.
  kReplicaArrive = 7,   // landed in the replica pending queue. a=pending_after.
  kAdmit = 8,           // entered the continuous batch. a=cached_len, b=prefill_remaining.
  kPrefillChunk = 9,    // a=tokens_this_step, b=remaining_after.
  kFirstToken = 10,     // prefill complete, TTFT endpoint. a=cached_len.
  kComplete = 11,       // a=output_tokens.
  kTimeout = 12,        // LB-side request timeout fired.
  kDrop = 13,           // replica dropped the arrival (failed engine).
  kLbError = 14,        // LB errored the queued request (flush).
  kPreempt = 15,        // victim of ReclaimMemory. a=resident_tokens, b=policy(0 recompute/1 swap).
  kRestore = 16,        // swapped sequence re-entered the batch.
  // --- replica / memory telemetry (request = -1) -------------------------
  kEngineStep = 17,     // a=prefill_tokens, b=decode_count, x=step_us.
  kMemSample = 18,      // a=free_blocks, b=running, x=memory_utilization.
  kCacheEvict = 19,     // a=victims, b=freed_blocks, x=policy.
  kKvSwapOut = 20,      // kv ledger swap-out. a=tokens, x=transfer_us.
  kKvSwapIn = 21,       // kv ledger swap-in admission. a=tokens, x=transfer_us.
  kWatermarkReject = 22,// admission blocked by watermark. a=free_blocks, b=committed_blocks.
  // --- control plane (request = -1) --------------------------------------
  kProbe = 23,          // probe response landed. a=version, b=pending, x=ewma_us_per_token.
  kEject = 24,          // health machine ejected replica. a=reason(0 failures/1 latency).
  kRecover = 25,        // half-open recovery confirmed.
  kConfigSwap = 26,     // engine ApplyConfig. a=push_mode.
};

// Human-readable name ("submit", "route_decision", ...) for exporters.
const char* TraceEventTypeName(TraceEventType type);

// One trace event. Fixed 48-byte POD with no padding, so the compact binary
// format is a straight memcpy of the merged stream. Field meaning per type
// is documented on TraceEventType; unused fields stay at their defaults.
struct TraceRecord {
  SimTime time = 0;     // Simulated microseconds.
  int64_t request = -1; // RequestId, or -1 for replica/control-plane records.
  int64_t a = 0;
  int64_t b = 0;
  double x = 0;
  uint16_t type = 0;    // TraceEventType.
  int16_t region = -1;  // Emitting actor's region (ring index).
  int32_t replica = -1;
};
static_assert(sizeof(TraceRecord) == 48, "binary trace format is 48B records");

class Tracer {
 public:
  // `num_regions` sizes the ring table (region -1 shares ring 0 with
  // nothing else; region r uses ring r+1). Emitting for a region >=
  // num_regions aborts in debug builds and drops in release.
  explicit Tracer(int32_t num_regions,
                  int64_t max_records_per_region = kDefaultMaxRecords);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Appends to the record's region ring. Thread-safe across *different*
  // regions (each region's events run on one shard); never safe for one
  // region from two threads — which the sharded simulator's region
  // ownership rules out.
  void Emit(const TraceRecord& record);

  // Records retained across all rings / records dropped by ring caps.
  int64_t size() const;
  int64_t dropped() const;

  // All retained records in the deterministic (time, region, seq) order.
  std::vector<TraceRecord> Merged() const;

  // Drops all records; keeps slab storage for reuse.
  void Clear();

  static constexpr int64_t kDefaultMaxRecords = 1 << 22;  // 192 MiB/region cap.
  static constexpr size_t kSlabRecords = 4096;

 private:
  struct Slab {
    TraceRecord records[kSlabRecords];
  };
  // One per region: slabs in chronological order; all full except the tail.
  struct Ring {
    std::vector<std::unique_ptr<Slab>> slabs;
    size_t tail_used = 0;   // Records in the last slab.
    int64_t dropped = 0;
  };

  Ring& RingFor(int16_t region);

  std::vector<Ring> rings_;
  size_t max_slabs_per_ring_;
};

// Emission-site helper: one call per record, common fields first. Sites
// guard with `if (Tracer* t = sim->tracer())` so the off path never even
// builds the arguments.
inline void EmitTrace(Tracer* tracer, SimTime time, TraceEventType type,
                      int32_t region, int32_t replica, int64_t request,
                      int64_t a = 0, int64_t b = 0, double x = 0.0) {
  TraceRecord record;
  record.time = time;
  record.request = request;
  record.a = a;
  record.b = b;
  record.x = x;
  record.type = static_cast<uint16_t>(type);
  record.region = static_cast<int16_t>(region);
  record.replica = replica;
  tracer->Emit(record);
}

// --- exporters -----------------------------------------------------------

// Chrome/Perfetto trace_event JSON: {"traceEvents": [...], "skywalker":
// {...metadata...}}. ts in microseconds; pid = region, tid = replica (or 0
// for LB-level events). Engine steps become duration ("X") slices, memory
// samples become counter ("C") series, everything else instants ("i").
// `meta` keys/values are copied into the "skywalker" object verbatim.
std::string TraceToChromeJson(
    const std::vector<TraceRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta);

// Compact binary: "SKTRACE1" magic, little-endian header, a metadata blob,
// then the raw 48-byte records. This is what `skytrace` loads.
std::string TraceToBinary(
    const std::vector<TraceRecord>& records,
    const std::vector<std::pair<std::string, std::string>>& meta);

// Parses TraceToBinary output. Returns false on a malformed buffer. `meta`
// (optional) receives the metadata blob's key/value pairs.
bool ParseTraceBinary(
    const std::string& bytes, std::vector<TraceRecord>* records,
    std::vector<std::pair<std::string, std::string>>* meta = nullptr);

// Writes TRACE_<scenario>_<cell>.bin (compact binary, the skytrace input)
// and TRACE_<scenario>_<cell>.json (Chrome trace_event) under `dir`,
// sanitizing '/' in the cell label to '_'. `scenario` and `cell` are
// prepended to `meta`. Returns false if either write fails.
bool WriteTraceArtifacts(
    const Tracer& tracer, const std::string& dir, const std::string& scenario,
    const std::string& cell,
    std::vector<std::pair<std::string, std::string>> meta = {});

}  // namespace skywalker

#endif  // SKYWALKER_OBS_TRACE_H_
