// Request-lifecycle attribution (ISSUE 9): turns a merged trace into
// per-request TTFT decompositions and the reports `skytrace` prints.
//
// TTFT (submit -> first output token) decomposes into five named
// components that sum exactly to the total:
//   network  — client->LB submit hop plus the LB->replica dispatch hop;
//   lb_queue — waiting in balancer FCFS queues (includes any cross-region
//              forward hop: the request was queue-bound, not compute-bound);
//   stall    — accepted by the replica but blocked out of the continuous
//              batch (memory- or slot-blocked pending time);
//   preempt  — evicted from the batch before the first token and waiting to
//              be re-admitted (recompute) or restored (swap-in);
//   prefill  — actually computing prompt KV inside the batch.
// This is the decomposition the PR-8 finding needs: it names which
// component the BP arm's ~1.4x TTFT p90 inflation under saturation comes
// from (queue vs preemption vs network).

#ifndef SKYWALKER_OBS_ATTRIBUTION_H_
#define SKYWALKER_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/sim_time.h"
#include "src/obs/trace.h"

namespace skywalker {

struct RequestAttribution {
  int64_t request = -1;
  int16_t region = -1;        // Submitting client's region.
  int32_t replica = -1;       // Serving replica (first admission).
  int64_t prompt_tokens = 0;
  int64_t cached_tokens = 0;  // Prefix-cache hit at first token.
  SimTime submit = -1;
  SimTime first_token = -1;   // -1 if never produced.
  SimTime complete = -1;      // -1 if never completed.
  bool timed_out = false;
  int preemptions = 0;        // Total over the request's lifetime.
  int forwards = 0;           // Cross-region offload hops.

  int64_t ttft_us = -1;       // first_token - submit; -1 when unfinished.
  int64_t latency_us = -1;    // complete - submit; -1 when unfinished.
  // TTFT decomposition; the five components sum to ttft_us exactly when
  // ttft_us >= 0 (see file comment for component meaning).
  int64_t network_us = 0;
  int64_t lb_queue_us = 0;
  int64_t stall_us = 0;
  int64_t preempt_us = 0;
  int64_t prefill_us = 0;
};

// Groups a merged (time-ordered) trace by request id and computes the
// decomposition. Returns attributions sorted by request id; requests with
// no kSubmit record are skipped. Deterministic: a pure function of the
// record stream.
std::vector<RequestAttribution> AttributeRequests(
    const std::vector<TraceRecord>& records);

// Aggregate attribution table: one row per component with mean / p50 / p90 /
// p99 over requests that produced a first token, plus the share of total
// TTFT each component carries at the p90 tail.
std::string AttributionSummaryTable(
    const std::vector<RequestAttribution>& attributions);

// Top-`k` slowest requests by TTFT, one row each with the full component
// breakdown.
std::string SlowestRequestsTable(
    const std::vector<RequestAttribution>& attributions, int k);

// Per-replica timeline: utilization (from the kMemSample series), engine
// steps, preemptions, swaps, and control-plane eject/recover events.
std::string ReplicaTimelineTable(const std::vector<TraceRecord>& records);

// Machine-readable report for CI artifacts: aggregate component stats,
// top-k slowest requests, per-replica totals.
Json AttributionReportJson(const std::vector<TraceRecord>& records,
                           const std::vector<RequestAttribution>& attributions,
                           int top_k);

}  // namespace skywalker

#endif  // SKYWALKER_OBS_ATTRIBUTION_H_
