// Metrics registry (ISSUE 9, DESIGN.md §11): typed Counter / Gauge /
// Histogram / Series instruments keyed by (name, tags). Tags are a
// pre-formatted "k=v,k=v" string — deterministic by construction, so a
// snapshot's iteration order (std::map over name + tags) is stable across
// platforms and runs.
//
// The registry is *derived state*: skybench and skytrace populate it from a
// merged trace after the run via BuildMetricsFromTrace, never from inside
// the simulation. That keeps the perturbation-freedom guarantee trivial
// (nothing in the hot path even sees the registry) and makes the registry
// exactly as deterministic as the trace it was built from.

#ifndef SKYWALKER_OBS_REGISTRY_H_
#define SKYWALKER_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/json.h"
#include "src/common/sim_time.h"
#include "src/obs/trace.h"

namespace skywalker {

class Counter {
 public:
  void Add(int64_t n = 1) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// A (time, value) time series — the periodic-snapshot instrument. Points
// are appended in time order by construction (trace records are merged in
// time order).
class Series {
 public:
  void Append(SimTime t, double v) { points_.emplace_back(t, v); }
  const std::vector<std::pair<SimTime, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<SimTime, double>> points_;
};

// Formats the canonical tag string. Values are caller-formatted; keys must
// be passed in sorted order if cross-site agreement matters (the call sites
// in this repo always use the same literal order).
std::string FormatTags(
    const std::vector<std::pair<std::string, std::string>>& tags);

class MetricsRegistry {
 public:
  // Lookup-or-create. `tags` is the canonical "k=v,k=v" string ("" = none).
  Counter* GetCounter(const std::string& name, const std::string& tags = "");
  Gauge* GetGauge(const std::string& name, const std::string& tags = "");
  Histogram* GetHistogram(const std::string& name, const std::string& tags,
                          const std::vector<double>& upper_bounds);
  Series* GetSeries(const std::string& name, const std::string& tags = "");

  // Deterministic JSON snapshot: one object per instrument family, keys in
  // lexicographic (name, tags) order. Histograms export count/mean/p50/p90/
  // p99/max; series export [[t, v], ...] unless `include_series` is false.
  Json Snapshot(bool include_series = true) const;

 private:
  static std::string Key(const std::string& name, const std::string& tags);

  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Series> series_;
};

// Populates `registry` from a merged trace: lifecycle counters and latency
// histograms tagged by region/replica, plus windowed time series (throughput
// and preemptions per `window` of simulated time, memory utilization from
// the kMemSample stream). Deterministic: a pure function of the record
// stream.
void BuildMetricsFromTrace(const std::vector<TraceRecord>& records,
                           SimDuration window, MetricsRegistry* registry);

}  // namespace skywalker

#endif  // SKYWALKER_OBS_REGISTRY_H_
