// Discrete-event model of one LLM inference replica: an SGLang-style engine
// with continuous batching, chunked prefill, a paged KV memory budget, and a
// radix-tree prefix cache (paper §2.1).
//
// The model reproduces the observables the load-balancing layer depends on:
//  * a *pending queue* of requests accepted by the engine but not yet in the
//    continuous batch — the signal SP-P probes (§3.3);
//  * prefill time proportional to non-cached prompt tokens (≈300 ms for a
//    512-token prompt on an L4, §2.1), so prefix-cache hits directly cut
//    TTFT;
//  * step times of tens of milliseconds that grow with batch size;
//  * a KV capacity that bounds concurrent requests at 20–50 for typical
//    conversation lengths (§3.3), with LRU eviction and preemption under
//    pressure.
//
// Timing model per engine step:
//   duration = step_base + prefill_tokens · prefill_per_token
//            + decoding_seqs · decode_per_seq
//
// Prompt KV is published to the prefix cache when prefill completes (SGLang
// inserts computed KV into its radix tree immediately, so concurrent
// identical prompts share from that point); generated tokens are published
// at completion.

#ifndef SKYWALKER_REPLICA_REPLICA_H_
#define SKYWALKER_REPLICA_REPLICA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "src/cache/prefix_cache.h"
#include "src/common/sim_time.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

struct ReplicaConfig {
  // KV memory in tokens. Default models an L4 (24 GB) serving
  // Llama-3.1-8B: ~6 GB free for KV at 128 KiB/token ≈ 49K tokens.
  int64_t kv_capacity_tokens = 49152;

  // Engine cap on batch size (vLLM/SGLang max_num_seqs analogue).
  int max_running_requests = 64;

  // Chunked-prefill budget per engine step.
  int64_t max_prefill_tokens_per_step = 1024;

  // Admission headroom reserved per request for its future output.
  int64_t output_reserve_tokens = 128;

  // Timing constants (microseconds). Defaults calibrated so a 512-token
  // prefill costs ~300 ms (paper §2.1) and decode steps are tens of ms.
  // The per-context-token term models attention/KV-bandwidth cost, which
  // gives decode throughput its knee: beyond a few dozen sequences, adding
  // batch slots stops paying (as on a real L4).
  double step_base_us = 20000.0;
  double prefill_us_per_token = 550.0;
  double decode_us_per_seq = 400.0;
  double decode_us_per_context_token = 0.5;

  bool enable_prefix_cache = true;

  // Record a memory-utilization sample every N engine steps (0 disables).
  int memory_sample_every_steps = 4;
};

class Replica {
 public:
  struct Handlers {
    // First output token produced (prefill finished). `cached_tokens` is the
    // prefix-cache hit length at admission.
    std::function<void(const Request&, int64_t cached_tokens)> on_first_token;
    // All output tokens produced.
    std::function<void(const Request&, int64_t cached_tokens)> on_complete;
  };

  struct Stats {
    int64_t enqueued = 0;
    int64_t completed = 0;
    int64_t prefill_tokens_computed = 0;
    int64_t cached_tokens_reused = 0;
    int64_t output_tokens_generated = 0;
    int64_t preemptions = 0;
    int64_t engine_steps = 0;
    double busy_us = 0;          // Total step time.
    double peak_memory_utilization = 0;
    int peak_running = 0;
    int peak_pending = 0;
  };

  Replica(Simulator* sim, ReplicaId id, RegionId region,
          const ReplicaConfig& config);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Request arrival at the replica (network latency already applied by the
  // caller). Enters the pending queue until the batch admits it.
  void Enqueue(Request req, Handlers handlers);

  // --- Probe interface (what a heartbeat RPC would report, §3.3) ---

  // Requests not yet scheduled into the continuous batch. "> 0" is the
  // paper's definition of a full replica.
  int pending_count() const { return static_cast<int>(pending_.size()); }
  int running_count() const { return static_cast<int>(running_.size()); }
  // LB-visible total load (outstanding = pending + running).
  int outstanding_count() const { return pending_count() + running_count(); }

  int64_t memory_used_tokens() const;
  double memory_utilization() const;

  // Engine-reported admission headroom: how many more requests of typical
  // size the continuous batch could admit right now, bounded by both batch
  // slots and KV memory. Heartbeat probes report this alongside the pending
  // count so balancers can bound their optimistic pushes between probes.
  int EstimateFreeCapacity() const;

  // KV held by *running* requests (pinned cache paths + private tokens).
  // Excludes cached-but-idle content, which an LRU cache keeps resident
  // anyway; this is the "KV cache memory utilization" a serving dashboard
  // (and the paper's Fig. 4b) reports.
  int64_t active_memory_tokens() const;
  double active_memory_utilization() const;

  ReplicaId id() const { return id_; }
  RegionId region() const { return region_; }
  const ReplicaConfig& config() const { return config_; }
  const PrefixCache& cache() const { return cache_; }
  const Stats& stats() const { return stats_; }

  // Fraction of wall time the engine executed steps since construction.
  double BusyFraction() const;

  // (time, utilization in [0,1]) samples for memory time-series figures.
  const std::vector<std::pair<SimTime, double>>& memory_series() const {
    return memory_series_;
  }

  // Drops all queued and running work (used by failure-injection tests).
  // Running requests vanish without callbacks, like a crashed engine.
  void Crash();

 private:
  struct Seq {
    Request req;
    Handlers handlers;
    int64_t cached_len = 0;         // Admission-time hit (reporting).
    PinId pin = kInvalidPin;
    int64_t prefill_remaining = 0;  // Prompt tokens still to compute.
    int64_t private_tokens = 0;     // KV held outside the shared cache.
    int64_t generated = 0;          // Output tokens produced so far.
    bool prefill_done = false;
    bool first_token_sent = false;
    int64_t prefill_alloc = 0;      // Tokens assigned in the current step.

    int64_t prompt_len() const { return req.prompt_tokens(); }
    int64_t output_len() const { return req.output_tokens(); }
  };

  // Memory resident on the GPU: shared cache + private per-seq KV.
  int64_t Resident() const;

  // Memory already promised to admitted requests but not yet materialized:
  // remaining prefill tokens plus unconsumed output reserve. Without this,
  // admission would overcommit (freshly admitted seqs hold no KV yet).
  int64_t CommittedFuture() const;

  // Moves pending requests into the batch while memory and slots allow.
  void Admit();

  // Starts an engine step if work exists and none is in flight.
  void MaybeStep();

  // Applies the effects of the step that just finished.
  void FinishStep();

  // Handles a seq whose prefill completed in this step.
  void OnPrefillComplete(Seq& seq);

  void CompleteSeq(Seq& seq);

  // Frees memory under pressure: cache eviction first, then preemption of
  // the youngest running request.
  void ReclaimMemory();

  void SampleMemory();

  Simulator* sim_;
  ReplicaId id_;
  RegionId region_;
  ReplicaConfig config_;
  PrefixCache cache_;

  std::deque<Seq> pending_;
  std::vector<Seq> running_;  // Admission order (oldest first).
  bool step_in_flight_ = false;

  Stats stats_;
  std::vector<std::pair<SimTime, double>> memory_series_;
};

}  // namespace skywalker

#endif  // SKYWALKER_REPLICA_REPLICA_H_
