// Discrete-event model of one LLM inference replica: an SGLang-style engine
// with continuous batching, chunked prefill, a paged KV memory subsystem
// (src/memory/), and a radix-tree prefix cache (paper §2.1).
//
// The model reproduces the observables the load-balancing layer depends on:
//  * a *pending queue* of requests accepted by the engine but not yet in the
//    continuous batch — the signal SP-P probes (§3.3); preempted sequences
//    parked for swap-in count as pending, since the batch cannot admit them;
//  * prefill time proportional to non-cached prompt tokens (≈300 ms for a
//    512-token prompt on an L4, §2.1), so prefix-cache hits directly cut
//    TTFT;
//  * step times of tens of milliseconds that grow with batch size;
//  * a KV capacity that bounds concurrent requests at 20–50 for typical
//    conversation lengths (§3.3), with LRU eviction and policy-driven
//    preemption (recompute or swap-to-host, src/memory/kv_controller.h)
//    under pressure.
//
// Timing model per engine step:
//   duration = step_base + prefill_tokens · prefill_per_token
//            + decoding_seqs · decode_per_seq
//
// Prompt KV is published to the prefix cache when prefill completes (SGLang
// inserts computed KV into its radix tree immediately, so concurrent
// identical prompts share from that point); generated tokens are published
// at completion.
//
// Memory accounting runs through one unified block ledger (ISSUE 5,
// DESIGN.md §9): the KvController owns the page pool, the radix cache's
// nodes charge their per-node page spans straight into it, and sequences
// hold path-aligned tables whose pages transfer to the cache by reference
// when prefill completes. Admission is a free-block watermark check over
// the exact pooled occupancy, and ReclaimMemory picks preemption victims
// whose treatment the configured policy decides. The default configuration
// (kv_block_size_tokens == 1, no watermark, recompute preemption) is the
// *coarse compatibility mode*, bit-identical to the seed token-counter
// accounting.

#ifndef SKYWALKER_REPLICA_REPLICA_H_
#define SKYWALKER_REPLICA_REPLICA_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "src/cache/prefix_cache.h"
#include "src/common/sim_time.h"
#include "src/memory/kv_controller.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

// Per-step batch composition under saturation (ISSUE 8). The seed engine
// plans every step the same way: chunked prefill claims its own token
// budget, then every decode-ready sequence decodes one token. Under memory
// pressure that mix thrashes — admissions keep prefilling new sequences
// whose KV growth immediately preempts the decode stream. These knobs shape
// the step instead:
//  * kDecodeFirst hands the step's shared token budget to decodes before
//    prefill gets the remainder, draining in-flight work (and its KV) ahead
//    of taking on more;
//  * a shared step_token_budget prices one decode token equal to one
//    prefill token, bounding step latency under mixed load;
//  * max_decode_batch caps decodes per step once free blocks fall under
//    pressure_free_blocks, trading decode parallelism for headroom.
// Every knob is inert at its default — the plan is then byte-identical to
// the seed, which the committed goldens pin.
enum class BatchCompositionPolicy : uint8_t {
  kPrefillFirst,  // Seed order: prefill claims the step first.
  kDecodeFirst,   // Decodes claim the shared budget first.
};

struct BatchCompositionConfig {
  BatchCompositionPolicy policy = BatchCompositionPolicy::kPrefillFirst;
  // Shared per-step token budget (a decode counts one token). 0 = off:
  // prefill uses only max_prefill_tokens_per_step and decode is unbounded.
  // Whenever any sequence is decode-ready the plan grants at least one
  // decode, so a huge prefill backlog can never starve decode progress.
  int64_t step_token_budget = 0;
  // Decodes-per-step cap. 0 = uncapped.
  int max_decode_batch = 0;
  // The cap binds only while kv free blocks are below this; 0 means the
  // cap (when set) binds unconditionally.
  int64_t pressure_free_blocks = 0;
};

struct ReplicaConfig {
  // KV memory in tokens. Default models an L4 (24 GB) serving
  // Llama-3.1-8B: ~6 GB free for KV at 128 KiB/token ≈ 49K tokens.
  int64_t kv_capacity_tokens = 49152;

  // Engine cap on batch size (vLLM/SGLang max_num_seqs analogue).
  int max_running_requests = 64;

  // Chunked-prefill budget per engine step.
  int64_t max_prefill_tokens_per_step = 1024;

  // Admission headroom reserved per request for its future output.
  int64_t output_reserve_tokens = 128;

  // Timing constants (microseconds). Defaults calibrated so a 512-token
  // prefill costs ~300 ms (paper §2.1) and decode steps are tens of ms.
  // The per-context-token term models attention/KV-bandwidth cost, which
  // gives decode throughput its knee: beyond a few dozen sequences, adding
  // batch slots stops paying (as on a real L4).
  double step_base_us = 20000.0;
  double prefill_us_per_token = 550.0;
  double decode_us_per_seq = 400.0;
  double decode_us_per_context_token = 0.5;

  bool enable_prefix_cache = true;

  // Record a memory-utilization sample every N engine steps (0 disables).
  int memory_sample_every_steps = 4;

  // --- paged KV memory (src/memory/, ISSUE 4/5) ------------------------
  // Page size in tokens. 1 = coarse compatibility mode (seed-identical
  // token-granular accounting); real engines use 16 or 32.
  int32_t kv_block_size_tokens = 1;
  // Admission keeps this many blocks free as decode headroom.
  int64_t kv_watermark_blocks = 0;
  // What preemption does to its victim: recompute (seed behavior) or
  // swap-to-host with modeled PCIe transfer latency.
  PreemptPolicy kv_preempt_policy = PreemptPolicy::kRecompute;
  // PCIe transfer model for kSwap, us per token each direction.
  double kv_swap_us_per_token = 5.2;
  // Per-step decode admission (ISSUE 5): commit the output reserve one
  // block at a time as decode proceeds instead of the full estimate up
  // front. Packs more sequences per batch; decode growth past the pool is
  // resolved by preemption. Off by default (coarse goldens unchanged).
  bool per_step_decode_admission = false;

  // Victim selection for the prefix cache under memory pressure (ISSUE 8).
  // kLruLeaf is the behavior-frozen seed policy; kColdSubtree evicts whole
  // cold subtrees ranked by pages-per-expected-future-hit.
  EvictionPolicy cache_eviction_policy = EvictionPolicy::kLruLeaf;

  // Probe fidelity under saturation (ISSUE 8). The probe's `pending` field
  // historically counts every accepted request not yet in the batch — which
  // includes arrivals merely waiting for the current (possibly 500ms+
  // chunked-prefill) step to finish, so selective pushing reads "full" from
  // a replica that would admit the whole queue at its next step boundary
  // and starves it. When set, the probe reports pending only while the last
  // admission pass actually failed to place work (memory or batch-slot
  // blocked) — the §3.3 "continuous batch cannot admit more work" signal.
  // Off by default: probe payloads (and the committed goldens) unchanged.
  bool probe_admission_blocked_pending = false;

  // Per-step batch composition (ISSUE 8). Defaults are inert (seed plan).
  BatchCompositionConfig composition;

  KvConfig kv() const {
    KvConfig config;
    config.capacity_tokens = kv_capacity_tokens;
    config.block_size_tokens = kv_block_size_tokens;
    config.watermark_blocks = kv_watermark_blocks;
    config.preempt_policy = kv_preempt_policy;
    config.swap_us_per_token = kv_swap_us_per_token;
    return config;
  }
};

// The versioned heartbeat-probe payload (ISSUE 7): everything a balancer
// routes on, in one struct with exactly one construction site
// (Replica::Probe) and one decode site (the dispatch engine's probe-response
// handler). `version` is a per-replica monotonic probe counter;
// `preemption_delta` is the preemption count since the previous probe — the
// "recent churn" preemption-aware pushing scores on (0 on a replica's first
// probe). The EWMA decode-latency sample feeds passive latency-outlier
// detection (src/routing/health.h); full diagnostic detail stays on
// Replica::LoadSnapshot, which metrics and tests read directly.
struct ProbePayload {
  int64_t version = 0;
  int pending = 0;        // Accepted, not in the batch (incl. swapped).
  int running = 0;
  int free_capacity = 0;  // EstimateFreeCapacity().
  int64_t free_blocks = 0;
  int64_t total_blocks = 0;
  int64_t preemption_delta = 0;
  int64_t swapped = 0;
  // EWMA over completed requests of (decode wall time) / (tokens decoded) —
  // the per-token service latency a straggler inflates, whatever its load.
  double ewma_decode_us_per_token = 0.0;
  int64_t latency_samples = 0;  // Completions folded into the EWMA.
};

class Replica {
 public:
  struct Handlers {
    // First output token produced (prefill finished). `cached_tokens` is the
    // prefix-cache hit length at admission.
    std::function<void(const Request&, int64_t cached_tokens)> on_first_token;
    // All output tokens produced.
    std::function<void(const Request&, int64_t cached_tokens)> on_complete;
  };

  struct Stats {
    int64_t enqueued = 0;
    int64_t completed = 0;
    int64_t prefill_tokens_computed = 0;
    int64_t cached_tokens_reused = 0;
    int64_t output_tokens_generated = 0;
    int64_t preemptions = 0;  // Recompute + swap victims.
    int64_t dropped_requests = 0;  // Arrivals while failed (vanish, §10).
    int64_t engine_steps = 0;
    double busy_us = 0;          // Total step time.
    double peak_memory_utilization = 0;
    int peak_running = 0;
    int peak_pending = 0;
  };

  // What a heartbeat probe RPC reports (§3.3 + ISSUE 4/5): queue state plus
  // the paged-memory headroom signals balancers can route on. Since ISSUE 5
  // the block figures are *exact* — computed from the unified ledger, not
  // estimated from token counters.
  struct LoadSnapshot {
    int pending = 0;        // Accepted, not in the batch (incl. swapped).
    int running = 0;
    int free_capacity = 0;  // EstimateFreeCapacity().
    // Blocks a new admission could claim right now: raw free pages plus
    // pages that would drain if every unpinned cache node were evicted
    // (a warm LRU cache keeps raw free blocks at ~0), minus committed
    // future.
    int64_t free_blocks = 0;
    int64_t total_blocks = 0;
    // Exact occupancy of the radix cache in pages, and the evictable
    // subset (pages whose every reference comes from unpinned nodes).
    int64_t cache_blocks = 0;
    int64_t evictable_blocks = 0;
    int64_t fragmentation_tokens = 0;
    int64_t preemptions = 0;  // Cumulative.
    int64_t swapped = 0;      // Currently swapped out or restoring.
  };

  Replica(Simulator* sim, ReplicaId id, RegionId region,
          const ReplicaConfig& config);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // Request arrival at the replica (network latency already applied by the
  // caller). Enters the pending queue until the batch admits it.
  void Enqueue(Request req, Handlers handlers);

  // --- Probe interface (what a heartbeat RPC would report, §3.3) ---

  // Requests not yet scheduled into the continuous batch. "> 0" is the
  // paper's definition of a full replica. Swapped-out or restoring
  // sequences count: they are accepted work the batch cannot hold.
  int pending_count() const {
    return static_cast<int>(pending_.size()) + swapped_count();
  }
  int running_count() const { return static_cast<int>(running_.size()); }
  // LB-visible total load (outstanding = pending + running).
  int outstanding_count() const { return pending_count() + running_count(); }
  // Sequences preempted to host memory (incl. in-flight restores).
  int swapped_count() const {
    return static_cast<int>(swapped_.size() + restoring_.size());
  }

  // Resident KV in tokens: cache content plus sequence-private tokens
  // (token positions are disjoint even where they share a boundary page).
  int64_t memory_used_tokens() const;
  double memory_utilization() const;

  // Allocated-but-unoccupied page slots across the whole pool — the exact
  // figure: pages shared between the cache and a sequence count once, with
  // both sides' tokens occupying them.
  int64_t fragmentation_tokens() const;

  // Engine-reported admission headroom: how many more requests of typical
  // size the continuous batch could admit right now, bounded by both batch
  // slots and KV memory. Heartbeat probes report this alongside the pending
  // count so balancers can bound their optimistic pushes between probes.
  int EstimateFreeCapacity() const;

  // One-call probe payload: queue depths plus paged-memory headroom.
  LoadSnapshot Snapshot() const;

  // The heartbeat-probe RPC body (ISSUE 7): stamps the next probe version,
  // computes the preemption delta against the previous probe, and attaches
  // the decode-latency EWMA. Non-const on purpose — probing *is* the state
  // change that advances the delta baseline, and keeping it here gives the
  // payload exactly one construction site.
  ProbePayload Probe();

  // KV held by *running* requests (pinned cache paths + private tokens).
  // Excludes cached-but-idle content, which an LRU cache keeps resident
  // anyway; this is the "KV cache memory utilization" a serving dashboard
  // (and the paper's Fig. 4b) reports.
  int64_t active_memory_tokens() const;
  double active_memory_utilization() const;

  // Output reserve still committed to admitted sequences. Returns to zero
  // whenever the batch drains — completion, abort, and preemption all hand
  // their reserve back (regression-tested; ISSUE 4).
  int64_t reserved_future_tokens() const {
    return kv_.committed_reserve_tokens();
  }

  ReplicaId id() const { return id_; }
  RegionId region() const { return region_; }
  const ReplicaConfig& config() const { return config_; }
  const PrefixCache& cache() const { return cache_; }
  const Stats& stats() const { return stats_; }
  const KvController& kv() const { return kv_; }

  // Fraction of wall time the engine executed steps since construction.
  double BusyFraction() const;

  // (time, utilization in [0,1]) samples for memory time-series figures.
  const std::vector<std::pair<SimTime, double>>& memory_series() const {
    return memory_series_;
  }

  // Drops all queued and running work (used by failure-injection tests).
  // Running requests vanish without callbacks, like a crashed engine.
  void Crash();

  // --- fault injection (DESIGN.md §10) ---
  // Hard failure: crashes (running work vanishes) and stops serving — later
  // arrivals are dropped without callbacks and probes go unanswered, so an
  // outlier-detecting balancer observes timeouts, not refusals.
  void Fail();
  void Recover();
  bool serving() const { return serving_; }

  // Gray-failure injection: multiplies every engine-step duration (a 6x
  // straggler decodes 6x slower but stays reachable — the hard case for
  // least-loaded routing). 1.0 is the identity and leaves timing
  // bit-identical to a build without the knob.
  void SetSlowdown(double factor);
  double slowdown() const { return slowdown_; }

  // Hot-reswaps the per-step batch composition (dispatch-layer config push,
  // ISSUE 7 reswap contract): takes effect at the next step plan; steps in
  // flight finish under the plan they were priced with.
  void ApplyComposition(const BatchCompositionConfig& composition);
  // Hot-reswaps the prefix cache's eviction policy. Entering kColdSubtree
  // rebuilds the subtree aggregates in one traversal.
  void ApplyCacheEvictionPolicy(EvictionPolicy policy);

 private:
  struct Seq {
    Request req;
    Handlers handlers;
    int64_t cached_len = 0;         // Admission-time hit (reporting).
    PinId pin = kInvalidPin;
    KvController::SeqId kv = KvController::kInvalidSeq;
    int64_t kv_base = 0;            // Path position of the table's token 0.
    int64_t prefill_remaining = 0;  // Prompt tokens still to compute.
    int64_t generated = 0;          // Output tokens produced so far.
    bool prefill_done = false;
    bool first_token_sent = false;
    int64_t prefill_alloc = 0;      // Tokens assigned in the current step.
    // Planned to decode one token in the current step. FinishStep applies
    // decode only to planned sequences, so a swap-in joining mid-step never
    // receives a token the step was not priced (or EWMA-sampled) for.
    bool decode_alloc = false;
    SimTime decode_start = 0;       // When the first output token fired.

    int64_t prompt_len() const { return req.prompt_tokens(); }
    int64_t output_len() const { return req.output_tokens(); }
  };

  // A sequence preempted to host memory (kSwap policy). Keeps its prefix-
  // cache pin: the shared blocks stay device-resident (still referenced by
  // the radix tree), only private KV crossed PCIe.
  struct SwappedSeq {
    Seq seq;
    int64_t swap_tokens = 0;  // Private KV held on the host.
    SimTime ready_at = 0;     // Swap-out transfer completion.
  };

  // A swap-in in flight: blocks are charged, arrival is scheduled.
  struct RestoringSeq {
    Seq seq;
    int64_t ticket = 0;
    EventId arrival = kInvalidEventId;
  };

  // Output reserve still unconsumed by `seq` (what re-admission and
  // swap-in must re-commit).
  int64_t ReserveRemaining(const Seq& seq) const;
  // What admission actually commits for the output: the full remaining
  // reserve, or one block at a time under per_step_decode_admission.
  int64_t ReserveCommitTarget(const Seq& seq) const;

  // Moves pending requests into the batch while memory and slots allow;
  // swapped-out sequences re-enter first (resume priority).
  void Admit();
  void MaybeStartSwapIns();
  void FinishSwapIn(int64_t ticket);

  // Starts an engine step if work exists and none is in flight.
  void MaybeStep();

  // Applies the effects of the step that just finished. `step_us` is the
  // step's wall duration and `decode_count` how many sequences decoded a
  // token in it — every such sequence experienced the full step duration as
  // its inter-token latency, which is the decode-latency sample.
  void FinishStep(double step_us, int decode_count);

  // Handles a seq whose prefill completed in this step: publishes the
  // prompt's pages to the shared cache by reference transfer and drops the
  // sequence's claim on the published span.
  void OnPrefillComplete(Seq& seq);

  void CompleteSeq(Seq& seq);

  // Frees memory under pressure: cache eviction first, then policy-driven
  // preemption of the youngest running request (recompute or swap-out).
  void ReclaimMemory();

  void SampleMemory();

  // cache_.Evict with trace attribution: emits one kCacheEvict record per
  // call that removed at least one node. Returns the blocks freed.
  int64_t EvictCache(int64_t blocks);

  Simulator* sim_;
  ReplicaId id_;
  RegionId region_;
  ReplicaConfig config_;
  KvController kv_;     // Owns the page pool; declared before the cache,
  PrefixCache cache_;   // which charges its node spans into kv_'s allocator.

  bool serving_ = true;
  double slowdown_ = 1.0;
  // Latest Admit() outcome: true iff it exited leaving pending work it
  // could not place (memory- or slot-blocked, or held behind a swap-in).
  // Read by Probe() under probe_admission_blocked_pending.
  bool admission_blocked_ = false;
  // Probe bookkeeping (ProbePayload construction, see Probe()).
  int64_t probe_version_ = 0;
  int64_t preemptions_at_last_probe_ = 0;
  bool probed_before_ = false;
  // Inter-token decode-latency EWMA, folded per decode step (alpha = 0.25):
  // a straggler's slowdown becomes probe-visible within a few steps instead
  // of only after whole sequences complete, which is what makes passive
  // latency-outlier ejection react on a useful timescale.
  double decode_ewma_us_per_token_ = 0.0;
  int64_t latency_samples_ = 0;

  std::deque<Seq> pending_;
  std::vector<Seq> running_;  // Admission order (oldest first).
  std::deque<SwappedSeq> swapped_;  // Swap-out order (oldest first).
  std::vector<RestoringSeq> restoring_;
  int64_t next_restore_ticket_ = 0;
  bool step_in_flight_ = false;
  // Deduplicates watermark-rejection counting: one count per blocked
  // request's episode (keyed by id — the head can rotate under preemption).
  RequestId watermark_reject_id_ = 0;
  bool watermark_reject_id_valid_ = false;

  Stats stats_;
  std::vector<std::pair<SimTime, double>> memory_series_;
};

}  // namespace skywalker

#endif  // SKYWALKER_REPLICA_REPLICA_H_
