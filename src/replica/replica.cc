#include "src/replica/replica.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace skywalker {

Replica::Replica(Simulator* sim, ReplicaId id, RegionId region,
                 const ReplicaConfig& config)
    : sim_(sim),
      id_(id),
      region_(region),
      config_(config),
      cache_(config.kv_capacity_tokens) {}

void Replica::Enqueue(Request req, Handlers handlers) {
  SKYWALKER_CHECK(!req.output.empty()) << "request must generate >= 1 token";
  Seq seq;
  seq.req = std::move(req);
  seq.handlers = std::move(handlers);
  pending_.push_back(std::move(seq));
  ++stats_.enqueued;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_count());
  MaybeStep();
}

int64_t Replica::Resident() const {
  int64_t resident = cache_.size_tokens();
  for (const Seq& seq : running_) {
    resident += seq.private_tokens;
  }
  return resident;
}

int64_t Replica::CommittedFuture() const {
  int64_t committed = 0;
  for (const Seq& seq : running_) {
    committed += seq.prefill_remaining;
    committed += std::max<int64_t>(
        0, config_.output_reserve_tokens - seq.generated);
  }
  return committed;
}

int64_t Replica::memory_used_tokens() const { return Resident(); }

int Replica::EstimateFreeCapacity() const {
  int free_slots = config_.max_running_requests -
                   static_cast<int>(running_.size()) -
                   static_cast<int>(pending_.size());
  if (free_slots <= 0) {
    return 0;
  }
  // Memory headroom in units of a typical request: average the footprint of
  // the current batch, falling back to a conservative default when idle.
  int64_t free_tokens =
      config_.kv_capacity_tokens - Resident() - CommittedFuture();
  if (free_tokens <= 0) {
    return 0;
  }
  int64_t per_request = 512 + config_.output_reserve_tokens;
  if (!running_.empty()) {
    int64_t total = 0;
    for (const Seq& seq : running_) {
      total += seq.prompt_len() - seq.cached_len +
               config_.output_reserve_tokens;
    }
    per_request = std::max<int64_t>(64, total /
                                            static_cast<int64_t>(running_.size()));
  }
  int by_memory = static_cast<int>(free_tokens / per_request);
  return std::max(0, std::min(free_slots, by_memory));
}

double Replica::memory_utilization() const {
  return static_cast<double>(Resident()) /
         static_cast<double>(config_.kv_capacity_tokens);
}

int64_t Replica::active_memory_tokens() const {
  int64_t active = cache_.pinned_tokens();
  for (const Seq& seq : running_) {
    active += seq.private_tokens;
  }
  return active;
}

double Replica::active_memory_utilization() const {
  return static_cast<double>(active_memory_tokens()) /
         static_cast<double>(config_.kv_capacity_tokens);
}

double Replica::BusyFraction() const {
  double elapsed = static_cast<double>(sim_->now());
  return elapsed <= 0 ? 0.0 : stats_.busy_us / elapsed;
}

void Replica::Admit() {
  while (!pending_.empty() &&
         running_.size() < static_cast<size_t>(config_.max_running_requests)) {
    Seq& candidate = pending_.front();
    int64_t cached = 0;
    PinId pin = kInvalidPin;
    if (config_.enable_prefix_cache) {
      auto match = cache_.MatchAndRef(candidate.req.prompt, sim_->now());
      // A fully cached prompt still recomputes its last token so the engine
      // produces the first output token (SGLang does the same).
      cached = std::min(match.cached_len, candidate.prompt_len() - 1);
      pin = match.pin;
    }
    int64_t need =
        (candidate.prompt_len() - cached) + config_.output_reserve_tokens;
    int64_t free = config_.kv_capacity_tokens - Resident() - CommittedFuture();
    if (need > free) {
      free += cache_.Evict(need - free);
    }
    if (need > free && !running_.empty()) {
      // Not enough memory; wait for completions. (Pinned content cannot be
      // evicted, and running seqs release memory as they finish.)
      if (pin != kInvalidPin) {
        cache_.Unref(pin);
      }
      break;
    }
    // Either it fits, or the batch is empty and we force-admit to guarantee
    // progress (real engines recompute/preempt to handle this case).
    Seq seq = std::move(candidate);
    pending_.pop_front();
    seq.cached_len = cached;
    seq.pin = pin;
    seq.prefill_remaining = seq.prompt_len() - cached;
    seq.private_tokens = 0;
    seq.prefill_done = false;
    seq.prefill_alloc = 0;
    stats_.cached_tokens_reused += cached;
    running_.push_back(std::move(seq));
    stats_.peak_running =
        std::max(stats_.peak_running, static_cast<int>(running_.size()));
  }
}

void Replica::MaybeStep() {
  if (step_in_flight_) {
    return;
  }
  Admit();
  if (running_.empty()) {
    return;
  }
  // Plan the step: chunked prefill first, plus one decode token per seq in
  // decode phase (mixed batch, SGLang-style).
  int64_t prefill_budget = config_.max_prefill_tokens_per_step;
  int64_t prefill_total = 0;
  int decode_count = 0;
  for (Seq& seq : running_) {
    seq.prefill_alloc = 0;
    if (!seq.prefill_done && prefill_budget > 0) {
      seq.prefill_alloc = std::min(seq.prefill_remaining, prefill_budget);
      prefill_budget -= seq.prefill_alloc;
      prefill_total += seq.prefill_alloc;
    } else if (seq.prefill_done && seq.generated < seq.output_len()) {
      ++decode_count;
    }
  }
  if (prefill_total == 0 && decode_count == 0) {
    return;  // Nothing to do (all seqs stalled behind the prefill budget).
  }
  int64_t decode_context_tokens = 0;
  for (const Seq& seq : running_) {
    if (seq.prefill_done && seq.generated < seq.output_len()) {
      decode_context_tokens += seq.prompt_len() + seq.generated;
    }
  }
  double duration_us =
      config_.step_base_us +
      static_cast<double>(prefill_total) * config_.prefill_us_per_token +
      static_cast<double>(decode_count) * config_.decode_us_per_seq +
      static_cast<double>(decode_context_tokens) *
          config_.decode_us_per_context_token;
  step_in_flight_ = true;
  ++stats_.engine_steps;
  stats_.busy_us += duration_us;
  sim_->ScheduleAfter(static_cast<SimDuration>(duration_us),
                      [this] { FinishStep(); });
}

void Replica::FinishStep() {
  step_in_flight_ = false;

  // Apply prefill progress and decode increments.
  for (Seq& seq : running_) {
    if (seq.prefill_alloc > 0) {
      seq.prefill_remaining -= seq.prefill_alloc;
      seq.private_tokens += seq.prefill_alloc;
      stats_.prefill_tokens_computed += seq.prefill_alloc;
      seq.prefill_alloc = 0;
      if (seq.prefill_remaining == 0) {
        OnPrefillComplete(seq);
      }
    } else if (seq.prefill_done && seq.first_token_sent &&
               seq.generated < seq.output_len()) {
      ++seq.generated;
      ++seq.private_tokens;
      ++stats_.output_tokens_generated;
    }
  }

  // Completions (collected first: CompleteSeq mutates the cache).
  std::vector<Seq> finished;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->prefill_done && it->generated >= it->output_len()) {
      finished.push_back(std::move(*it));
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  for (Seq& seq : finished) {
    CompleteSeq(seq);
  }

  ReclaimMemory();
  SampleMemory();
  MaybeStep();
}

void Replica::OnPrefillComplete(Seq& seq) {
  seq.prefill_done = true;
  // The final prefill chunk's forward pass produces the first output token.
  if (seq.generated == 0) {
    seq.generated = 1;
    ++seq.private_tokens;
    ++stats_.output_tokens_generated;
  }

  if (config_.enable_prefix_cache) {
    // Publish prompt KV to the shared cache and re-pin the full prompt so
    // concurrent identical prompts can reuse it from now on. Only generated
    // tokens remain private afterwards (cached_len keeps the admission-time
    // value for reporting; it reflects the compute actually saved).
    cache_.Insert(seq.req.prompt, sim_->now());
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
    }
    auto match = cache_.MatchAndRef(seq.req.prompt, sim_->now());
    seq.pin = match.pin;
    seq.private_tokens =
        (seq.prompt_len() - match.cached_len) + seq.generated;
  }

  if (!seq.first_token_sent) {
    seq.first_token_sent = true;
    if (seq.handlers.on_first_token) {
      seq.handlers.on_first_token(seq.req, seq.cached_len);
    }
  }
}

void Replica::CompleteSeq(Seq& seq) {
  if (config_.enable_prefix_cache) {
    TokenSeq full = seq.req.prompt;
    full.insert(full.end(), seq.req.output.begin(), seq.req.output.end());
    cache_.Insert(full, sim_->now());
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
      seq.pin = kInvalidPin;
    }
  }
  ++stats_.completed;
  if (seq.handlers.on_complete) {
    seq.handlers.on_complete(seq.req, seq.cached_len);
  }
}

void Replica::ReclaimMemory() {
  int64_t over = Resident() - config_.kv_capacity_tokens;
  if (over <= 0) {
    return;
  }
  over -= cache_.Evict(over);
  // Preempt youngest running requests until we fit (never the last one —
  // progress must remain possible).
  while (over > 0 && running_.size() > 1) {
    Seq seq = std::move(running_.back());
    running_.pop_back();
    over -= seq.private_tokens;
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
      seq.pin = kInvalidPin;
    }
    // Restarts from scratch on re-admission; the prefix cache usually makes
    // the recomputation cheap. first_token_sent stays true so the client
    // sees no duplicate first-token callback.
    seq.cached_len = 0;
    seq.prefill_remaining = seq.prompt_len();
    seq.private_tokens = 0;
    seq.generated = seq.first_token_sent ? 1 : 0;
    seq.prefill_done = false;
    seq.prefill_alloc = 0;
    ++stats_.preemptions;
    pending_.push_front(std::move(seq));
  }
}

void Replica::SampleMemory() {
  stats_.peak_memory_utilization =
      std::max(stats_.peak_memory_utilization, memory_utilization());
  if (config_.memory_sample_every_steps <= 0) {
    return;
  }
  if (stats_.engine_steps %
          static_cast<int64_t>(config_.memory_sample_every_steps) ==
      0) {
    memory_series_.emplace_back(sim_->now(), active_memory_utilization());
  }
}

void Replica::Crash() {
  for (Seq& seq : running_) {
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
    }
  }
  running_.clear();
  pending_.clear();
  cache_.Clear();
}

}  // namespace skywalker
