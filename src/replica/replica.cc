#include "src/replica/replica.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace skywalker {

Replica::Replica(Simulator* sim, ReplicaId id, RegionId region,
                 const ReplicaConfig& config)
    : sim_(sim),
      id_(id),
      region_(region),
      config_(config),
      kv_(config.kv()),
      cache_(config.kv_capacity_tokens, &kv_.allocator(),
             config.kv_block_size_tokens, config.cache_eviction_policy) {}

void Replica::Enqueue(Request req, Handlers handlers) {
  SKYWALKER_CHECK(!req.output.empty()) << "request must generate >= 1 token";
  if (!serving_) {
    // A crashed engine accepts nothing; the request vanishes exactly like
    // in-flight work did at the crash. The dispatching balancer's request
    // timeout is what converts this silence into a client-visible error.
    ++stats_.dropped_requests;
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kDrop, region_, id_,
                static_cast<int64_t>(req.id));
    }
    return;
  }
  Seq seq;
  seq.req = std::move(req);
  seq.handlers = std::move(handlers);
  pending_.push_back(std::move(seq));
  ++stats_.enqueued;
  stats_.peak_pending = std::max(stats_.peak_pending, pending_count());
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kReplicaArrive, region_, id_,
              static_cast<int64_t>(pending_.back().req.id), pending_count());
  }
  MaybeStep();
}

int64_t Replica::ReserveRemaining(const Seq& seq) const {
  return std::max<int64_t>(0, config_.output_reserve_tokens - seq.generated);
}

int64_t Replica::ReserveCommitTarget(const Seq& seq) const {
  const int64_t remaining = ReserveRemaining(seq);
  if (!config_.per_step_decode_admission) {
    return remaining;
  }
  return std::min<int64_t>(remaining, config_.kv_block_size_tokens);
}

int64_t Replica::memory_used_tokens() const {
  return cache_.size_tokens() + kv_.seq_resident_tokens();
}

int64_t Replica::fragmentation_tokens() const {
  return kv_.used_blocks() * config_.kv_block_size_tokens -
         memory_used_tokens();
}

int Replica::EstimateFreeCapacity() const {
  int free_slots = config_.max_running_requests -
                   static_cast<int>(running_.size()) - pending_count();
  if (free_slots <= 0) {
    return 0;
  }
  // Memory headroom in units of a typical request: average the footprint of
  // the current batch, falling back to a conservative default when idle.
  int64_t free_tokens = config_.kv_capacity_tokens - memory_used_tokens() -
                        kv_.committed_tokens();
  if (free_tokens <= 0) {
    return 0;
  }
  int64_t per_request = 512 + config_.output_reserve_tokens;
  if (!running_.empty()) {
    int64_t total = 0;
    for (const Seq& seq : running_) {
      total += seq.prompt_len() - seq.cached_len +
               config_.output_reserve_tokens;
    }
    per_request = std::max<int64_t>(64, total /
                                            static_cast<int64_t>(running_.size()));
  }
  int by_memory = static_cast<int>(free_tokens / per_request);
  return std::max(0, std::min(free_slots, by_memory));
}

Replica::LoadSnapshot Replica::Snapshot() const {
  LoadSnapshot snap;
  snap.pending = pending_count();
  snap.running = running_count();
  snap.free_capacity = EstimateFreeCapacity();
  // Routing headroom, exact (ISSUE 5): pages free in the pool plus pages a
  // full eviction of unpinned cache content would return (raw free blocks
  // read ~0 forever once the LRU cache warms up — the cache deliberately
  // keeps otherwise-idle pages resident), minus committed future. In coarse
  // mode this equals the seed estimate capacity - active - committed.
  PrefixCache::BlockOccupancy occ = cache_.CountBlocks();
  snap.cache_blocks = occ.held_blocks;
  snap.evictable_blocks = occ.evictable_blocks;
  snap.free_blocks = std::max<int64_t>(
      0, kv_.free_blocks() + occ.evictable_blocks - kv_.committed_blocks());
  snap.total_blocks = kv_.total_blocks();
  snap.fragmentation_tokens = fragmentation_tokens();
  snap.preemptions = stats_.preemptions;
  snap.swapped = swapped_count();
  return snap;
}

ProbePayload Replica::Probe() {
  LoadSnapshot snap = Snapshot();
  ProbePayload payload;
  payload.version = ++probe_version_;
  // Under probe_admission_blocked_pending, arrivals merely waiting for the
  // current step boundary are invisible: pending is surfaced only while the
  // last admission pass actually failed to place work.
  payload.pending = config_.probe_admission_blocked_pending
                        ? (admission_blocked_ ? snap.pending : 0)
                        : snap.pending;
  payload.running = snap.running;
  payload.free_capacity = snap.free_capacity;
  payload.free_blocks = snap.free_blocks;
  payload.total_blocks = snap.total_blocks;
  // Preemptions since the previous probe; 0 on the first (no baseline).
  payload.preemption_delta =
      probed_before_ ? snap.preemptions - preemptions_at_last_probe_ : 0;
  preemptions_at_last_probe_ = snap.preemptions;
  probed_before_ = true;
  payload.swapped = snap.swapped;
  payload.ewma_decode_us_per_token = decode_ewma_us_per_token_;
  payload.latency_samples = latency_samples_;
  return payload;
}

double Replica::memory_utilization() const {
  return static_cast<double>(memory_used_tokens()) /
         static_cast<double>(config_.kv_capacity_tokens);
}

int64_t Replica::active_memory_tokens() const {
  return cache_.pinned_tokens() + kv_.seq_resident_tokens();
}

double Replica::active_memory_utilization() const {
  return static_cast<double>(active_memory_tokens()) /
         static_cast<double>(config_.kv_capacity_tokens);
}

double Replica::BusyFraction() const {
  double elapsed = static_cast<double>(sim_->now());
  return elapsed <= 0 ? 0.0 : stats_.busy_us / elapsed;
}

void Replica::Admit() {
  MaybeStartSwapIns();
  // Strict resume priority: while any swapped-out sequence is still waiting
  // to come back, fresh pending requests must not consume the memory its
  // restore needs — otherwise a stream of small admissions can starve a
  // large swap-in indefinitely. (The wait is bounded: a completion or the
  // swap-out transfer's completion poke re-enters here, and the swap-in
  // claims the freed blocks first.)
  if (!swapped_.empty()) {
    // Held behind a swap-in: any queued work is blocked, not merely waiting
    // for the current step to finish.
    admission_blocked_ = !pending_.empty();
    return;
  }
  while (!pending_.empty() &&
         running_.size() + restoring_.size() <
             static_cast<size_t>(config_.max_running_requests)) {
    Seq& candidate = pending_.front();
    int64_t cached = 0;
    PinId pin = kInvalidPin;
    if (config_.enable_prefix_cache) {
      auto match = cache_.MatchAndRef(candidate.req.prompt, sim_->now());
      // A fully cached prompt still recomputes its last token so the engine
      // produces the first output token (SGLang does the same).
      cached = std::min(match.cached_len, candidate.prompt_len() - 1);
      pin = match.pin;
    }
    const int64_t prefill_need = candidate.prompt_len() - cached;
    // The admission check prices a full fresh request's reserve (one block
    // of it under per-step admission); the commit below re-prices for
    // already-generated tokens (a re-admitted preemption victim).
    const int64_t reserve =
        config_.per_step_decode_admission
            ? std::min<int64_t>(config_.output_reserve_tokens,
                                config_.kv_block_size_tokens)
            : config_.output_reserve_tokens;
    if (!kv_.CanAdmit(prefill_need, reserve)) {
      EvictCache(kv_.AdmissionDeficitBlocks(prefill_need, reserve));
    }
    if (!kv_.CanAdmit(prefill_need, reserve) &&
        (!running_.empty() || !restoring_.empty())) {
      // Not enough memory; wait for completions. (Pinned content cannot be
      // evicted, and running seqs release memory as they finish.) Count a
      // watermark rejection once per blocked request's episode — keyed by
      // request id, since Admit re-runs every engine step and preemption
      // can rotate the queue head mid-episode.
      if (kv_.CanAdmitIgnoringWatermark(prefill_need, reserve) &&
          (!watermark_reject_id_valid_ ||
           watermark_reject_id_ != candidate.req.id)) {
        kv_.NoteWatermarkRejection();
        watermark_reject_id_ = candidate.req.id;
        watermark_reject_id_valid_ = true;
        if (Tracer* t = sim_->tracer()) {
          EmitTrace(t, sim_->now(), TraceEventType::kWatermarkReject, region_,
                    id_, static_cast<int64_t>(candidate.req.id),
                    kv_.free_blocks(), kv_.committed_blocks());
        }
      }
      if (pin != kInvalidPin) {
        cache_.Unref(pin);
      }
      break;
    }
    // Either it fits, or the batch is empty and we force-admit to guarantee
    // progress (real engines recompute/preempt to handle this case).
    Seq seq = std::move(candidate);
    pending_.pop_front();
    if (watermark_reject_id_valid_ && watermark_reject_id_ == seq.req.id) {
      watermark_reject_id_valid_ = false;  // Its episode ended in admission.
    }
    seq.cached_len = cached;
    seq.pin = pin;
    seq.kv_base = cached;
    seq.prefill_remaining = seq.prompt_len() - cached;
    // The table is path-aligned: its pages sit at the positions the radix
    // tree would charge them, so publishing at prefill completion is a
    // reference transfer.
    seq.kv = kv_.AdmitSeq(
        seq.prefill_remaining, ReserveCommitTarget(seq),
        static_cast<int32_t>(cached % config_.kv_block_size_tokens));
    seq.prefill_done = false;
    seq.prefill_alloc = 0;
    seq.decode_alloc = false;
    stats_.cached_tokens_reused += cached;
    running_.push_back(std::move(seq));
    stats_.peak_running =
        std::max(stats_.peak_running, static_cast<int>(running_.size()));
    if (Tracer* t = sim_->tracer()) {
      const Seq& admitted = running_.back();
      EmitTrace(t, sim_->now(), TraceEventType::kAdmit, region_, id_,
                static_cast<int64_t>(admitted.req.id), admitted.cached_len,
                admitted.prefill_remaining);
    }
  }
  // Anything still queued here was memory- or slot-blocked this pass (the
  // loop only exits early on those two conditions).
  admission_blocked_ = !pending_.empty();
}

void Replica::MaybeStartSwapIns() {
  while (!swapped_.empty() &&
         running_.size() + restoring_.size() <
             static_cast<size_t>(config_.max_running_requests)) {
    SwappedSeq& front = swapped_.front();
    if (sim_->now() < front.ready_at) {
      break;  // The swap-out completion poke re-enters here.
    }
    const int64_t tokens = front.swap_tokens;
    const int64_t reserve = ReserveCommitTarget(front.seq);
    const int64_t prefill = front.seq.prefill_remaining;
    if (!kv_.CanAdmitRestore(tokens, prefill, reserve)) {
      EvictCache(kv_.RestoreDeficitBlocks(tokens, prefill, reserve));
    }
    if (!kv_.CanAdmitRestore(tokens, prefill, reserve) &&
        !(running_.empty() && restoring_.empty())) {
      break;  // Wait for completions; a drained engine forces the restore.
    }
    RestoringSeq restoring;
    restoring.seq = std::move(front.seq);
    swapped_.pop_front();
    SimDuration transfer = 0;
    restoring.seq.kv = kv_.BeginSwapIn(
        tokens, restoring.seq.prefill_remaining, reserve,
        static_cast<int32_t>(restoring.seq.kv_base %
                             config_.kv_block_size_tokens),
        &transfer);
    restoring.ticket = next_restore_ticket_++;
    const int64_t ticket = restoring.ticket;
    restoring.arrival =
        sim_->ScheduleAfter(transfer, [this, ticket] { FinishSwapIn(ticket); });
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kKvSwapIn, region_, id_,
                static_cast<int64_t>(restoring.seq.req.id), tokens, 0,
                static_cast<double>(transfer));
    }
    restoring_.push_back(std::move(restoring));
  }
}

void Replica::FinishSwapIn(int64_t ticket) {
  for (auto it = restoring_.begin(); it != restoring_.end(); ++it) {
    if (it->ticket != ticket) {
      continue;
    }
    Seq seq = std::move(it->seq);
    restoring_.erase(it);
    running_.push_back(std::move(seq));
    stats_.peak_running =
        std::max(stats_.peak_running, static_cast<int>(running_.size()));
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kRestore, region_, id_,
                static_cast<int64_t>(running_.back().req.id));
    }
    MaybeStep();
    return;
  }
}

void Replica::MaybeStep() {
  if (step_in_flight_) {
    return;
  }
  Admit();
  if (running_.empty()) {
    return;
  }
  // Plan the step: chunked prefill plus one decode token per decode-phase
  // seq (mixed batch, SGLang-style), shaped by the composition policy. At
  // the default (prefill-first, no shared budget, no decode cap) the plan
  // is exactly the seed's.
  const BatchCompositionConfig& comp = config_.composition;
  int64_t prefill_budget = config_.max_prefill_tokens_per_step;
  // Decodes this step may plan; the composition knobs lower it below.
  int decode_quota = std::numeric_limits<int>::max();
  if (comp.max_decode_batch > 0 &&
      (comp.pressure_free_blocks == 0 ||
       kv_.free_blocks() < comp.pressure_free_blocks)) {
    decode_quota = comp.max_decode_batch;
  }
  int decode_ready = 0;
  for (const Seq& seq : running_) {
    if (seq.prefill_done && seq.generated < seq.output_len()) {
      ++decode_ready;
    }
  }
  if (comp.step_token_budget > 0 &&
      comp.policy == BatchCompositionPolicy::kDecodeFirst) {
    // Decodes claim the shared budget first; prefill gets the remainder.
    int planned = static_cast<int>(std::min<int64_t>(
        std::min(decode_ready, decode_quota), comp.step_token_budget));
    if (decode_ready > 0) {
      planned = std::max(planned, 1);  // Decode progress is guaranteed.
    }
    decode_quota = std::min(decode_quota, planned);
    prefill_budget = std::max<int64_t>(
        0, std::min(prefill_budget, comp.step_token_budget - planned));
  } else if (comp.step_token_budget > 0) {
    // Prefill-first: prefill claims the shared budget up to its own cap.
    prefill_budget = std::min(prefill_budget, comp.step_token_budget);
  }
  int64_t prefill_total = 0;
  for (Seq& seq : running_) {
    seq.prefill_alloc = 0;
    seq.decode_alloc = false;
    if (!seq.prefill_done && prefill_budget > 0) {
      seq.prefill_alloc = std::min(seq.prefill_remaining, prefill_budget);
      prefill_budget -= seq.prefill_alloc;
      prefill_total += seq.prefill_alloc;
    }
  }
  if (comp.step_token_budget > 0 &&
      comp.policy == BatchCompositionPolicy::kPrefillFirst) {
    // Decode quota is whatever budget prefill left over — but never zero
    // while anything is decode-ready (no starvation).
    const int64_t remainder = comp.step_token_budget - prefill_total;
    decode_quota = static_cast<int>(std::min<int64_t>(
        decode_quota, std::max<int64_t>(decode_ready > 0 ? 1 : 0,
                                        remainder)));
  }
  int decode_count = 0;
  int64_t decode_context_tokens = 0;
  for (Seq& seq : running_) {
    if (seq.prefill_done && seq.generated < seq.output_len() &&
        decode_count < decode_quota) {
      seq.decode_alloc = true;  // Admission order: oldest decodes first.
      ++decode_count;
      decode_context_tokens += seq.prompt_len() + seq.generated;
    }
  }
  if (prefill_total == 0 && decode_count == 0) {
    return;  // Nothing to do (all seqs stalled behind the prefill budget).
  }
  double duration_us =
      config_.step_base_us +
      static_cast<double>(prefill_total) * config_.prefill_us_per_token +
      static_cast<double>(decode_count) * config_.decode_us_per_seq +
      static_cast<double>(decode_context_tokens) *
          config_.decode_us_per_context_token;
  // Gray-failure knob: a straggler executes every step slower. The
  // multiplication by the default 1.0 is exact for finite doubles, so
  // unslowed replicas keep bit-identical step times.
  duration_us *= slowdown_;
  step_in_flight_ = true;
  ++stats_.engine_steps;
  stats_.busy_us += duration_us;
  sim_->ScheduleAfter(static_cast<SimDuration>(duration_us),
                      [this, duration_us, decode_count] {
                        FinishStep(duration_us, decode_count);
                      });
}

void Replica::FinishStep(double step_us, int decode_count) {
  step_in_flight_ = false;

  // Fold this step's duration into the probe-visible inter-token-latency
  // EWMA: each decoding sequence waited the whole step for its token. This
  // includes time spent on co-batched prefill chunks — that is latency the
  // decode stream really experienced — and it surfaces a straggler's
  // slowdown within a few steps, not after whole sequences complete.
  if (decode_count > 0) {
    decode_ewma_us_per_token_ =
        latency_samples_ == 0 ? step_us
                              : 0.25 * step_us + 0.75 * decode_ewma_us_per_token_;
    ++latency_samples_;
  }

  // Apply prefill progress and decode increments.
  int64_t prefill_applied = 0;
  for (Seq& seq : running_) {
    if (seq.prefill_alloc > 0) {
      seq.prefill_remaining -= seq.prefill_alloc;
      kv_.OnPrefillChunk(seq.kv, seq.prefill_alloc);
      stats_.prefill_tokens_computed += seq.prefill_alloc;
      prefill_applied += seq.prefill_alloc;
      if (Tracer* t = sim_->tracer()) {
        EmitTrace(t, sim_->now(), TraceEventType::kPrefillChunk, region_, id_,
                  static_cast<int64_t>(seq.req.id), seq.prefill_alloc,
                  seq.prefill_remaining);
      }
      seq.prefill_alloc = 0;
      if (seq.prefill_remaining == 0) {
        OnPrefillComplete(seq);
      }
    } else if (seq.decode_alloc) {
      // Only sequences the plan priced (and EWMA-sampled) decode; a swap-in
      // that joined the batch mid-step waits for the next plan.
      seq.decode_alloc = false;
      ++seq.generated;
      kv_.OnDecodeToken(seq.kv);
      ++stats_.output_tokens_generated;
      if (config_.per_step_decode_admission) {
        // Roll the committed reserve forward one block at a time.
        kv_.SetReserve(seq.kv, ReserveCommitTarget(seq));
      }
    }
  }

  // Completions (collected first: CompleteSeq mutates the cache).
  std::vector<Seq> finished;
  for (auto it = running_.begin(); it != running_.end();) {
    if (it->prefill_done && it->generated >= it->output_len()) {
      finished.push_back(std::move(*it));
      it = running_.erase(it);
    } else {
      ++it;
    }
  }
  for (Seq& seq : finished) {
    CompleteSeq(seq);
  }

  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kEngineStep, region_, id_, -1,
              prefill_applied, decode_count, step_us);
  }

  ReclaimMemory();
  SampleMemory();
  MaybeStep();
}

void Replica::OnPrefillComplete(Seq& seq) {
  seq.prefill_done = true;
  // The final prefill chunk's forward pass produces the first output token.
  if (seq.generated == 0) {
    seq.generated = 1;
    kv_.OnDecodeToken(seq.kv);
    ++stats_.output_tokens_generated;
    if (config_.per_step_decode_admission) {
      kv_.SetReserve(seq.kv, ReserveCommitTarget(seq));
    }
  }

  if (config_.enable_prefix_cache) {
    // Publish prompt KV to the shared cache: the new radix node takes
    // references on the very pages this sequence filled (the table is
    // path-aligned), so concurrent identical prompts share them from now
    // on. Then re-pin the full prompt and drop the sequence's claim on the
    // published span — only generated tokens remain private, and a page
    // straddling the prompt boundary stays shared between the cache's tail
    // node and this sequence (cached_len keeps the admission-time value for
    // reporting; it reflects the compute actually saved).
    cache_.Insert(seq.req.prompt, sim_->now(), &kv_.table(seq.kv),
                  seq.kv_base);
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
    }
    auto match = cache_.MatchAndRef(seq.req.prompt, sim_->now());
    seq.pin = match.pin;
    // The span to keep, positionally: the prompt remainder the cache does
    // not cover, plus the generated tokens actually present in the table. A
    // recompute-preemption victim re-admits with `generated == 1` but an
    // all-prompt table (its first token's KV was dropped with the rest); it
    // is re-materialized below as a fresh append at its true path position,
    // never by aliasing the prompt's tail page.
    const int64_t current = kv_.SeqTokens(seq.kv);
    const int64_t generated_in_table =
        current - (seq.prompt_len() - seq.kv_base);
    const int64_t keep =
        (seq.prompt_len() - match.cached_len) + generated_in_table;
    SKYWALKER_CHECK(keep >= 0 && keep <= current) << "publish span";
    kv_.ReleaseSeqPrefix(seq.kv, current - keep);
    seq.kv_base += current - keep;
    if (seq.generated > generated_in_table) {
      kv_.RestoreDecodedTokens(seq.kv, seq.generated - generated_in_table);
    }
    const int32_t block = config_.kv_block_size_tokens;
    if (block > 1 && seq.prompt_len() % block != 0) {
      // The page holding the prompt's last token is (typically) shared with
      // the cache now; decode may extend into its free slots without a
      // copy — the slots are disjoint from what the cache reads.
      const int64_t idx =
          (seq.prompt_len() - 1) / block - seq.kv_base / block;
      const BlockTable& table = kv_.table(seq.kv);
      if (idx >= 0 && idx < table.num_blocks()) {
        kv_.SetCowExempt(seq.kv, table.blocks()[static_cast<size_t>(idx)]);
      }
    }
  }

  if (!seq.first_token_sent) {
    seq.first_token_sent = true;
    seq.decode_start = sim_->now();
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kFirstToken, region_, id_,
                static_cast<int64_t>(seq.req.id), seq.cached_len);
    }
    if (seq.handlers.on_first_token) {
      seq.handlers.on_first_token(seq.req, seq.cached_len);
    }
  }
}

void Replica::CompleteSeq(Seq& seq) {
  if (config_.enable_prefix_cache) {
    TokenSeq full = seq.req.prompt;
    full.insert(full.end(), seq.req.output.begin(), seq.req.output.end());
    // The generated suffix publishes the same way the prompt did: by
    // reference transfer from the sequence's path-aligned table.
    cache_.Insert(full, sim_->now(), &kv_.table(seq.kv), seq.kv_base);
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
      seq.pin = kInvalidPin;
    }
  }
  // Blocks and the unconsumed output reserve return here — exactly once.
  // Pages the cache took references on survive; the rest free.
  kv_.ReleaseSeq(seq.kv);
  seq.kv = KvController::kInvalidSeq;
  ++stats_.completed;
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kComplete, region_, id_,
              static_cast<int64_t>(seq.req.id),
              static_cast<int64_t>(seq.req.output_tokens()));
  }
  if (seq.handlers.on_complete) {
    seq.handlers.on_complete(seq.req, seq.cached_len);
  }
}

void Replica::ReclaimMemory() {
  int64_t over = kv_.ReclaimNeededBlocks();
  if (over <= 0) {
    return;
  }
  // Cache eviction first. Evict reports the pages that actually hit the
  // free list — a straddled page a pinned path or live sequence still
  // references frees nothing and is not counted — so the deficit carries
  // forward by subtraction; no re-read of the ledger needed.
  over -= EvictCache(over);
  // Preempt youngest running requests until we fit (never the last one —
  // progress must remain possible). The policy decides the victim's fate.
  while (over > 0 && running_.size() > 1) {
    Seq seq = std::move(running_.back());
    running_.pop_back();
    ++stats_.preemptions;
    const bool swap = config_.kv_preempt_policy == PreemptPolicy::kSwap;
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kPreempt, region_, id_,
                static_cast<int64_t>(seq.req.id), kv_.SeqTokens(seq.kv),
                swap ? 1 : 0);
    }
    if (swap) {
      // Swap-to-host: private KV crosses PCIe and comes back later without
      // recomputation. The prefix-cache pin is kept — shared blocks stay
      // device-resident (the radix tree still references them).
      SwappedSeq swapped;
      swapped.swap_tokens = kv_.SeqTokens(seq.kv);
      SimDuration transfer = kv_.SwapOut(seq.kv);
      if (Tracer* t = sim_->tracer()) {
        EmitTrace(t, sim_->now(), TraceEventType::kKvSwapOut, region_, id_,
                  static_cast<int64_t>(seq.req.id), swapped.swap_tokens, 0,
                  static_cast<double>(transfer));
      }
      seq.kv = KvController::kInvalidSeq;
      seq.prefill_alloc = 0;
      seq.decode_alloc = false;
      swapped.ready_at = sim_->now() + transfer;
      swapped.seq = std::move(seq);
      swapped_.push_back(std::move(swapped));
      // Poke the engine when the transfer completes, so a drained batch can
      // start the swap-in even with no other event pending.
      sim_->ScheduleAfter(transfer, [this] { MaybeStep(); });
    } else {
      // Recompute: restarts from scratch on re-admission; the prefix cache
      // usually makes the recomputation cheap. first_token_sent stays true
      // so the client sees no duplicate first-token callback.
      kv_.ReleaseSeq(seq.kv);
      kv_.NoteRecomputePreemption();
      seq.kv = KvController::kInvalidSeq;
      if (seq.pin != kInvalidPin) {
        cache_.Unref(seq.pin);
        seq.pin = kInvalidPin;
      }
      seq.cached_len = 0;
      seq.kv_base = 0;
      seq.prefill_remaining = seq.prompt_len();
      seq.generated = seq.first_token_sent ? 1 : 0;
      seq.prefill_done = false;
      seq.prefill_alloc = 0;
      seq.decode_alloc = false;
      pending_.push_front(std::move(seq));
    }
    over = kv_.ReclaimNeededBlocks();
  }
}

void Replica::SampleMemory() {
  stats_.peak_memory_utilization =
      std::max(stats_.peak_memory_utilization, memory_utilization());
  kv_.NoteFragmentationSample(fragmentation_tokens());
  if (config_.memory_sample_every_steps <= 0) {
    return;
  }
  if (stats_.engine_steps %
          static_cast<int64_t>(config_.memory_sample_every_steps) ==
      0) {
    memory_series_.emplace_back(sim_->now(), active_memory_utilization());
    if (Tracer* t = sim_->tracer()) {
      EmitTrace(t, sim_->now(), TraceEventType::kMemSample, region_, id_, -1,
                kv_.free_blocks(), running_count(), memory_utilization());
    }
  }
}

int64_t Replica::EvictCache(int64_t blocks) {
  if (blocks <= 0) {
    return 0;
  }
  const PrefixCache::EvictionStats before = cache_.eviction_stats();
  const int64_t freed = cache_.Evict(blocks);
  if (Tracer* t = sim_->tracer()) {
    const PrefixCache::EvictionStats& after = cache_.eviction_stats();
    if (after.victims > before.victims) {
      EmitTrace(t, sim_->now(), TraceEventType::kCacheEvict, region_, id_, -1,
                after.victims - before.victims,
                after.freed_blocks - before.freed_blocks,
                static_cast<double>(
                    static_cast<int>(cache_.eviction_policy())));
    }
  }
  return freed;
}

void Replica::Crash() {
  for (Seq& seq : running_) {
    if (seq.pin != kInvalidPin) {
      cache_.Unref(seq.pin);
    }
    kv_.ReleaseSeq(seq.kv);
  }
  running_.clear();
  for (SwappedSeq& swapped : swapped_) {
    if (swapped.seq.pin != kInvalidPin) {
      cache_.Unref(swapped.seq.pin);
    }
  }
  swapped_.clear();
  for (RestoringSeq& restoring : restoring_) {
    sim_->Cancel(restoring.arrival);
    if (restoring.seq.pin != kInvalidPin) {
      cache_.Unref(restoring.seq.pin);
    }
    kv_.ReleaseSeq(restoring.seq.kv);
  }
  restoring_.clear();
  pending_.clear();
  watermark_reject_id_valid_ = false;
  cache_.Clear();
}

void Replica::Fail() {
  serving_ = false;
  Crash();
}

void Replica::Recover() { serving_ = true; }

void Replica::SetSlowdown(double factor) {
  SKYWALKER_CHECK(factor > 0.0) << "slowdown must be positive";
  slowdown_ = factor;
}

void Replica::ApplyComposition(const BatchCompositionConfig& composition) {
  // Steps in flight already carry their plan in prefill_alloc/decode_alloc;
  // the new shape applies from the next MaybeStep.
  config_.composition = composition;
}

void Replica::ApplyCacheEvictionPolicy(EvictionPolicy policy) {
  config_.cache_eviction_policy = policy;
  cache_.SetEvictionPolicy(policy);
}

}  // namespace skywalker
