// Single-threaded discrete-event simulator. All actors (clients, load
// balancers, replicas, the controller) share one Simulator instance; the
// simulated clock only advances between events, so event handlers observe a
// consistent "now".

#ifndef SKYWALKER_SIM_SIMULATOR_H_
#define SKYWALKER_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace skywalker {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute simulated time `at` (clamped to now).
  // EventFn stores small lambdas inline — scheduling does not allocate.
  EventId ScheduleAt(SimTime at, EventFn fn);

  // Schedules `fn` after `delay` (clamped to zero).
  EventId ScheduleAfter(SimDuration delay, EventFn fn);

  // Cancels a pending event; false if it already fired or was cancelled.
  bool Cancel(EventId id) { return events_.Cancel(id); }

  // Runs until the event queue drains. Returns events executed.
  size_t Run();

  // Runs events with timestamp <= `deadline`; the clock ends at
  // min(deadline, time of last event) or `deadline` if events remain.
  size_t RunUntil(SimTime deadline);

  // RunUntil(now + d).
  size_t RunFor(SimDuration d) { return RunUntil(now_ + d); }

  // Executes at most one event. Returns false when the queue is empty.
  bool Step();

  bool HasPendingEvents() const { return !events_.empty(); }
  size_t pending_events() const { return events_.size(); }
  size_t executed_events() const { return executed_; }

 private:
  EventQueue events_;
  SimTime now_ = 0;
  size_t executed_ = 0;
};

// Repeats a callback at a fixed interval until stopped or the owner is
// destroyed. Used for heartbeat probes and availability sync.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, SimDuration interval, std::function<void()> fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // Starts ticking; first tick after one interval (or `initial_delay`).
  void Start();
  void StartWithDelay(SimDuration initial_delay);
  void Stop();
  bool running() const { return running_; }

  SimDuration interval() const { return interval_; }
  void set_interval(SimDuration interval) { interval_ = interval; }

 private:
  void Tick();

  Simulator* sim_;
  SimDuration interval_;
  std::function<void()> fn_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace skywalker

#endif  // SKYWALKER_SIM_SIMULATOR_H_
