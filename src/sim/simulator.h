// Single-threaded discrete-event simulator. All actors (clients, load
// balancers, replicas, the controller) share one Simulator instance; the
// simulated clock only advances between events, so event handlers observe a
// consistent "now".
//
// Sharded mode (ISSUE 6): a ShardedSimulator owns one Simulator per region
// group and advances them in conservative-lookahead windows. Each shard then
// runs with *keyed ordering* enabled: events are totally ordered by
// (time, origin region, per-origin sequence) instead of (time, global FIFO
// sequence). That order is a pure function of each region's own execution
// history, so results are bit-identical for any grouping of regions into
// shards and any thread count. See DESIGN.md §7.2.

#ifndef SKYWALKER_SIM_SIMULATOR_H_
#define SKYWALKER_SIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace skywalker {

class Tracer;  // src/obs/trace.h; sim/ stores only the pointer.

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute simulated time `at` (clamped to now).
  // EventFn stores small lambdas inline — scheduling does not allocate.
  // With keyed ordering enabled, the event is keyed to the current region
  // (it targets the region whose handler — or Start() scope — is running).
  EventId ScheduleAt(SimTime at, EventFn fn);

  // Schedules `fn` after `delay` (clamped to zero).
  EventId ScheduleAfter(SimDuration delay, EventFn fn);

  // Cancels a pending event; false if it already fired or was cancelled.
  bool Cancel(EventId id) { return events_.Cancel(id); }

  // Runs until the event queue drains. Returns events executed.
  size_t Run();

  // Runs events with timestamp <= `deadline`; the clock ends at
  // min(deadline, time of last event) or `deadline` if events remain.
  size_t RunUntil(SimTime deadline);

  // RunUntil(now + d).
  size_t RunFor(SimDuration d) { return RunUntil(now_ + d); }

  // Executes at most one event. Returns false when the queue is empty.
  bool Step();

  bool HasPendingEvents() const { return !events_.empty(); }
  size_t pending_events() const { return events_.size(); }
  size_t executed_events() const { return executed_; }

  // Timestamp of the earliest pending event, kSimTimeMax when idle. The
  // sharded round planner uses this to skip shards with nothing to run
  // inside their window (ISSUE 10).
  SimTime NextEventTime() {
    return events_.empty() ? kSimTimeMax : events_.PeekTime();
  }

  // --- keyed (region-deterministic) ordering: sharded-simulator mode ---

  // Switches this shard to the (time, origin region, per-origin sequence)
  // total order. Must be called before anything is scheduled. Region ids
  // are global (topology) ids; only regions owned by this shard allocate
  // keys here.
  void EnableKeyedOrdering(size_t num_regions);
  bool keyed_ordering() const { return keyed_; }

  // The region whose code is currently executing. Step() sets it from the
  // popped event; actor Start() methods set it while scheduling from setup
  // code (no-op information in plain mode).
  void SetCurrentRegion(EventRegion region) { current_region_ = region; }
  EventRegion current_region() const { return current_region_; }

  // Allocates the next ordering key for events originated by `origin`.
  // Requires keyed ordering; `origin` must be owned by this shard.
  uint64_t NextOrderKey(EventRegion origin);

  // Schedules with an explicit key and target region — the injection path
  // for network sends and cross-shard mailbox drains. `at` must not lie in
  // this shard's past (the conservative-lookahead guarantee).
  EventId ScheduleKeyedAt(SimTime at, uint64_t key, EventRegion target,
                          EventFn fn);

  // Runs all events with timestamp < `end` (one lookahead window). Does not
  // advance the clock to `end`; the ShardedSimulator calls AdvanceTo at the
  // final deadline for RunUntil parity.
  size_t RunBefore(SimTime end);

  // now = max(now, t).
  void AdvanceTo(SimTime t);

  // --- observability (ISSUE 9) ---
  // Installs a request-lifecycle tracer (borrowed; may be null). Emission
  // sites do `if (Tracer* t = sim->tracer()) t->Emit(...)`, so with no
  // tracer installed — the default — tracing costs one pointer load and a
  // never-taken branch per site. The tracer is a passive record sink: it
  // never schedules events or mutates actor state, so traced runs stay
  // bit-identical to untraced runs (DESIGN.md §11). In sharded mode every
  // shard's Simulator shares one Tracer, whose per-region rings make that
  // safe (each region's events execute on exactly one shard).
  void SetTracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

 private:
  EventQueue events_;
  SimTime now_ = 0;
  size_t executed_ = 0;
  Tracer* tracer_ = nullptr;

  bool keyed_ = false;
  EventRegion current_region_ = kInvalidEventRegion;
  // Per-origin-region sequence counters (keyed mode). Indexed by global
  // region id; only this shard's regions advance.
  std::vector<uint64_t> origin_seq_;
};

// Repeats a callback at a fixed interval until stopped or the owner is
// destroyed. Used for heartbeat probes and availability sync. The callback
// is an EventFn (InlineFunction), so ticking stays allocation-free for
// small captures, like every other event on the hot path.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, SimDuration interval, EventFn fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  // Starts ticking; first tick after one interval (or `initial_delay`).
  void Start();
  void StartWithDelay(SimDuration initial_delay);
  void Stop();
  bool running() const { return running_; }

  SimDuration interval() const { return interval_; }
  void set_interval(SimDuration interval) { interval_ = interval; }

 private:
  void Tick();

  Simulator* sim_;
  SimDuration interval_;
  EventFn fn_;
  EventId pending_ = kInvalidEventId;
  bool running_ = false;
};

}  // namespace skywalker

#endif  // SKYWALKER_SIM_SIMULATOR_H_
