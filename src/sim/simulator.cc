#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

EventId Simulator::ScheduleAt(SimTime at, EventFn fn) {
  if (keyed_) {
    // Self-scheduling: the event both originates from and targets the
    // region whose code is running (handlers re-arming themselves, think
    // timers, probe loops). Cross-region scheduling goes through
    // Network::Send / Network::Deliver.
    SKYWALKER_CHECK(current_region_ != kInvalidEventRegion)
        << "keyed scheduling outside any region scope";
    return events_.PushKeyed(std::max(at, now_),
                             NextOrderKey(current_region_), current_region_,
                             std::move(fn));
  }
  return events_.Push(std::max(at, now_), std::move(fn));
}

EventId Simulator::ScheduleAfter(SimDuration delay, EventFn fn) {
  return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

void Simulator::EnableKeyedOrdering(size_t num_regions) {
  SKYWALKER_CHECK(events_.empty() && executed_ == 0)
      << "keyed ordering must be enabled before any scheduling";
  keyed_ = true;
  origin_seq_.assign(num_regions, 0);
}

uint64_t Simulator::NextOrderKey(EventRegion origin) {
  SKYWALKER_CHECK(keyed_);
  SKYWALKER_CHECK(origin >= 0 &&
                  static_cast<size_t>(origin) < origin_seq_.size())
      << "origin region out of range";
  return MakeOrderKey(origin, ++origin_seq_[static_cast<size_t>(origin)]);
}

EventId Simulator::ScheduleKeyedAt(SimTime at, uint64_t key,
                                   EventRegion target, EventFn fn) {
  SKYWALKER_CHECK(keyed_);
  // Conservative lookahead: injected events must not land in this shard's
  // executed past, or the (time, key) order would be violated.
  SKYWALKER_CHECK(at >= now_) << "keyed event scheduled in the past";
  return events_.PushKeyed(at, key, target, std::move(fn));
}

size_t Simulator::Run() {
  size_t n = 0;
  while (Step()) {
    ++n;
  }
  return n;
}

size_t Simulator::RunUntil(SimTime deadline) {
  size_t n = 0;
  while (!events_.empty() && events_.PeekTime() <= deadline) {
    Step();
    ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

size_t Simulator::RunBefore(SimTime end) {
  size_t n = 0;
  while (!events_.empty() && events_.PeekTime() < end) {
    Step();
    ++n;
  }
  return n;
}

void Simulator::AdvanceTo(SimTime t) { now_ = std::max(now_, t); }

bool Simulator::Step() {
  if (events_.empty()) {
    return false;
  }
  EventQueue::Event event = events_.Pop();
  now_ = std::max(now_, event.at);
  if (event.target != kInvalidEventRegion) {
    current_region_ = event.target;
  }
  ++executed_;
  event.fn();
  return true;
}

PeriodicTask::PeriodicTask(Simulator* sim, SimDuration interval, EventFn fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() { StartWithDelay(interval_); }

void PeriodicTask::StartWithDelay(SimDuration initial_delay) {
  Stop();
  running_ = true;
  pending_ = sim_->ScheduleAfter(initial_delay, [this] { Tick(); });
}

void PeriodicTask::Stop() {
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
  running_ = false;
}

void PeriodicTask::Tick() {
  pending_ = kInvalidEventId;
  if (!running_) {
    return;
  }
  fn_();
  if (running_) {  // fn_ may have called Stop().
    pending_ = sim_->ScheduleAfter(interval_, [this] { Tick(); });
  }
}

}  // namespace skywalker
