#include "src/sim/simulator.h"

#include <algorithm>
#include <utility>

namespace skywalker {

EventId Simulator::ScheduleAt(SimTime at, EventFn fn) {
  return events_.Push(std::max(at, now_), std::move(fn));
}

EventId Simulator::ScheduleAfter(SimDuration delay, EventFn fn) {
  return ScheduleAt(now_ + std::max<SimDuration>(delay, 0), std::move(fn));
}

size_t Simulator::Run() {
  size_t n = 0;
  while (Step()) {
    ++n;
  }
  return n;
}

size_t Simulator::RunUntil(SimTime deadline) {
  size_t n = 0;
  while (!events_.empty() && events_.PeekTime() <= deadline) {
    Step();
    ++n;
  }
  now_ = std::max(now_, deadline);
  return n;
}

bool Simulator::Step() {
  if (events_.empty()) {
    return false;
  }
  EventQueue::Event event = events_.Pop();
  now_ = std::max(now_, event.at);
  ++executed_;
  event.fn();
  return true;
}

PeriodicTask::PeriodicTask(Simulator* sim, SimDuration interval,
                           std::function<void()> fn)
    : sim_(sim), interval_(interval), fn_(std::move(fn)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() { StartWithDelay(interval_); }

void PeriodicTask::StartWithDelay(SimDuration initial_delay) {
  Stop();
  running_ = true;
  pending_ = sim_->ScheduleAfter(initial_delay, [this] { Tick(); });
}

void PeriodicTask::Stop() {
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
  running_ = false;
}

void PeriodicTask::Tick() {
  pending_ = kInvalidEventId;
  if (!running_) {
    return;
  }
  fn_();
  if (running_) {  // fn_ may have called Stop().
    pending_ = sim_->ScheduleAfter(interval_, [this] { Tick(); });
  }
}

}  // namespace skywalker
