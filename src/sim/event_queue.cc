#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace skywalker {

namespace {
constexpr size_t kArity = 4;
}  // namespace

void EventQueue::SiftUp(size_t i) {
  const Entry moving = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!Before(moving, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void EventQueue::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const Entry moving = heap_[i];
  for (;;) {
    size_t first = i * kArity + 1;
    if (first >= n) {
      break;
    }
    size_t last = first + kArity < n ? first + kArity : n;
    size_t best = first;
    for (size_t c = first + 1; c < last; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], moving)) {
      break;
    }
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void EventQueue::PopHeapTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

EventId EventQueue::Push(SimTime at, EventFn fn) {
  uint32_t slot = slots_.Acquire();
  slots_[slot] = Payload{std::move(fn), kInvalidEventRegion};
  heap_.push_back(Entry{at, next_seq_++, slot, slots_.gen(slot)});
  SiftUp(heap_.size() - 1);
  return slots_.MakeHandle(slot);
}

EventId EventQueue::PushKeyed(SimTime at, uint64_t key, EventRegion target,
                              EventFn fn) {
  uint32_t slot = slots_.Acquire();
  slots_[slot] = Payload{std::move(fn), target};
  heap_.push_back(Entry{at, key, slot, slots_.gen(slot)});
  SiftUp(heap_.size() - 1);
  return slots_.MakeHandle(slot);
}

void EventQueue::ReleaseSlot(uint32_t slot) {
  // Drop the callback; slots may idle on the free list.
  slots_[slot] = Payload{};
  slots_.Release(slot);
}

bool EventQueue::Cancel(EventId id) {
  if (!slots_.IsValid(id)) {
    return false;  // Already ran, already cancelled, or never existed.
  }
  // The heap entry stays behind; SkipStale drops it (generation mismatch)
  // when it reaches the top.
  ReleaseSlot(GenSlotPool<Payload>::HandleSlot(id));
  return true;
}

EventQueue::Event EventQueue::Pop() {
  SkipStale();
  assert(!heap_.empty());
  const Entry top = heap_.front();
  PopHeapTop();
  Event event{top.at, slots_.MakeHandle(top.slot),
              std::move(slots_[top.slot].fn), slots_[top.slot].target};
  ReleaseSlot(top.slot);
  return event;
}

}  // namespace skywalker
