#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace skywalker {

EventId EventQueue::Push(SimTime at, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  if (live_.erase(id) == 0) {
    return false;
  }
  // The heap entry stays behind as a tombstone; SkipCancelled erases it (and
  // this marker) when it reaches the top.
  cancelled_.insert(id);
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Event EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty());
  // priority_queue::top() is const; moving the callback out is safe because
  // the entry is popped immediately after.
  Entry& top = const_cast<Entry&>(heap_.top());
  Event event{top.at, top.id, std::move(top.fn)};
  heap_.pop();
  live_.erase(event.id);
  return event;
}

}  // namespace skywalker
