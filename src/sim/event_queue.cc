#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace skywalker {

EventId EventQueue::Push(SimTime at, std::function<void()> fn) {
  EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkipCancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

EventQueue::Event EventQueue::Pop() {
  SkipCancelled();
  assert(!heap_.empty());
  Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  Event event{top.at, top.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return event;
}

}  // namespace skywalker
