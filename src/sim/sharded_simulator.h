// Region-sharded parallel discrete-event simulation with conservative
// lookahead (ISSUE 6; classic Chandy–Misra–Bryant windowing).
//
// The fleet's regions are partitioned into N shards, each owning one
// Simulator (queue + clock + RNG domains for its regions). Execution
// proceeds in rounds against per-shard frontiers (ISSUE 10): shard pair
// (src, dst) carries a conservative bound L[src][dst] = the minimum
// src->dst one-way latency over region pairs, and each round shard s runs
// its events in [frontier[s], target[s]) where
//     target[s] = min over src != s of (frontier[src] + L[src][s]),
// because any message src sent during its own window delivers at
// sender_now + latency >= frontier[src] + L[src][s] >= target[s]. A close
// region pair therefore throttles only the shards it actually feeds, not
// the whole fleet (the pre-ISSUE-10 scheme ran every shard to the single
// global minimum). Frontiers are monotone (each new target is a min over
// frontiers that only grew) and live (the least-advanced shard strictly
// gains at least min L per round). At the round barrier the main thread
// drains the per-(src,dst) shard mailboxes into the destination queues —
// CHECKing mail.at >= target[dst] — and the next round starts. Shards with
// no event before their target skip execution entirely, and rounds with at
// most one busy shard run inline on the coordinating thread instead of
// waking the worker pool.
//
// Determinism is structural, not scheduling-dependent: every event carries
// an ordering key (time, origin region, per-origin sequence) — see
// event_queue.h — so each shard's execution order, and therefore each
// region's observable behavior, is a pure function of per-region histories.
// Shard count and thread count change only which queue an event waits in,
// never the order regions observe. Mailbox drain order (ascending source
// shard) is fixed for reproducible queue internals, though any drain order
// yields the same execution: the heap orders by the carried key.
//
// Restrictions in sharded mode (single-shard/plain mode is unaffected):
//  * cross-region interaction must flow through Network::Send /
//    Network::Deliver (direct cross-region method calls would race);
//  * fault injection (LB Fail/Recover, controller failover) is not
//    supported — those paths mutate remote-region state directly.

#ifndef SKYWALKER_SIM_SHARDED_SIMULATOR_H_
#define SKYWALKER_SIM_SHARDED_SIMULATOR_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/sim_time.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace skywalker {

class ShardedSimulator {
 public:
  // Fixed shard assignment: region r -> shard r % num_shards (part of the
  // determinism contract; see DESIGN.md §7.2). `num_threads` caps the
  // worker pool (0 = one thread per shard; 1 = serial windows, same
  // results). `jitter_fraction` must be an upper bound on the Network
  // jitter so the lookahead window stays conservative under jittered
  // latencies.
  ShardedSimulator(const Topology& topology, int num_shards,
                   int num_threads = 0, double jitter_fraction = 0.0);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_threads() const { return num_threads_; }
  const Topology& topology() const { return topology_; }

  // The global conservative lookahead: min cross-shard one-way latency,
  // discounted by the jitter bound. kSimTimeMax with a single shard. Rounds
  // actually advance against the tighter per-(src,dst) bounds (ISSUE 10);
  // this is their minimum, kept for telemetry and as the worst-case rate.
  SimDuration lookahead() const { return lookahead_; }

  // The per-pair conservative bound: min src->dst one-way latency over
  // region pairs straddling the two shards, jitter-discounted. kSimTimeMax
  // on the diagonal (a shard never throttles itself).
  SimDuration PairLookahead(int src_shard, int dst_shard) const {
    return pair_lookahead_[static_cast<size_t>(src_shard) *
                               static_cast<size_t>(num_shards()) +
                           static_cast<size_t>(dst_shard)];
  }

  // Installs one shared Tracer on every shard (ISSUE 9). Safe because the
  // tracer buffers per *region* and each region's events execute on exactly
  // one shard; see src/obs/trace.h.
  void SetTracer(Tracer* tracer) {
    for (auto& shard : shards_) {
      shard->SetTracer(tracer);
    }
  }

  int ShardOf(RegionId region) const {
    return shard_of_region_[static_cast<size_t>(region)];
  }
  Simulator* shard(int s) { return shards_[static_cast<size_t>(s)].get(); }
  Simulator* SimForRegion(RegionId region) { return shard(ShardOf(region)); }

  // Cross-shard message injection (Network's sharded send path). Only the
  // thread currently executing `from_shard` may call this; the mail is
  // drained into the destination shard at the next window barrier.
  void PostCrossShard(int from_shard, SimTime at, uint64_t key,
                      RegionId target, EventFn fn);

  // Windowed parallel execution of all shards up to and including
  // `deadline`; every shard clock ends at >= deadline (Simulator::RunUntil
  // parity). Returns events executed across shards during this call.
  size_t RunUntil(SimTime deadline);

  size_t executed_events() const;

  // Per-shard wall-time breakdown of all RunUntil calls so far: busy is
  // in-window event execution on the shard, barrier is the remainder of the
  // parallel phase (waiting on straggler shards plus mailbox drains).
  // Nondeterministic; feeds the BENCH_TIMING.json sidecar only.
  struct ShardTiming {
    double busy_seconds = 0;
    double barrier_seconds = 0;
    uint64_t executed_events = 0;
    uint64_t mailbox_in = 0;  // Cross-shard messages delivered to the shard.
  };
  std::vector<ShardTiming> Timing() const;
  // Rounds that executed at least one shard window. Rounds where every
  // shard was already past its target (pure frontier bookkeeping) are not
  // counted — they do no simulation work.
  uint64_t windows() const { return windows_; }

 private:
  struct Mail {
    SimTime at;
    uint64_t key;
    RegionId target;
    EventFn fn;
  };

  std::vector<Mail>& Mailbox(int from_shard, int to_shard) {
    return mailboxes_[static_cast<size_t>(from_shard) *
                          static_cast<size_t>(num_shards()) +
                      static_cast<size_t>(to_shard)];
  }

  // Moves all pending mail into destination queues; mail delivery into
  // shard d must land at or after target_[d] (the per-pair lookahead
  // guarantee, CHECKed).
  void DrainMailboxes();

  // The per-pair frontier round loop (shared by serial and parallel modes;
  // see RunUntil).
  void RunRounds(SimTime deadline);
  // Lazily spawns the persistent worker pool (first round with >= 2 active
  // shards and num_threads_ > 1).
  void EnsurePool();

  Topology topology_;
  int num_threads_;
  SimDuration lookahead_ = 0;
  std::vector<SimDuration> pair_lookahead_;  // Dense S x S; see PairLookahead.
  std::vector<int> shard_of_region_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  // Dense (src, dst) mailbox matrix. A box is written only by the thread
  // executing its source shard inside a window and drained only by the main
  // thread at the barrier, so no synchronization beyond the barrier itself
  // is needed.
  std::vector<std::vector<Mail>> mailboxes_;
  // Per-shard window state. frontier_[s]: everything before it has executed
  // on shard s. target_[s] / active_[s]: the window end and participation
  // flag for the round in flight, published to workers under pool_mu_.
  std::vector<SimTime> frontier_;
  std::vector<SimTime> target_;
  std::vector<uint8_t> active_;

  // Persistent worker pool (parallel mode). Worker w owns shards w, w+W,
  // ... — static ownership keeps busy_seconds_ single-writer within a
  // round; the epoch handshake orders inline-round writes from the main
  // thread against worker rounds. Spawned on first use, joined in the
  // destructor.
  std::vector<std::thread> pool_;
  std::mutex pool_mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;
  int done_ = 0;
  bool quit_ = false;

  // Timing accounting (telemetry only). busy_seconds_[s] is written solely
  // by the thread running shard s (single-writer per round, handshake
  // ordered across rounds); the rest by the main thread.
  std::vector<double> busy_seconds_;
  std::vector<uint64_t> mailbox_in_;
  double parallel_seconds_ = 0;
  uint64_t windows_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_SIM_SHARDED_SIMULATOR_H_
