#include "src/sim/sharded_simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ShardedSimulator::ShardedSimulator(const Topology& topology, int num_shards,
                                   int num_threads, double jitter_fraction)
    : topology_(topology) {
  SKYWALKER_CHECK(num_shards >= 1);
  SKYWALKER_CHECK(topology_.num_regions() >= 1);
  SKYWALKER_CHECK(jitter_fraction >= 0.0 && jitter_fraction < 1.0);
  num_shards = std::min<int>(num_shards,
                             static_cast<int>(topology_.num_regions()));
  num_threads_ = num_threads <= 0 ? num_shards : std::min(num_threads,
                                                          num_shards);

  shard_of_region_.resize(topology_.num_regions());
  for (size_t r = 0; r < topology_.num_regions(); ++r) {
    shard_of_region_[r] = static_cast<int>(r) % num_shards;
  }
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
    shards_.back()->EnableKeyedOrdering(topology_.num_regions());
  }
  mailboxes_.resize(static_cast<size_t>(num_shards) *
                    static_cast<size_t>(num_shards));
  busy_seconds_.assign(static_cast<size_t>(num_shards), 0.0);
  mailbox_in_.assign(static_cast<size_t>(num_shards), 0);

  // Lookahead = min one-way latency over region pairs living on different
  // shards, discounted by the jitter bound (jittered latency can be as low
  // as floor(latency * (1 - j))).
  SimDuration min_cross = std::numeric_limits<SimDuration>::max();
  const RegionId n = static_cast<RegionId>(topology_.num_regions());
  for (RegionId a = 0; a < n; ++a) {
    for (RegionId b = 0; b < n; ++b) {
      if (ShardOf(a) != ShardOf(b)) {
        min_cross = std::min(min_cross, topology_.Latency(a, b));
      }
    }
  }
  if (num_shards == 1) {
    lookahead_ = kSimTimeMax;
  } else {
    lookahead_ = static_cast<SimDuration>(
        std::floor(static_cast<double>(min_cross) * (1.0 - jitter_fraction)));
    SKYWALKER_CHECK(lookahead_ >= 1)
        << "cross-shard latency too small for a lookahead window";
  }
}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::PostCrossShard(int from_shard, SimTime at, uint64_t key,
                                      RegionId target, EventFn fn) {
  Mailbox(from_shard, ShardOf(target))
      .push_back(Mail{at, key, target, std::move(fn)});
}

void ShardedSimulator::DrainMailboxes(SimTime window_end) {
  const int S = num_shards();
  for (int dst = 0; dst < S; ++dst) {
    Simulator* sim = shard(dst);
    for (int src = 0; src < S; ++src) {
      std::vector<Mail>& box = Mailbox(src, dst);
      for (Mail& mail : box) {
        // The conservative-lookahead contract: anything sent during the
        // window just executed delivers at or after the next window start.
        SKYWALKER_CHECK(mail.at >= window_end)
            << "cross-shard message violates the lookahead bound";
        sim->ScheduleKeyedAt(mail.at, mail.key, mail.target,
                             std::move(mail.fn));
      }
      mailbox_in_[static_cast<size_t>(dst)] += box.size();
      box.clear();
    }
  }
}

size_t ShardedSimulator::RunUntil(SimTime deadline) {
  const size_t before = executed_events();
  if (num_shards() == 1) {
    const auto t0 = std::chrono::steady_clock::now();
    shards_[0]->RunUntil(deadline);
    busy_seconds_[0] += SecondsSince(t0);
    parallel_seconds_ += SecondsSince(t0);
    ++windows_;
    next_window_start_ = deadline + 1;
    return executed_events() - before;
  }
  if (num_threads_ <= 1) {
    RunWindowsSerial(deadline);
  } else {
    RunWindowsParallel(deadline, num_threads_);
  }
  next_window_start_ = deadline + 1;
  for (auto& sim : shards_) {
    sim->AdvanceTo(deadline);
  }
  return executed_events() - before;
}

void ShardedSimulator::RunWindowsSerial(SimTime deadline) {
  SimTime t = next_window_start_;
  while (t <= deadline) {
    // SimTime is integral, so events with at <= deadline are exactly those
    // with at < deadline + 1 — the final (possibly partial) window.
    const SimTime end = std::min(t + lookahead_, deadline + 1);
    const auto w0 = std::chrono::steady_clock::now();
    for (size_t s = 0; s < shards_.size(); ++s) {
      const auto t0 = std::chrono::steady_clock::now();
      shards_[s]->RunBefore(end);
      busy_seconds_[s] += SecondsSince(t0);
    }
    parallel_seconds_ += SecondsSince(w0);
    ++windows_;
    DrainMailboxes(end);
    t = end;
  }
}

void ShardedSimulator::RunWindowsParallel(SimTime deadline, int workers) {
  const int S = num_shards();
  struct Sync {
    std::mutex mu;
    std::condition_variable start_cv;
    std::condition_variable done_cv;
    uint64_t epoch = 0;
    int done = 0;
    SimTime window_end = 0;
    bool quit = false;
  } sync;

  // Persistent workers with static shard ownership (worker w runs shards
  // w, w+W, ...): spawning threads per window would dwarf the window's
  // event work, and static ownership keeps busy_seconds_ single-writer.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([this, w, workers, S, &sync] {
      uint64_t seen = 0;
      for (;;) {
        SimTime end;
        {
          std::unique_lock<std::mutex> lock(sync.mu);
          sync.start_cv.wait(
              lock, [&sync, seen] { return sync.quit || sync.epoch > seen; });
          if (sync.quit) {
            return;
          }
          seen = sync.epoch;
          end = sync.window_end;
        }
        for (int s = w; s < S; s += workers) {
          const auto t0 = std::chrono::steady_clock::now();
          shards_[static_cast<size_t>(s)]->RunBefore(end);
          busy_seconds_[static_cast<size_t>(s)] += SecondsSince(t0);
        }
        {
          std::lock_guard<std::mutex> lock(sync.mu);
          if (++sync.done == workers) {
            sync.done_cv.notify_one();
          }
        }
      }
    });
  }

  SimTime t = next_window_start_;
  while (t <= deadline) {
    const SimTime end = std::min(t + lookahead_, deadline + 1);
    const auto w0 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(sync.mu);
      sync.window_end = end;
      sync.done = 0;
      ++sync.epoch;
    }
    sync.start_cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(sync.mu);
      sync.done_cv.wait(lock,
                        [&sync, workers] { return sync.done == workers; });
    }
    parallel_seconds_ += SecondsSince(w0);
    ++windows_;
    // Mailboxes were written under the window and are read here after the
    // barrier handshake (mutex-ordered), so the drain needs no extra locks.
    DrainMailboxes(end);
    t = end;
  }
  {
    std::lock_guard<std::mutex> lock(sync.mu);
    sync.quit = true;
  }
  sync.start_cv.notify_all();
  for (std::thread& worker : pool) {
    worker.join();
  }
}

size_t ShardedSimulator::executed_events() const {
  size_t total = 0;
  for (const auto& sim : shards_) {
    total += sim->executed_events();
  }
  return total;
}

std::vector<ShardedSimulator::ShardTiming> ShardedSimulator::Timing() const {
  std::vector<ShardTiming> out(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    out[s].busy_seconds = busy_seconds_[s];
    out[s].barrier_seconds = std::max(0.0, parallel_seconds_ -
                                               busy_seconds_[s]);
    out[s].executed_events = shards_[s]->executed_events();
    out[s].mailbox_in = mailbox_in_[s];
  }
  return out;
}

}  // namespace skywalker
