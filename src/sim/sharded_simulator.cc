#include "src/sim/sharded_simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

ShardedSimulator::ShardedSimulator(const Topology& topology, int num_shards,
                                   int num_threads, double jitter_fraction)
    : topology_(topology) {
  SKYWALKER_CHECK(num_shards >= 1);
  SKYWALKER_CHECK(topology_.num_regions() >= 1);
  SKYWALKER_CHECK(jitter_fraction >= 0.0 && jitter_fraction < 1.0);
  num_shards = std::min<int>(num_shards,
                             static_cast<int>(topology_.num_regions()));
  num_threads_ = num_threads <= 0 ? num_shards : std::min(num_threads,
                                                          num_shards);

  shard_of_region_.resize(topology_.num_regions());
  for (size_t r = 0; r < topology_.num_regions(); ++r) {
    shard_of_region_[r] = static_cast<int>(r) % num_shards;
  }
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Simulator>());
    shards_.back()->EnableKeyedOrdering(topology_.num_regions());
  }
  mailboxes_.resize(static_cast<size_t>(num_shards) *
                    static_cast<size_t>(num_shards));
  busy_seconds_.assign(static_cast<size_t>(num_shards), 0.0);
  mailbox_in_.assign(static_cast<size_t>(num_shards), 0);
  frontier_.assign(static_cast<size_t>(num_shards), 0);
  target_.assign(static_cast<size_t>(num_shards), 0);
  active_.assign(static_cast<size_t>(num_shards), 0);

  // Per-pair lookahead: for each ordered shard pair (src, dst), the min
  // src->dst one-way latency over region pairs straddling them, discounted
  // by the jitter bound (jittered latency can be as low as
  // floor(latency * (1 - j))). The global lookahead_ is their minimum —
  // identical to the pre-ISSUE-10 single bound.
  pair_lookahead_.assign(static_cast<size_t>(num_shards) *
                             static_cast<size_t>(num_shards),
                         kSimTimeMax);
  const RegionId n = static_cast<RegionId>(topology_.num_regions());
  for (RegionId a = 0; a < n; ++a) {
    for (RegionId b = 0; b < n; ++b) {
      if (ShardOf(a) == ShardOf(b)) {
        continue;
      }
      SimDuration& slot =
          pair_lookahead_[static_cast<size_t>(ShardOf(a)) *
                              static_cast<size_t>(num_shards) +
                          static_cast<size_t>(ShardOf(b))];
      slot = std::min(slot, topology_.Latency(a, b));
    }
  }
  if (num_shards == 1) {
    lookahead_ = kSimTimeMax;
    return;
  }
  lookahead_ = kSimTimeMax;
  for (int src = 0; src < num_shards; ++src) {
    for (int dst = 0; dst < num_shards; ++dst) {
      if (src == dst) {
        continue;
      }
      SimDuration& slot = pair_lookahead_[static_cast<size_t>(src) *
                                              static_cast<size_t>(num_shards) +
                                          static_cast<size_t>(dst)];
      slot = static_cast<SimDuration>(
          std::floor(static_cast<double>(slot) * (1.0 - jitter_fraction)));
      SKYWALKER_CHECK(slot >= 1)
          << "cross-shard latency too small for a lookahead window";
      lookahead_ = std::min(lookahead_, slot);
    }
  }
}

ShardedSimulator::~ShardedSimulator() {
  if (!pool_.empty()) {
    {
      std::lock_guard<std::mutex> lock(pool_mu_);
      quit_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& worker : pool_) {
      worker.join();
    }
  }
}

void ShardedSimulator::PostCrossShard(int from_shard, SimTime at, uint64_t key,
                                      RegionId target, EventFn fn) {
  Mailbox(from_shard, ShardOf(target))
      .push_back(Mail{at, key, target, std::move(fn)});
}

void ShardedSimulator::DrainMailboxes() {
  const int S = num_shards();
  for (int dst = 0; dst < S; ++dst) {
    Simulator* sim = shard(dst);
    const SimTime window_end = target_[static_cast<size_t>(dst)];
    for (int src = 0; src < S; ++src) {
      std::vector<Mail>& box = Mailbox(src, dst);
      if (box.empty()) {
        continue;
      }
      for (Mail& mail : box) {
        // The per-pair lookahead contract: target_[dst] <= frontier_[src] +
        // PairLookahead(src, dst) for every src, and anything src sent this
        // round left at or after frontier_[src] with at least the
        // discounted pair latency in flight.
        SKYWALKER_CHECK(mail.at >= window_end)
            << "cross-shard message violates the lookahead bound";
        sim->ScheduleKeyedAt(mail.at, mail.key, mail.target,
                             std::move(mail.fn));
      }
      mailbox_in_[static_cast<size_t>(dst)] += box.size();
      // clear() keeps capacity, so steady-state drains never allocate.
      box.clear();
    }
  }
}

size_t ShardedSimulator::RunUntil(SimTime deadline) {
  const size_t before = executed_events();
  if (num_shards() == 1) {
    const auto t0 = std::chrono::steady_clock::now();
    shards_[0]->RunUntil(deadline);
    busy_seconds_[0] += SecondsSince(t0);
    parallel_seconds_ += SecondsSince(t0);
    ++windows_;
    frontier_[0] = deadline + 1;
    return executed_events() - before;
  }
  RunRounds(deadline);
  for (auto& sim : shards_) {
    sim->AdvanceTo(deadline);
  }
  return executed_events() - before;
}

void ShardedSimulator::RunRounds(SimTime deadline) {
  const int S = num_shards();
  // SimTime is integral, so events with at <= deadline are exactly those
  // with at < deadline + 1 — the final (possibly partial) round.
  const SimTime stop = deadline + 1;
  for (;;) {
    SimTime low = stop;
    for (int s = 0; s < S; ++s) {
      low = std::min(low, frontier_[static_cast<size_t>(s)]);
    }
    if (low >= stop) {
      break;  // Every shard has covered [0, deadline].
    }

    // Each shard advances to the min over its incoming edges. Targets are
    // monotone (minima over frontiers that only grow) and the least
    // frontier gains at least min PairLookahead per round, so the loop
    // terminates.
    int active = 0;
    for (int dst = 0; dst < S; ++dst) {
      SimTime target = stop;
      for (int src = 0; src < S; ++src) {
        if (src == dst) {
          continue;
        }
        target = std::min(target, frontier_[static_cast<size_t>(src)] +
                                      PairLookahead(src, dst));
      }
      SKYWALKER_CHECK(target >= frontier_[static_cast<size_t>(dst)]);
      target_[static_cast<size_t>(dst)] = target;
      const bool busy =
          shards_[static_cast<size_t>(dst)]->NextEventTime() < target;
      active_[static_cast<size_t>(dst)] = busy ? 1 : 0;
      active += busy ? 1 : 0;
    }

    if (active == 0) {
      // Pure frontier bookkeeping: nothing to run, nothing to drain (mail
      // only appears while a shard executes).
      frontier_ = target_;
      continue;
    }

    const auto w0 = std::chrono::steady_clock::now();
    if (active == 1 || num_threads_ <= 1) {
      // A lone busy shard (or serial mode) runs inline: no handshake, no
      // wakeup. The pool — if spawned — is parked on start_cv_, so the
      // main thread may touch shard state freely.
      for (int s = 0; s < S; ++s) {
        if (!active_[static_cast<size_t>(s)]) {
          continue;
        }
        const auto t0 = std::chrono::steady_clock::now();
        shards_[static_cast<size_t>(s)]->RunBefore(
            target_[static_cast<size_t>(s)]);
        busy_seconds_[static_cast<size_t>(s)] += SecondsSince(t0);
      }
    } else {
      EnsurePool();
      // target_ / active_ writes above happen-before the epoch bump under
      // pool_mu_, which workers acquire before reading them.
      {
        std::lock_guard<std::mutex> lock(pool_mu_);
        done_ = 0;
        ++epoch_;
      }
      start_cv_.notify_all();
      {
        std::unique_lock<std::mutex> lock(pool_mu_);
        const int workers = static_cast<int>(pool_.size());
        done_cv_.wait(lock, [this, workers] { return done_ == workers; });
      }
    }
    parallel_seconds_ += SecondsSince(w0);
    ++windows_;
    // Mailboxes were written under the round and are read here after the
    // barrier handshake (mutex-ordered), so the drain needs no extra locks.
    DrainMailboxes();
    frontier_ = target_;
  }
}

void ShardedSimulator::EnsurePool() {
  if (!pool_.empty()) {
    return;
  }
  const int S = num_shards();
  const int W = num_threads_;
  pool_.reserve(static_cast<size_t>(W));
  for (int w = 0; w < W; ++w) {
    pool_.emplace_back([this, w, W, S] {
      uint64_t seen = 0;
      for (;;) {
        {
          std::unique_lock<std::mutex> lock(pool_mu_);
          start_cv_.wait(lock,
                         [this, seen] { return quit_ || epoch_ > seen; });
          if (quit_) {
            return;
          }
          seen = epoch_;
        }
        for (int s = w; s < S; s += W) {
          if (!active_[static_cast<size_t>(s)]) {
            continue;
          }
          const auto t0 = std::chrono::steady_clock::now();
          shards_[static_cast<size_t>(s)]->RunBefore(
              target_[static_cast<size_t>(s)]);
          busy_seconds_[static_cast<size_t>(s)] += SecondsSince(t0);
        }
        {
          std::lock_guard<std::mutex> lock(pool_mu_);
          if (++done_ == W) {
            done_cv_.notify_one();
          }
        }
      }
    });
  }
}

size_t ShardedSimulator::executed_events() const {
  size_t total = 0;
  for (const auto& sim : shards_) {
    total += sim->executed_events();
  }
  return total;
}

std::vector<ShardedSimulator::ShardTiming> ShardedSimulator::Timing() const {
  std::vector<ShardTiming> out(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    out[s].busy_seconds = busy_seconds_[s];
    out[s].barrier_seconds = std::max(0.0, parallel_seconds_ -
                                               busy_seconds_[s]);
    out[s].executed_events = shards_[s]->executed_events();
    out[s].mailbox_in = mailbox_in_[s];
  }
  return out;
}

}  // namespace skywalker
