// Priority event queue for the discrete-event simulator.
//
// Events with equal timestamps execute in scheduling (FIFO) order, which makes
// runs deterministic. The callback lives in the heap entry itself (moved in on
// Push, moved out on Pop); cancellation is tombstone-based — cancelled ids go
// into a side set and their heap entries are dropped, and the tombstone
// erased, as Pop/PeekTime skip over them, so neither structure grows
// unboundedly across long runs (e.g. the diurnal benches).

#ifndef SKYWALKER_SIM_EVENT_QUEUE_H_
#define SKYWALKER_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"

namespace skywalker {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Enqueues `fn` to run at absolute time `at`. Returns a handle usable with
  // Cancel().
  EventId Push(SimTime at, std::function<void()> fn);

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed.
  bool Cancel(EventId id);

  bool empty() const { return live_.empty(); }
  size_t size() const { return live_.size(); }

  // Timestamp of the earliest live event. Requires !empty().
  SimTime PeekTime();

  // Pops the earliest live event. Requires !empty().
  struct Event {
    SimTime at;
    EventId id;
    std::function<void()> fn;
  };
  Event Pop();

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;  // Tie-break: earlier scheduling first.
    EventId id;
    std::function<void()> fn;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries (and their tombstones) from the heap top.
  void SkipCancelled();

  std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  std::unordered_set<EventId> live_;       // Pushed, not yet popped/cancelled.
  std::unordered_set<EventId> cancelled_;  // Tombstones still in the heap.
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
};

}  // namespace skywalker

#endif  // SKYWALKER_SIM_EVENT_QUEUE_H_
