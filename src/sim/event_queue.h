// Priority event queue for the discrete-event simulator.
//
// Events with equal timestamps execute in scheduling (FIFO) order, which
// makes runs deterministic.
//
// Layout (ISSUE 3): the binary heap holds 24-byte POD entries
// {time, seq, slot, generation} — sift operations are memcpy-speed — while
// the callback lives in a slot slab addressed by index. Cancellation is
// zero-tombstone: Cancel bumps the slot's generation and recycles it, and
// Pop/PeekTime discard heap entries whose generation no longer matches (the
// stale entry is the only residue, and it is dropped the moment it reaches
// the heap top — there is no side set to maintain). Callbacks are
// InlineFunction, so neither Push nor Pop allocates in steady state: slots
// come from a free list, the heap vector reuses its capacity, and small
// lambdas are stored in place.

#ifndef SKYWALKER_SIM_EVENT_QUEUE_H_
#define SKYWALKER_SIM_EVENT_QUEUE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/common/gen_slot_pool.h"
#include "src/common/inline_function.h"
#include "src/common/sim_time.h"

namespace skywalker {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Matches RegionId in src/net/topology.h. Spelled as the underlying type
// here so sim/ stays independent of net/ (net/ layers on top of sim/).
using EventRegion = int32_t;
inline constexpr EventRegion kInvalidEventRegion = -1;

// Scheduled-callback type. Small captures are stored inline (no heap);
// oversized functors transparently fall back to one allocation.
using EventFn = InlineFunction;

// Deterministic cross-shard ordering key (ISSUE 6): packs (origin region,
// per-origin sequence) so that plain uint64 comparison orders equal-time
// events by origin region first, then by per-origin scheduling order. The
// key is a pure function of the origin region's own execution history, so
// the resulting (time, key) total order is independent of how regions are
// grouped into shards and of thread count.
inline constexpr int kOrderKeySeqBits = 40;
inline constexpr uint64_t MakeOrderKey(EventRegion origin, uint64_t seq) {
  return (static_cast<uint64_t>(origin + 1) << kOrderKeySeqBits) | seq;
}

class EventQueue {
 public:
  // Enqueues `fn` to run at absolute time `at`. Returns a handle usable with
  // Cancel(). Tie-break at equal times: scheduling (FIFO) order.
  EventId Push(SimTime at, EventFn fn);

  // Keyed enqueue: the caller supplies the 64-bit tie-break key (see
  // MakeOrderKey) and the region the event targets, which Pop() surfaces so
  // a sharded executor can scope the handler to its region. Keys must be
  // unique; plain and keyed pushes must not be mixed in one queue (the two
  // key spaces would interleave arbitrarily at equal timestamps).
  EventId PushKeyed(SimTime at, uint64_t key, EventRegion target, EventFn fn);

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or never existed.
  bool Cancel(EventId id);

  bool empty() const { return slots_.live() == 0; }
  size_t size() const { return slots_.live(); }

  // Timestamp of the earliest live event. Requires !empty(). Inline: the
  // sharded round loop peeks once per shard per round and the simulator
  // once per executed event (ISSUE 10).
  SimTime PeekTime() {
    SkipStale();
    assert(!heap_.empty());
    return heap_.front().at;
  }

  // Pops the earliest live event. Requires !empty(). `target` is the region
  // given to PushKeyed, or kInvalidEventRegion for plain pushes.
  struct Event {
    SimTime at;
    EventId id;
    EventFn fn;
    EventRegion target = kInvalidEventRegion;
  };
  Event Pop();

 private:
  // Slot payload: the callback plus the target region for keyed events.
  struct Payload {
    EventFn fn;
    EventRegion target = kInvalidEventRegion;
  };
  // Trivially copyable heap entry; the heap never touches callbacks, which
  // live in the generation-stamped slot pool (releasing a slot invalidates
  // both the outstanding EventId and any stale heap entry in one store).
  struct Entry {
    SimTime at;
    uint64_t seq;  // Tie-break: earlier scheduling first.
    uint32_t slot;
    uint32_t gen;
  };

  bool IsLive(const Entry& entry) const {
    return slots_.gen(entry.slot) == entry.gen;
  }

  // 4-ary min-heap on (at, seq): half the sift depth of a binary heap, and
  // the four children of a node share two cache lines. (at, seq) is a strict
  // total order — seq is unique — so pop order is independent of heap arity.
  static bool Before(const Entry& a, const Entry& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  }
  void SiftUp(size_t i);
  void SiftDown(size_t i);
  void PopHeapTop();

  // Drops stale (cancelled) entries from the heap top. Inline because the
  // common case — a live front — is a single generation compare.
  void SkipStale() {
    while (!heap_.empty() && !IsLive(heap_.front())) {
      PopHeapTop();
    }
  }

  void ReleaseSlot(uint32_t slot);

  std::vector<Entry> heap_;
  GenSlotPool<Payload> slots_;
  uint64_t next_seq_ = 1;
};

}  // namespace skywalker

#endif  // SKYWALKER_SIM_EVENT_QUEUE_H_
