#include "src/cache/hash_ring.h"

#include <algorithm>
#include <cassert>

namespace skywalker {

HashRing::HashRing(int vnodes_per_weight) : vnodes_per_weight_(vnodes_per_weight) {
  assert(vnodes_per_weight_ > 0);
}

void HashRing::AddTarget(TargetId id, int weight) {
  assert(weight >= 1);
  if (!targets_.insert(id).second) {
    return;
  }
  size_t count = static_cast<size_t>(vnodes_per_weight_) *
                 static_cast<size_t>(weight);
  ring_.reserve(ring_.size() + count);
  // Two independent mixing rounds per virtual node; a single combine round
  // leaves visible correlation between successive vnode indices, which
  // skews key ownership by tens of percent.
  uint64_t target_hash = Mix64((static_cast<uint64_t>(id) + 1) *
                               0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < count; ++i) {
    uint64_t point =
        Mix64(target_hash ^ Mix64((i + 1) * 0xbf58476d1ce4e5b9ULL));
    ring_.push_back(VNode{point, id});
  }
  // Sorting is deferred to the next lookup: attaching a fleet of R targets
  // up front costs one sort, not R sorts of an ever-growing ring.
  sorted_ = false;
}

void HashRing::EnsureSorted() const {
  if (!sorted_) {
    std::sort(ring_.begin(), ring_.end());
    sorted_ = true;
  }
}

void HashRing::RemoveTarget(TargetId id) {
  if (targets_.erase(id) == 0) {
    return;
  }
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [id](const VNode& v) { return v.target == id; }),
              ring_.end());
}

bool HashRing::Contains(TargetId id) const {
  return targets_.find(id) != targets_.end();
}

TargetId HashRing::Lookup(uint64_t key_hash) const {
  if (ring_.empty()) {
    return kInvalidTarget;
  }
  EnsureSorted();
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const VNode& v, uint64_t h) { return v.point < h; });
  if (it == ring_.end()) {
    it = ring_.begin();  // Wrap around.
  }
  return it->target;
}

TargetId HashRing::LookupAvailable(
    uint64_t key_hash, const std::function<bool(TargetId)>& pred) const {
  if (ring_.empty()) {
    return kInvalidTarget;
  }
  EnsureSorted();
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const VNode& v, uint64_t h) { return v.point < h; });
  size_t begin = start == ring_.end()
                     ? 0
                     : static_cast<size_t>(start - ring_.begin());
  std::set<TargetId> seen;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const VNode& v = ring_[(begin + i) % ring_.size()];
    if (!seen.insert(v.target).second) {
      continue;
    }
    if (!pred || pred(v.target)) {
      return v.target;
    }
    if (seen.size() == targets_.size()) {
      break;  // Every distinct target inspected.
    }
  }
  return kInvalidTarget;
}

std::vector<TargetId> HashRing::LookupN(uint64_t key_hash, size_t n) const {
  std::vector<TargetId> out;
  if (ring_.empty() || n == 0) {
    return out;
  }
  EnsureSorted();
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(), key_hash,
      [](const VNode& v, uint64_t h) { return v.point < h; });
  size_t begin = start == ring_.end()
                     ? 0
                     : static_cast<size_t>(start - ring_.begin());
  std::set<TargetId> seen;
  for (size_t i = 0; i < ring_.size() && out.size() < n; ++i) {
    const VNode& v = ring_[(begin + i) % ring_.size()];
    if (seen.insert(v.target).second) {
      out.push_back(v.target);
    }
  }
  return out;
}

}  // namespace skywalker
