#include "src/cache/prefix_cache.h"

#include <cassert>
#include <limits>

#include "src/common/logging.h"

namespace skywalker {

PrefixCache::PrefixCache(int64_t capacity_tokens)
    : capacity_tokens_(capacity_tokens), root_(std::make_unique<Node>()) {}

PrefixCache::~PrefixCache() = default;

int64_t PrefixCache::WalkAndSplit(const TokenSeq& seq, SimTime now,
                                  std::vector<Node*>* path) {
  Node* node = root_.get();
  size_t pos = 0;
  while (pos < seq.size()) {
    auto it = node->children.find(seq[pos]);
    if (it == node->children.end()) {
      break;
    }
    Node* child = it->second.get();
    const TokenSeq& edge = child->edge;
    size_t matched = 0;
    while (matched < edge.size() && pos + matched < seq.size() &&
           edge[matched] == seq[pos + matched]) {
      ++matched;
    }
    if (matched == 0) {
      break;  // Defensive; the map key guarantees >= 1 in practice.
    }
    if (matched < edge.size()) {
      // Partial edge match: split so the boundary is node-aligned.
      SplitNode(child, matched);
    }
    child->last_access = now;
    pos += matched;
    if (path != nullptr) {
      path->push_back(child);
    }
    node = child;
  }
  return static_cast<int64_t>(pos);
}

void PrefixCache::SplitNode(Node* node, size_t keep) {
  assert(keep > 0 && keep < node->edge.size());
  auto tail = std::make_unique<Node>();
  tail->edge.assign(node->edge.begin() + static_cast<ptrdiff_t>(keep),
                    node->edge.end());
  tail->children = std::move(node->children);
  for (auto& [token, child] : tail->children) {
    child->parent = tail.get();
  }
  // Both halves are covered by exactly the pins that covered the original
  // node (pin boundaries are node-aligned, so no pin ends strictly inside).
  tail->ref_count = node->ref_count;
  tail->last_access = node->last_access;
  tail->parent = node;

  node->edge.resize(keep);
  node->children.clear();
  Token first = tail->edge.front();
  node->children.emplace(first, std::move(tail));
  ++num_nodes_;  // Token count is unchanged; one extra node exists.
}

PrefixCache::MatchRef PrefixCache::MatchAndRef(const TokenSeq& seq,
                                               SimTime now) {
  std::vector<Node*> path;
  int64_t len = WalkAndSplit(seq, now, &path);
  for (Node* n : path) {
    ++n->ref_count;
  }
  PinId id = next_pin_++;
  Pin pin;
  pin.prefix.assign(seq.begin(), seq.begin() + static_cast<ptrdiff_t>(len));
  pins_.emplace(id, std::move(pin));

  lookup_tokens_ += static_cast<int64_t>(seq.size());
  hit_tokens_ += len;
  return MatchRef{len, id};
}

int64_t PrefixCache::MatchPrefix(const TokenSeq& seq, SimTime now) {
  return WalkAndSplit(seq, now, nullptr);
}

void PrefixCache::Unref(PinId pin) {
  auto it = pins_.find(pin);
  SKYWALKER_CHECK(it != pins_.end()) << "double Unref or invalid pin " << pin;
  const TokenSeq& prefix = it->second.prefix;
  AdjustRefs(prefix, static_cast<int64_t>(prefix.size()), -1);
  pins_.erase(it);
}

void PrefixCache::AdjustRefs(const TokenSeq& seq, int64_t len, int64_t delta) {
  Node* node = root_.get();
  int64_t pos = 0;
  while (pos < len) {
    auto it = node->children.find(seq[static_cast<size_t>(pos)]);
    SKYWALKER_CHECK(it != node->children.end())
        << "pinned path missing at token " << pos;
    Node* child = it->second.get();
    int64_t edge_len = static_cast<int64_t>(child->edge.size());
    SKYWALKER_CHECK(pos + edge_len <= len)
        << "pin boundary not node-aligned (pos=" << pos
        << " edge=" << edge_len << " len=" << len << ")";
    child->ref_count += delta;
    SKYWALKER_CHECK(child->ref_count >= 0) << "negative refcount";
    pos += edge_len;
    node = child;
  }
}

int64_t PrefixCache::Insert(const TokenSeq& seq, SimTime now) {
  std::vector<Node*> path;
  int64_t matched = WalkAndSplit(seq, now, &path);
  int64_t added = 0;
  if (matched < static_cast<int64_t>(seq.size())) {
    Node* parent = path.empty() ? root_.get() : path.back();
    auto leaf = std::make_unique<Node>();
    leaf->edge.assign(seq.begin() + matched, seq.end());
    leaf->parent = parent;
    leaf->last_access = now;
    added = static_cast<int64_t>(leaf->edge.size());
    Token first = leaf->edge.front();
    parent->children.emplace(first, std::move(leaf));
    ++num_nodes_;
    size_tokens_ += added;
  }
  if (size_tokens_ > capacity_tokens_) {
    Evict(size_tokens_ - capacity_tokens_);
  }
  return added;
}

int64_t PrefixCache::Evict(int64_t tokens) {
  int64_t freed = 0;
  while (freed < tokens) {
    // LRU leaf scan. Trees here hold a few thousand nodes at most; a linear
    // scan keeps the structure simple (micro-benchmarked in bench/).
    Node* victim = nullptr;
    SimTime oldest = std::numeric_limits<SimTime>::max();
    // Iterative DFS.
    std::vector<Node*> stack{root_.get()};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (auto& [token, child] : n->children) {
        stack.push_back(child.get());
      }
      if (n != root_.get() && n->children.empty() && n->ref_count == 0 &&
          n->last_access < oldest) {
        oldest = n->last_access;
        victim = n;
      }
    }
    if (victim == nullptr) {
      break;  // Everything evictable is gone (rest is pinned or interior).
    }
    freed += static_cast<int64_t>(victim->edge.size());
    RemoveLeaf(victim);
  }
  return freed;
}

void PrefixCache::RemoveLeaf(Node* leaf) {
  assert(leaf->children.empty() && leaf->ref_count == 0);
  Node* parent = leaf->parent;
  size_tokens_ -= static_cast<int64_t>(leaf->edge.size());
  --num_nodes_;
  parent->children.erase(leaf->edge.front());
}

void PrefixCache::Clear() {
  // Evict everything evictable; pinned paths survive.
  Evict(std::numeric_limits<int64_t>::max());
}

int64_t PrefixCache::pinned_tokens() const {
  // Sum of edge lengths of nodes with ref_count > 0.
  int64_t total = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const auto& [token, child] : n->children) {
      stack.push_back(child.get());
    }
    if (n->ref_count > 0) {
      total += static_cast<int64_t>(n->edge.size());
    }
  }
  return total;
}

bool PrefixCache::CheckInvariants() const {
  int64_t tokens = 0;
  size_t nodes = 0;
  bool ok = true;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n != root_.get()) {
      tokens += static_cast<int64_t>(n->edge.size());
      ++nodes;
      if (n->edge.empty()) {
        ok = false;  // Non-root nodes must have a non-empty edge.
      }
      // Children must be reachable under the right first token, and a
      // child's refcount never exceeds its parent's chain... (refcounts are
      // per-pin-coverage, child <= parent holds because pins cover prefixes).
      if (n->parent != nullptr && n->parent != root_.get() &&
          n->ref_count > n->parent->ref_count) {
        ok = false;
      }
    }
    for (const auto& [token, child] : n->children) {
      if (child->edge.empty() || child->edge.front() != token) {
        ok = false;
      }
      if (child->parent != n) {
        ok = false;
      }
      stack.push_back(child.get());
    }
  }
  if (tokens != size_tokens_ || nodes != num_nodes_) {
    ok = false;
  }
  return ok;
}

}  // namespace skywalker
