#include "src/cache/prefix_cache.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

namespace {
// Path-page index of the first page covering positions >= d.
inline int64_t PageFloor(int64_t d, int32_t block_size) {
  return d / block_size;
}
// Path-page index one past the last page covering positions < d.
inline int64_t PageCeil(int64_t d, int32_t block_size) {
  return (d + block_size - 1) / block_size;
}
}  // namespace

PrefixCache::PrefixCache(int64_t capacity_tokens, BlockAllocator* alloc,
                         int32_t block_size_tokens, EvictionPolicy policy)
    : capacity_tokens_(capacity_tokens),
      block_size_(block_size_tokens),
      policy_(policy),
      maintain_aggregates_(policy == EvictionPolicy::kColdSubtree) {
  SKYWALKER_CHECK(block_size_ >= 1) << "block size";
  if (alloc == nullptr) {
    owned_alloc_ = std::make_unique<BlockAllocator>(
        std::max<int64_t>(1, capacity_tokens / block_size_));
    alloc = owned_alloc_.get();
  }
  alloc_ = alloc;
  root_ = nodes_.Alloc();
}

PrefixCache::~PrefixCache() {
  // Return every page reference to the (possibly shared) allocator so a
  // replica teardown leaves the pool consistent. Slices into the owned
  // pools die with the pools themselves.
  std::vector<SlabId> stack{root_};
  while (!stack.empty()) {
    SlabId id = stack.back();
    stack.pop_back();
    const Node& n = node(id);
    for (const auto& [token, child] : n.children) {
      (void)token;
      stack.push_back(child);
    }
    alloc_->ReleaseSpan(n.blocks.data,
                        static_cast<int64_t>(n.blocks.size()));
  }
}

SlabId PrefixCache::SplitAbove(SlabId id, size_t keep, int64_t start) {
  SlabId top = nodes_.Alloc();
  Node& lower = node(id);
  Node& upper = node(top);
  assert(keep > 0 && keep < lower.edge.size());

  upper.edge = lower.edge.Prefix(keep);
  pool_.AddRef(upper.edge);
  upper.parent = lower.parent;
  // Both halves are covered by exactly the pins that covered the original
  // node (pin boundaries are node-aligned, so no pin ends strictly inside);
  // pins keep referencing `id`, which stays the deepest covered node.
  upper.ref_count = lower.ref_count;
  upper.last_access = lower.last_access;
  upper.children.Clear();
  upper.children.Set(lower.edge[keep], id);

  // Split the page span at the same point. Pages are path-aligned, so the
  // upper half keeps pages up to PageCeil(mid) and the lower half keeps
  // pages from PageFloor(mid); a page straddling `mid` appears in both
  // spans and gains one allocator reference — a split costs zero new pages.
  const int64_t first = PageFloor(start, block_size_);
  const int64_t mid = start + static_cast<int64_t>(keep);
  const int64_t upper_len = PageCeil(mid, block_size_) - first;
  const int64_t lower_from = PageFloor(mid, block_size_) - first;
  upper.blocks = lower.blocks.Prefix(static_cast<size_t>(upper_len));
  block_pool_.AddRef(upper.blocks);  // One slice view became two.
  if (mid % block_size_ != 0) {
    alloc_->AddRef(lower.blocks[static_cast<size_t>(lower_from)]);
    ++block_refs_;
  }
  lower.blocks = lower.blocks.Suffix(static_cast<size_t>(lower_from));

  *node(lower.parent).children.Find(lower.edge.front()) = top;
  lower.edge = lower.edge.Suffix(keep);  // Keeps the original chunk ref.
  lower.parent = top;
  ++num_nodes_;  // Token count is unchanged; one extra node exists.
  if (maintain_aggregates_) {
    // The upper subtree is the lower subtree plus the upper node itself, so
    // its access aggregates are a copy; the page aggregates move the pages
    // the upper half took out of the lower half, and a straddled boundary
    // page (one extra reference) propagates +1 to every ancestor.
    lower.sub_blocks -= static_cast<int32_t>(lower_from);
    upper.sub_blocks = lower.sub_blocks + static_cast<int32_t>(upper_len);
    upper.sub_last_access = lower.sub_last_access;
    upper.sub_hits = lower.sub_hits;
    upper.sub_hit_stamp = lower.sub_hit_stamp;
    if (mid % block_size_ != 0) {
      PropagateSubBlocks(top, 1);
    }
  }
  return top;
}

int64_t PrefixCache::WalkAndSplit(const TokenSeq& seq, SimTime now,
                                  SlabId* deepest) {
  // The walk carries a raw node pointer alongside the id (slab chunks have
  // stable addresses) and derefs ids through a chunk-caching cursor.
  Slab<Node, 6>::Cursor cursor(&nodes_);
  SlabId cur = root_;
  Node* cur_node = &node(cur);
  size_t pos = 0;
  if (now > newest_access_) {
    newest_access_ = now;  // Eviction judges coldness against this clock.
  }
  while (pos < seq.size()) {
    const SlabId* child_slot = cur_node->children.Find(seq[pos]);
    if (child_slot == nullptr) {
      break;
    }
    SlabId child = *child_slot;
    Node* child_node = cursor.Deref(child);
    const size_t n =
        std::min<size_t>(child_node->edge.size(), seq.size() - pos);
    // The child is keyed by its edge's first token, so that token is already
    // known equal — single-token edges (deep chains) skip the compare (and
    // the edge-data load) entirely.
    size_t matched = 1;
    if (n > 1) {
      matched += CommonPrefixLenRaw(child_node->edge.data + 1,
                                    seq.data() + pos + 1, n - 1);
    }
    if (matched < child_node->edge.size()) {
      // Partial edge match: split so the boundary is node-aligned. The
      // fully-matched half is the new upper node. The child's edge starts
      // at absolute depth `pos`.
      child = SplitAbove(child, matched, static_cast<int64_t>(pos));
      child_node = &node(child);
    }
    child_node->last_access = now;
    if (maintain_aggregates_) {
      // The walked path is exactly the ancestor chain of the access, so
      // every matched node's subtree was just hit.
      TouchAggregates(*child_node, now);
    }
    pos += matched;
    cur = child;
    cur_node = child_node;
  }
  *deepest = cur;
  return static_cast<int64_t>(pos);
}

PrefixCache::MatchRef PrefixCache::MatchAndRef(const TokenSeq& seq,
                                               SimTime now) {
  SlabId deepest = root_;
  int64_t len = WalkAndSplit(seq, now, &deepest);
  for (SlabId n = deepest; n != root_; n = node(n).parent) {
    Node& nd = node(n);
    if (nd.ref_count == 0) {
      pinned_tokens_ += static_cast<int64_t>(nd.edge.size());
    }
    ++nd.ref_count;
  }

  uint32_t slot = pins_.Acquire();
  pins_[slot] = deepest == root_ ? kNilSlabId : deepest;
  PinId id = static_cast<PinId>(pins_.MakeHandle(slot));

  lookup_tokens_ += static_cast<int64_t>(seq.size());
  hit_tokens_ += len;
  return MatchRef{len, id};
}

int64_t PrefixCache::MatchPrefix(const TokenSeq& seq, SimTime now) {
  SlabId deepest = root_;
  return WalkAndSplit(seq, now, &deepest);
}

void PrefixCache::Unref(PinId pin) {
  const uint64_t handle = static_cast<uint64_t>(pin);
  SKYWALKER_CHECK(pin != kInvalidPin && pins_.IsValid(handle))
      << "double Unref or invalid pin " << pin;
  const uint32_t slot = GenSlotPool<SlabId>::HandleSlot(handle);
  // Every node from the pin's deepest covered node up to the root is covered
  // by it (splits insert nodes above survivors, so the chain stays intact).
  SlabId cur = pins_[slot];
  while (cur != kNilSlabId && cur != root_) {
    Node& n = node(cur);
    --n.ref_count;
    SKYWALKER_CHECK(n.ref_count >= 0) << "negative refcount";
    if (n.ref_count == 0) {
      pinned_tokens_ -= static_cast<int64_t>(n.edge.size());
    }
    cur = n.parent;
  }
  pins_[slot] = kNilSlabId;
  pins_.Release(slot);
}

int64_t PrefixCache::Insert(const TokenSeq& seq, SimTime now,
                            const BlockTable* donor, int64_t donor_base) {
  SlabId parent = root_;
  int64_t matched = WalkAndSplit(seq, now, &parent);
  int64_t added = 0;
  if (matched < static_cast<int64_t>(seq.size())) {
    SlabId leaf = nodes_.Alloc();
    Node& n = node(leaf);
    n.edge = pool_.Intern(seq.data() + matched,
                          seq.size() - static_cast<size_t>(matched));
    n.children.Clear();
    n.parent = parent;
    n.ref_count = 0;
    n.last_access = now;
    added = static_cast<int64_t>(n.edge.size());

    // Assemble the leaf's page span over path pages [matched, seq.size()).
    // Pages the donor (the publishing sequence's path-aligned table) covers
    // are reference-transferred; the rest — bare inserts and re-publish
    // after eviction — get fresh pages. An unaligned head page's leading
    // slots duplicate the parent's tail content: that is the boundary cost
    // paged mode pays, visible as fragmentation.
    const int64_t first = PageFloor(matched, block_size_);
    const int64_t last = PageCeil(static_cast<int64_t>(seq.size()),
                                  block_size_);
    span_scratch_.resize(static_cast<size_t>(last - first));
    if (donor == nullptr) {
      // Bare insert: a whole span of fresh pages in one allocator pass.
      alloc_->AllocateSpan(last - first, span_scratch_.data());
    } else {
      const int64_t donor_first = PageFloor(donor_base, block_size_);
      for (int64_t j = first; j < last; ++j) {
        BlockId id = kInvalidBlockId;
        const int64_t di = j - donor_first;
        if (di >= 0 && di < donor->num_blocks()) {
          id = donor->blocks()[static_cast<size_t>(di)];
          alloc_->AddRef(id);
        }
        if (id == kInvalidBlockId) {
          // Re-publish after eviction: the donor no longer covers this
          // position; it gets a fresh page (rare corner, single alloc).
          id = alloc_->Allocate();
        }
        span_scratch_[static_cast<size_t>(j - first)] = id;
      }
    }
    n.blocks = block_pool_.Intern(span_scratch_.data(), span_scratch_.size());
    block_refs_ += static_cast<int64_t>(span_scratch_.size());

    node(parent).children.Set(n.edge.front(), leaf);
    ++num_nodes_;
    size_tokens_ += added;
    if (maintain_aggregates_) {
      n.sub_blocks = static_cast<int32_t>(span_scratch_.size());
      n.sub_hits = 1.0f;  // The insert itself is the subtree's first access.
      n.sub_last_access = now;
      n.sub_hit_stamp = now;
      PropagateSubBlocks(leaf,
                         static_cast<int64_t>(span_scratch_.size()));
    }
  }
  if (size_tokens_ > capacity_tokens_) {
    Evict(PageCeil(size_tokens_ - capacity_tokens_, block_size_));
  }
  return added;
}

int64_t PrefixCache::Evict(int64_t blocks) {
  const size_t nodes_before = num_nodes_;
  int64_t freed = 0;
  if (policy_ == EvictionPolicy::kColdSubtree) {
    freed = EvictColdSubtrees(blocks);
  }
  if (freed < blocks) {
    // kLruLeaf, and the cold pass's fallback: whatever cold subtrees could
    // not satisfy (hot tree, or every cold candidate already gone) reclaims
    // exactly the way the seed policy would.
    freed += EvictLruLeaves(blocks - freed);
  }
  if (num_nodes_ < nodes_before) {
    ++eviction_stats_.rounds;
    eviction_stats_.victims +=
        static_cast<int64_t>(nodes_before - num_nodes_);
    eviction_stats_.freed_blocks += freed;
  }
  return freed;
}

int64_t PrefixCache::EvictLruLeaves(int64_t blocks) {
  int64_t freed = 0;
  std::vector<SlabId>& stack = evict_stack_;
  while (freed < blocks) {
    // LRU leaf scan. The slab keeps nodes contiguous, so the scan streams
    // through a few cache lines per chunk; trees here hold a few thousand
    // nodes at most (micro-benchmarked in bench/).
    SlabId victim = kNilSlabId;
    SimTime oldest = std::numeric_limits<SimTime>::max();
    stack.clear();
    stack.push_back(root_);
    while (!stack.empty()) {
      SlabId id = stack.back();
      stack.pop_back();
      const Node& n = node(id);
      for (const auto& [token, child] : n.children) {
        (void)token;
        stack.push_back(child);
      }
      if (id != root_ && n.children.empty() && n.ref_count == 0 &&
          n.last_access < oldest) {
        oldest = n.last_access;
        victim = id;
      }
    }
    if (victim == kNilSlabId) {
      break;  // Everything evictable is gone (rest is pinned or interior).
    }
    freed += RemoveLeaf(victim);
  }
  return freed;
}

int64_t PrefixCache::EvictColdSubtrees(int64_t blocks) {
  // Collect the *maximal* cold subtree roots: scan from the root and stop
  // descending at the first candidate — its descendants are covered by it.
  // Unpinned is guaranteed subtree-wide by ref_count == 0 at the root (a
  // pin covers a root path, so a pinned descendant would pin the root too).
  cold_candidates_.clear();
  std::vector<SlabId>& stack = evict_stack_;
  stack.clear();
  stack.push_back(root_);
  while (!stack.empty()) {
    SlabId id = stack.back();
    stack.pop_back();
    const Node& n = node(id);
    if (id != root_ && n.ref_count == 0 &&
        n.sub_last_access + kColdSubtreeAgeUs <= newest_access_) {
      // Pages reclaimed per expected future hit: a big subtree nobody hits
      // anymore scores highest; a small but historically hot one scores
      // lowest. sub_blocks over-counts shared straddle pages, which is the
      // right bias — straddle-heavy subtrees free fewer pages per node.
      const double expected_hits =
          static_cast<double>(DecayedHits(n, newest_access_));
      cold_candidates_.push_back(ColdCandidate{
          static_cast<double>(n.sub_blocks) / (1.0 + expected_hits),
          n.sub_last_access, id});
      continue;
    }
    for (const auto& [token, child] : n.children) {
      (void)token;
      stack.push_back(child);
    }
  }
  std::sort(cold_candidates_.begin(), cold_candidates_.end(),
            [](const ColdCandidate& a, const ColdCandidate& b) {
              if (a.score != b.score) {
                return a.score > b.score;
              }
              if (a.sub_last_access != b.sub_last_access) {
                return a.sub_last_access < b.sub_last_access;
              }
              return a.id < b.id;  // Total order: determinism under ties.
            });
  int64_t freed = 0;
  for (const ColdCandidate& c : cold_candidates_) {
    if (freed >= blocks) {
      break;
    }
    freed += RemoveSubtree(c.id);
  }
  return freed;
}

int64_t PrefixCache::RemoveLeaf(SlabId leaf) {
  Node& n = node(leaf);
  assert(n.children.empty() && n.ref_count == 0);
  size_tokens_ -= static_cast<int64_t>(n.edge.size());
  --num_nodes_;
  node(n.parent).children.Erase(n.edge.front());
  if (maintain_aggregates_) {
    PropagateSubBlocks(leaf, -static_cast<int64_t>(n.blocks.size()));
  }
  pool_.Release(n.edge);
  // Release the victim's page references. Pages straddling into the parent
  // (or still referenced by a running sequence's table) survive in the
  // allocator until their last holder lets go — the return value counts
  // only what actually hit the free list.
  const int64_t freed = alloc_->ReleaseSpan(
      n.blocks.data, static_cast<int64_t>(n.blocks.size()));
  block_refs_ -= static_cast<int64_t>(n.blocks.size());
  block_pool_.Release(n.blocks);
  n.blocks = BlockSlice{};
  n.edge = TokenSlice{};
  n.parent = kNilSlabId;
  n.last_access = 0;
  n.sub_blocks = 0;  // Recycled slab nodes must not leak stale aggregates.
  n.sub_hits = 0.0f;
  n.sub_last_access = 0;
  n.sub_hit_stamp = 0;
  nodes_.Free(leaf);  // children map already empty; its capacity is kept.
  return freed;
}

int64_t PrefixCache::RemoveSubtree(SlabId id) {
  Node& top = node(id);
  assert(top.ref_count == 0);
  node(top.parent).children.Erase(top.edge.front());
  PropagateSubBlocks(id, -static_cast<int64_t>(top.sub_blocks));
  // evict_stack_ is the caller's candidate scan; use the probe stack here.
  int64_t freed = 0;
  scan_stack_.clear();
  scan_stack_.push_back(id);
  while (!scan_stack_.empty()) {
    SlabId cur = scan_stack_.back();
    scan_stack_.pop_back();
    Node& n = node(cur);
    for (const auto& [token, child] : n.children) {
      (void)token;
      scan_stack_.push_back(child);
    }
    size_tokens_ -= static_cast<int64_t>(n.edge.size());
    --num_nodes_;
    pool_.Release(n.edge);
    freed += alloc_->ReleaseSpan(n.blocks.data,
                                 static_cast<int64_t>(n.blocks.size()));
    block_refs_ -= static_cast<int64_t>(n.blocks.size());
    block_pool_.Release(n.blocks);
    n.blocks = BlockSlice{};
    n.edge = TokenSlice{};
    n.parent = kNilSlabId;
    n.last_access = 0;
    n.children.Clear();
    n.sub_blocks = 0;
    n.sub_hits = 0.0f;
    n.sub_last_access = 0;
    n.sub_hit_stamp = 0;
    nodes_.Free(cur);
  }
  return freed;
}

float PrefixCache::DecayedHits(const Node& n, SimTime now) {
  if (n.sub_hits == 0.0f || now <= n.sub_hit_stamp) {
    return n.sub_hits;
  }
  // Whole half-lives only: ldexp is an exact power-of-two scaling, so the
  // decayed value — and every score derived from it — is bit-identical on
  // every platform (no libm exp/pow in any golden-visible path).
  const int64_t halvings =
      (now - n.sub_hit_stamp) / kColdSubtreeHitHalfLifeUs;
  if (halvings == 0) {
    return n.sub_hits;
  }
  if (halvings > 127) {
    return 0.0f;
  }
  return std::ldexp(n.sub_hits, -static_cast<int>(halvings));
}

void PrefixCache::PropagateSubBlocks(SlabId id, int64_t delta) {
  for (SlabId cur = node(id).parent; cur != kNilSlabId;
       cur = node(cur).parent) {
    node(cur).sub_blocks += static_cast<int32_t>(delta);
  }
}

void PrefixCache::TouchAggregates(Node& n, SimTime now) {
  n.sub_hits = DecayedHits(n, now) + 1.0f;
  n.sub_hit_stamp = now;
  if (now > n.sub_last_access) {
    n.sub_last_access = now;
  }
}

void PrefixCache::RebuildAggregates() {
  // Iterative post-order: initialize each node from its own span on first
  // visit, fold into the parent on second. Hit history is unknown at policy
  // entry, so decay restarts from the present with zero credit — the first
  // few walks after a reswap re-warm the counters.
  std::vector<std::pair<SlabId, bool>> stack;
  stack.emplace_back(root_, false);
  while (!stack.empty()) {
    const auto [id, visited] = stack.back();
    Node& n = node(id);
    if (!visited) {
      stack.back().second = true;
      n.sub_blocks = static_cast<int32_t>(n.blocks.size());
      n.sub_last_access = n.last_access;
      n.sub_hits = 0.0f;
      n.sub_hit_stamp = newest_access_;
      for (const auto& [token, child] : n.children) {
        (void)token;
        stack.emplace_back(child, false);
      }
      continue;
    }
    stack.pop_back();
    if (id != root_) {
      Node& p = node(n.parent);
      p.sub_blocks += n.sub_blocks;
      if (n.sub_last_access > p.sub_last_access) {
        p.sub_last_access = n.sub_last_access;
      }
    }
  }
}

void PrefixCache::SetEvictionPolicy(EvictionPolicy policy) {
  if (policy == policy_) {
    return;
  }
  policy_ = policy;
  maintain_aggregates_ = policy == EvictionPolicy::kColdSubtree;
  if (maintain_aggregates_) {
    RebuildAggregates();
  }
  // Leaving kColdSubtree just stops maintenance; stale aggregate values are
  // harmless (the LRU path never reads them) and a later re-entry rebuilds.
}

void PrefixCache::Clear() {
  // Evict everything evictable; pinned paths survive.
  Evict(std::numeric_limits<int64_t>::max());
}

int64_t PrefixCache::PinnedTokensSlow() const {
  // Sum of edge lengths of nodes with ref_count > 0.
  int64_t total = 0;
  std::vector<SlabId> stack{root_};
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    for (const auto& [token, child] : n.children) {
      (void)token;
      stack.push_back(child);
    }
    if (n.ref_count > 0) {
      total += static_cast<int64_t>(n.edge.size());
    }
  }
  return total;
}

PrefixCache::BlockOccupancy PrefixCache::CountBlocks() const {
  BlockOccupancy occ;
  if (block_size_ == 1) {
    // A one-token page can never straddle a node boundary or hold both
    // cache and sequence content, so no page is ever shared in coarse mode
    // (transfer transients resolve within the same event) and occupancy
    // reduces exactly to the token counters — O(nodes) instead of walking
    // every page reference, which matters because probes call this every
    // heartbeat.
    occ.held_blocks = size_tokens_;
    occ.evictable_blocks = size_tokens_ - pinned_tokens();
    return occ;
  }
  ++tally_gen_;
  tally_touched_.clear();
  scan_stack_.clear();
  scan_stack_.push_back(root_);
  while (!scan_stack_.empty()) {
    SlabId id = scan_stack_.back();
    scan_stack_.pop_back();
    const Node& n = node(id);
    for (const auto& [token, child] : n.children) {
      (void)token;
      scan_stack_.push_back(child);
    }
    if (id == root_) {
      continue;
    }
    const bool pinned = n.ref_count > 0;
    for (size_t i = 0; i < n.blocks.size(); ++i) {
      const BlockId b = n.blocks[i];
      const size_t slot = static_cast<size_t>(b);
      if (slot >= tally_epoch_.size()) {
        tally_epoch_.resize(slot + 1, 0);
        tally_unpinned_.resize(slot + 1, 0);
      }
      if (tally_epoch_[slot] != tally_gen_) {
        tally_epoch_[slot] = tally_gen_;
        tally_unpinned_[slot] = 0;
        tally_touched_.push_back(b);
      }
      if (!pinned) {
        ++tally_unpinned_[slot];
      }
    }
  }
  occ.held_blocks = static_cast<int64_t>(tally_touched_.size());
  for (BlockId b : tally_touched_) {
    // A page returns to the free list under full eviction iff every one of
    // its allocator references comes from an unpinned node.
    if (tally_unpinned_[static_cast<size_t>(b)] == alloc_->ref_count(b)) {
      ++occ.evictable_blocks;
    }
  }
  return occ;
}

bool PrefixCache::CheckInvariants() const {
  int64_t tokens = 0;
  size_t nodes = 0;
  int64_t block_refs = 0;
  bool ok = true;
  // DFS carrying each node's absolute start depth for span-coverage checks.
  std::vector<std::pair<SlabId, int64_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Node& n = node(id);
    const int64_t end = depth + static_cast<int64_t>(n.edge.size());
    if (id != root_) {
      tokens += static_cast<int64_t>(n.edge.size());
      ++nodes;
      if (n.edge.empty()) {
        ok = false;  // Non-root nodes must have a non-empty edge.
      }
      // A child's refcount never exceeds its parent's (refcounts are
      // per-pin-coverage and pins cover prefixes).
      if (n.parent != root_ && n.ref_count > node(n.parent).ref_count) {
        ok = false;
      }
      // The page span covers exactly the edge's path positions, and every
      // page in it is live in the allocator.
      const int64_t want =
          PageCeil(end, block_size_) - PageFloor(depth, block_size_);
      if (static_cast<int64_t>(n.blocks.size()) != want) {
        ok = false;
      }
      block_refs += static_cast<int64_t>(n.blocks.size());
      for (size_t i = 0; i < n.blocks.size(); ++i) {
        if (alloc_->ref_count(n.blocks[i]) <= 0) {
          ok = false;
        }
      }
    }
    for (const auto& [token, child] : n.children) {
      const Node& c = node(child);
      if (c.edge.empty() || c.edge.front() != token || c.parent != id) {
        ok = false;
      }
      stack.emplace_back(child, end);
    }
  }
  if (tokens != size_tokens_ || nodes != num_nodes_ ||
      block_refs != block_refs_) {
    ok = false;
  }
  // The incremental pinned-token counter must match the tree's truth.
  if (PinnedTokensSlow() != pinned_tokens_) {
    ok = false;
  }
  // Arena accounting: every tree node is live in the slab (plus the root),
  // every non-root node holds exactly one token-pool reference and one
  // block-pool reference.
  if (nodes_.live() != num_nodes_ + 1 ||
      pool_.live_refs() != static_cast<int64_t>(num_nodes_) ||
      block_pool_.live_refs() != static_cast<int64_t>(num_nodes_)) {
    ok = false;
  }
  if (ok && maintain_aggregates_) {
    // Aggregate soundness, bottom-up: sub_blocks is the exact span-reference
    // total of the subtree; sub_last_access is an upper bound that must
    // cover the subtree's true newest access (folding the computed true
    // max, not the child's own bound, keeps the check tight).
    std::unordered_map<SlabId, std::pair<int64_t, SimTime>> agg;
    std::vector<std::pair<SlabId, bool>> po;
    po.emplace_back(root_, false);
    while (!po.empty()) {
      const auto [id, visited] = po.back();
      const Node& n = node(id);
      if (!visited) {
        po.back().second = true;
        agg[id] = {static_cast<int64_t>(n.blocks.size()), n.last_access};
        for (const auto& [token, child] : n.children) {
          (void)token;
          po.emplace_back(child, false);
        }
        continue;
      }
      po.pop_back();
      const auto [sub_blocks, max_access] = agg[id];
      // The root's access aggregate is newest_access_ itself (walks touch
      // only path children), and the root is never an eviction candidate,
      // so the bound is only required below it.
      if (sub_blocks != n.sub_blocks ||
          (id != root_ && n.sub_last_access < max_access)) {
        ok = false;
      }
      if (id == root_ && newest_access_ < max_access) {
        ok = false;  // The coldness clock must cover every real access.
      }
      if (id != root_) {
        auto& parent_agg = agg[n.parent];
        parent_agg.first += sub_blocks;
        parent_agg.second = std::max(parent_agg.second, max_access);
      }
    }
  }
  return ok;
}

}  // namespace skywalker
