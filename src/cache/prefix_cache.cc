#include "src/cache/prefix_cache.h"

#include <cassert>
#include <cstring>
#include <limits>

#include "src/common/logging.h"

namespace skywalker {

PrefixCache::PrefixCache(int64_t capacity_tokens)
    : capacity_tokens_(capacity_tokens) {
  root_ = nodes_.Alloc();
}

PrefixCache::~PrefixCache() = default;

SlabId PrefixCache::SplitAbove(SlabId id, size_t keep) {
  SlabId top = nodes_.Alloc();
  Node& lower = node(id);
  Node& upper = node(top);
  assert(keep > 0 && keep < lower.edge.size());

  upper.edge = lower.edge.Prefix(keep);
  pool_.AddRef(upper.edge);
  upper.parent = lower.parent;
  // Both halves are covered by exactly the pins that covered the original
  // node (pin boundaries are node-aligned, so no pin ends strictly inside);
  // pins keep referencing `id`, which stays the deepest covered node.
  upper.ref_count = lower.ref_count;
  upper.last_access = lower.last_access;
  upper.children.Clear();
  upper.children.Set(lower.edge[keep], id);

  *node(lower.parent).children.Find(lower.edge.front()) = top;
  lower.edge = lower.edge.Suffix(keep);  // Keeps the original chunk ref.
  lower.parent = top;
  ++num_nodes_;  // Token count is unchanged; one extra node exists.
  return top;
}

int64_t PrefixCache::WalkAndSplit(const TokenSeq& seq, SimTime now,
                                  SlabId* deepest) {
  // The walk carries a raw node pointer alongside the id (slab chunks have
  // stable addresses) and derefs ids through a chunk-caching cursor.
  Slab<Node, 6>::Cursor cursor(&nodes_);
  SlabId cur = root_;
  Node* cur_node = &node(cur);
  size_t pos = 0;
  while (pos < seq.size()) {
    const SlabId* child_slot = cur_node->children.Find(seq[pos]);
    if (child_slot == nullptr) {
      break;
    }
    SlabId child = *child_slot;
    Node* child_node = cursor.Deref(child);
    const size_t n =
        std::min<size_t>(child_node->edge.size(), seq.size() - pos);
    // The child is keyed by its edge's first token, so that token is already
    // known equal — single-token edges (deep chains) skip the compare (and
    // the edge-data load) entirely.
    size_t matched = 1;
    if (n > 1) {
      matched += CommonPrefixLenRaw(child_node->edge.data + 1,
                                    seq.data() + pos + 1, n - 1);
    }
    if (matched < child_node->edge.size()) {
      // Partial edge match: split so the boundary is node-aligned. The
      // fully-matched half is the new upper node.
      child = SplitAbove(child, matched);
      child_node = &node(child);
    }
    child_node->last_access = now;
    pos += matched;
    cur = child;
    cur_node = child_node;
  }
  *deepest = cur;
  return static_cast<int64_t>(pos);
}

PrefixCache::MatchRef PrefixCache::MatchAndRef(const TokenSeq& seq,
                                               SimTime now) {
  SlabId deepest = root_;
  int64_t len = WalkAndSplit(seq, now, &deepest);
  for (SlabId n = deepest; n != root_; n = node(n).parent) {
    ++node(n).ref_count;
  }

  uint32_t slot = pins_.Acquire();
  pins_[slot] = deepest == root_ ? kNilSlabId : deepest;
  PinId id = static_cast<PinId>(pins_.MakeHandle(slot));

  lookup_tokens_ += static_cast<int64_t>(seq.size());
  hit_tokens_ += len;
  return MatchRef{len, id};
}

int64_t PrefixCache::MatchPrefix(const TokenSeq& seq, SimTime now) {
  SlabId deepest = root_;
  return WalkAndSplit(seq, now, &deepest);
}

void PrefixCache::Unref(PinId pin) {
  const uint64_t handle = static_cast<uint64_t>(pin);
  SKYWALKER_CHECK(pin != kInvalidPin && pins_.IsValid(handle))
      << "double Unref or invalid pin " << pin;
  const uint32_t slot = GenSlotPool<SlabId>::HandleSlot(handle);
  // Every node from the pin's deepest covered node up to the root is covered
  // by it (splits insert nodes above survivors, so the chain stays intact).
  SlabId cur = pins_[slot];
  while (cur != kNilSlabId && cur != root_) {
    Node& n = node(cur);
    --n.ref_count;
    SKYWALKER_CHECK(n.ref_count >= 0) << "negative refcount";
    cur = n.parent;
  }
  pins_[slot] = kNilSlabId;
  pins_.Release(slot);
}

int64_t PrefixCache::Insert(const TokenSeq& seq, SimTime now) {
  SlabId parent = root_;
  int64_t matched = WalkAndSplit(seq, now, &parent);
  int64_t added = 0;
  if (matched < static_cast<int64_t>(seq.size())) {
    SlabId leaf = nodes_.Alloc();
    Node& n = node(leaf);
    n.edge = pool_.Intern(seq.data() + matched,
                          seq.size() - static_cast<size_t>(matched));
    n.children.Clear();
    n.parent = parent;
    n.ref_count = 0;
    n.last_access = now;
    added = static_cast<int64_t>(n.edge.size());
    node(parent).children.Set(n.edge.front(), leaf);
    ++num_nodes_;
    size_tokens_ += added;
  }
  if (size_tokens_ > capacity_tokens_) {
    Evict(size_tokens_ - capacity_tokens_);
  }
  return added;
}

int64_t PrefixCache::Evict(int64_t tokens) {
  int64_t freed = 0;
  std::vector<SlabId> stack;
  while (freed < tokens) {
    // LRU leaf scan. The slab keeps nodes contiguous, so the scan streams
    // through a few cache lines per chunk; trees here hold a few thousand
    // nodes at most (micro-benchmarked in bench/).
    SlabId victim = kNilSlabId;
    SimTime oldest = std::numeric_limits<SimTime>::max();
    stack.clear();
    stack.push_back(root_);
    while (!stack.empty()) {
      SlabId id = stack.back();
      stack.pop_back();
      const Node& n = node(id);
      for (const auto& [token, child] : n.children) {
        (void)token;
        stack.push_back(child);
      }
      if (id != root_ && n.children.empty() && n.ref_count == 0 &&
          n.last_access < oldest) {
        oldest = n.last_access;
        victim = id;
      }
    }
    if (victim == kNilSlabId) {
      break;  // Everything evictable is gone (rest is pinned or interior).
    }
    freed += static_cast<int64_t>(node(victim).edge.size());
    RemoveLeaf(victim);
  }
  return freed;
}

void PrefixCache::RemoveLeaf(SlabId leaf) {
  Node& n = node(leaf);
  assert(n.children.empty() && n.ref_count == 0);
  size_tokens_ -= static_cast<int64_t>(n.edge.size());
  --num_nodes_;
  node(n.parent).children.Erase(n.edge.front());
  pool_.Release(n.edge);
  n.edge = TokenSlice{};
  n.parent = kNilSlabId;
  n.last_access = 0;
  nodes_.Free(leaf);  // children map already empty; its capacity is kept.
}

void PrefixCache::Clear() {
  // Evict everything evictable; pinned paths survive.
  Evict(std::numeric_limits<int64_t>::max());
}

int64_t PrefixCache::pinned_tokens() const {
  // Sum of edge lengths of nodes with ref_count > 0.
  int64_t total = 0;
  std::vector<SlabId> stack{root_};
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    for (const auto& [token, child] : n.children) {
      (void)token;
      stack.push_back(child);
    }
    if (n.ref_count > 0) {
      total += static_cast<int64_t>(n.edge.size());
    }
  }
  return total;
}

bool PrefixCache::CheckInvariants() const {
  int64_t tokens = 0;
  size_t nodes = 0;
  bool ok = true;
  std::vector<SlabId> stack{root_};
  while (!stack.empty()) {
    SlabId id = stack.back();
    stack.pop_back();
    const Node& n = node(id);
    if (id != root_) {
      tokens += static_cast<int64_t>(n.edge.size());
      ++nodes;
      if (n.edge.empty()) {
        ok = false;  // Non-root nodes must have a non-empty edge.
      }
      // A child's refcount never exceeds its parent's (refcounts are
      // per-pin-coverage and pins cover prefixes).
      if (n.parent != root_ && n.ref_count > node(n.parent).ref_count) {
        ok = false;
      }
    }
    for (const auto& [token, child] : n.children) {
      const Node& c = node(child);
      if (c.edge.empty() || c.edge.front() != token || c.parent != id) {
        ok = false;
      }
      stack.push_back(child);
    }
  }
  if (tokens != size_tokens_ || nodes != num_nodes_) {
    ok = false;
  }
  // Arena accounting: every tree node is live in the slab (plus the root),
  // and every non-root node holds exactly one pool reference.
  if (nodes_.live() != num_nodes_ + 1 ||
      pool_.live_refs() != static_cast<int64_t>(num_nodes_)) {
    ok = false;
  }
  return ok;
}

}  // namespace skywalker
