#include "src/cache/token_pool.h"

#include <cassert>
#include <cstring>

namespace skywalker {

TokenPool::~TokenPool() = default;

uint32_t TokenPool::AcquireChunk(size_t min_tokens) {
  if (min_tokens <= kChunkTokens && !free_standard_.empty()) {
    uint32_t id = free_standard_.back();
    free_standard_.pop_back();
    chunks_[id].used = 0;
    return id;
  }
  uint32_t id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<uint32_t>(chunks_.size());
    chunks_.emplace_back();
  }
  Chunk& chunk = chunks_[id];
  chunk.oversized = min_tokens > kChunkTokens;
  chunk.capacity =
      static_cast<uint32_t>(chunk.oversized ? min_tokens : kChunkTokens);
  chunk.tokens.reset(new Token[chunk.capacity]);  // Uninitialized on purpose.
  chunk.used = 0;
  chunk.refs = 0;
  return id;
}

TokenSlice TokenPool::Intern(const Token* tokens, size_t len) {
  assert(len > 0);
  uint32_t id;
  if (len > kChunkTokens) {
    id = AcquireChunk(len);  // Dedicated, exactly-sized chunk.
  } else {
    if (open_ == UINT32_MAX ||
        chunks_[open_].used + len > chunks_[open_].capacity) {
      // Seal the old open chunk; if nothing references it any more, it can
      // be recycled immediately.
      if (open_ != UINT32_MAX && chunks_[open_].refs == 0) {
        free_standard_.push_back(open_);
      }
      open_ = AcquireChunk(len);
    }
    id = open_;
  }
  Chunk& chunk = chunks_[id];
  Token* dst = chunk.tokens.get() + chunk.used;
  std::memcpy(dst, tokens, len * sizeof(Token));
  chunk.used += static_cast<uint32_t>(len);
  chunk.refs += 1;
  live_refs_ += 1;
  return TokenSlice{dst, id, static_cast<uint32_t>(len)};
}

void TokenPool::AddRef(const TokenSlice& slice) {
  if (slice.chunk == UINT32_MAX) {
    return;  // Null slice (e.g. a root node's empty edge).
  }
  chunks_[slice.chunk].refs += 1;
  live_refs_ += 1;
}

void TokenPool::Release(const TokenSlice& slice) {
  if (slice.chunk == UINT32_MAX) {
    return;
  }
  Chunk& chunk = chunks_[slice.chunk];
  assert(chunk.refs > 0);
  chunk.refs -= 1;
  live_refs_ -= 1;
  if (chunk.refs != 0 || slice.chunk == open_) {
    return;  // Still referenced, or still accepting appends.
  }
  if (chunk.oversized) {
    // Oversized chunks are one-shot: return the memory and recycle the slot.
    chunk.tokens.reset();
    chunk.capacity = 0;
    chunk.used = 0;
    free_slots_.push_back(slice.chunk);
  } else {
    chunk.used = 0;
    free_standard_.push_back(slice.chunk);
  }
}

}  // namespace skywalker
