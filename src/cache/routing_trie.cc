#include "src/cache/routing_trie.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace skywalker {

RoutingTrie::RoutingTrie(int64_t capacity_tokens)
    : capacity_tokens_(capacity_tokens), root_(std::make_unique<Node>()) {}

RoutingTrie::~RoutingTrie() = default;

void RoutingTrie::SplitNode(Node* node, size_t keep) {
  assert(keep > 0 && keep < node->edge.size());
  auto tail = std::make_unique<Node>();
  tail->edge.assign(node->edge.begin() + static_cast<ptrdiff_t>(keep),
                    node->edge.end());
  tail->children = std::move(node->children);
  for (auto& [token, child] : tail->children) {
    child->parent = tail.get();
  }
  tail->targets = node->targets;  // Both halves keep the recorded targets.
  tail->last_insert_gen = node->last_insert_gen;
  tail->parent = node;

  node->edge.resize(keep);
  node->children.clear();
  node->children.emplace(tail->edge.front(), std::move(tail));
  ++num_nodes_;
}

void RoutingTrie::Insert(const TokenSeq& seq, TargetId target) {
  uint64_t gen = next_gen_++;
  Node* node = root_.get();
  node->targets[target] = gen;
  size_t pos = 0;
  while (pos < seq.size()) {
    auto it = node->children.find(seq[pos]);
    if (it == node->children.end()) {
      auto leaf = std::make_unique<Node>();
      leaf->edge.assign(seq.begin() + static_cast<ptrdiff_t>(pos), seq.end());
      leaf->parent = node;
      leaf->targets[target] = gen;
      leaf->last_insert_gen = gen;
      size_tokens_ += static_cast<int64_t>(leaf->edge.size());
      ++num_nodes_;
      node->children.emplace(leaf->edge.front(), std::move(leaf));
      break;
    }
    Node* child = it->second.get();
    size_t matched = 0;
    while (matched < child->edge.size() && pos + matched < seq.size() &&
           child->edge[matched] == seq[pos + matched]) {
      ++matched;
    }
    if (matched < child->edge.size()) {
      SplitNode(child, matched);
    }
    child->targets[target] = gen;
    child->last_insert_gen = gen;
    pos += matched;
    node = child;
  }
  EvictToCapacity();
}

void RoutingTrie::FillAvailable(const Node* node, const TargetPredicate& pred,
                                std::vector<TargetId>* out) const {
  out->clear();
  // Most-recently-inserted first, so callers preferring fresh caches can
  // take the front.
  std::vector<std::pair<uint64_t, TargetId>> avail;
  for (const auto& [target, gen] : node->targets) {
    if (!pred || pred(target)) {
      avail.emplace_back(gen, target);
    }
  }
  std::sort(avail.begin(), avail.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  out->reserve(avail.size());
  for (const auto& [gen, target] : avail) {
    out->push_back(target);
  }
}

RoutingTrie::Match RoutingTrie::MatchBest(const TokenSeq& seq,
                                          const TargetPredicate& pred) const {
  Match result;
  const Node* best = root_.get();
  int64_t best_len = 0;

  const Node* node = root_.get();
  size_t pos = 0;
  while (pos < seq.size()) {
    auto it = node->children.find(seq[pos]);
    if (it == node->children.end()) {
      break;
    }
    const Node* child = it->second.get();
    size_t matched = 0;
    while (matched < child->edge.size() && pos + matched < seq.size() &&
           child->edge[matched] == seq[pos + matched]) {
      ++matched;
    }
    if (matched == 0) {
      break;
    }
    // Early exit (paper §3.2): child target sets are subsets of the
    // parent's, so once no available target remains there is nothing
    // deeper worth visiting.
    bool any_available = false;
    for (const auto& [target, gen] : child->targets) {
      if (!pred || pred(target)) {
        any_available = true;
        break;
      }
    }
    if (!any_available) {
      break;
    }
    pos += matched;
    best = child;
    best_len = static_cast<int64_t>(pos);
    if (matched < child->edge.size()) {
      break;  // Diverged inside this edge; partial tokens still matched.
    }
    node = child;
  }

  result.match_len = best_len;
  FillAvailable(best, pred, &result.candidates);
  return result;
}

void RoutingTrie::RemoveTarget(TargetId target) {
  // DFS removing the target; prune empty leaves bottom-up.
  std::vector<Node*> stack{root_.get()};
  std::vector<Node*> order;
  while (!stack.empty()) {
    Node* n = stack.back();
    stack.pop_back();
    order.push_back(n);
    for (auto& [token, child] : n->children) {
      stack.push_back(child.get());
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    n->targets.erase(target);
    if (n != root_.get() && n->children.empty() && n->targets.empty()) {
      RemoveLeaf(n);
    }
  }
}

void RoutingTrie::EvictToCapacity() {
  while (size_tokens_ > capacity_tokens_) {
    // Earliest-inserted leaf first (paper: evict starting from the earliest
    // inserted records).
    Node* victim = nullptr;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    std::vector<Node*> stack{root_.get()};
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      for (auto& [token, child] : n->children) {
        stack.push_back(child.get());
      }
      if (n != root_.get() && n->children.empty() &&
          n->last_insert_gen < oldest) {
        oldest = n->last_insert_gen;
        victim = n;
      }
    }
    if (victim == nullptr) {
      break;
    }
    RemoveLeaf(victim);
  }
}

void RoutingTrie::RemoveLeaf(Node* leaf) {
  assert(leaf->children.empty());
  Node* parent = leaf->parent;
  size_tokens_ -= static_cast<int64_t>(leaf->edge.size());
  --num_nodes_;
  parent->children.erase(leaf->edge.front());
}

bool RoutingTrie::CheckInvariants() const {
  bool ok = true;
  int64_t tokens = 0;
  size_t nodes = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    if (n != root_.get()) {
      tokens += static_cast<int64_t>(n->edge.size());
      ++nodes;
      if (n->edge.empty()) {
        ok = false;
      }
      // Subset property: every target of a child must appear in the parent.
      for (const auto& [target, gen] : n->targets) {
        if (n->parent->targets.find(target) == n->parent->targets.end() &&
            n->parent != root_.get()) {
          ok = false;
        }
      }
    }
    for (const auto& [token, child] : n->children) {
      if (child->edge.empty() || child->edge.front() != token ||
          child->parent != n) {
        ok = false;
      }
      stack.push_back(child.get());
    }
  }
  if (tokens != size_tokens_ || nodes != num_nodes_) {
    ok = false;
  }
  return ok;
}

}  // namespace skywalker
