#include "src/cache/routing_trie.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace skywalker {

RoutingTrie::RoutingTrie(int64_t capacity_tokens)
    : capacity_tokens_(capacity_tokens) {
  root_ = nodes_.Alloc();
}

RoutingTrie::~RoutingTrie() = default;

SlabId RoutingTrie::SplitAbove(SlabId id, size_t keep) {
  SlabId top = nodes_.Alloc();
  Node& lower = node(id);
  Node& upper = node(top);
  assert(keep > 0 && keep < lower.edge.size());

  upper.edge = lower.edge.Prefix(keep);
  pool_.AddRef(upper.edge);
  upper.parent = lower.parent;
  // Both halves keep the recorded targets.
  upper.targets.CopyFrom(lower.targets);
  upper.last_insert_gen = lower.last_insert_gen;
  upper.children.Clear();
  upper.children.Set(lower.edge[keep], id);

  *node(lower.parent).children.Find(lower.edge.front()) = top;
  lower.edge = lower.edge.Suffix(keep);  // Keeps the original chunk ref.
  lower.parent = top;
  ++num_nodes_;
  return top;
}

void RoutingTrie::Insert(const TokenSeq& seq, TargetId target) {
  uint64_t gen = next_gen_++;
  node(root_).targets.Set(target, gen);
  Slab<Node, 6>::Cursor cursor(&nodes_);
  SlabId cur = root_;
  Node* cur_node = &node(cur);
  size_t pos = 0;
  while (pos < seq.size()) {
    const SlabId* child_slot = cur_node->children.Find(seq[pos]);
    if (child_slot == nullptr) {
      SlabId leaf = nodes_.Alloc();
      Node& n = node(leaf);
      n.edge = pool_.Intern(seq.data() + pos, seq.size() - pos);
      n.children.Clear();
      n.parent = cur;
      n.targets.Clear();
      n.targets.Set(target, gen);
      n.last_insert_gen = gen;
      size_tokens_ += static_cast<int64_t>(n.edge.size());
      ++num_nodes_;
      // Re-resolve: Alloc above may have been the first touch of a new
      // chunk, but existing chunk addresses are stable, so cur_node holds.
      cur_node->children.Set(n.edge.front(), leaf);
      break;
    }
    SlabId child = *child_slot;
    Node* child_node = cursor.Deref(child);
    const size_t n =
        std::min<size_t>(child_node->edge.size(), seq.size() - pos);
    // First token is the child's map key: known equal, skip it.
    size_t matched = 1;
    if (n > 1) {
      matched += CommonPrefixLenRaw(child_node->edge.data + 1,
                                    seq.data() + pos + 1, n - 1);
    }
    if (matched < child_node->edge.size()) {
      child = SplitAbove(child, matched);
      child_node = &node(child);
    }
    child_node->targets.Set(target, gen);
    child_node->last_insert_gen = gen;
    pos += matched;
    cur = child;
    cur_node = child_node;
  }
  EvictToCapacity();
}

void RoutingTrie::FillAvailable(SlabId id, const TargetPredicate& pred,
                                std::vector<TargetId>* out) const {
  out->clear();
  // Most-recently-inserted first, so callers preferring fresh caches can
  // take the front. Deployments have a few dozen targets at most, so the
  // (gen, target) sort scratch lives on the stack; only the returned
  // candidate vector allocates.
  constexpr size_t kInlineAvail = 64;
  std::pair<uint64_t, TargetId> inline_avail[kInlineAvail];
  std::vector<std::pair<uint64_t, TargetId>> spill;
  std::pair<uint64_t, TargetId>* avail = inline_avail;
  const auto& targets = node(id).targets;
  if (targets.size() > kInlineAvail) {
    spill.resize(targets.size());
    avail = spill.data();
  }
  size_t count = 0;
  for (const auto& [target, gen] : targets) {
    if (!pred || pred(target)) {
      avail[count++] = {gen, target};
    }
  }
  std::sort(avail, avail + count,
            [](const auto& a, const auto& b) { return a.first > b.first; });
  out->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out->push_back(avail[i].second);
  }
}

RoutingTrie::Match RoutingTrie::MatchBest(const TokenSeq& seq,
                                          const TargetPredicate& pred) const {
  Match result;
  SlabId best = root_;
  int64_t best_len = 0;

  Slab<Node, 6>::ConstCursor cursor(&nodes_);
  const Node* cur_node = &node(root_);
  size_t pos = 0;
  while (pos < seq.size()) {
    const SlabId* child_slot = cur_node->children.Find(seq[pos]);
    if (child_slot == nullptr) {
      break;
    }
    const SlabId child = *child_slot;
    const Node& c = *cursor.Deref(child);
    const size_t n = std::min<size_t>(c.edge.size(), seq.size() - pos);
    // First token is the child's map key: known equal, skip it.
    size_t matched = 1;
    if (n > 1) {
      matched += CommonPrefixLenRaw(c.edge.data + 1, seq.data() + pos + 1,
                                    n - 1);
    }
    // Early exit (paper §3.2): child target sets are subsets of the
    // parent's, so once no available target remains there is nothing
    // deeper worth visiting.
    bool any_available = false;
    for (const auto& [target, gen] : c.targets) {
      (void)gen;
      if (!pred || pred(target)) {
        any_available = true;
        break;
      }
    }
    if (!any_available) {
      break;
    }
    pos += matched;
    best = child;
    best_len = static_cast<int64_t>(pos);
    if (matched < c.edge.size()) {
      break;  // Diverged inside this edge; partial tokens still matched.
    }
    cur_node = &c;
  }

  result.match_len = best_len;
  FillAvailable(best, pred, &result.candidates);
  return result;
}

void RoutingTrie::RemoveTarget(TargetId target) {
  // DFS removing the target; prune empty leaves bottom-up.
  std::vector<SlabId> stack{root_};
  std::vector<SlabId> order;
  while (!stack.empty()) {
    SlabId id = stack.back();
    stack.pop_back();
    order.push_back(id);
    for (const auto& [token, child] : node(id).children) {
      (void)token;
      stack.push_back(child);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    SlabId id = *it;
    Node& n = node(id);
    n.targets.Erase(target);
    if (id != root_ && n.children.empty() && n.targets.empty()) {
      RemoveLeaf(id);
    }
  }
}

void RoutingTrie::EvictToCapacity() {
  std::vector<SlabId> stack;
  while (size_tokens_ > capacity_tokens_) {
    // Earliest-inserted leaf first (paper: evict starting from the earliest
    // inserted records).
    SlabId victim = kNilSlabId;
    uint64_t oldest = std::numeric_limits<uint64_t>::max();
    stack.clear();
    stack.push_back(root_);
    while (!stack.empty()) {
      SlabId id = stack.back();
      stack.pop_back();
      const Node& n = node(id);
      for (const auto& [token, child] : n.children) {
        (void)token;
        stack.push_back(child);
      }
      if (id != root_ && n.children.empty() && n.last_insert_gen < oldest) {
        oldest = n.last_insert_gen;
        victim = id;
      }
    }
    if (victim == kNilSlabId) {
      break;
    }
    RemoveLeaf(victim);
  }
}

void RoutingTrie::RemoveLeaf(SlabId leaf) {
  Node& n = node(leaf);
  assert(n.children.empty());
  size_tokens_ -= static_cast<int64_t>(n.edge.size());
  --num_nodes_;
  node(n.parent).children.Erase(n.edge.front());
  pool_.Release(n.edge);
  n.edge = TokenSlice{};
  n.parent = kNilSlabId;
  n.targets.Clear();
  n.last_insert_gen = 0;
  nodes_.Free(leaf);
}

bool RoutingTrie::CheckInvariants() const {
  bool ok = true;
  int64_t tokens = 0;
  size_t nodes = 0;
  std::vector<SlabId> stack{root_};
  while (!stack.empty()) {
    SlabId id = stack.back();
    stack.pop_back();
    const Node& n = node(id);
    if (id != root_) {
      tokens += static_cast<int64_t>(n.edge.size());
      ++nodes;
      if (n.edge.empty()) {
        ok = false;
      }
      // Subset property: every target of a child must appear in the parent.
      if (n.parent != root_) {
        for (const auto& [target, gen] : n.targets) {
          (void)gen;
          if (node(n.parent).targets.Find(target) == nullptr) {
            ok = false;
          }
        }
      }
    }
    for (const auto& [token, child] : n.children) {
      const Node& c = node(child);
      if (c.edge.empty() || c.edge.front() != token || c.parent != id) {
        ok = false;
      }
      stack.push_back(child);
    }
  }
  if (tokens != size_tokens_ || nodes != num_nodes_) {
    ok = false;
  }
  if (nodes_.live() != num_nodes_ + 1 ||
      pool_.live_refs() != static_cast<int64_t>(num_nodes_)) {
    ok = false;
  }
  return ok;
}

}  // namespace skywalker
