// Replica-side KV prefix cache: a compressed radix tree over token ids,
// mirroring the RadixAttention cache in SGLang (paper §2.1, §3.2).
//
// Running requests pin the cached prefix they reuse so eviction cannot free
// memory that is still referenced by the continuous batch; completed
// sequences are inserted and become evictable (LRU) once unpinned.
//
// Pin lifecycle:
//   auto [cached_len, pin] = cache.MatchAndRef(prompt, now);
//   ... request runs, using `cached_len` tokens of cached KV ...
//   cache.Insert(full_sequence, now);   // prompt + generated tokens
//   cache.Unref(pin);
//
// Invariant maintained across edge splits: a node's ref_count equals the
// number of active pins whose pinned length fully covers the node's edge.
// MatchAndRef splits edges at its boundary, splits copy the count to both
// halves, and nodes are never merged, so the invariant survives concurrent
// pins.
//
// Memory layout (ISSUE 3): nodes live in a slab arena linked by 32-bit ids
// with children in a sorted inline small-vector, and edge labels are
// TokenSlice views into a shared TokenPool instead of per-node
// std::vector<Token> copies — a walk is sequential index math over
// contiguous slabs, an edge split is slice arithmetic, and steady-state
// churn (evict + reinsert, splits) recycles nodes and chunks through free
// lists without touching the heap. Pins are generation-checked handles onto
// the deepest covered node; Unref unwinds by walking parent links, which
// stays correct across splits because a split inserts the new (upper) node
// *above* the surviving one, preserving the identity of every node a pin
// can reference.
//
// Observable behavior (match lengths, eviction order, counters) is
// bit-identical to the seed std::map implementation; only the layout
// changed. tests/prefix_structures_property_test.cc fuzzes this equivalence
// against a copy of the seed code.

#ifndef SKYWALKER_CACHE_PREFIX_CACHE_H_
#define SKYWALKER_CACHE_PREFIX_CACHE_H_

#include <cstdint>
#include <vector>

#include "src/cache/small_map.h"
#include "src/cache/token_pool.h"
#include "src/cache/tokens.h"
#include "src/common/gen_slot_pool.h"
#include "src/common/sim_time.h"
#include "src/common/slab.h"

namespace skywalker {

using PinId = int64_t;
inline constexpr PinId kInvalidPin = -1;

class PrefixCache {
 public:
  explicit PrefixCache(int64_t capacity_tokens);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  struct MatchRef {
    int64_t cached_len = 0;  // Longest cached prefix, in tokens.
    PinId pin = kInvalidPin;
  };

  // Longest cached prefix of `seq`; pins it against eviction. Also refreshes
  // LRU timestamps along the path. Always returns a valid pin (possibly of
  // length zero).
  MatchRef MatchAndRef(const TokenSeq& seq, SimTime now);

  // Longest cached prefix without pinning (read-only probe; refreshes LRU).
  int64_t MatchPrefix(const TokenSeq& seq, SimTime now);

  // Releases a pin obtained from MatchAndRef. Pin ids are single-use.
  void Unref(PinId pin);

  // Inserts `seq`; returns the number of tokens newly stored. Evicts
  // unpinned LRU entries as needed to respect capacity; if pinned content
  // prevents full compliance the cache may transiently exceed capacity
  // (the replica's admission control keeps global residency bounded).
  int64_t Insert(const TokenSeq& seq, SimTime now);

  // Evicts unpinned entries (LRU leaf-first) until at least `tokens` are
  // freed or nothing evictable remains. Returns tokens actually freed.
  int64_t Evict(int64_t tokens);

  // Drops all unpinned content.
  void Clear();

  int64_t size_tokens() const { return size_tokens_; }
  int64_t capacity_tokens() const { return capacity_tokens_; }
  // Tokens currently pinned by at least one active pin (upper bound of
  // unevictable content).
  int64_t pinned_tokens() const;
  size_t num_nodes() const { return num_nodes_; }
  size_t active_pins() const { return pins_.live(); }

  // Cumulative statistics (for cache-hit-rate reporting).
  int64_t lookup_tokens() const { return lookup_tokens_; }
  int64_t hit_tokens() const { return hit_tokens_; }
  double HitRate() const {
    return lookup_tokens_ == 0
               ? 0.0
               : static_cast<double>(hit_tokens_) /
                     static_cast<double>(lookup_tokens_);
  }

  // Validates tree structural invariants (tests / debug builds).
  bool CheckInvariants() const;

 private:
  // Exactly one cache line: edge slice (16) + child map with two inline
  // entries (32) + parent (4) + ref_count (4) + last_access (8). Walks touch
  // one line per node; conversation trees branch at turn boundaries, so >2
  // children is rare enough that the spill path doesn't show in profiles.
  struct alignas(64) Node {
    TokenSlice edge;  // Label on the edge from parent to this node.
    SmallSortedMap<Token, SlabId, 2> children;
    SlabId parent = kNilSlabId;
    // Pins in flight are bounded by the replica batch size; 2^31 is ample.
    int32_t ref_count = 0;
    SimTime last_access = 0;
  };
  static_assert(sizeof(Node) == 64, "Node must stay one cache line");

  // Walks `seq`, splitting any edge that straddles the match end so the
  // match boundary is node-aligned. Returns matched length; `*deepest` gets
  // the deepest fully matched node (root if nothing matched). The full
  // matched path is exactly the parent chain of `*deepest`.
  int64_t WalkAndSplit(const TokenSeq& seq, SimTime now, SlabId* deepest);

  // Splits the edge of `id` at `keep` tokens by inserting a new node ABOVE
  // it: the new node takes the first `keep` tokens, `id` keeps the rest
  // (and its children, refcount, pins). Returns the new upper node.
  SlabId SplitAbove(SlabId id, size_t keep);

  // Removes an unpinned leaf.
  void RemoveLeaf(SlabId leaf);

  Node& node(SlabId id) { return nodes_[id]; }
  const Node& node(SlabId id) const { return nodes_[id]; }

  int64_t capacity_tokens_;
  Slab<Node, 6> nodes_;  // 64-node chunks: cheap short-lived instances.
  TokenPool pool_;
  SlabId root_;
  int64_t size_tokens_ = 0;
  size_t num_nodes_ = 0;  // Excludes root.

  // Pins are generation-stamped handles so stale/double Unrefs are caught;
  // the slot payload is the deepest node covered by the pin.
  GenSlotPool<SlabId> pins_;

  int64_t lookup_tokens_ = 0;
  int64_t hit_tokens_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_PREFIX_CACHE_H_
