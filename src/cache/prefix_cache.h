// Replica-side KV prefix cache: a compressed radix tree over token ids,
// mirroring the RadixAttention cache in SGLang (paper §2.1, §3.2).
//
// Running requests pin the cached prefix they reuse so eviction cannot free
// memory that is still referenced by the continuous batch; completed
// sequences are inserted and become evictable (LRU) once unpinned.
//
// Pin lifecycle:
//   auto [cached_len, pin] = cache.MatchAndRef(prompt, now);
//   ... request runs, using `cached_len` tokens of cached KV ...
//   cache.Insert(full_sequence, now);   // prompt + generated tokens
//   cache.Unref(pin);
//
// Invariant maintained across edge splits: a node's ref_count equals the
// number of active pins whose pinned length fully covers the node's edge.
// MatchAndRef splits edges at its boundary, splits copy the count to both
// halves, and nodes are never merged, so the invariant survives concurrent
// pins.
//
// Memory layout (ISSUE 3): nodes live in a slab arena linked by 32-bit ids
// with children in a sorted inline small-vector, and edge labels are
// TokenSlice views into a shared TokenPool instead of per-node
// std::vector<Token> copies — a walk is sequential index math over
// contiguous slabs, an edge split is slice arithmetic, and steady-state
// churn (evict + reinsert, splits) recycles nodes and chunks through free
// lists without touching the heap. Pins are generation-checked handles onto
// the deepest covered node; Unref unwinds by walking parent links, which
// stays correct across splits because a split inserts the new (upper) node
// *above* the surviving one, preserving the identity of every node a pin
// can reference.
//
// Block-native cache (ISSUE 5): the tree is a *view over the paged KV block
// pool*. Each node owns a span of BlockAllocator block ids covering its
// edge's token positions in root-path coordinates (position d lives in path
// page floor(d / block_size)); publishing a prompt at prefill completion
// transfers references from the sequence's path-aligned BlockTable into the
// new node, so cached prefixes and live sequences refcount the same pages.
// Edge splits share the straddled boundary page between both halves (one
// extra reference, zero new pages), and LRU eviction releases the victim's
// page references — a page straddling into a surviving node or a running
// sequence survives until its last holder drops it. The KvController's
// cache charge is therefore exactly the pages these nodes hold: there is no
// parallel token-rounded accounting anywhere. With block_size == 1 every
// position is page-aligned, no page is ever shared, and all block
// quantities equal the seed token counters (coarse compatibility mode).
//
// Observable behavior (match lengths, eviction order, counters) is
// bit-identical to the seed std::map implementation; only the layout
// changed. tests/prefix_structures_property_test.cc fuzzes this equivalence
// against a copy of the seed code.

#ifndef SKYWALKER_CACHE_PREFIX_CACHE_H_
#define SKYWALKER_CACHE_PREFIX_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/small_map.h"
#include "src/cache/token_pool.h"
#include "src/cache/tokens.h"
#include "src/common/chunk_pool.h"
#include "src/common/gen_slot_pool.h"
#include "src/common/sim_time.h"
#include "src/common/slab.h"
#include "src/memory/block_allocator.h"
#include "src/memory/block_table.h"

namespace skywalker {

using PinId = int64_t;
inline constexpr PinId kInvalidPin = -1;

using BlockSlice = PoolSlice<BlockId>;
using BlockPool = ChunkPool<BlockId>;

// Victim selection under memory pressure (ISSUE 8).
//
//  * kLruLeaf (default): the behavior-frozen seed policy — repeatedly scan
//    the whole tree for the least-recently-accessed unpinned leaf and evict
//    it. O(nodes) per victim; byte-identical to every committed golden.
//  * kColdSubtree: maintain per-node subtree aggregates (pages owned, max
//    last-access, decayed hit count) incrementally and, on pressure, evict
//    whole *cold* subtrees — maximal unpinned subtrees whose newest access
//    is older than kColdSubtreeAgeUs — ranked by pages-reclaimed-per-
//    expected-future-hit. One ledger release per subtree node, one ancestor
//    aggregate fix-up per subtree, O(victims) amortized instead of a full
//    rescan per leaf. Anything the cold pass cannot satisfy falls back to
//    the LRU-leaf scan, so reclaim always makes the same progress the seed
//    policy guarantees.
enum class EvictionPolicy : uint8_t {
  kLruLeaf,
  kColdSubtree,
};

// A subtree is cold when its newest access is at least this much older than
// the newest access the cache has seen anywhere (sim microseconds). Half a
// second is several probe intervals and tens of engine steps: long enough
// that an active conversation tree is never a victim, short enough that
// abandoned ToT branches turn cold within a few steps.
inline constexpr SimDuration kColdSubtreeAgeUs = 500'000;
// Half-life of the per-subtree decayed hit count (sim microseconds). Decay
// is quantized to whole half-lives (exact power-of-two scaling via ldexp),
// so scoring is bit-deterministic across platforms and libm versions.
inline constexpr SimDuration kColdSubtreeHitHalfLifeUs = 4'000'000;

class PrefixCache {
 public:
  // `alloc` is the shared paged-KV pool the cache charges its pages to
  // (borrowed; must outlive the cache). Passing nullptr gives the cache a
  // private allocator — the standalone mode unit tests and microbenchmarks
  // use. `block_size_tokens` == 1 is the coarse compatibility mode.
  explicit PrefixCache(int64_t capacity_tokens,
                       BlockAllocator* alloc = nullptr,
                       int32_t block_size_tokens = 1,
                       EvictionPolicy policy = EvictionPolicy::kLruLeaf);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  struct MatchRef {
    int64_t cached_len = 0;  // Longest cached prefix, in tokens.
    PinId pin = kInvalidPin;
  };

  // Longest cached prefix of `seq`; pins it against eviction. Also refreshes
  // LRU timestamps along the path. Always returns a valid pin (possibly of
  // length zero).
  MatchRef MatchAndRef(const TokenSeq& seq, SimTime now);

  // Longest cached prefix without pinning (read-only probe; refreshes LRU).
  int64_t MatchPrefix(const TokenSeq& seq, SimTime now);

  // Releases a pin obtained from MatchAndRef. Pin ids are single-use.
  void Unref(PinId pin);

  // Inserts `seq`; returns the number of tokens newly stored. Evicts
  // unpinned LRU entries as needed to respect capacity; if pinned content
  // prevents full compliance the cache may transiently exceed capacity
  // (the replica's admission control keeps global residency bounded).
  //
  // When `donor` is given (the publishing sequence's path-aligned block
  // table, whose first token sits at path position `donor_base`), the new
  // node takes references on the donor's pages covering the inserted span
  // instead of allocating fresh ones — the publish-is-a-reference-transfer
  // contract of the unified ledger. Positions the donor does not cover
  // (re-publish after eviction) get fresh pages.
  int64_t Insert(const TokenSeq& seq, SimTime now,
                 const BlockTable* donor = nullptr, int64_t donor_base = 0);

  // Evicts unpinned entries until at least `blocks` pages have returned to
  // the allocator's free list or nothing evictable remains. The unit is
  // *blocks* — what the allocator actually frees — so callers can subtract
  // the return value from a block deficit directly instead of re-reading
  // the ledger after every eviction round (ISSUE 8; with block_size == 1 a
  // block is a token and this is exactly the seed token-based eviction).
  // Victim selection follows eviction_policy(); page references shared with
  // pinned paths or live sequences are dropped but free nothing, which the
  // return value reflects truthfully.
  int64_t Evict(int64_t blocks);

  // Drops all unpinned content.
  void Clear();

  int64_t size_tokens() const { return size_tokens_; }
  int64_t capacity_tokens() const { return capacity_tokens_; }
  // Tokens currently pinned by at least one active pin (upper bound of
  // unevictable content). O(1): maintained at the 0<->1 refcount
  // transitions; edge splits conserve the total (both halves inherit the
  // original refcount). Verified against the tree by CheckInvariants().
  int64_t pinned_tokens() const { return pinned_tokens_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t active_pins() const { return pins_.live(); }
  int32_t block_size_tokens() const { return block_size_; }

  EvictionPolicy eviction_policy() const { return policy_; }
  // Switches the victim-selection policy mid-run (hot config reswap).
  // Entering kColdSubtree rebuilds the subtree aggregates with one full
  // traversal; they are then maintained incrementally. Leaving it stops
  // maintenance (the LRU-leaf path never reads them).
  void SetEvictionPolicy(EvictionPolicy policy);

  // Cumulative eviction statistics: rounds is the number of Evict() calls
  // that removed at least one node, victims the nodes removed, and
  // freed_blocks the pages those removals returned to the allocator
  // (pages-reclaimed-per-eviction = freed_blocks / victims).
  struct EvictionStats {
    int64_t rounds = 0;
    int64_t victims = 0;
    int64_t freed_blocks = 0;
  };
  const EvictionStats& eviction_stats() const { return eviction_stats_; }

  // Page references held by tree nodes (a straddled page counts once per
  // covering node). The exact cache charge in unique pages is
  // CountBlocks().held_blocks.
  int64_t block_refs() const { return block_refs_; }

  // Exact page occupancy of the tree, by full traversal: `held_blocks` is
  // the number of distinct pages some node references; `evictable_blocks`
  // counts pages that would return to the free list if every unpinned node
  // were evicted — i.e. pages whose every allocator reference comes from an
  // unpinned node (pages also held by pinned paths or live sequences are
  // not evictable). Scratch buffers are reused across calls, so the probe
  // path stays allocation-free in steady state.
  struct BlockOccupancy {
    int64_t held_blocks = 0;
    int64_t evictable_blocks = 0;
  };
  BlockOccupancy CountBlocks() const;

  // Cumulative statistics (for cache-hit-rate reporting).
  int64_t lookup_tokens() const { return lookup_tokens_; }
  int64_t hit_tokens() const { return hit_tokens_; }
  double HitRate() const {
    return lookup_tokens_ == 0
               ? 0.0
               : static_cast<double>(hit_tokens_) /
                     static_cast<double>(lookup_tokens_);
  }

  // Validates tree structural invariants (tests / debug builds).
  bool CheckInvariants() const;

 private:
  // Two cache lines. The first line is everything a walk touches — edge
  // slice (16) + child map with two inline entries (32) + parent (4) +
  // ref_count (4) + last_access (8) — so trie walks still load one line per
  // node. The second line holds the node's KV page span (16) plus the
  // kColdSubtree aggregates (24), touched only by insert/split/evict — and
  // the aggregates only when that policy is active, so the default-policy
  // walk and eviction paths never read them.
  struct alignas(64) Node {
    TokenSlice edge;  // Label on the edge from parent to this node.
    SmallSortedMap<Token, SlabId, 2> children;
    SlabId parent = kNilSlabId;
    // Pins in flight are bounded by the replica batch size; 2^31 is ample.
    int32_t ref_count = 0;
    SimTime last_access = 0;
    // --- second line: the paged-KV span (cold for walks) ---
    BlockSlice blocks;  // Pages covering the edge, path-aligned.
    // kColdSubtree aggregates, maintained incrementally while that policy
    // is active (root included; rebuilt on policy entry):
    //   sub_blocks      — Σ blocks.size() over this subtree (span refs, so
    //                     a straddled page counts once per covering node);
    //   sub_last_access — upper bound on max last_access in the subtree
    //                     (exact until a descendant eviction; never lower
    //                     than the true maximum, so a "cold" verdict is
    //                     always sound);
    //   sub_hits        — decayed count of accesses into the subtree
    //                     (decay reference time is sub_hit_stamp).
    int32_t sub_blocks = 0;
    float sub_hits = 0.0f;
    SimTime sub_last_access = 0;
    SimTime sub_hit_stamp = 0;
  };
  static_assert(sizeof(Node) == 128, "Node must stay two cache lines");

  // Walks `seq`, splitting any edge that straddles the match end so the
  // match boundary is node-aligned. Returns matched length; `*deepest` gets
  // the deepest fully matched node (root if nothing matched). The full
  // matched path is exactly the parent chain of `*deepest`.
  int64_t WalkAndSplit(const TokenSeq& seq, SimTime now, SlabId* deepest);

  // Splits the edge of `id` (whose edge starts at absolute path depth
  // `start`) at `keep` tokens by inserting a new node ABOVE it: the new
  // node takes the first `keep` tokens, `id` keeps the rest (and its
  // children, refcount, pins). A page straddling the split point is shared
  // by both halves (one extra reference). Returns the new upper node.
  SlabId SplitAbove(SlabId id, size_t keep, int64_t start);

  // Removes an unpinned leaf, releasing its page references. Returns the
  // pages actually freed in the allocator.
  int64_t RemoveLeaf(SlabId leaf);

  // The seed LRU-leaf eviction loop (kLruLeaf, and the kColdSubtree
  // fallback pass): full-tree scan per victim, oldest unpinned leaf first.
  int64_t EvictLruLeaves(int64_t blocks);

  // kColdSubtree machinery (ISSUE 8) -----------------------------------
  // One cold pass: collect maximal unpinned-and-cold subtree roots, rank
  // them by pages-per-expected-future-hit (descending; ties oldest subtree
  // first, then smallest id — all deterministic), and evict greedily until
  // `blocks` pages have freed or the candidates run out.
  int64_t EvictColdSubtrees(int64_t blocks);
  // Removes the whole subtree rooted at `id` (every node unpinned, which
  // ref_count == 0 at the root guarantees: pins cover root paths, so a
  // pinned descendant would pin `id` too). Returns pages freed.
  int64_t RemoveSubtree(SlabId id);
  // `sub_hits` decayed to `now` in whole half-lives (exact ldexp scaling).
  static float DecayedHits(const Node& n, SimTime now);

  // Recomputes the pinned-token sum by full-tree walk (the pre-ISSUE-10
  // definition); CheckInvariants compares it against pinned_tokens_.
  int64_t PinnedTokensSlow() const;
  // Adds `delta` to sub_blocks on every ancestor of `id`, root included.
  void PropagateSubBlocks(SlabId id, int64_t delta);
  // Recomputes every node's aggregates bottom-up (policy entry, O(nodes)).
  void RebuildAggregates();
  // Refreshes the access-side aggregates of a path node during a walk.
  void TouchAggregates(Node& n, SimTime now);

  Node& node(SlabId id) { return nodes_[id]; }
  const Node& node(SlabId id) const { return nodes_[id]; }

  int64_t capacity_tokens_;
  int32_t block_size_;
  EvictionPolicy policy_;
  // True while aggregates are being maintained (== policy is kColdSubtree);
  // hoisted into a bool so walk-path checks stay a single flag test.
  bool maintain_aggregates_ = false;
  // Newest access timestamp ever observed (MatchAndRef/MatchPrefix/Insert).
  // Eviction has no clock parameter, so coldness is judged against this.
  SimTime newest_access_ = 0;
  std::unique_ptr<BlockAllocator> owned_alloc_;  // Standalone mode only.
  BlockAllocator* alloc_;                        // Shared paged-KV pool.
  Slab<Node, 6> nodes_;  // 64-node chunks: cheap short-lived instances.
  TokenPool pool_;
  BlockPool block_pool_;
  SlabId root_;
  int64_t size_tokens_ = 0;
  size_t num_nodes_ = 0;  // Excludes root.
  int64_t block_refs_ = 0;
  // Running sum of edge lengths of nodes with ref_count > 0; see
  // pinned_tokens(). Updated only at pin 0->1 / unpin 1->0 transitions.
  int64_t pinned_tokens_ = 0;

  // Pins are generation-stamped handles so stale/double Unrefs are caught;
  // the slot payload is the deepest node covered by the pin.
  GenSlotPool<SlabId> pins_;

  // Reused scratch: eviction's DFS stack and Insert's span assembly buffer
  // (steady-state allocation freedom), plus CountBlocks' tally arrays
  // (mutable: probes are logically const).
  std::vector<SlabId> evict_stack_;
  std::vector<BlockId> span_scratch_;
  // Cold-pass candidate list (score precomputed; reused across passes).
  struct ColdCandidate {
    double score = 0.0;
    SimTime sub_last_access = 0;
    SlabId id = kNilSlabId;
  };
  std::vector<ColdCandidate> cold_candidates_;
  EvictionStats eviction_stats_;
  mutable std::vector<SlabId> scan_stack_;
  mutable std::vector<int32_t> tally_unpinned_;
  mutable std::vector<uint32_t> tally_epoch_;
  mutable std::vector<BlockId> tally_touched_;
  mutable uint32_t tally_gen_ = 0;

  int64_t lookup_tokens_ = 0;
  int64_t hit_tokens_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_PREFIX_CACHE_H_
