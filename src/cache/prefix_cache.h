// Replica-side KV prefix cache: a compressed radix tree over token ids,
// mirroring the RadixAttention cache in SGLang (paper §2.1, §3.2).
//
// Running requests pin the cached prefix they reuse so eviction cannot free
// memory that is still referenced by the continuous batch; completed
// sequences are inserted and become evictable (LRU) once unpinned.
//
// Pin lifecycle:
//   auto [cached_len, pin] = cache.MatchAndRef(prompt, now);
//   ... request runs, using `cached_len` tokens of cached KV ...
//   cache.Insert(full_sequence, now);   // prompt + generated tokens
//   cache.Unref(pin);
//
// Invariant maintained across edge splits: a node's ref_count equals the
// number of active pins whose pinned length fully covers the node's edge.
// Ref splits edges at its boundary, splits copy the count to both halves,
// and nodes are never merged, so the invariant survives concurrent pins.

#ifndef SKYWALKER_CACHE_PREFIX_CACHE_H_
#define SKYWALKER_CACHE_PREFIX_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cache/tokens.h"
#include "src/common/sim_time.h"

namespace skywalker {

using PinId = int64_t;
inline constexpr PinId kInvalidPin = -1;

class PrefixCache {
 public:
  explicit PrefixCache(int64_t capacity_tokens);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  struct MatchRef {
    int64_t cached_len = 0;  // Longest cached prefix, in tokens.
    PinId pin = kInvalidPin;
  };

  // Longest cached prefix of `seq`; pins it against eviction. Also refreshes
  // LRU timestamps along the path. Always returns a valid pin (possibly of
  // length zero).
  MatchRef MatchAndRef(const TokenSeq& seq, SimTime now);

  // Longest cached prefix without pinning (read-only probe; refreshes LRU).
  int64_t MatchPrefix(const TokenSeq& seq, SimTime now);

  // Releases a pin obtained from MatchAndRef. Pin ids are single-use.
  void Unref(PinId pin);

  // Inserts `seq`; returns the number of tokens newly stored. Evicts
  // unpinned LRU entries as needed to respect capacity; if pinned content
  // prevents full compliance the cache may transiently exceed capacity
  // (the replica's admission control keeps global residency bounded).
  int64_t Insert(const TokenSeq& seq, SimTime now);

  // Evicts unpinned entries (LRU leaf-first) until at least `tokens` are
  // freed or nothing evictable remains. Returns tokens actually freed.
  int64_t Evict(int64_t tokens);

  // Drops all unpinned content.
  void Clear();

  int64_t size_tokens() const { return size_tokens_; }
  int64_t capacity_tokens() const { return capacity_tokens_; }
  // Tokens currently pinned by at least one active pin (upper bound of
  // unevictable content).
  int64_t pinned_tokens() const;
  size_t num_nodes() const { return num_nodes_; }
  size_t active_pins() const { return pins_.size(); }

  // Cumulative statistics (for cache-hit-rate reporting).
  int64_t lookup_tokens() const { return lookup_tokens_; }
  int64_t hit_tokens() const { return hit_tokens_; }
  double HitRate() const {
    return lookup_tokens_ == 0
               ? 0.0
               : static_cast<double>(hit_tokens_) /
                     static_cast<double>(lookup_tokens_);
  }

  // Validates tree structural invariants (tests / debug builds).
  bool CheckInvariants() const;

 private:
  struct Node {
    TokenSeq edge;  // Label on the edge from parent to this node.
    std::map<Token, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    int64_t ref_count = 0;
    SimTime last_access = 0;
  };

  struct Pin {
    TokenSeq prefix;  // Copy of the pinned tokens (node-aligned by Ref).
  };

  // Walks `seq`, splitting any edge that straddles the match end so the
  // match boundary is node-aligned. Returns matched length and fills `path`
  // with fully matched nodes (root excluded).
  int64_t WalkAndSplit(const TokenSeq& seq, SimTime now,
                       std::vector<Node*>* path);

  // Adjusts ref_count by `delta` on every node fully covered by
  // `seq[0..len)`. Requires the boundary to be node-aligned.
  void AdjustRefs(const TokenSeq& seq, int64_t len, int64_t delta);

  // Splits `node` so its edge has length `keep`; the remainder moves into a
  // new child that inherits children, refcount and access time.
  void SplitNode(Node* node, size_t keep);

  // Removes an unpinned leaf; asserts invariants.
  void RemoveLeaf(Node* leaf);

  int64_t capacity_tokens_;
  std::unique_ptr<Node> root_;
  int64_t size_tokens_ = 0;
  size_t num_nodes_ = 0;  // Excludes root.

  std::unordered_map<PinId, Pin> pins_;
  PinId next_pin_ = 1;

  int64_t lookup_tokens_ = 0;
  int64_t hit_tokens_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_PREFIX_CACHE_H_
