// Token vocabulary shared by the replica KV cache, routing tries, and
// workload generators. The simulator never materializes text; requests carry
// token-id sequences directly, which is all that prefix matching needs.

#ifndef SKYWALKER_CACHE_TOKENS_H_
#define SKYWALKER_CACHE_TOKENS_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/hash.h"

namespace skywalker {

using Token = int32_t;
using TokenSeq = std::vector<Token>;

// Length of the common prefix of a[0..n) and b[0..n). The radix walk's
// innermost loop: long edges take one SIMD memcmp (full equality is the hot
// case — walking through an interior node), short edges stay scalar because
// the memcmp call overhead would dominate a 1–2 token compare.
inline size_t CommonPrefixLenRaw(const Token* a, const Token* b, size_t n) {
  if (n >= 16) {
    if (std::memcmp(a, b, n * sizeof(Token)) == 0) {
      return n;
    }
    // A mismatch exists strictly before n; scan unbounded to it.
    size_t i = 0;
    while (a[i] == b[i]) {
      ++i;
    }
    return i;
  }
  size_t i = 0;
  while (i < n && a[i] == b[i]) {
    ++i;
  }
  return i;
}

// Length of the longest common prefix of two sequences.
inline size_t CommonPrefixLen(const TokenSeq& a, const TokenSeq& b) {
  return CommonPrefixLenRaw(a.data(), b.data(), std::min(a.size(), b.size()));
}

// Prefix similarity as defined in §3.2 of the paper:
// len(common_prefix(a,b)) / min(len(a), len(b)). 1.0 when one sequence is a
// prefix of the other; 0 when either is empty.
inline double PrefixSimilarity(const TokenSeq& a, const TokenSeq& b) {
  size_t n = std::min(a.size(), b.size());
  if (n == 0) {
    return 0.0;
  }
  return static_cast<double>(CommonPrefixLen(a, b)) / static_cast<double>(n);
}

// Order-dependent 64-bit fingerprint of a token sequence.
inline uint64_t HashTokens(const TokenSeq& seq) {
  return HashBytes(seq.data(), seq.size() * sizeof(Token));
}

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_TOKENS_H_
