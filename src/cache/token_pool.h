// Pooled immutable token storage for the radix structures (ISSUE 3).
//
// The seed trees copied their edge labels into per-node std::vector<Token>
// buffers: every insert allocated, and every edge split copied both halves.
// A TokenPool instead appends inserted sequences into large shared chunks
// exactly once; nodes hold TokenSlice views {data pointer, chunk id, length}
// into those chunks. Splitting an edge is pointer arithmetic (both halves
// alias the same chunk), and the only steady-state cost is a per-chunk
// reference count.
//
// Chunks are reference-counted by the number of slices viewing them and are
// recycled through a free list once sealed and unreferenced, so eviction
// churn returns memory to the pool rather than the heap. The cost is
// fragmentation: a chunk survives while ANY slice into it lives, so the
// worst case is one 64 KiB chunk pinned per live node — far above the
// seed's edge-sized per-node buffers. That pathology needs most of a
// chunk's interners to die while a token-sized slice survives every chunk;
// LRU eviction kills same-era edges together, which keeps real occupancy
// near the live token count (verify with num_chunks()/free_chunks() before
// suspecting the trees themselves).
//
// Slices never span chunks; a sequence longer than kChunkTokens gets a
// dedicated exactly-sized chunk that is freed (not recycled) on release.

#ifndef SKYWALKER_CACHE_TOKEN_POOL_H_
#define SKYWALKER_CACHE_TOKEN_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cache/tokens.h"

namespace skywalker {

// Non-owning view of pooled tokens. The owner (a radix node) must pair every
// retained slice with TokenPool::AddRef/Release on the slice's chunk.
struct TokenSlice {
  const Token* data = nullptr;
  uint32_t chunk = UINT32_MAX;  // Pool chunk id for refcounting.
  uint32_t len = 0;

  bool empty() const { return len == 0; }
  size_t size() const { return len; }
  Token front() const { return data[0]; }
  Token operator[](size_t i) const { return data[i]; }

  // Sub-views alias the same chunk; the caller owns the refcounting.
  TokenSlice Prefix(size_t n) const {
    return TokenSlice{data, chunk, static_cast<uint32_t>(n)};
  }
  TokenSlice Suffix(size_t from) const {
    return TokenSlice{data + from, chunk,
                      static_cast<uint32_t>(len - from)};
  }
};

class TokenPool {
 public:
  // 16K tokens = 64 KiB per chunk: large enough that steady-state inserts
  // amortize to zero allocations, small enough that a few retained slices
  // don't strand much memory.
  static constexpr uint32_t kChunkTokens = 16 * 1024;

  TokenPool() = default;
  TokenPool(const TokenPool&) = delete;
  TokenPool& operator=(const TokenPool&) = delete;
  ~TokenPool();

  // Copies `len` tokens into pooled storage and returns a slice holding one
  // reference on its chunk.
  TokenSlice Intern(const Token* tokens, size_t len);

  // One additional retained slice views the chunk (e.g. an edge split).
  void AddRef(const TokenSlice& slice);

  // A retained slice was dropped. When a sealed chunk's count reaches zero
  // it is recycled (or deallocated, for oversized chunks).
  void Release(const TokenSlice& slice);

  // Diagnostics (CheckInvariants / DESIGN.md numbers).
  size_t num_chunks() const { return chunks_.size(); }
  size_t free_chunks() const { return free_standard_.size(); }
  int64_t live_refs() const { return live_refs_; }

 private:
  struct Chunk {
    // Deliberately uninitialized storage (new Token[n], not vector): a fresh
    // chunk is written before it is read, and zero-filling 64 KiB would
    // dominate the cost of short-lived caches (one per simulated replica).
    std::unique_ptr<Token[]> tokens;
    uint32_t capacity = 0;
    uint32_t used = 0;
    int64_t refs = 0;
    bool oversized = false;
  };

  uint32_t AcquireChunk(size_t min_tokens);

  std::vector<Chunk> chunks_;
  std::vector<uint32_t> free_standard_;  // Recyclable standard-size chunks.
  std::vector<uint32_t> free_slots_;     // Chunk ids whose storage was freed.
  uint32_t open_ = UINT32_MAX;           // Chunk accepting appends.
  int64_t live_refs_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_TOKEN_POOL_H_
