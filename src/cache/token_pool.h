// Pooled immutable token storage for the radix structures (ISSUE 3).
//
// Since ISSUE 5 the chunk/slice machinery is the generic ChunkPool<T>
// (src/common/chunk_pool.h), shared with the prefix cache's per-node KV
// block spans; this header keeps the token-typed names every radix
// structure uses.

#ifndef SKYWALKER_CACHE_TOKEN_POOL_H_
#define SKYWALKER_CACHE_TOKEN_POOL_H_

#include "src/cache/tokens.h"
#include "src/common/chunk_pool.h"

namespace skywalker {

using TokenSlice = PoolSlice<Token>;
using TokenPool = ChunkPool<Token>;

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_TOKEN_POOL_H_
