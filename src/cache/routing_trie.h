// Load-balancer-side prefix tree (paper §3.2, "SkyWalker with regional
// snapshot").
//
// A compressed trie over token ids where every node carries the set of
// load-balancing targets (replicas or remote LBs) that previously served a
// request whose prompt passes through that node. By construction a child's
// target set is a subset of its parent's, so a traversal can terminate early
// the moment no *available* target remains (paper's early-exit optimization).
//
// Memory is bounded: when total stored tokens exceed the capacity, leaves are
// evicted starting from the earliest-inserted records (paper §3.2).
//
// Memory layout (ISSUE 3): like PrefixCache, nodes live in a slab arena
// linked by 32-bit ids, children and per-node target sets are sorted inline
// small-vectors, and edge labels are TokenSlice views into a shared
// TokenPool. The match walk itself does not allocate; each MatchBest still
// allocates once for the returned candidates vector. Inserts allocate only
// when the interned sequence opens a new pool chunk or the arena grows.
// Observable behavior is bit-identical to the seed std::map implementation.

#ifndef SKYWALKER_CACHE_ROUTING_TRIE_H_
#define SKYWALKER_CACHE_ROUTING_TRIE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/cache/small_map.h"
#include "src/cache/token_pool.h"
#include "src/cache/tokens.h"
#include "src/common/slab.h"

namespace skywalker {

// Identifies a load-balancing target: replica id or remote-LB id depending
// on which trie this is (local-replica trie vs regional snapshot trie).
using TargetId = int32_t;
inline constexpr TargetId kInvalidTarget = -1;

class RoutingTrie {
 public:
  explicit RoutingTrie(int64_t capacity_tokens);
  ~RoutingTrie();

  RoutingTrie(const RoutingTrie&) = delete;
  RoutingTrie& operator=(const RoutingTrie&) = delete;

  // Availability predicate supplied by the load balancer (§3.3): targets
  // failing it are skipped during matching.
  using TargetPredicate = std::function<bool(TargetId)>;

  // Records that `target` served a request with prompt `seq`.
  void Insert(const TokenSeq& seq, TargetId target);

  struct Match {
    int64_t match_len = 0;               // Depth of the deepest usable node.
    std::vector<TargetId> candidates;    // Available targets at that node,
                                         // most-recently-inserted first.
  };

  // Longest-prefix match constrained to available targets: walks down while
  // the next node still contains a target satisfying `pred`, then returns
  // the available targets recorded at the deepest usable node. With no
  // usable node at all (even the first token diverges or no available
  // target anywhere on the path) returns match_len == 0 and the available
  // targets of the root (i.e. every known target that passes `pred`).
  Match MatchBest(const TokenSeq& seq, const TargetPredicate& pred) const;

  // Forgets a target everywhere (replica teardown / LB failure). Nodes whose
  // target set becomes empty are pruned.
  void RemoveTarget(TargetId target);

  int64_t size_tokens() const { return size_tokens_; }
  int64_t capacity_tokens() const { return capacity_tokens_; }
  size_t num_nodes() const { return num_nodes_; }

  bool CheckInvariants() const;

 private:
  struct Node {
    TokenSlice edge;
    SmallSortedMap<Token, SlabId> children;
    SlabId parent = kNilSlabId;
    // target -> generation of the most recent insert touching this node.
    SmallSortedMap<TargetId, uint64_t> targets;
    uint64_t last_insert_gen = 0;
  };

  // Splits the edge of `id` at `keep` tokens by inserting a new node above
  // it (same scheme as PrefixCache::SplitAbove). Returns the upper node.
  SlabId SplitAbove(SlabId id, size_t keep);

  void EvictToCapacity();
  void RemoveLeaf(SlabId leaf);
  void FillAvailable(SlabId id, const TargetPredicate& pred,
                     std::vector<TargetId>* out) const;

  Node& node(SlabId id) { return nodes_[id]; }
  const Node& node(SlabId id) const { return nodes_[id]; }

  int64_t capacity_tokens_;
  Slab<Node, 6> nodes_;  // 64-node chunks: cheap short-lived instances.
  TokenPool pool_;
  SlabId root_;
  int64_t size_tokens_ = 0;
  size_t num_nodes_ = 0;
  uint64_t next_gen_ = 1;
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_ROUTING_TRIE_H_
