// Sorted flat map with inline small-vector storage, replacing the
// std::map<Token, unique_ptr<Node>> / std::map<TargetId, gen> node members
// in the radix structures. Radix nodes overwhelmingly have 0–4 children
// (conversation workloads branch at turn boundaries, not per token), so the
// entries live inline in the node itself — a child lookup is a linear scan
// over one cache line instead of a red-black-tree pointer chase. Nodes that
// do fan out (e.g. a trie root over many first tokens) spill to a heap
// array and switch to binary search.
//
// Keys and values must be trivially copyable: entries move with memmove and
// the destructor only frees the spill buffer. Clear() keeps the spill
// capacity, so recycling a node through a slab free list does not allocate.

#ifndef SKYWALKER_CACHE_SMALL_MAP_H_
#define SKYWALKER_CACHE_SMALL_MAP_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace skywalker {

template <typename K, typename V, size_t kInline = 4>
class SmallSortedMap {
  static_assert(std::is_trivially_copyable_v<K> &&
                    std::is_trivially_copyable_v<V>,
                "SmallSortedMap entries are relocated with memmove");

 public:
  struct Entry {
    K key;
    V value;
  };

  SmallSortedMap() = default;
  SmallSortedMap(const SmallSortedMap&) = delete;
  SmallSortedMap& operator=(const SmallSortedMap&) = delete;
  ~SmallSortedMap() { delete[] heap_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Drops all entries but keeps any spill buffer for reuse.
  void Clear() { size_ = 0; }

  // Replaces this map's contents with a copy of `other` (edge splits copy a
  // node's target set to both halves).
  void CopyFrom(const SmallSortedMap& other) {
    size_ = 0;
    while (capacity() < other.size_) {
      Grow();
    }
    std::memcpy(data(), other.data(), other.size_ * sizeof(Entry));
    size_ = other.size_;
  }

  const V* Find(K key) const {
    // The inline case takes an explicit (well-predicted) branch rather than
    // selecting `heap_ ? heap_ : inline_` with a cmov: the entry loads must
    // not carry a data dependency on the heap_ load, or every step of a
    // radix walk serializes on two dependent cache misses instead of one.
    if (heap_ == nullptr) {
      for (uint32_t i = 0; i < size_; ++i) {
        if (inline_[i].key >= key) {
          return inline_[i].key == key ? &inline_[i].value : nullptr;
        }
      }
      return nullptr;
    }
    const Entry* e = std::lower_bound(
        heap_, heap_ + size_, key,
        [](const Entry& entry, K k) { return entry.key < k; });
    return (e != heap_ + size_ && e->key == key) ? &e->value : nullptr;
  }
  V* Find(K key) {
    return const_cast<V*>(static_cast<const SmallSortedMap*>(this)->Find(key));
  }

  // Inserts or overwrites; returns true if the key was new.
  bool Set(K key, V value) {
    Entry* e = const_cast<Entry*>(LowerBound(key));
    if (e != end() && e->key == key) {
      e->value = value;
      return false;
    }
    size_t at = static_cast<size_t>(e - data());
    if (size_ == capacity()) {
      Grow();
    }
    Entry* d = data();
    std::memmove(d + at + 1, d + at, (size_ - at) * sizeof(Entry));
    d[at] = Entry{key, value};
    ++size_;
    return true;
  }

  bool Erase(K key) {
    Entry* e = const_cast<Entry*>(LowerBound(key));
    if (e == end() || e->key != key) {
      return false;
    }
    std::memmove(e, e + 1,
                 static_cast<size_t>(end() - (e + 1)) * sizeof(Entry));
    --size_;
    return true;
  }

  // Iteration is in ascending key order (matches std::map, which the
  // structures' deterministic traversal order depends on).
  const Entry* begin() const { return data(); }
  const Entry* end() const { return data() + size_; }

 private:
  size_t capacity() const { return heap_ == nullptr ? kInline : heap_cap_; }
  const Entry* data() const { return heap_ == nullptr ? inline_ : heap_; }
  Entry* data() { return heap_ == nullptr ? inline_ : heap_; }

  const Entry* LowerBound(K key) const {
    const Entry* d = data();
    if (size_ <= kInline) {  // Inline (or shrunk-into-spill): linear scan.
      const Entry* e = d + size_;
      while (d != e && d->key < key) {
        ++d;
      }
      return d;
    }
    return std::lower_bound(
        d, d + size_, key,
        [](const Entry& entry, K k) { return entry.key < k; });
  }

  void Grow() {
    size_t new_cap = capacity() * 2;
    Entry* spill = new Entry[new_cap];
    std::memcpy(spill, data(), size_ * sizeof(Entry));
    delete[] heap_;
    heap_ = spill;
    heap_cap_ = new_cap;
  }

  uint32_t size_ = 0;
  uint32_t heap_cap_ = 0;
  Entry* heap_ = nullptr;
  Entry inline_[kInline];
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_SMALL_MAP_H_
