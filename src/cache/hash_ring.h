// Consistent-hash ring with virtual nodes (paper §3.2, SkyWalker-CH).
//
// Follows the classic ring-hash scheme [Karger et al., Chord]: each target
// owns `vnodes * weight` points on a 64-bit ring; a key is served by the
// first target clockwise from its hash. Lookup can skip unavailable targets
// (paper: "virtual nodes are skipped based on the availability of its
// associated replica ... the algorithm continues iterating over successive
// virtual nodes on the ring").

#ifndef SKYWALKER_CACHE_HASH_RING_H_
#define SKYWALKER_CACHE_HASH_RING_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/cache/routing_trie.h"  // TargetId
#include "src/common/hash.h"

namespace skywalker {

class HashRing {
 public:
  explicit HashRing(int vnodes_per_weight = 128);

  // Adds a target with the given weight (>= 1). Adding an existing target
  // is a no-op.
  void AddTarget(TargetId id, int weight = 1);

  // Removes a target and all its virtual nodes.
  void RemoveTarget(TargetId id);

  bool Contains(TargetId id) const;
  size_t num_targets() const { return targets_.size(); }
  size_t num_vnodes() const { return ring_.size(); }

  // Owner of `key_hash`: first virtual node clockwise. kInvalidTarget when
  // the ring is empty.
  TargetId Lookup(uint64_t key_hash) const;

  // First distinct target clockwise from `key_hash` that satisfies `pred`;
  // kInvalidTarget when none does.
  TargetId LookupAvailable(uint64_t key_hash,
                           const std::function<bool(TargetId)>& pred) const;

  // The first `n` distinct targets clockwise (replica set for a key).
  std::vector<TargetId> LookupN(uint64_t key_hash, size_t n) const;

 private:
  struct VNode {
    uint64_t point;
    TargetId target;
    bool operator<(const VNode& other) const {
      if (point != other.point) {
        return point < other.point;
      }
      return target < other.target;
    }
  };

  // Sorts the ring if additions happened since the last lookup. Bulk
  // construction (attach R targets, then start serving) costs one
  // O(n log n) sort instead of R sorts of the growing ring (ISSUE 10).
  void EnsureSorted() const;

  int vnodes_per_weight_;
  // Sorted by point whenever sorted_; lookups restore the invariant first.
  mutable std::vector<VNode> ring_;
  mutable bool sorted_ = true;
  std::set<TargetId> targets_;
};

}  // namespace skywalker

#endif  // SKYWALKER_CACHE_HASH_RING_H_
