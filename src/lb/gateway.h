// GKE-Gateway-style multi-cluster baseline (paper §5.1, §6).
//
// One gateway endpoint per region provides a unified entry point; each
// request is routed to exactly one cluster (a region's replica pool).
// Routing is capacity-aware but LLM-agnostic: the client's local cluster is
// used while its average outstanding-per-replica stays under a utilization
// threshold, otherwise traffic spills to the nearest cluster with headroom.
// Within a cluster, requests go to the least-connected replica and are
// pushed blindly — there is no prefix awareness and no selective pushing,
// which is exactly what the paper identifies as the gateway's weakness.

#ifndef SKYWALKER_LB_GATEWAY_H_
#define SKYWALKER_LB_GATEWAY_H_

#include <map>
#include <memory>
#include <vector>

#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

struct GatewayConfig {
  // A cluster is considered saturated when its mean outstanding requests
  // per replica reaches this value; traffic then spills to other clusters.
  double spill_outstanding_per_replica = 16.0;
};

class GatewayLb {
 public:
  GatewayLb(Simulator* sim, Network* net, const GatewayConfig& config);
  ~GatewayLb();

  GatewayLb(const GatewayLb&) = delete;
  GatewayLb& operator=(const GatewayLb&) = delete;

  // Registers a replica; clustered by its region.
  void AttachReplica(Replica* replica);

  // Endpoint clients in `region` should contact (created on first use).
  Frontend* EndpointFor(RegionId region);

  struct Stats {
    int64_t received = 0;
    int64_t spilled = 0;  // Served by a non-local cluster.
    int64_t completed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct ReplicaSlot {
    Replica* replica = nullptr;
    int outstanding = 0;
  };
  struct Cluster {
    RegionId region = kInvalidRegion;
    std::vector<ReplicaSlot> replicas;
    int TotalOutstanding() const;
  };

  class Endpoint;

  // Core routing invoked by an endpoint.
  void Route(RegionId endpoint_region, Request req,
             RequestCallbacks callbacks);

  Cluster* ClusterFor(RegionId region);
  // Cluster choice: local if under threshold, else nearest under threshold,
  // else globally least utilized.
  Cluster* PickCluster(RegionId client_cluster_region);
  ReplicaSlot* PickReplica(Cluster* cluster);

  Simulator* sim_;
  Network* net_;
  GatewayConfig config_;
  std::map<RegionId, Cluster> clusters_;
  std::map<RegionId, std::unique_ptr<Endpoint>> endpoints_;
  Stats stats_;
};

}  // namespace skywalker

#endif  // SKYWALKER_LB_GATEWAY_H_
