#include "src/lb/policies.h"

#include <limits>

#include "src/common/hash.h"

namespace skywalker {

ReplicaId RoundRobinSelector::SelectReplica(const Queued& /*queued*/,
                                            const CandidateView& candidates) {
  const size_t n = candidates.size();
  if (n == 0) {
    return kInvalidReplica;
  }
  // Walk the replica registry starting at next_, skipping unavailable.
  for (size_t i = 0; i < n; ++i) {
    size_t idx = (next_ + i) % n;
    const ReplicaState& state = candidates[idx];
    if (candidates.IsAvailable(state)) {
      next_ = idx + 1;
      return state.replica->id();
    }
  }
  return kInvalidReplica;
}

ReplicaId LeastLoadSelector::SelectReplica(const Queued& /*queued*/,
                                           const CandidateView& candidates) {
  return candidates.LeastLoadedAvailable();
}

ConsistentHashSelector::ConsistentHashSelector(int vnodes_per_replica)
    : ring_(vnodes_per_replica) {}

void ConsistentHashSelector::OnReplicaAttached(Replica* replica) {
  ring_.AddTarget(replica->id());
}

void ConsistentHashSelector::OnReplicaDetached(ReplicaId replica_id) {
  ring_.RemoveTarget(replica_id);
}

ReplicaId ConsistentHashSelector::SelectReplica(
    const Queued& queued, const CandidateView& candidates) {
  uint64_t key = HashString(queued.req.routing_key);
  TargetId target = ring_.LookupAvailable(
      key, [&candidates](TargetId id) { return candidates.IsAvailable(id); });
  return target == kInvalidTarget ? kInvalidReplica : target;
}

SglRouterSelector::SglRouterSelector(const LbConfig& config)
    : match_threshold_(config.sgl_match_threshold),
      tree_decay_tokens_(config.sgl_tree_decay_tokens),
      trie_(config.routing_trie_capacity) {}

void SglRouterSelector::OnReplicaDetached(ReplicaId replica_id) {
  trie_.RemoveTarget(replica_id);
  approx_tree_tokens_.erase(replica_id);
}

ReplicaId SglRouterSelector::SelectReplica(const Queued& queued,
                                           const CandidateView& candidates) {
  auto pred = [&candidates](TargetId id) { return candidates.IsAvailable(id); };
  RoutingTrie::Match match = trie_.MatchBest(queued.req.prompt, pred);

  ReplicaId chosen = kInvalidReplica;
  double ratio =
      queued.req.prompt.empty()
          ? 0.0
          : static_cast<double>(match.match_len) /
                static_cast<double>(queued.req.prompt.size());
  if (ratio >= match_threshold_ && !match.candidates.empty()) {
    chosen = match.candidates.front();  // Freshest cache wins.
  } else {
    // Cache-aware fallback (SGLang v0.4): the available worker with the
    // smallest approximate radix tree, i.e. the most free cache space.
    int64_t best_tokens = std::numeric_limits<int64_t>::max();
    for (size_t i = 0; i < candidates.size(); ++i) {
      const ReplicaState& state = candidates[i];
      if (!candidates.IsAvailable(state)) {
        continue;
      }
      ReplicaId rid = state.replica->id();
      auto it = approx_tree_tokens_.find(rid);
      int64_t tokens = it == approx_tree_tokens_.end() ? 0 : it->second;
      if (tokens < best_tokens) {
        chosen = rid;
        best_tokens = tokens;
      }
    }
  }
  if (chosen != kInvalidReplica) {
    trie_.Insert(queued.req.prompt, chosen);
    approx_tree_tokens_[chosen] +=
        static_cast<int64_t>(queued.req.prompt.size()) - match.match_len;
    // Mimic the router-side mirror of worker eviction: decay everyone once
    // any estimate crosses the per-worker KV budget.
    if (approx_tree_tokens_[chosen] > tree_decay_tokens_) {
      for (auto& [rid, tokens] : approx_tree_tokens_) {
        tokens /= 2;
      }
    }
  }
  return chosen;
}

}  // namespace skywalker
