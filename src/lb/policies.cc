#include "src/lb/policies.h"

#include <limits>

#include "src/common/hash.h"

namespace skywalker {

ReplicaId RoundRobinLb::SelectReplica(const Queued& queued) {
  const auto& states = replica_states();
  if (states.empty()) {
    return kInvalidReplica;
  }
  // Walk the ordered replica map starting at next_, skipping unavailable.
  std::vector<ReplicaId> ids;
  ids.reserve(states.size());
  for (const auto& [rid, state] : states) {
    ids.push_back(rid);
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    size_t idx = (next_ + i) % ids.size();
    const ReplicaState& state = states.at(ids[idx]);
    if (IsAvailable(state)) {
      next_ = idx + 1;
      return ids[idx];
    }
  }
  return kInvalidReplica;
}

ReplicaId LeastLoadLb::SelectReplica(const Queued& queued) {
  ReplicaId best = kInvalidReplica;
  int best_load = std::numeric_limits<int>::max();
  for (const auto& [rid, state] : replica_states()) {
    if (IsAvailable(state) && state.outstanding < best_load) {
      best = rid;
      best_load = state.outstanding;
    }
  }
  return best;
}

ConsistentHashLb::ConsistentHashLb(Simulator* sim, Network* net, LbId id,
                                   RegionId region, const LbConfig& config,
                                   int vnodes_per_replica)
    : LoadBalancer(sim, net, id, region, config), ring_(vnodes_per_replica) {}

void ConsistentHashLb::AttachReplicaToRing(Replica* replica) {
  AttachReplica(replica);
  ring_.AddTarget(replica->id());
}

ReplicaId ConsistentHashLb::SelectReplica(const Queued& queued) {
  uint64_t key = HashString(queued.req.routing_key);
  TargetId target = ring_.LookupAvailable(key, [this](TargetId id) {
    const auto it = replica_states().find(id);
    return it != replica_states().end() && IsAvailable(it->second);
  });
  return target == kInvalidTarget ? kInvalidReplica : target;
}

SglRouterLb::SglRouterLb(Simulator* sim, Network* net, LbId id,
                         RegionId region, const LbConfig& config)
    : LoadBalancer(sim, net, id, region, config),
      trie_(config.routing_trie_capacity) {}

ReplicaId SglRouterLb::SelectReplica(const Queued& queued) {
  auto pred = [this](TargetId id) {
    const auto it = replica_states().find(id);
    return it != replica_states().end() && IsAvailable(it->second);
  };
  RoutingTrie::Match match = trie_.MatchBest(queued.req.prompt, pred);

  ReplicaId chosen = kInvalidReplica;
  double ratio =
      queued.req.prompt.empty()
          ? 0.0
          : static_cast<double>(match.match_len) /
                static_cast<double>(queued.req.prompt.size());
  if (ratio >= config().sgl_match_threshold && !match.candidates.empty()) {
    chosen = match.candidates.front();  // Freshest cache wins.
  } else {
    // Cache-aware fallback (SGLang v0.4): the available worker with the
    // smallest approximate radix tree, i.e. the most free cache space.
    int64_t best_tokens = std::numeric_limits<int64_t>::max();
    for (const auto& [rid, state] : replica_states()) {
      if (!IsAvailable(state)) {
        continue;
      }
      auto it = approx_tree_tokens_.find(rid);
      int64_t tokens = it == approx_tree_tokens_.end() ? 0 : it->second;
      if (tokens < best_tokens) {
        chosen = rid;
        best_tokens = tokens;
      }
    }
  }
  if (chosen != kInvalidReplica) {
    trie_.Insert(queued.req.prompt, chosen);
    approx_tree_tokens_[chosen] +=
        static_cast<int64_t>(queued.req.prompt.size()) - match.match_len;
    // Mimic the router-side mirror of worker eviction: decay everyone once
    // any estimate crosses the per-worker KV budget.
    if (approx_tree_tokens_[chosen] > config().sgl_tree_decay_tokens) {
      for (auto& [rid, tokens] : approx_tree_tokens_) {
        tokens /= 2;
      }
    }
  }
  return chosen;
}

}  // namespace skywalker
