// Baseline load-balancer frontend (paper §5.1): a thin Frontend shell over
// the shared dispatch engine in src/routing/. The engine owns the FCFS
// queue, per-replica probe state, the heartbeat probe loop, and the three
// pushing disciplines of §3.3 (kBlind / kSelectiveOutstanding /
// kSelectivePending); this class only adapts requests into the engine and
// injects the placement policy as a ReplicaSelector (src/lb/policies.h).

#ifndef SKYWALKER_LB_LOAD_BALANCER_H_
#define SKYWALKER_LB_LOAD_BALANCER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/routing/dispatch_engine.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

struct LbConfig {
  // Engine knobs (push mode, probe interval, slack, gates, outlier
  // detection), in the shared DispatchConfig vocabulary. Baselines default
  // to blind pushing; paper §4.1 probes every 100 ms.
  DispatchConfig engine;

  // --- SGL cache-aware policy knobs (policy-owned, not engine state) ---

  // Capacity of the policy-owned routing trie (SGL policy).
  int64_t routing_trie_capacity = 4'000'000;

  // SGL cache-aware threshold: route by prefix only when the best match
  // covers at least this fraction of the prompt.
  double sgl_match_threshold = 0.5;

  // SGL fallback bookkeeping: once a worker's approximate tree-size estimate
  // exceeds this (≈ its KV budget), all estimates decay, mirroring worker
  // eviction.
  int64_t sgl_tree_decay_tokens = 49152;
};

class LoadBalancer : public Frontend {
 public:
  using Stats = DispatchEngine::Stats;

  // `selector` provides the placement policy; see src/lb/policies.h for the
  // four baselines. The selector is notified of replica attach/detach.
  LoadBalancer(Simulator* sim, Network* net, LbId id, RegionId region,
               const LbConfig& config,
               std::unique_ptr<ReplicaSelector> selector);
  ~LoadBalancer() override;

  LoadBalancer(const LoadBalancer&) = delete;
  LoadBalancer& operator=(const LoadBalancer&) = delete;

  // Registers a replica this LB manages. May be called before or after
  // Start().
  void AttachReplica(Replica* replica);

  // Starts the probe loop (no-op for kBlind).
  void Start();
  void Stop();

  // Frontend:
  RegionId region() const override { return region_; }
  void HandleRequest(Request req, RequestCallbacks callbacks) override;

  LbId id() const { return id_; }
  const LbConfig& config() const { return config_; }
  const Stats& stats() const { return engine_.stats(); }
  size_t queue_length() const { return engine_.queue_size(); }

  // Current LB-tracked outstanding per replica (for imbalance metrics).
  std::vector<int> OutstandingSnapshot() const {
    return engine_.OutstandingSnapshot();
  }

 protected:
  DispatchEngine* engine() { return &engine_; }
  const DispatchEngine* engine() const { return &engine_; }
  ReplicaSelector* selector() { return selector_.get(); }

 private:
  LbId id_;
  RegionId region_;
  LbConfig config_;
  std::unique_ptr<ReplicaSelector> selector_;
  DispatchEngine engine_;
};

}  // namespace skywalker

#endif  // SKYWALKER_LB_LOAD_BALANCER_H_
