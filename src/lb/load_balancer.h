// Load-balancer framework shared by all baseline policies (paper §5.1):
// a Frontend with an FCFS request queue, per-replica state tracking, a
// heartbeat probe loop, and the three pushing disciplines analysed in §3.3:
//
//  * kBlind               — route immediately on arrival (RR/LL/CH/SGL and
//                           GKE Gateway behave this way);
//  * kSelectiveOutstanding— push only to replicas with fewer than a fixed
//                           number of outstanding requests (SP-O);
//  * kSelectivePending    — push only to replicas whose continuous batch is
//                           not full, i.e. last probe saw zero pending
//                           requests (SP-P, the paper's proposal).
//
// Policy subclasses implement SelectReplica() over the currently available
// candidate set.

#ifndef SKYWALKER_LB_LOAD_BALANCER_H_
#define SKYWALKER_LB_LOAD_BALANCER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

enum class PushMode {
  kBlind,
  kSelectiveOutstanding,
  kSelectivePending,
};

struct LbConfig {
  PushMode push_mode = PushMode::kBlind;

  // Heartbeat probe period (paper §4.1 uses 100 ms).
  SimDuration probe_interval = Milliseconds(100);

  // SP-O: fixed cap on outstanding requests per replica.
  int max_outstanding_per_replica = 24;

  // SP-P: optimistic pushes allowed per replica between two probes. Bounds
  // burst overshoot caused by probe staleness (DESIGN.md §5.3) while still
  // letting an empty continuous batch fill within one probe window.
  int push_slack = 32;

  // Capacity of the policy-owned routing trie (SGL policy).
  int64_t routing_trie_capacity = 4'000'000;

  // SGL cache-aware threshold: route by prefix only when the best match
  // covers at least this fraction of the prompt.
  double sgl_match_threshold = 0.5;

  // SGL fallback bookkeeping: once a worker's approximate tree-size estimate
  // exceeds this (≈ its KV budget), all estimates decay, mirroring worker
  // eviction.
  int64_t sgl_tree_decay_tokens = 49152;
};

class LoadBalancer : public Frontend {
 public:
  struct Stats {
    int64_t received = 0;
    int64_t dispatched = 0;
    int64_t completed = 0;
    int64_t probes_sent = 0;
    int64_t max_queue_len = 0;
  };

  LoadBalancer(Simulator* sim, Network* net, LbId id, RegionId region,
               const LbConfig& config);
  ~LoadBalancer() override;

  LoadBalancer(const LoadBalancer&) = delete;
  LoadBalancer& operator=(const LoadBalancer&) = delete;

  // Registers a replica this LB manages. May be called before or after
  // Start().
  void AttachReplica(Replica* replica);

  // Starts the probe loop (no-op for kBlind).
  void Start();
  void Stop();

  // Frontend:
  RegionId region() const override { return region_; }
  void HandleRequest(Request req, RequestCallbacks callbacks) override;

  LbId id() const { return id_; }
  const LbConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  size_t queue_length() const { return queue_.size(); }

  // Current LB-tracked outstanding per replica (for imbalance metrics).
  std::vector<int> OutstandingSnapshot() const;

 protected:
  struct ReplicaState {
    Replica* replica = nullptr;
    int outstanding = 0;        // LB-tracked in-flight (pushed, not completed).
    int probed_pending = 0;     // Pending count from the last probe.
    int probed_free_capacity = 1;  // Admission headroom from the last probe.
    int pushes_since_probe = 0;
    bool probed_once = false;
    bool healthy = true;
  };

  struct Queued {
    Request req;
    RequestCallbacks callbacks;
    SimTime lb_arrival = 0;
  };

  // Chooses a replica for the queue head, or kInvalidReplica to keep it
  // queued. Implementations must only return available replicas (per
  // IsAvailable) and may update their own routing state.
  virtual ReplicaId SelectReplica(const Queued& queued) = 0;

  // Pushing-discipline availability test (§3.3).
  bool IsAvailable(const ReplicaState& state) const;

  std::vector<ReplicaId> AvailableReplicas() const;

  const std::map<ReplicaId, ReplicaState>& replica_states() const {
    return replica_states_;
  }
  ReplicaState* FindReplica(ReplicaId id);

  Simulator* sim() const { return sim_; }
  Network* net() const { return net_; }

  // Dispatches queue-head requests while a policy target exists.
  void TryDispatch();

 private:
  void DispatchTo(Queued queued, ReplicaId replica_id);
  void ProbeAll();

  Simulator* sim_;
  Network* net_;
  LbId id_;
  RegionId region_;
  LbConfig config_;

  std::map<ReplicaId, ReplicaState> replica_states_;
  std::deque<Queued> queue_;
  std::unique_ptr<PeriodicTask> probe_task_;
  Stats stats_;
};

}  // namespace skywalker

#endif  // SKYWALKER_LB_LOAD_BALANCER_H_
