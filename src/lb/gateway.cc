#include "src/lb/gateway.h"

#include <limits>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

class GatewayLb::Endpoint : public Frontend {
 public:
  Endpoint(GatewayLb* owner, RegionId region) : owner_(owner), region_(region) {}

  RegionId region() const override { return region_; }

  void HandleRequest(Request req, RequestCallbacks callbacks) override {
    owner_->Route(region_, std::move(req), std::move(callbacks));
  }

 private:
  GatewayLb* owner_;
  RegionId region_;
};

GatewayLb::GatewayLb(Simulator* sim, Network* net, const GatewayConfig& config)
    : sim_(sim), net_(net), config_(config) {}

GatewayLb::~GatewayLb() = default;

int GatewayLb::Cluster::TotalOutstanding() const {
  int total = 0;
  for (const ReplicaSlot& slot : replicas) {
    total += slot.outstanding;
  }
  return total;
}

void GatewayLb::AttachReplica(Replica* replica) {
  Cluster& cluster = clusters_[replica->region()];
  cluster.region = replica->region();
  cluster.replicas.push_back(ReplicaSlot{replica, 0});
}

Frontend* GatewayLb::EndpointFor(RegionId region) {
  auto it = endpoints_.find(region);
  if (it == endpoints_.end()) {
    it = endpoints_
             .emplace(region, std::make_unique<Endpoint>(this, region))
             .first;
  }
  return it->second.get();
}

GatewayLb::Cluster* GatewayLb::ClusterFor(RegionId region) {
  auto it = clusters_.find(region);
  return it == clusters_.end() ? nullptr : &it->second;
}

GatewayLb::Cluster* GatewayLb::PickCluster(RegionId client_cluster_region) {
  auto under_threshold = [this](const Cluster& c) {
    if (c.replicas.empty()) {
      return false;
    }
    double mean = static_cast<double>(c.TotalOutstanding()) /
                  static_cast<double>(c.replicas.size());
    return mean < config_.spill_outstanding_per_replica;
  };

  Cluster* local = ClusterFor(client_cluster_region);
  if (local != nullptr && under_threshold(*local)) {
    return local;
  }
  // Nearest cluster (by one-way latency) with headroom.
  Cluster* best = nullptr;
  SimDuration best_latency = std::numeric_limits<SimDuration>::max();
  for (auto& [region, cluster] : clusters_) {
    if (!under_threshold(cluster)) {
      continue;
    }
    SimDuration l = net_->Latency(client_cluster_region, region);
    if (l < best_latency) {
      best = &cluster;
      best_latency = l;
    }
  }
  if (best != nullptr) {
    return best;
  }
  // Everyone saturated: globally least utilized non-empty cluster.
  double best_mean = std::numeric_limits<double>::max();
  for (auto& [region, cluster] : clusters_) {
    if (cluster.replicas.empty()) {
      continue;
    }
    double mean = static_cast<double>(cluster.TotalOutstanding()) /
                  static_cast<double>(cluster.replicas.size());
    if (mean < best_mean) {
      best = &cluster;
      best_mean = mean;
    }
  }
  return best;
}

GatewayLb::ReplicaSlot* GatewayLb::PickReplica(Cluster* cluster) {
  ReplicaSlot* best = nullptr;
  int best_outstanding = std::numeric_limits<int>::max();
  for (ReplicaSlot& slot : cluster->replicas) {
    if (slot.outstanding < best_outstanding) {
      best = &slot;
      best_outstanding = slot.outstanding;
    }
  }
  return best;
}

void GatewayLb::Route(RegionId endpoint_region, Request req,
                      RequestCallbacks callbacks) {
  ++stats_.received;
  Cluster* cluster = PickCluster(endpoint_region);
  SKYWALKER_CHECK(cluster != nullptr) << "gateway has no clusters";
  ReplicaSlot* slot = PickReplica(cluster);
  SKYWALKER_CHECK(slot != nullptr);
  if (cluster->region != endpoint_region) {
    ++stats_.spilled;
  }
  Replica* replica = slot->replica;
  ++slot->outstanding;

  const RegionId client_region = req.client_region;
  const RegionId replica_region = replica->region();
  const SimDuration response_latency =
      net_->Latency(replica_region, endpoint_region) +
      net_->Latency(endpoint_region, client_region);

  auto outcome = std::make_shared<RequestOutcome>();
  outcome->id = req.id;
  outcome->user_id = req.user_id;
  outcome->client_region = client_region;
  outcome->served_region = replica_region;
  outcome->replica = replica->id();
  outcome->submit_time = req.submit_time;
  outcome->prompt_tokens = req.prompt_tokens();
  outcome->output_tokens = req.output_tokens();
  outcome->hops = cluster->region == endpoint_region ? 1 : 2;
  outcome->forwarded = cluster->region != endpoint_region;

  auto shared_callbacks =
      std::make_shared<RequestCallbacks>(std::move(callbacks));

  Replica::Handlers handlers;
  handlers.on_first_token = [this, outcome, shared_callbacks,
                             response_latency](const Request& /*r*/,
                                               int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->first_token_time = sim_->now() + response_latency;
    if (shared_callbacks->on_first_token) {
      sim_->ScheduleAfter(response_latency, [shared_callbacks, outcome] {
        shared_callbacks->on_first_token(*outcome);
      });
    }
  };
  ReplicaId rid = replica->id();
  RegionId cluster_region = cluster->region;
  handlers.on_complete = [this, outcome, shared_callbacks, response_latency,
                          rid, cluster_region](const Request& /*r*/,
                                               int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->completion_time = sim_->now() + response_latency;
    if (shared_callbacks->on_complete) {
      sim_->ScheduleAfter(response_latency, [shared_callbacks, outcome] {
        shared_callbacks->on_complete(*outcome);
      });
    }
    ++stats_.completed;
    Cluster* c = ClusterFor(cluster_region);
    if (c != nullptr) {
      for (ReplicaSlot& slot_ref : c->replicas) {
        if (slot_ref.replica->id() == rid && slot_ref.outstanding > 0) {
          --slot_ref.outstanding;
          break;
        }
      }
    }
  };

  net_->Send(endpoint_region, replica_region,
             [replica, req = std::move(req),
              handlers = std::move(handlers)]() mutable {
               replica->Enqueue(std::move(req), std::move(handlers));
             });
}

}  // namespace skywalker
