// Baseline routing policies from the paper's evaluation (§5.1):
//   RR  — round robin
//   LL  — least load (fewest LB-tracked outstanding requests)
//   CH  — ring-hash consistent hashing on the request's routing key
//   SGL — SGLang-Router-style cache-aware routing: route to the replica
//         with the longest approximate prefix match when it covers more
//         than a threshold fraction of the prompt, otherwise to the least
//         loaded replica.
//
// All four run as a single (typically centralized) LoadBalancer. Their push
// mode comes from LbConfig — the paper's baselines use blind pushing; the
// Fig. 9 microbenchmark re-runs SGL with SP-O and SP-P.

#ifndef SKYWALKER_LB_POLICIES_H_
#define SKYWALKER_LB_POLICIES_H_

#include <cstdint>

#include "src/cache/hash_ring.h"
#include "src/cache/routing_trie.h"
#include "src/lb/load_balancer.h"

namespace skywalker {

class RoundRobinLb : public LoadBalancer {
 public:
  using LoadBalancer::LoadBalancer;

 protected:
  ReplicaId SelectReplica(const Queued& queued) override;

 private:
  size_t next_ = 0;
};

class LeastLoadLb : public LoadBalancer {
 public:
  using LoadBalancer::LoadBalancer;

 protected:
  ReplicaId SelectReplica(const Queued& queued) override;
};

class ConsistentHashLb : public LoadBalancer {
 public:
  ConsistentHashLb(Simulator* sim, Network* net, LbId id, RegionId region,
                   const LbConfig& config, int vnodes_per_replica = 128);

  void AttachReplicaToRing(Replica* replica);

 protected:
  ReplicaId SelectReplica(const Queued& queued) override;

 private:
  HashRing ring_;
};

class SglRouterLb : public LoadBalancer {
 public:
  SglRouterLb(Simulator* sim, Network* net, LbId id, RegionId region,
              const LbConfig& config);

 protected:
  ReplicaId SelectReplica(const Queued& queued) override;

 private:
  RoutingTrie trie_;
  // SGLang's cache-aware fallback balances by approximate per-worker tree
  // size (cache footprint), not by in-flight load — a deliberate fidelity
  // choice that reproduces the blind-pushing imbalance of §3.3. Counts are
  // tokens inserted per target, decayed on eviction pressure.
  std::map<TargetId, int64_t> approx_tree_tokens_;
};

}  // namespace skywalker

#endif  // SKYWALKER_LB_POLICIES_H_
