// Baseline routing policies from the paper's evaluation (§5.1), as thin
// ReplicaSelectors over the shared dispatch engine (src/routing/):
//   RR  — round robin
//   LL  — least load (fewest LB-tracked outstanding requests)
//   CH  — ring-hash consistent hashing on the request's routing key
//   SGL — SGLang-Router-style cache-aware routing: route to the replica
//         with the longest approximate prefix match when it covers more
//         than a threshold fraction of the prompt, otherwise to the worker
//         with the most free cache space.
//
// All four run as a single (typically centralized) LoadBalancer. Their push
// mode comes from LbConfig — the paper's baselines use blind pushing; the
// Fig. 9 microbenchmark re-runs SGL with SP-O and SP-P.
//
// The *Lb convenience classes bind each selector to a LoadBalancer with the
// historical constructor signature, so call sites read `RoundRobinLb lb(...)`.

#ifndef SKYWALKER_LB_POLICIES_H_
#define SKYWALKER_LB_POLICIES_H_

#include <cstdint>
#include <map>
#include <memory>

#include "src/cache/hash_ring.h"
#include "src/cache/routing_trie.h"
#include "src/lb/load_balancer.h"

namespace skywalker {

class RoundRobinSelector : public ReplicaSelector {
 public:
  ReplicaId SelectReplica(const Queued& queued,
                          const CandidateView& candidates) override;

 private:
  size_t next_ = 0;
};

class LeastLoadSelector : public ReplicaSelector {
 public:
  ReplicaId SelectReplica(const Queued& queued,
                          const CandidateView& candidates) override;
};

class ConsistentHashSelector : public ReplicaSelector {
 public:
  explicit ConsistentHashSelector(int vnodes_per_replica = 128);

  ReplicaId SelectReplica(const Queued& queued,
                          const CandidateView& candidates) override;
  void OnReplicaAttached(Replica* replica) override;
  void OnReplicaDetached(ReplicaId replica_id) override;

 private:
  HashRing ring_;
};

class SglRouterSelector : public ReplicaSelector {
 public:
  explicit SglRouterSelector(const LbConfig& config);

  ReplicaId SelectReplica(const Queued& queued,
                          const CandidateView& candidates) override;
  void OnReplicaDetached(ReplicaId replica_id) override;

 private:
  const double match_threshold_;
  const int64_t tree_decay_tokens_;
  RoutingTrie trie_;
  // SGLang's cache-aware fallback balances by approximate per-worker tree
  // size (cache footprint), not by in-flight load — a deliberate fidelity
  // choice that reproduces the blind-pushing imbalance of §3.3. Counts are
  // tokens inserted per target, decayed on eviction pressure.
  std::map<TargetId, int64_t> approx_tree_tokens_;
};

// --- Frontend convenience wrappers --------------------------------------

class RoundRobinLb : public LoadBalancer {
 public:
  RoundRobinLb(Simulator* sim, Network* net, LbId id, RegionId region,
               const LbConfig& config)
      : LoadBalancer(sim, net, id, region, config,
                     std::make_unique<RoundRobinSelector>()) {}
};

class LeastLoadLb : public LoadBalancer {
 public:
  LeastLoadLb(Simulator* sim, Network* net, LbId id, RegionId region,
              const LbConfig& config)
      : LoadBalancer(sim, net, id, region, config,
                     std::make_unique<LeastLoadSelector>()) {}
};

class ConsistentHashLb : public LoadBalancer {
 public:
  ConsistentHashLb(Simulator* sim, Network* net, LbId id, RegionId region,
                   const LbConfig& config, int vnodes_per_replica = 128)
      : LoadBalancer(sim, net, id, region, config,
                     std::make_unique<ConsistentHashSelector>(
                         vnodes_per_replica)) {}

  // Historical alias: the selector now maintains its ring from attach
  // notifications, so this is plain AttachReplica.
  void AttachReplicaToRing(Replica* replica) { AttachReplica(replica); }
};

class SglRouterLb : public LoadBalancer {
 public:
  SglRouterLb(Simulator* sim, Network* net, LbId id, RegionId region,
              const LbConfig& config)
      : LoadBalancer(sim, net, id, region, config,
                     std::make_unique<SglRouterSelector>(config)) {}
};

}  // namespace skywalker

#endif  // SKYWALKER_LB_POLICIES_H_
