#include "src/lb/load_balancer.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace skywalker {

LoadBalancer::LoadBalancer(Simulator* sim, Network* net, LbId id,
                           RegionId region, const LbConfig& config)
    : sim_(sim), net_(net), id_(id), region_(region), config_(config) {
  probe_task_ = std::make_unique<PeriodicTask>(sim_, config_.probe_interval,
                                               [this] { ProbeAll(); });
}

LoadBalancer::~LoadBalancer() = default;

void LoadBalancer::AttachReplica(Replica* replica) {
  ReplicaState state;
  state.replica = replica;
  replica_states_.emplace(replica->id(), state);
}

void LoadBalancer::Start() {
  if (config_.push_mode != PushMode::kBlind) {
    probe_task_->StartWithDelay(0);
  }
}

void LoadBalancer::Stop() { probe_task_->Stop(); }

bool LoadBalancer::IsAvailable(const ReplicaState& state) const {
  if (!state.healthy) {
    return false;
  }
  switch (config_.push_mode) {
    case PushMode::kBlind:
      return true;
    case PushMode::kSelectiveOutstanding:
      return state.outstanding < config_.max_outstanding_per_replica;
    case PushMode::kSelectivePending:
      // Fresh LBs have not probed yet; treat as available so cold starts
      // make progress (the first probe lands within one interval).
      if (!state.probed_once) {
        return state.pushes_since_probe < config_.push_slack;
      }
      // Optimistic pushes between probes are bounded by the engine-reported
      // admission headroom (capped by push_slack as a safety bound).
      return state.probed_pending == 0 &&
             state.pushes_since_probe < config_.push_slack;
  }
  return false;
}

std::vector<ReplicaId> LoadBalancer::AvailableReplicas() const {
  std::vector<ReplicaId> out;
  for (const auto& [rid, state] : replica_states_) {
    if (IsAvailable(state)) {
      out.push_back(rid);
    }
  }
  return out;
}

LoadBalancer::ReplicaState* LoadBalancer::FindReplica(ReplicaId rid) {
  auto it = replica_states_.find(rid);
  return it == replica_states_.end() ? nullptr : &it->second;
}

std::vector<int> LoadBalancer::OutstandingSnapshot() const {
  std::vector<int> out;
  out.reserve(replica_states_.size());
  for (const auto& [rid, state] : replica_states_) {
    out.push_back(state.outstanding);
  }
  return out;
}

void LoadBalancer::HandleRequest(Request req, RequestCallbacks callbacks) {
  ++stats_.received;
  Queued queued;
  queued.req = std::move(req);
  queued.callbacks = std::move(callbacks);
  queued.lb_arrival = sim_->now();
  queue_.push_back(std::move(queued));
  stats_.max_queue_len =
      std::max<int64_t>(stats_.max_queue_len,
                        static_cast<int64_t>(queue_.size()));
  TryDispatch();
}

void LoadBalancer::TryDispatch() {
  while (!queue_.empty()) {
    ReplicaId target = SelectReplica(queue_.front());
    if (target == kInvalidReplica) {
      return;  // FCFS head-of-line: wait for capacity.
    }
    Queued queued = std::move(queue_.front());
    queue_.pop_front();
    DispatchTo(std::move(queued), target);
  }
}

void LoadBalancer::DispatchTo(Queued queued, ReplicaId replica_id) {
  ReplicaState* state = FindReplica(replica_id);
  SKYWALKER_CHECK(state != nullptr) << "dispatch to unknown replica";
  Replica* replica = state->replica;
  ++state->outstanding;
  ++state->pushes_since_probe;
  ++stats_.dispatched;

  const RegionId client_region = queued.req.client_region;
  const RegionId replica_region = replica->region();
  // Streamed responses travel replica -> LB -> client.
  const SimDuration response_latency =
      net_->Latency(replica_region, region_) +
      net_->Latency(region_, client_region);

  auto outcome = std::make_shared<RequestOutcome>();
  outcome->id = queued.req.id;
  outcome->user_id = queued.req.user_id;
  outcome->client_region = client_region;
  outcome->served_region = replica_region;
  outcome->replica = replica_id;
  outcome->submit_time = queued.req.submit_time;
  outcome->prompt_tokens = queued.req.prompt_tokens();
  outcome->output_tokens = queued.req.output_tokens();
  outcome->hops = 1;
  outcome->forwarded = false;

  auto callbacks =
      std::make_shared<RequestCallbacks>(std::move(queued.callbacks));

  Replica::Handlers handlers;
  handlers.on_first_token = [this, outcome, callbacks, response_latency](
                                const Request& req, int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->first_token_time = sim_->now() + response_latency;
    if (callbacks->on_first_token) {
      sim_->ScheduleAfter(response_latency, [callbacks, outcome] {
        callbacks->on_first_token(*outcome);
      });
    }
  };
  handlers.on_complete = [this, outcome, callbacks, response_latency,
                          replica_id](const Request& req, int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->completion_time = sim_->now() + response_latency;
    if (callbacks->on_complete) {
      sim_->ScheduleAfter(response_latency, [callbacks, outcome] {
        callbacks->on_complete(*outcome);
      });
    }
    // LB-side accounting flows back over the replica->LB hop only.
    net_->Send(outcome->served_region, region_, [this, replica_id] {
      ReplicaState* rs = FindReplica(replica_id);
      if (rs != nullptr && rs->outstanding > 0) {
        --rs->outstanding;
      }
      ++stats_.completed;
      TryDispatch();
    });
  };

  net_->Send(region_, replica_region,
             [replica, req = std::move(queued.req),
              handlers = std::move(handlers)]() mutable {
               replica->Enqueue(std::move(req), std::move(handlers));
             });
}

void LoadBalancer::ProbeAll() {
  for (auto& [rid, state] : replica_states_) {
    if (!state.healthy) {
      continue;
    }
    ++stats_.probes_sent;
    Replica* replica = state.replica;
    RegionId replica_region = replica->region();
    ReplicaId replica_id = rid;
    // Probe round trip: LB -> replica (read pending) -> LB.
    net_->Send(region_, replica_region, [this, replica, replica_id,
                                         replica_region] {
      int pending = replica->pending_count();
      int free_capacity = replica->EstimateFreeCapacity();
      net_->Send(replica_region, region_,
                 [this, replica_id, pending, free_capacity] {
                   ReplicaState* rs = FindReplica(replica_id);
                   if (rs == nullptr) {
                     return;
                   }
                   rs->probed_pending = pending;
                   rs->probed_free_capacity = free_capacity;
                   rs->pushes_since_probe = 0;
                   rs->probed_once = true;
                   TryDispatch();
                 });
    });
  }
}

}  // namespace skywalker
