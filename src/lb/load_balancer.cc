#include "src/lb/load_balancer.h"

#include <utility>

namespace skywalker {

LoadBalancer::LoadBalancer(Simulator* sim, Network* net, LbId id,
                           RegionId region, const LbConfig& config,
                           std::unique_ptr<ReplicaSelector> selector)
    : id_(id),
      region_(region),
      config_(config),
      selector_(std::move(selector)),
      engine_(sim, net, region, config.engine, selector_.get()) {}

LoadBalancer::~LoadBalancer() = default;

void LoadBalancer::AttachReplica(Replica* replica) {
  engine_.AttachReplica(replica);
}

void LoadBalancer::Start() { engine_.Start(); }

void LoadBalancer::Stop() { engine_.Stop(); }

void LoadBalancer::HandleRequest(Request req, RequestCallbacks callbacks) {
  Queued queued;
  queued.req = std::move(req);
  queued.callbacks = std::move(callbacks);
  engine_.Enqueue(std::move(queued));
}

}  // namespace skywalker
