#include "src/core/controller.h"

#include <limits>

#include "src/common/logging.h"

namespace skywalker {

Controller::Controller(Simulator* sim, Network* net,
                       const ControllerConfig& config)
    : sim_(sim), net_(net), config_(config) {
  probe_task_ = std::make_unique<PeriodicTask>(
      sim_, config_.health_probe_interval, [this] { ProbeHealth(); });
}

Controller::~Controller() = default;

void Controller::ManageLb(SkyWalkerLb* lb) {
  ManagedLb entry;
  entry.lb = lb;
  lbs_.emplace(lb->id(), entry);
}

void Controller::Start() {
  // Keyed-ordering scope for the probe loop (no-op in plain mode).
  sim_->SetCurrentRegion(config_.home_region);
  probe_task_->StartWithDelay(0);
}

void Controller::Stop() { probe_task_->Stop(); }

void Controller::AddReplica(SkyWalkerLb* lb, Replica* replica) {
  lb->AttachReplica(replica);
}

void Controller::RemoveReplica(ReplicaId replica_id) {
  for (auto& [lbid, entry] : lbs_) {
    entry.lb->DetachReplica(replica_id);
  }
}

bool Controller::IsFailedOver(LbId lb_id) const {
  auto it = lbs_.find(lb_id);
  return it != lbs_.end() && it->second.failover_active;
}

SkyWalkerLb* Controller::NearestHealthyLb(RegionId region, LbId exclude) {
  SkyWalkerLb* best = nullptr;
  SimDuration best_latency = std::numeric_limits<SimDuration>::max();
  for (auto& [lbid, entry] : lbs_) {
    if (lbid == exclude || !entry.lb->Serving()) {
      continue;
    }
    SimDuration l = net_->Latency(region, entry.lb->region());
    if (l < best_latency) {
      best = entry.lb;
      best_latency = l;
    }
  }
  return best;
}

void Controller::ProbeHealth() {
  for (auto& [lbid, entry] : lbs_) {
    // Failover reacts to hard LB failure only; degraded/ejected replica
    // states below a live LB are the dispatch engine's business.
    if (entry.lb->Status() == HealthStatus::kFailed &&
        !entry.failover_active) {
      HandleFailure(entry);
    }
  }
}

void Controller::HandleFailure(ManagedLb& entry) {
  entry.failover_active = true;
  ++stats_.failovers_handled;
  SkyWalkerLb* failed = entry.lb;
  SkyWalkerLb* backup = NearestHealthyLb(failed->region(), failed->id());
  if (backup == nullptr) {
    SKYWALKER_LOG(Error) << "no healthy LB to absorb replicas of LB "
                         << failed->id();
    return;
  }
  // Reassign the failed LB's replicas to the nearest healthy LB, which
  // temporarily treats them as local replicas (§4.2).
  std::vector<Replica*> replicas = failed->ManagedReplicas();
  for (Replica* replica : replicas) {
    failed->DetachReplica(replica->id());
    backup->AttachReplica(replica);
    entry.displaced.emplace_back(replica, backup);
    ++stats_.replicas_reassigned;
  }
  SKYWALKER_LOG(Info) << "controller moved " << replicas.size()
                      << " replicas from failed LB " << failed->id()
                      << " to LB " << backup->id();
  if (config_.auto_recovery_delay > 0) {
    LbId failed_id = failed->id();
    sim_->ScheduleAfter(config_.auto_recovery_delay,
                        [this, failed_id] { RecoverLb(failed_id); });
  }
}

bool Controller::RecoverLb(LbId lb_id) {
  auto it = lbs_.find(lb_id);
  if (it == lbs_.end() || !it->second.failover_active) {
    return false;
  }
  ManagedLb& entry = it->second;
  entry.lb->Recover();
  // Transfer displaced replicas back to their home LB.
  for (auto& [replica, host] : entry.displaced) {
    host->DetachReplica(replica->id());
    entry.lb->AttachReplica(replica);
  }
  entry.displaced.clear();
  entry.failover_active = false;
  ++stats_.recoveries_completed;
  SKYWALKER_LOG(Info) << "controller recovered LB " << lb_id;
  return true;
}

}  // namespace skywalker
