// DNS layer (paper §4.1): all regional load balancers share one domain name;
// resolution maps a client to the nearest *healthy* frontend by topology
// latency. Failed LBs disappear from resolution, so clients transparently
// fail over to the next nearest region.

#ifndef SKYWALKER_CORE_DNS_H_
#define SKYWALKER_CORE_DNS_H_

#include <vector>

#include "src/net/topology.h"
#include "src/workload/request.h"

namespace skywalker {

class NearestFrontendResolver : public FrontendResolver {
 public:
  explicit NearestFrontendResolver(const Topology* topology)
      : topology_(topology) {}

  void AddFrontend(Frontend* frontend) { frontends_.push_back(frontend); }

  // Nearest healthy frontend; nullptr when none is healthy.
  Frontend* Resolve(RegionId client_region) override;

  size_t num_frontends() const { return frontends_.size(); }

 private:
  const Topology* topology_;
  std::vector<Frontend*> frontends_;
};

}  // namespace skywalker

#endif  // SKYWALKER_CORE_DNS_H_
