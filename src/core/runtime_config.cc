#include "src/core/runtime_config.h"

#include <utility>

#include "src/common/logging.h"

namespace skywalker {

ConfigSubscription::~ConfigSubscription() { Cancel(); }

ConfigSubscription& ConfigSubscription::operator=(
    ConfigSubscription&& other) noexcept {
  if (this != &other) {
    Cancel();
    subscriber_ = std::move(other.subscriber_);
  }
  return *this;
}

void ConfigSubscription::Cancel() {
  if (subscriber_ != nullptr) {
    subscriber_->alive = false;
    subscriber_.reset();
  }
}

ConfigStore::ConfigStore(RuntimeConfig initial) {
  initial.version = 0;
  current_ = std::make_shared<const RuntimeConfig>(std::move(initial));
}

ConfigSubscription ConfigStore::Subscribe(
    Simulator* sim, RegionId region,
    std::function<void(const RuntimeConfig&)> callback) {
  // Setup-order contract: all subscriptions precede the first publish, so
  // the synchronous initial delivery below is unambiguously the initial
  // snapshot and every subscriber sees every published update.
  SKYWALKER_CHECK(publishes_ == 0) << "Subscribe after PublishAt";
  auto subscriber = std::make_shared<ConfigSubscription::Subscriber>();
  subscriber->sim = sim;
  subscriber->region = region;
  subscriber->callback = std::move(callback);
  subscriber->alive = true;
  subscribers_.push_back(subscriber);
  if (subscriber->callback) {
    subscriber->callback(*current_);
  }
  return ConfigSubscription(std::move(subscriber));
}

void ConfigStore::PublishAt(SimTime at, RuntimeConfig next) {
  next.version = next_version_++;
  auto snapshot = std::make_shared<const RuntimeConfig>(std::move(next));
  current_ = snapshot;
  ++publishes_;
  // One delivery event per subscriber, scheduled on the subscriber's own
  // shard simulator with the subscriber's region as keyed origin (see the
  // determinism contract in the header). The alive flag is checked at fire
  // time so a cancelled subscription never hears a pending update.
  for (const auto& subscriber : subscribers_) {
    if (!subscriber->alive) {
      continue;
    }
    Simulator* sim = subscriber->sim;
    const EventRegion previous = sim->current_region();
    sim->SetCurrentRegion(static_cast<EventRegion>(subscriber->region));
    sim->ScheduleAt(at, [subscriber, snapshot] {
      if (subscriber->alive && subscriber->callback) {
        subscriber->callback(*snapshot);
      }
    });
    sim->SetCurrentRegion(previous);
  }
}

}  // namespace skywalker
