// Runtime configuration snapshots (DESIGN.md §10, ISSUE 7).
//
// Every knob a balancer can change mid-run lives in one immutable, versioned
// RuntimeConfig value: the engine half (DispatchConfig — push mode, probe
// interval, slack, gates, outlier detection) and the cross-region routing
// half (RoutingRuntimeConfig — policy, thresholds, forwarding). A
// ConfigStore holds the current snapshot and fans updates out to
// ConfigSubscription watchers, xDS-style (cf. envoy's *subscription*
// idiom): subscribers get the current snapshot synchronously at subscribe
// time and every later snapshot as a scheduled event.
//
// Determinism contract: PublishAt is *setup-time* API. It schedules one
// delivery event per subscriber on that subscriber's own simulator with the
// subscriber's region as the event's keyed origin, so under region-sharded
// execution every LB observes the swap at the same simulated instant, in a
// position of its event order that is a pure function of its own region's
// history — bit-identical across shard and thread counts. Calling PublishAt
// from inside a running event handler of a *different* shard would violate
// that contract (it would schedule into a foreign shard mid-window); the
// harness therefore publishes from setup code only.
//
// Knobs that are structurally static — trie/ring capacities (allocated
// once), the forward_allowed predicate (not a value), replica hardware
// parameters — stay on the owning stack's construction config.

#ifndef SKYWALKER_CORE_RUNTIME_CONFIG_H_
#define SKYWALKER_CORE_RUNTIME_CONFIG_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/sim_time.h"
#include "src/routing/dispatch_engine.h"
#include "src/sim/simulator.h"

namespace skywalker {

enum class RoutingPolicyKind {
  kConsistentHash,  // SkyWalker-CH
  kPrefixTree,      // SkyWalker
};

// The cross-region routing knobs of SkyWalkerLb that may reswap mid-run.
struct RoutingRuntimeConfig {
  RoutingPolicyKind policy = RoutingPolicyKind::kPrefixTree;

  // τ: small queue buffer for newly arriving requests (Listing 1, line 12).
  size_t queue_tau = 4;

  // A region advertises itself as overloaded (and refuses inbound offloads)
  // when the EWMA of its available-replica fraction falls below this.
  // Point-in-time probe snapshots flap at saturation; the EWMA separates
  // "briefly busy" from "no real headroom".
  double overload_avail_ewma_threshold = 0.25;

  // Flap damping: forward only after local replicas have been continuously
  // unavailable for this long. Saturated replicas flap between full and
  // momentarily-free at probe granularity; offloading on every flap migrates
  // conversations back and forth, and each migration re-prefills the whole
  // context in the other region. Persistent overload (the case offloading
  // is for) easily exceeds this window.
  SimDuration forward_patience = Milliseconds(250);

  // kPrefixTree: when the regional snapshot shows at least this fraction of
  // the prompt is cached at an available peer, the request stays with that
  // peer even if local replicas are free. Without stickiness an offloaded
  // conversation migrates home on the next availability flap and re-prefills
  // its entire context in both regions, turn after turn.
  double remote_affinity_threshold = 0.5;

  // kPrefixTree: below this prompt hit ratio, prefer under-utilized
  // replicas over prefix affinity (§5.1 "explores other replicas").
  double explore_threshold = 0.5;

  // Enables cross-region forwarding. Disabling yields the Region-Local
  // deployment baseline of Fig. 10.
  bool enable_forwarding = true;

  // §7 extension ("more advanced policies"): prompts shorter than this skip
  // prefix matching and go to the least-loaded available replica — short
  // prompts have little prefill to save, so balancing load is worth more
  // than cache affinity. 0 disables the heuristic.
  int64_t short_prompt_threshold = 0;
};

// One immutable knob snapshot. Copy freely; never mutate a published one.
struct RuntimeConfig {
  // Stamped by ConfigStore::PublishAt (0 = the construction-time initial).
  int64_t version = 0;
  DispatchConfig dispatch;
  RoutingRuntimeConfig routing;
};

class ConfigStore;

// RAII watcher handle: destroying it detaches the callback (updates already
// scheduled for delivery are dropped at fire time). Move-only.
class ConfigSubscription {
 public:
  ConfigSubscription() = default;
  ~ConfigSubscription();

  ConfigSubscription(ConfigSubscription&& other) noexcept = default;
  ConfigSubscription& operator=(ConfigSubscription&& other) noexcept;

  ConfigSubscription(const ConfigSubscription&) = delete;
  ConfigSubscription& operator=(const ConfigSubscription&) = delete;

  bool active() const { return subscriber_ != nullptr; }
  void Cancel();

 private:
  friend class ConfigStore;
  struct Subscriber {
    Simulator* sim = nullptr;
    RegionId region = kInvalidRegion;
    std::function<void(const RuntimeConfig&)> callback;
    bool alive = false;
  };
  explicit ConfigSubscription(std::shared_ptr<Subscriber> subscriber)
      : subscriber_(std::move(subscriber)) {}

  std::shared_ptr<Subscriber> subscriber_;
};

// Holds the current RuntimeConfig snapshot and fans published updates out to
// subscribers as keyed, per-subscriber-shard events. One per deployment.
class ConfigStore {
 public:
  explicit ConfigStore(RuntimeConfig initial);

  ConfigStore(const ConfigStore&) = delete;
  ConfigStore& operator=(const ConfigStore&) = delete;

  const RuntimeConfig& current() const { return *current_; }
  int64_t version() const { return current_->version; }
  int64_t publishes() const { return publishes_; }

  // Registers a watcher owned by `region`, whose events run on `sim` (that
  // region's shard simulator). The callback fires synchronously once with
  // the current snapshot, then once per PublishAt at the published time.
  ConfigSubscription Subscribe(
      Simulator* sim, RegionId region,
      std::function<void(const RuntimeConfig&)> callback);

  // Schedules snapshot `next` to take effect at simulated time `at`
  // (stamping its version). Setup-time API — see the determinism contract
  // in the file header. Publishes must be issued in nondecreasing `at`
  // order so `current()` tracks the latest scheduled snapshot.
  void PublishAt(SimTime at, RuntimeConfig next);

 private:
  std::shared_ptr<const RuntimeConfig> current_;
  int64_t next_version_ = 1;
  int64_t publishes_ = 0;
  std::vector<std::shared_ptr<ConfigSubscription::Subscriber>> subscribers_;
};

}  // namespace skywalker

#endif  // SKYWALKER_CORE_RUNTIME_CONFIG_H_
