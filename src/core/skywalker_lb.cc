#include "src/core/skywalker_lb.h"

#include <limits>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace skywalker {

SkyWalkerLb::SkyWalkerLb(Simulator* sim, Network* net, LbId id,
                         RegionId region, const SkyWalkerConfig& config)
    : sim_(sim),
      net_(net),
      id_(id),
      region_(region),
      config_(config),
      replica_ring_(config.ring_vnodes),
      lb_ring_(config.ring_vnodes),
      replica_trie_(config.replica_trie_capacity),
      snapshot_trie_(config.snapshot_trie_capacity),
      engine_(sim, net, region, config.engine, /*selector=*/this,
              EngineCallbacks()) {}

SkyWalkerLb::~SkyWalkerLb() = default;

HostCallbacks SkyWalkerLb::EngineCallbacks() {
  // The cross-region half of the balancer, bound hook by hook. The lambdas
  // capture `this` only; none runs before construction completes.
  HostCallbacks callbacks;
  callbacks.should_dispatch = [this] { return Serving(); };
  callbacks.on_queue_head = [this](Queued& head) { return OnQueueHead(head); };
  callbacks.on_unplaced = [this](Queued& head) { return OnUnplaced(head); };
  callbacks.on_local_dispatch = [this](const Queued& queued,
                                       ReplicaId replica_id) {
    OnLocalDispatch(queued, replica_id);
  };
  callbacks.on_probe_tick = [this] { OnProbeTick(); };
  callbacks.on_after_replica_probes = [this] { OnAfterReplicaProbes(); };
  callbacks.on_replica_probe_result = [this] { OnReplicaProbeResult(); };
  return callbacks;
}

void SkyWalkerLb::AttachReplica(Replica* replica) {
  engine_.AttachReplica(replica);
}

void SkyWalkerLb::OnReplicaAttached(Replica* replica) {
  replica_ring_.AddTarget(replica->id());
}

void SkyWalkerLb::DetachReplica(ReplicaId replica_id) {
  engine_.DetachReplica(replica_id);
}

void SkyWalkerLb::OnReplicaDetached(ReplicaId replica_id) {
  replica_ring_.RemoveTarget(replica_id);
  replica_trie_.RemoveTarget(replica_id);
}

void SkyWalkerLb::AddPeer(SkyWalkerLb* peer) {
  if (peer == this) {
    return;
  }
  PeerState state;
  state.peer = peer;
  peers_.emplace(peer->id(), state);
  lb_ring_.AddTarget(peer->id());
}

void SkyWalkerLb::RemovePeer(LbId peer_id) {
  peers_.erase(peer_id);
  lb_ring_.RemoveTarget(peer_id);
  snapshot_trie_.RemoveTarget(peer_id);
}

std::vector<Replica*> SkyWalkerLb::ManagedReplicas() const {
  std::vector<Replica*> out;
  out.reserve(engine_.num_replicas());
  for (const ReplicaState& state : engine_.replicas()) {
    out.push_back(state.replica);
  }
  return out;
}

void SkyWalkerLb::Start() {
  // Keyed-ordering scope: events armed here (the probe loop) originate from
  // this LB's region. No-op in plain mode.
  sim_->SetCurrentRegion(region_);
  engine_.Start();
}

void SkyWalkerLb::Stop() { engine_.Stop(); }

void SkyWalkerLb::ApplyRuntimeConfig(const RuntimeConfig& config) {
  config_.engine = config.dispatch;
  config_.routing = config.routing;
  engine_.ApplyConfig(config.dispatch);
  config_version_ = config.version;
  if (config.version > 0) {
    ++config_swaps_;  // The version-0 initial snapshot is not a swap.
  }
}

void SkyWalkerLb::SubscribeTo(ConfigStore* store) {
  config_subscription_ = store->Subscribe(
      sim_, region_,
      [this](const RuntimeConfig& config) { ApplyRuntimeConfig(config); });
}

bool SkyWalkerLb::PeerAvailable(const PeerState& state) const {
  if (!state.peer->Serving()) {
    return false;
  }
  if (!state.probed_once) {
    return false;  // Never forward before the first availability exchange.
  }
  // Reciprocal-offload suppression: a region that is itself out of local
  // capacity has no headroom to donate, whatever its instantaneous probe
  // snapshot says; forwarding there only displaces its own traffic.
  if (state.probed_overloaded) {
    return false;
  }
  // Listing 1 line 12: available iff it has >= 1 available replica and its
  // queue is within the τ buffer. Forwards since the last probe count as
  // optimistic queue growth.
  size_t effective_queue =
      state.probed_queue_size + static_cast<size_t>(state.forwards_since_probe);
  return state.probed_avail_replicas > 0 &&
         effective_queue <= config_.routing.queue_tau;
}

bool SkyWalkerLb::IsOverloaded() const {
  if (!Serving()) {
    return true;
  }
  return avail_fraction_ewma_ < config_.routing.overload_avail_ewma_threshold;
}

int SkyWalkerLb::AvailableReplicaCount() const {
  if (!Serving()) {
    return 0;
  }
  return engine_.AvailableCount();
}

SkyWalkerLb::PeerState* SkyWalkerLb::FindPeer(LbId lbid) {
  auto it = peers_.find(lbid);
  return it == peers_.end() ? nullptr : &it->second;
}

void SkyWalkerLb::HandleRequest(Request req, RequestCallbacks callbacks) {
  if (!Serving()) {
    // Connection refused; the client re-resolves DNS and retries.
    ++errors_reported_;
    if (callbacks.on_error) {
      callbacks.on_error();
    }
    return;
  }
  ++received_client_;
  Queued queued;
  queued.req = std::move(req);
  queued.callbacks = std::move(callbacks);
  engine_.Enqueue(std::move(queued));
}

void SkyWalkerLb::HandleForwarded(Request req, RequestCallbacks callbacks,
                                  RegionId origin_lb_region) {
  if (!Serving()) {
    ++errors_reported_;
    if (callbacks.on_error) {
      callbacks.on_error();
    }
    return;
  }
  ++received_forwarded_;
  Queued queued;
  queued.req = std::move(req);
  queued.callbacks = std::move(callbacks);
  queued.forwarded_in = true;
  queued.origin_lb_region = origin_lb_region;
  engine_.Enqueue(std::move(queued));
}

ReplicaId SkyWalkerLb::SelectReplica(const Queued& queued,
                                     const CandidateView& candidates) {
  auto avail = [&candidates](TargetId id) {
    return candidates.IsAvailable(id);
  };

  if (config_.routing.policy == RoutingPolicyKind::kConsistentHash) {
    uint64_t key = HashString(queued.req.routing_key);
    TargetId target = replica_ring_.LookupAvailable(key, avail);
    return target == kInvalidTarget ? kInvalidReplica : target;
  }

  // kPrefixTree (Listing 1 lines 18-21). Short prompts have little prefill
  // worth saving; balance load instead (§7 request-characteristic routing).
  if (config_.routing.short_prompt_threshold > 0 &&
      queued.req.prompt_tokens() < config_.routing.short_prompt_threshold) {
    // OnLocalDispatch records the placement in the trie as usual.
    return candidates.LeastLoadedAvailable();
  }
  RoutingTrie::Match match = replica_trie_.MatchBest(queued.req.prompt, avail);
  double ratio = queued.req.prompt.empty()
                     ? 0.0
                     : static_cast<double>(match.match_len) /
                           static_cast<double>(queued.req.prompt.size());
  if (!match.candidates.empty() && ratio >= config_.routing.explore_threshold) {
    // Longest-prefix placement; tie-break toward the least-loaded candidate
    // recorded at the deepest usable node.
    ReplicaId best = candidates.LeastLoadedAmong(match.candidates);
    if (best != kInvalidReplica) {
      return best;
    }
  }
  // Low affinity: spread load across under-utilized available replicas.
  return candidates.LeastLoadedAvailable();
}

LbId SkyWalkerLb::StickyRemotePeer(const Queued& queued) {
  auto avail = [this](TargetId id) {
    auto it = peers_.find(id);
    if (it == peers_.end() || !PeerAvailable(it->second)) {
      return false;
    }
    if (config_.forward_allowed &&
        !config_.forward_allowed(region_, it->second.peer->region())) {
      return false;
    }
    return true;
  };
  RoutingTrie::Match match = snapshot_trie_.MatchBest(queued.req.prompt, avail);
  if (match.candidates.empty() || queued.req.prompt.empty()) {
    return kInvalidLb;
  }
  double ratio = static_cast<double>(match.match_len) /
                 static_cast<double>(queued.req.prompt.size());
  return ratio >= config_.routing.remote_affinity_threshold
             ? match.candidates.front()
             : kInvalidLb;
}

LbId SkyWalkerLb::SelectPeer(const Queued& queued) {
  auto avail = [this](TargetId id) {
    auto it = peers_.find(id);
    if (it == peers_.end() || !PeerAvailable(it->second)) {
      return false;
    }
    if (config_.forward_allowed &&
        !config_.forward_allowed(region_, it->second.peer->region())) {
      return false;
    }
    return true;
  };

  if (config_.routing.policy == RoutingPolicyKind::kConsistentHash) {
    uint64_t key = HashString(queued.req.routing_key);
    TargetId target = lb_ring_.LookupAvailable(key, avail);
    return target == kInvalidTarget ? kInvalidLb : target;
  }

  // kPrefixTree: pick the available region with the highest prefix hit
  // ratio from the regional snapshot (§4.1).
  RoutingTrie::Match match = snapshot_trie_.MatchBest(queued.req.prompt, avail);
  if (!match.candidates.empty() && match.match_len > 0) {
    return match.candidates.front();
  }
  // No snapshot affinity: nearest available peer.
  LbId best = kInvalidLb;
  SimDuration best_latency = std::numeric_limits<SimDuration>::max();
  for (const auto& [lbid, state] : peers_) {
    if (!avail(lbid)) {
      continue;
    }
    SimDuration l = net_->Latency(region_, state.peer->region());
    if (l < best_latency) {
      best = lbid;
      best_latency = l;
    }
  }
  return best;
}

HeadAction SkyWalkerLb::OnQueueHead(Queued& head) {
  // Sticky remote affinity: a conversation whose KV context already lives
  // in another region keeps going there while that peer stays available
  // (otherwise every availability flap would re-prefill the full context
  // on both sides).
  if (!head.forwarded_in && config_.routing.enable_forwarding &&
      config_.routing.policy == RoutingPolicyKind::kPrefixTree) {
    LbId sticky = StickyRemotePeer(head);
    if (sticky != kInvalidLb) {
      Forward(std::move(head), sticky);
      return HeadAction::kTaken;
    }
  }
  // HANDLEREQUEST (Listing 1 line 28): local replicas take precedence.
  return HeadAction::kPlaceLocal;
}

HeadAction SkyWalkerLb::OnUnplaced(Queued& head) {
  if (head.forwarded_in || !config_.routing.enable_forwarding) {
    return HeadAction::kStall;  // Terminal here; wait for local capacity.
  }
  // Flap damping: offload only when local unavailability persists (see
  // RoutingRuntimeConfig::forward_patience).
  if (sim_->now() - last_local_avail_ < config_.routing.forward_patience) {
    return HeadAction::kStall;
  }
  LbId peer = SelectPeer(head);
  if (peer == kInvalidLb) {
    return HeadAction::kStall;  // Nobody available anywhere; stay queued.
  }
  Forward(std::move(head), peer);
  return HeadAction::kTaken;
}

void SkyWalkerLb::OnLocalDispatch(const Queued& queued, ReplicaId replica_id) {
  last_local_avail_ = sim_->now();
  if (config_.routing.policy == RoutingPolicyKind::kPrefixTree) {
    replica_trie_.Insert(queued.req.prompt, replica_id);
  }
}

void SkyWalkerLb::Forward(Queued queued, LbId peer_id) {
  PeerState* state = FindPeer(peer_id);
  SKYWALKER_CHECK(state != nullptr);
  SkyWalkerLb* peer = state->peer;
  ++state->forwards_since_probe;
  ++forwarded_out_;

  if (config_.routing.policy == RoutingPolicyKind::kPrefixTree) {
    // Regional snapshot update (§4.1): remember what this region offloaded
    // where, so future similar prompts follow their cached prefixes.
    snapshot_trie_.Insert(queued.req.prompt, peer_id);
  }

  RegionId peer_region = peer->region();
  if (Tracer* t = sim_->tracer()) {
    EmitTrace(t, sim_->now(), TraceEventType::kForward, region_,
              kInvalidReplica, static_cast<int64_t>(queued.req.id),
              peer_region);
  }
  net_->Send(region_, peer_region,
             [peer, origin = region_, req = std::move(queued.req),
              callbacks = std::move(queued.callbacks)]() mutable {
               peer->HandleForwarded(std::move(req), std::move(callbacks),
                                     origin);
             });
}

void SkyWalkerLb::OnProbeTick() {
  // Track smoothed local headroom for the overload advertisement.
  if (engine_.num_replicas() > 0) {
    double fraction = static_cast<double>(AvailableReplicaCount()) /
                      static_cast<double>(engine_.num_replicas());
    avail_fraction_ewma_ = 0.8 * avail_fraction_ewma_ + 0.2 * fraction;
  }
}

void SkyWalkerLb::OnReplicaProbeResult() {
  if (engine_.AnyAvailable()) {
    last_local_avail_ = sim_->now();
  }
}

void SkyWalkerLb::OnAfterReplicaProbes() {
  // Peer LB availability: (available replicas, queue size, overload bit).
  for (auto& [lbid, state] : peers_) {
    ++peer_probes_sent_;
    SkyWalkerLb* peer = state.peer;
    RegionId peer_region = peer->region();
    LbId peer_id = lbid;
    net_->Send(region_, peer_region, [this, peer, peer_id, peer_region] {
      int avail = peer->AvailableReplicaCount();
      size_t qsize = peer->QueueSize();
      bool overloaded = peer->IsOverloaded();
      net_->Send(peer_region, region_,
                 [this, peer_id, avail, qsize, overloaded] {
                   PeerState* ps = FindPeer(peer_id);
                   if (ps == nullptr) {
                     return;
                   }
                   ps->probed_avail_replicas = avail;
                   ps->probed_queue_size = qsize;
                   ps->probed_overloaded = overloaded;
                   ps->forwards_since_probe = 0;
                   ps->probed_once = true;
                   engine_.TryDispatch();
                 });
    });
  }
}

void SkyWalkerLb::Fail() {
  status_ = HealthStatus::kFailed;
  engine_.Stop();
  errors_reported_ += engine_.FlushQueueWithError();
}

void SkyWalkerLb::Recover() {
  status_ = HealthStatus::kHealthy;
  // Reset stale probe state; the restarted loop refreshes it.
  engine_.ResetProbeState();
  for (auto& [lbid, state] : peers_) {
    state.probed_once = false;
    state.forwards_since_probe = 0;
  }
  engine_.Start();
}

SkyWalkerLb::Stats SkyWalkerLb::stats() const {
  Stats stats;
  stats.received_client = received_client_;
  stats.received_forwarded = received_forwarded_;
  stats.dispatched_local = engine_.stats().dispatched;
  stats.forwarded_out = forwarded_out_;
  stats.probes_sent = engine_.stats().probes_sent + peer_probes_sent_;
  stats.errors_reported = errors_reported_;
  stats.max_queue_len = engine_.stats().max_queue_len;
  stats.queue_wait_sec = engine_.stats().queue_wait_sec;
  stats.request_timeouts = engine_.stats().request_timeouts;
  stats.probe_misses = engine_.stats().probe_misses;
  stats.ejections = engine_.stats().ejections;
  stats.recoveries = engine_.stats().recoveries;
  stats.late_completions = engine_.stats().late_completions;
  stats.config_swaps = config_swaps_;
  return stats;
}

}  // namespace skywalker
