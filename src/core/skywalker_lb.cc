#include "src/core/skywalker_lb.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace skywalker {

SkyWalkerLb::SkyWalkerLb(Simulator* sim, Network* net, LbId id,
                         RegionId region, const SkyWalkerConfig& config)
    : sim_(sim),
      net_(net),
      id_(id),
      region_(region),
      config_(config),
      replica_ring_(config.ring_vnodes),
      lb_ring_(config.ring_vnodes),
      replica_trie_(config.replica_trie_capacity),
      snapshot_trie_(config.snapshot_trie_capacity) {
  probe_task_ = std::make_unique<PeriodicTask>(sim_, config_.probe_interval,
                                               [this] { ProbeAll(); });
}

SkyWalkerLb::~SkyWalkerLb() = default;

void SkyWalkerLb::AttachReplica(Replica* replica) {
  ReplicaState state;
  state.replica = replica;
  replica_states_.emplace(replica->id(), state);
  replica_ring_.AddTarget(replica->id());
  TryDispatch();
}

void SkyWalkerLb::DetachReplica(ReplicaId replica_id) {
  replica_states_.erase(replica_id);
  replica_ring_.RemoveTarget(replica_id);
  replica_trie_.RemoveTarget(replica_id);
}

void SkyWalkerLb::AddPeer(SkyWalkerLb* peer) {
  if (peer == this) {
    return;
  }
  PeerState state;
  state.peer = peer;
  peers_.emplace(peer->id(), state);
  lb_ring_.AddTarget(peer->id());
}

void SkyWalkerLb::RemovePeer(LbId peer_id) {
  peers_.erase(peer_id);
  lb_ring_.RemoveTarget(peer_id);
  snapshot_trie_.RemoveTarget(peer_id);
}

std::vector<Replica*> SkyWalkerLb::ManagedReplicas() const {
  std::vector<Replica*> out;
  out.reserve(replica_states_.size());
  for (const auto& [rid, state] : replica_states_) {
    out.push_back(state.replica);
  }
  return out;
}

void SkyWalkerLb::Start() { probe_task_->StartWithDelay(0); }

void SkyWalkerLb::Stop() { probe_task_->Stop(); }

bool SkyWalkerLb::ReplicaAvailable(const ReplicaState& state) const {
  // Selective pushing by pending requests (§3.3): a replica is full when
  // its continuous batch cannot admit more work, i.e. it has pending
  // requests. Optimistic pushes between probes are bounded by the engine-
  // reported admission headroom (capped by push_slack as a safety bound).
  if (!state.probed_once) {
    return state.pushes_since_probe < config_.push_slack;
  }
  return state.probed_pending == 0 &&
         state.pushes_since_probe < config_.push_slack;
}

bool SkyWalkerLb::PeerAvailable(const PeerState& state) const {
  if (!state.peer->healthy()) {
    return false;
  }
  if (!state.probed_once) {
    return false;  // Never forward before the first availability exchange.
  }
  // Listing 1 line 12: available iff it has >= 1 available replica and its
  // queue is within the τ buffer. Forwards since the last probe count as
  // optimistic queue growth.
  // Reciprocal-offload suppression: a region that is itself out of local
  // capacity has no headroom to donate, whatever its instantaneous probe
  // snapshot says; forwarding there only displaces its own traffic.
  if (state.probed_overloaded) {
    return false;
  }
  size_t effective_queue =
      state.probed_queue_size + static_cast<size_t>(state.forwards_since_probe);
  return state.probed_avail_replicas > 0 && effective_queue <= config_.queue_tau;
}

bool SkyWalkerLb::LocalAvailNonEmpty() const {
  for (const auto& [rid, state] : replica_states_) {
    if (ReplicaAvailable(state)) {
      return true;
    }
  }
  return false;
}

bool SkyWalkerLb::IsOverloaded() const {
  if (!healthy_) {
    return true;
  }
  return avail_fraction_ewma_ < config_.overload_avail_ewma_threshold;
}

int SkyWalkerLb::AvailableReplicaCount() const {
  if (!healthy_) {
    return 0;
  }
  int count = 0;
  for (const auto& [rid, state] : replica_states_) {
    if (ReplicaAvailable(state)) {
      ++count;
    }
  }
  return count;
}

std::vector<int> SkyWalkerLb::OutstandingSnapshot() const {
  std::vector<int> out;
  out.reserve(replica_states_.size());
  for (const auto& [rid, state] : replica_states_) {
    out.push_back(state.outstanding);
  }
  return out;
}

SkyWalkerLb::ReplicaState* SkyWalkerLb::FindReplica(ReplicaId rid) {
  auto it = replica_states_.find(rid);
  return it == replica_states_.end() ? nullptr : &it->second;
}

SkyWalkerLb::PeerState* SkyWalkerLb::FindPeer(LbId lbid) {
  auto it = peers_.find(lbid);
  return it == peers_.end() ? nullptr : &it->second;
}

void SkyWalkerLb::HandleRequest(Request req, RequestCallbacks callbacks) {
  if (!healthy_) {
    // Connection refused; the client re-resolves DNS and retries.
    ++stats_.errors_reported;
    if (callbacks.on_error) {
      callbacks.on_error();
    }
    return;
  }
  ++stats_.received_client;
  Queued queued;
  queued.req = std::move(req);
  queued.callbacks = std::move(callbacks);
  queued.lb_arrival = sim_->now();
  Enqueue(std::move(queued));
}

void SkyWalkerLb::HandleForwarded(Request req, RequestCallbacks callbacks,
                                  RegionId origin_lb_region) {
  if (!healthy_) {
    ++stats_.errors_reported;
    if (callbacks.on_error) {
      callbacks.on_error();
    }
    return;
  }
  ++stats_.received_forwarded;
  Queued queued;
  queued.req = std::move(req);
  queued.callbacks = std::move(callbacks);
  queued.lb_arrival = sim_->now();
  queued.forwarded_in = true;
  queued.origin_lb_region = origin_lb_region;
  Enqueue(std::move(queued));
}

void SkyWalkerLb::Enqueue(Queued queued) {
  queue_.push_back(std::move(queued));
  stats_.max_queue_len = std::max<int64_t>(
      stats_.max_queue_len, static_cast<int64_t>(queue_.size()));
  TryDispatch();
}

int SkyWalkerLb::LeastOutstandingAmong(
    const std::vector<TargetId>& candidates) const {
  TargetId best = kInvalidTarget;
  int best_load = std::numeric_limits<int>::max();
  for (TargetId t : candidates) {
    auto it = replica_states_.find(t);
    if (it == replica_states_.end()) {
      continue;
    }
    if (it->second.outstanding < best_load) {
      best = t;
      best_load = it->second.outstanding;
    }
  }
  return best;
}

ReplicaId SkyWalkerLb::SelectLocalReplica(const Queued& queued) {
  auto avail = [this](TargetId id) {
    auto it = replica_states_.find(id);
    return it != replica_states_.end() && ReplicaAvailable(it->second);
  };

  if (config_.policy == RoutingPolicyKind::kConsistentHash) {
    uint64_t key = HashString(queued.req.routing_key);
    TargetId target = replica_ring_.LookupAvailable(key, avail);
    return target == kInvalidTarget ? kInvalidReplica : target;
  }

  // kPrefixTree (Listing 1 lines 18-21). Short prompts have little prefill
  // worth saving; balance load instead (Â§7 request-characteristic routing).
  if (config_.short_prompt_threshold > 0 &&
      queued.req.prompt_tokens() < config_.short_prompt_threshold) {
    ReplicaId least = kInvalidReplica;
    int least_load = std::numeric_limits<int>::max();
    for (const auto& [rid, state] : replica_states_) {
      if (ReplicaAvailable(state) && state.outstanding < least_load) {
        least = rid;
        least_load = state.outstanding;
      }
    }
    // DispatchLocal records the placement in the trie as usual.
    return least;
  }
  RoutingTrie::Match match = replica_trie_.MatchBest(queued.req.prompt, avail);
  double ratio = queued.req.prompt.empty()
                     ? 0.0
                     : static_cast<double>(match.match_len) /
                           static_cast<double>(queued.req.prompt.size());
  if (!match.candidates.empty() && ratio >= config_.explore_threshold) {
    // Longest-prefix placement; tie-break toward the least-loaded candidate
    // recorded at the deepest usable node.
    TargetId best = LeastOutstandingAmong(match.candidates);
    if (best != kInvalidTarget) {
      return best;
    }
  }
  // Low affinity: spread load across under-utilized available replicas.
  ReplicaId best = kInvalidReplica;
  int best_load = std::numeric_limits<int>::max();
  for (const auto& [rid, state] : replica_states_) {
    if (ReplicaAvailable(state) && state.outstanding < best_load) {
      best = rid;
      best_load = state.outstanding;
    }
  }
  return best;
}

LbId SkyWalkerLb::StickyRemotePeer(const Queued& queued) {
  auto avail = [this](TargetId id) {
    auto it = peers_.find(id);
    if (it == peers_.end() || !PeerAvailable(it->second)) {
      return false;
    }
    if (config_.forward_allowed &&
        !config_.forward_allowed(region_, it->second.peer->region())) {
      return false;
    }
    return true;
  };
  RoutingTrie::Match match = snapshot_trie_.MatchBest(queued.req.prompt, avail);
  if (match.candidates.empty() || queued.req.prompt.empty()) {
    return kInvalidLb;
  }
  double ratio = static_cast<double>(match.match_len) /
                 static_cast<double>(queued.req.prompt.size());
  return ratio >= config_.remote_affinity_threshold ? match.candidates.front()
                                                    : kInvalidLb;
}

LbId SkyWalkerLb::SelectPeer(const Queued& queued) {
  auto avail = [this, &queued](TargetId id) {
    auto it = peers_.find(id);
    if (it == peers_.end() || !PeerAvailable(it->second)) {
      return false;
    }
    if (config_.forward_allowed &&
        !config_.forward_allowed(region_, it->second.peer->region())) {
      return false;
    }
    return true;
  };

  if (config_.policy == RoutingPolicyKind::kConsistentHash) {
    uint64_t key = HashString(queued.req.routing_key);
    TargetId target = lb_ring_.LookupAvailable(key, avail);
    return target == kInvalidTarget ? kInvalidLb : target;
  }

  // kPrefixTree: pick the available region with the highest prefix hit
  // ratio from the regional snapshot (§4.1).
  RoutingTrie::Match match = snapshot_trie_.MatchBest(queued.req.prompt, avail);
  if (!match.candidates.empty() && match.match_len > 0) {
    return match.candidates.front();
  }
  // No snapshot affinity: nearest available peer.
  LbId best = kInvalidLb;
  SimDuration best_latency = std::numeric_limits<SimDuration>::max();
  for (const auto& [lbid, state] : peers_) {
    if (!avail(lbid)) {
      continue;
    }
    SimDuration l = net_->Latency(region_, state.peer->region());
    if (l < best_latency) {
      best = lbid;
      best_latency = l;
    }
  }
  return best;
}

void SkyWalkerLb::TryDispatch() {
  while (healthy_ && !queue_.empty()) {
    Queued& head = queue_.front();
    // Sticky remote affinity: a conversation whose KV context already lives
    // in another region keeps going there while that peer stays available
    // (otherwise every availability flap would re-prefill the full context
    // on both sides).
    if (!head.forwarded_in && config_.enable_forwarding &&
        config_.policy == RoutingPolicyKind::kPrefixTree) {
      LbId sticky = StickyRemotePeer(head);
      if (sticky != kInvalidLb) {
        Queued queued = std::move(head);
        queue_.pop_front();
        Forward(std::move(queued), sticky);
        continue;
      }
    }
    // HANDLEREQUEST (Listing 1 line 28): local replicas take precedence.
    ReplicaId replica = SelectLocalReplica(head);
    if (replica != kInvalidReplica) {
      last_local_avail_ = sim_->now();
      Queued queued = std::move(head);
      queue_.pop_front();
      DispatchLocal(std::move(queued), replica);
      continue;
    }
    if (head.forwarded_in || !config_.enable_forwarding) {
      return;  // Terminal here; wait for local capacity.
    }
    // Flap damping: offload only when local unavailability persists (see
    // SkyWalkerConfig::forward_patience).
    if (sim_->now() - last_local_avail_ < config_.forward_patience) {
      return;
    }
    LbId peer = SelectPeer(head);
    if (peer == kInvalidLb) {
      return;  // Nobody available anywhere; stay queued.
    }
    Queued queued = std::move(head);
    queue_.pop_front();
    Forward(std::move(queued), peer);
  }
}

void SkyWalkerLb::DispatchLocal(Queued queued, ReplicaId replica_id) {
  ReplicaState* state = FindReplica(replica_id);
  SKYWALKER_CHECK(state != nullptr);
  Replica* replica = state->replica;
  ++state->outstanding;
  ++state->pushes_since_probe;
  ++stats_.dispatched_local;
  stats_.queue_wait_sec.Add(ToSeconds(sim_->now() - queued.lb_arrival));

  if (config_.policy == RoutingPolicyKind::kPrefixTree) {
    replica_trie_.Insert(queued.req.prompt, replica_id);
  }

  const RegionId client_region = queued.req.client_region;
  const RegionId replica_region = replica->region();
  // Response path: replica -> this LB -> (origin LB ->) client.
  SimDuration response_latency = net_->Latency(replica_region, region_);
  int hops = 1;
  if (queued.forwarded_in) {
    response_latency += net_->Latency(region_, queued.origin_lb_region) +
                        net_->Latency(queued.origin_lb_region, client_region);
    hops = 2;
  } else {
    response_latency += net_->Latency(region_, client_region);
  }

  auto outcome = std::make_shared<RequestOutcome>();
  outcome->id = queued.req.id;
  outcome->user_id = queued.req.user_id;
  outcome->client_region = client_region;
  outcome->served_region = replica_region;
  outcome->replica = replica_id;
  outcome->submit_time = queued.req.submit_time;
  outcome->prompt_tokens = queued.req.prompt_tokens();
  outcome->output_tokens = queued.req.output_tokens();
  outcome->hops = hops;
  outcome->forwarded = queued.forwarded_in;

  auto callbacks =
      std::make_shared<RequestCallbacks>(std::move(queued.callbacks));

  Replica::Handlers handlers;
  handlers.on_first_token = [this, outcome, callbacks, response_latency](
                                const Request& req, int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->first_token_time = sim_->now() + response_latency;
    if (callbacks->on_first_token) {
      sim_->ScheduleAfter(response_latency, [callbacks, outcome] {
        callbacks->on_first_token(*outcome);
      });
    }
  };
  handlers.on_complete = [this, outcome, callbacks, response_latency,
                          replica_id](const Request& req, int64_t cached) {
    outcome->cached_prompt_tokens = cached;
    outcome->completion_time = sim_->now() + response_latency;
    if (callbacks->on_complete) {
      sim_->ScheduleAfter(response_latency, [callbacks, outcome] {
        callbacks->on_complete(*outcome);
      });
    }
    net_->Send(outcome->served_region, region_, [this, replica_id] {
      ReplicaState* rs = FindReplica(replica_id);
      if (rs != nullptr && rs->outstanding > 0) {
        --rs->outstanding;
      }
      TryDispatch();
    });
  };

  net_->Send(region_, replica_region,
             [replica, req = std::move(queued.req),
              handlers = std::move(handlers)]() mutable {
               replica->Enqueue(std::move(req), std::move(handlers));
             });
}

void SkyWalkerLb::Forward(Queued queued, LbId peer_id) {
  PeerState* state = FindPeer(peer_id);
  SKYWALKER_CHECK(state != nullptr);
  SkyWalkerLb* peer = state->peer;
  ++state->forwards_since_probe;
  ++stats_.forwarded_out;
  stats_.queue_wait_sec.Add(ToSeconds(sim_->now() - queued.lb_arrival));

  if (config_.policy == RoutingPolicyKind::kPrefixTree) {
    // Regional snapshot update (§4.1): remember what this region offloaded
    // where, so future similar prompts follow their cached prefixes.
    snapshot_trie_.Insert(queued.req.prompt, peer_id);
  }

  RegionId peer_region = peer->region();
  net_->Send(region_, peer_region,
             [peer, origin = region_, req = std::move(queued.req),
              callbacks = std::move(queued.callbacks)]() mutable {
               peer->HandleForwarded(std::move(req), std::move(callbacks),
                                     origin);
             });
}

void SkyWalkerLb::ProbeAll() {
  if (!healthy_) {
    return;
  }
  // Track smoothed local headroom for the overload advertisement.
  if (!replica_states_.empty()) {
    double fraction = static_cast<double>(AvailableReplicaCount()) /
                      static_cast<double>(replica_states_.size());
    avail_fraction_ewma_ = 0.8 * avail_fraction_ewma_ + 0.2 * fraction;
  }
  // MONITORAVAILABILITY (Listing 1): local replica pending counts.
  for (auto& [rid, state] : replica_states_) {
    ++stats_.probes_sent;
    Replica* replica = state.replica;
    RegionId replica_region = replica->region();
    ReplicaId replica_id = rid;
    net_->Send(region_, replica_region,
               [this, replica, replica_id, replica_region] {
                 int pending = replica->pending_count();
                 int free_capacity = replica->EstimateFreeCapacity();
                 net_->Send(replica_region, region_,
                            [this, replica_id, pending, free_capacity] {
                              ReplicaState* rs = FindReplica(replica_id);
                              if (rs == nullptr) {
                                return;
                              }
                              rs->probed_pending = pending;
                              rs->probed_free_capacity = free_capacity;
                              rs->pushes_since_probe = 0;
                              rs->probed_once = true;
                              if (LocalAvailNonEmpty()) {
                                last_local_avail_ = sim_->now();
                              }
                              TryDispatch();
                            });
               });
  }
  // Peer LB availability: (available replicas, queue size).
  for (auto& [lbid, state] : peers_) {
    ++stats_.probes_sent;
    SkyWalkerLb* peer = state.peer;
    RegionId peer_region = peer->region();
    LbId peer_id = lbid;
    net_->Send(region_, peer_region, [this, peer, peer_id, peer_region] {
      int avail = peer->AvailableReplicaCount();
      size_t qsize = peer->QueueSize();
      bool overloaded = peer->IsOverloaded();
      net_->Send(peer_region, region_,
                 [this, peer_id, avail, qsize, overloaded] {
                   PeerState* ps = FindPeer(peer_id);
                   if (ps == nullptr) {
                     return;
                   }
                   ps->probed_avail_replicas = avail;
                   ps->probed_queue_size = qsize;
                   ps->probed_overloaded = overloaded;
                   ps->forwards_since_probe = 0;
                   ps->probed_once = true;
                   TryDispatch();
                 });
    });
  }
}

void SkyWalkerLb::FlushQueueWithError() {
  std::deque<Queued> drained;
  drained.swap(queue_);
  for (Queued& queued : drained) {
    ++stats_.errors_reported;
    if (queued.callbacks.on_error) {
      queued.callbacks.on_error();
    }
  }
}

void SkyWalkerLb::Fail() {
  healthy_ = false;
  probe_task_->Stop();
  FlushQueueWithError();
}

void SkyWalkerLb::Recover() {
  healthy_ = true;
  // Reset stale probe state; the restarted loop refreshes it.
  for (auto& [rid, state] : replica_states_) {
    state.probed_once = false;
    state.pushes_since_probe = 0;
  }
  for (auto& [lbid, state] : peers_) {
    state.probed_once = false;
    state.forwards_since_probe = 0;
  }
  probe_task_->StartWithDelay(0);
}

}  // namespace skywalker
