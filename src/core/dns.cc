#include "src/core/dns.h"

#include <limits>

namespace skywalker {

Frontend* NearestFrontendResolver::Resolve(RegionId client_region) {
  Frontend* best = nullptr;
  SimDuration best_latency = std::numeric_limits<SimDuration>::max();
  for (Frontend* frontend : frontends_) {
    // Frontend::healthy() is backed by HealthSource::Serving() on real LBs:
    // DNS keeps resolving to degraded regions (the engine rides those out)
    // and skips only hard-failed ones.
    if (!frontend->healthy()) {
      continue;
    }
    SimDuration l = topology_->Latency(client_region, frontend->region());
    if (l < best_latency) {
      best = frontend;
      best_latency = l;
    }
  }
  return best;
}

}  // namespace skywalker
