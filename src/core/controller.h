// Centralized service controller (paper §4.2): monitors load-balancer health
// with periodic probes and orchestrates failure recovery. When an LB fails,
// its replicas are reassigned to the geographically closest healthy LB,
// which temporarily treats them as local replicas; once the failed LB
// recovers, the replicas transfer back. Multiple concurrent LB failures are
// tolerated.
//
// The controller also supports elastic replica management (AddReplica /
// RemoveReplica), used by deployment reconfiguration tests.

#ifndef SKYWALKER_CORE_CONTROLLER_H_
#define SKYWALKER_CORE_CONTROLLER_H_

#include <map>
#include <memory>
#include <vector>

#include "src/core/skywalker_lb.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace skywalker {

struct ControllerConfig {
  SimDuration health_probe_interval = Milliseconds(500);
  // Simulated time to restore a failed LB. <= 0 disables auto-recovery
  // (tests then call RecoverLb explicitly).
  SimDuration auto_recovery_delay = Seconds(30);
  // Region the controller's own events (health-probe loop) are keyed to in
  // sharded mode; the controller lives on that region's shard.
  RegionId home_region = 0;
};

class Controller {
 public:
  Controller(Simulator* sim, Network* net, const ControllerConfig& config);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // Registers a load balancer under management.
  void ManageLb(SkyWalkerLb* lb);

  void Start();
  void Stop();

  // Adds a replica to the LB serving `lb->region()`; wires rings/tries.
  void AddReplica(SkyWalkerLb* lb, Replica* replica);
  // Removes a replica from whichever LB currently manages it.
  void RemoveReplica(ReplicaId replica_id);

  // Explicit recovery entry point (also used by the auto-recovery timer).
  // Returns false if the LB was not in a failed state.
  bool RecoverLb(LbId lb_id);

  struct Stats {
    int64_t failovers_handled = 0;
    int64_t recoveries_completed = 0;
    int64_t replicas_reassigned = 0;
  };
  const Stats& stats() const { return stats_; }

  // True while `lb_id`'s replicas are hosted by another LB.
  bool IsFailedOver(LbId lb_id) const;

 private:
  struct ManagedLb {
    SkyWalkerLb* lb = nullptr;
    // Failover has been executed and not yet rolled back. Distinct from the
    // LB's own HealthStatus: the controller reacts to kFailed with a lag of
    // up to one probe interval, and recovery rolls this back explicitly.
    bool failover_active = false;
    // Replicas moved away during failover, and who hosts them now.
    std::vector<std::pair<Replica*, SkyWalkerLb*>> displaced;
  };

  void ProbeHealth();
  void HandleFailure(ManagedLb& entry);
  SkyWalkerLb* NearestHealthyLb(RegionId region, LbId exclude);

  Simulator* sim_;
  Network* net_;
  ControllerConfig config_;
  std::map<LbId, ManagedLb> lbs_;
  std::unique_ptr<PeriodicTask> probe_task_;
  Stats stats_;
};

}  // namespace skywalker

#endif  // SKYWALKER_CORE_CONTROLLER_H_
