#include "src/core/deployment.h"

#include "src/common/logging.h"

namespace skywalker {

std::unique_ptr<Deployment> Deployment::Build(Simulator* sim, Network* net,
                                              const DeploymentSpec& spec) {
  const Topology& topology = net->topology();
  SKYWALKER_CHECK(spec.replicas_per_region.size() == topology.num_regions())
      << "replicas_per_region must match the topology";

  auto deployment = std::unique_ptr<Deployment>(new Deployment(&topology));
  deployment->controller_ =
      std::make_unique<Controller>(sim, net, spec.controller_config);

  ReplicaId next_replica = 0;
  LbId next_lb = 0;
  for (RegionId region = 0;
       region < static_cast<RegionId>(topology.num_regions()); ++region) {
    // Shard affinity: every actor runs on its own region's simulator (the
    // one simulator in plain mode).
    Simulator* region_sim = net->SimForRegion(region);
    auto lb = std::make_unique<SkyWalkerLb>(region_sim, net, next_lb++,
                                            region, spec.lb_config);
    for (int i = 0; i < spec.replicas_per_region[static_cast<size_t>(region)];
         ++i) {
      auto replica = std::make_unique<Replica>(region_sim, next_replica++,
                                               region, spec.replica_config);
      lb->AttachReplica(replica.get());
      deployment->replicas_.push_back(std::move(replica));
    }
    if (spec.config_store != nullptr) {
      lb->SubscribeTo(spec.config_store);
    }
    deployment->resolver_.AddFrontend(lb.get());
    deployment->controller_->ManageLb(lb.get());
    deployment->lbs_.push_back(std::move(lb));
  }
  // Full peer mesh.
  for (auto& a : deployment->lbs_) {
    for (auto& b : deployment->lbs_) {
      a->AddPeer(b.get());
    }
  }
  return deployment;
}

Deployment::~Deployment() = default;

void Deployment::Start() {
  for (auto& lb : lbs_) {
    lb->Start();
  }
  controller_->Start();
}

void Deployment::Stop() {
  for (auto& lb : lbs_) {
    lb->Stop();
  }
  controller_->Stop();
}

SkyWalkerLb* Deployment::LbInRegion(RegionId region) {
  for (auto& lb : lbs_) {
    if (lb->region() == region) {
      return lb.get();
    }
  }
  return nullptr;
}

double Deployment::AggregateCacheHitRate() const {
  int64_t hits = 0;
  int64_t lookups = 0;
  for (const auto& replica : replicas_) {
    hits += replica->cache().hit_tokens();
    lookups += replica->cache().lookup_tokens();
  }
  return lookups == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(lookups);
}

int64_t Deployment::TotalForwarded() const {
  int64_t total = 0;
  for (const auto& lb : lbs_) {
    total += lb->stats().forwarded_out;
  }
  return total;
}

}  // namespace skywalker
