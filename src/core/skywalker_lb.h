// SkyWalker regional load balancer (paper §3, Listing 1).
//
// One instance runs per region as the first point of contact for local
// clients. The replica half of §3.1 — FCFS queue, probe loop, selective
// pushing by pending requests (§3.3), and the passive health machinery of
// DESIGN.md §10 — is the shared dispatch engine in src/routing/; this class
// carries only the cross-region half and plugs into the engine as its
// ReplicaSelector (local placement policy) and HostCallbacks (forwarding
// hooks). It implements:
//
//  * Two-layer cross-region routing (§3.1): requests are placed on local
//    replicas whenever any is available; otherwise they are forwarded to an
//    *available* peer LB, which makes the final placement in its region.
//    Forwarded requests are terminal — they are never re-forwarded.
//
//  * Multi-region prefix-aware routing (§3.2) in two flavours:
//      - kConsistentHash (SkyWalker-CH): ring hash on the request's routing
//        key at both layers (replica ring + peer-LB ring), skipping
//        unavailable virtual nodes;
//      - kPrefixTree (SkyWalker): a local-replica prefix trie plus a
//        *regional snapshot* trie recording which prompts this region has
//        forwarded to which peers. When the best prefix hit ratio is below
//        `explore_threshold`, the balancer explores under-utilized replicas
//        instead (§5.1).
//
//  * Peer availability (Listing 1, line 12): a peer LB is available iff it
//    has >= 1 available replica and a queue shorter than the τ buffer.
//
//  * Custom routing constraints (§4.1/§7): an optional predicate restricts
//    which (from-region, to-region) forwarding pairs are allowed (e.g. GDPR
//    policies).
//
// Health (ISSUE 7): the LB is a HealthSource — the controller's failover
// detection, DNS resolution, and peer availability all read Status()/
// Serving() instead of private booleans. Mutable knobs live in the two
// RuntimeConfig halves (engine + routing) and reswap mid-run via
// ApplyRuntimeConfig / a ConfigStore subscription.

#ifndef SKYWALKER_CORE_SKYWALKER_LB_H_
#define SKYWALKER_CORE_SKYWALKER_LB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/cache/hash_ring.h"
#include "src/cache/routing_trie.h"
#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/core/runtime_config.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/routing/dispatch_engine.h"
#include "src/routing/health.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

// SkyWalker proper pushes selectively by pending requests (§3.3); the
// engine's own default is the blind-pushing baseline (BP).
inline DispatchConfig SkyWalkerEngineDefaults() {
  DispatchConfig config;
  config.push_mode = PushMode::kSelectivePending;
  return config;
}

struct SkyWalkerConfig {
  // The two mutable halves of a RuntimeConfig snapshot (ISSUE 7): every
  // knob here can reswap mid-run through ApplyRuntimeConfig.
  DispatchConfig engine = SkyWalkerEngineDefaults();
  RoutingRuntimeConfig routing;

  // --- structurally static knobs (fixed at construction) ---
  int64_t replica_trie_capacity = 4'000'000;
  int64_t snapshot_trie_capacity = 4'000'000;
  int ring_vnodes = 128;

  // Optional constraint on forwarding pairs (GDPR, §7). Null allows all.
  // A predicate, not a value — stays out of the serializable snapshot.
  std::function<bool(RegionId from, RegionId to)> forward_allowed;

  // The initial snapshot a deployment seeds its ConfigStore with.
  RuntimeConfig runtime() const {
    RuntimeConfig config;
    config.dispatch = engine;
    config.routing = routing;
    return config;
  }
};

class ConfigStore;

class SkyWalkerLb : public Frontend,
                    public HealthSource,
                    private ReplicaSelector {
 public:
  struct Stats {
    int64_t received_client = 0;
    int64_t received_forwarded = 0;
    int64_t dispatched_local = 0;
    int64_t forwarded_out = 0;
    int64_t probes_sent = 0;
    int64_t errors_reported = 0;
    int64_t max_queue_len = 0;
    Distribution queue_wait_sec;  // Time spent in the LB queue.
    // Resilience counters (engine half; zero unless outlier detection on).
    int64_t request_timeouts = 0;
    int64_t probe_misses = 0;
    int64_t ejections = 0;
    int64_t recoveries = 0;
    int64_t late_completions = 0;
    int64_t config_swaps = 0;  // Mid-run RuntimeConfig applications.
  };

  SkyWalkerLb(Simulator* sim, Network* net, LbId id, RegionId region,
              const SkyWalkerConfig& config);
  ~SkyWalkerLb() override;

  SkyWalkerLb(const SkyWalkerLb&) = delete;
  SkyWalkerLb& operator=(const SkyWalkerLb&) = delete;

  // --- topology management (controller API) ---
  void AttachReplica(Replica* replica);
  void DetachReplica(ReplicaId replica_id);
  void AddPeer(SkyWalkerLb* peer);
  void RemovePeer(LbId peer_id);
  std::vector<Replica*> ManagedReplicas() const;

  void Start();
  void Stop();

  // --- HealthSource: the one availability authority for this LB ---
  HealthStatus Status() const override { return status_; }

  // --- Frontend ---
  RegionId region() const override { return region_; }
  bool healthy() const override { return Serving(); }
  void HandleRequest(Request req, RequestCallbacks callbacks) override;

  // Peer entry point: a request another region decided to offload here.
  // `origin_lb_region` is the forwarding LB's region (response path hop).
  void HandleForwarded(Request req, RequestCallbacks callbacks,
                       RegionId origin_lb_region);

  // --- runtime config (ISSUE 7) ---
  // Adopts a new snapshot: engine knobs swap via DispatchEngine::ApplyConfig
  // (probe loop re-arms as needed), routing knobs take effect on the next
  // decision that reads them. Structural state (tries, rings, peers,
  // queue, outstanding counts) carries over untouched.
  void ApplyRuntimeConfig(const RuntimeConfig& config);
  // Watches `store`: applies its current snapshot now (synchronously) and
  // every published update at its publish time. The subscription lives as
  // long as this LB (or until the store dies with the deployment).
  void SubscribeTo(ConfigStore* store);

  // --- peer-visible probe state (PROBELB in Listing 1) ---
  int AvailableReplicaCount() const;
  size_t QueueSize() const { return engine_.queue_size(); }
  // True when this LB's own local capacity has been exhausted beyond the
  // patience window, i.e. it is (or is about to start) offloading. Peers
  // never forward into an overloaded region: that would only displace its
  // traffic and bounce conversations across regions.
  bool IsOverloaded() const;

  // --- fault injection (§4.2) ---
  // Fails the LB: pending queued requests error out (clients re-resolve);
  // probe loop stops; peers observe unavailability on their next probe.
  void Fail();
  void Recover();

  LbId id() const { return id_; }
  const SkyWalkerConfig& config() const { return config_; }
  // Assembled from the shared engine's counters plus the cross-region ones
  // this class tracks; returned by value.
  Stats stats() const;
  size_t num_replicas() const { return engine_.num_replicas(); }
  size_t num_peers() const { return peers_.size(); }
  int64_t config_version() const { return config_version_; }

  // LB-tracked outstanding per local replica (imbalance metrics).
  std::vector<int> OutstandingSnapshot() const {
    return engine_.OutstandingSnapshot();
  }

  // Engine health introspection (tests, scenario assertions).
  const DispatchEngine& engine() const { return engine_; }

 private:
  struct PeerState {
    SkyWalkerLb* peer = nullptr;
    int probed_avail_replicas = 0;
    size_t probed_queue_size = 0;
    bool probed_overloaded = false;
    int forwards_since_probe = 0;
    bool probed_once = false;
  };

  // --- ReplicaSelector: SELECTCANDIDATE over local replicas (Listing 1,
  // lines 17-26). ---
  ReplicaId SelectReplica(const Queued& queued,
                          const CandidateView& candidates) override;
  void OnReplicaAttached(Replica* replica) override;
  void OnReplicaDetached(ReplicaId replica_id) override;

  // --- the cross-region half, bound into the engine's HostCallbacks ---
  HostCallbacks EngineCallbacks();
  HeadAction OnQueueHead(Queued& head);
  HeadAction OnUnplaced(Queued& head);
  void OnLocalDispatch(const Queued& queued, ReplicaId replica_id);
  void OnProbeTick();
  void OnAfterReplicaProbes();
  void OnReplicaProbeResult();

  bool PeerAvailable(const PeerState& state) const;

  // SELECTCANDIDATE over peer LBs.
  LbId SelectPeer(const Queued& queued);
  // Available peer already holding this prompt's context (sticky affinity),
  // or kInvalidLb.
  LbId StickyRemotePeer(const Queued& queued);

  void Forward(Queued queued, LbId peer_id);
  PeerState* FindPeer(LbId id);

  Simulator* sim_;
  Network* net_;
  LbId id_;
  RegionId region_;
  SkyWalkerConfig config_;
  HealthStatus status_ = HealthStatus::kHealthy;
  int64_t config_version_ = 0;
  int64_t config_swaps_ = 0;

  std::map<LbId, PeerState> peers_;

  HashRing replica_ring_;
  HashRing lb_ring_;
  RoutingTrie replica_trie_;
  RoutingTrie snapshot_trie_;

  DispatchEngine engine_;
  ConfigSubscription config_subscription_;

  // Cross-region stat counters (engine counts the local-placement half).
  int64_t received_client_ = 0;
  int64_t received_forwarded_ = 0;
  int64_t forwarded_out_ = 0;
  int64_t peer_probes_sent_ = 0;
  int64_t errors_reported_ = 0;

  // Last simulated time at which some local replica was available.
  SimTime last_local_avail_ = 0;
  // EWMA of AvailableReplicaCount()/num_replicas, updated per probe cycle.
  double avail_fraction_ewma_ = 1.0;
};

}  // namespace skywalker

#endif  // SKYWALKER_CORE_SKYWALKER_LB_H_
