// SkyWalker regional load balancer (paper §3, Listing 1).
//
// One instance runs per region as the first point of contact for local
// clients. The replica half of §3.1 — FCFS queue, probe loop, selective
// pushing by pending requests (§3.3) — is the shared dispatch engine in
// src/routing/; this class carries only the cross-region half and plugs
// into the engine as its ReplicaSelector (local placement policy) and Host
// (forwarding hooks). It implements:
//
//  * Two-layer cross-region routing (§3.1): requests are placed on local
//    replicas whenever any is available; otherwise they are forwarded to an
//    *available* peer LB, which makes the final placement in its region.
//    Forwarded requests are terminal — they are never re-forwarded.
//
//  * Multi-region prefix-aware routing (§3.2) in two flavours:
//      - kConsistentHash (SkyWalker-CH): ring hash on the request's routing
//        key at both layers (replica ring + peer-LB ring), skipping
//        unavailable virtual nodes;
//      - kPrefixTree (SkyWalker): a local-replica prefix trie plus a
//        *regional snapshot* trie recording which prompts this region has
//        forwarded to which peers. When the best prefix hit ratio is below
//        `explore_threshold`, the balancer explores under-utilized replicas
//        instead (§5.1).
//
//  * Peer availability (Listing 1, line 12): a peer LB is available iff it
//    has >= 1 available replica and a queue shorter than the τ buffer.
//
//  * Custom routing constraints (§4.1/§7): an optional predicate restricts
//    which (from-region, to-region) forwarding pairs are allowed (e.g. GDPR
//    policies).

#ifndef SKYWALKER_CORE_SKYWALKER_LB_H_
#define SKYWALKER_CORE_SKYWALKER_LB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/cache/hash_ring.h"
#include "src/cache/routing_trie.h"
#include "src/common/histogram.h"
#include "src/common/sim_time.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/routing/dispatch_engine.h"
#include "src/sim/simulator.h"
#include "src/workload/request.h"

namespace skywalker {

enum class RoutingPolicyKind {
  kConsistentHash,  // SkyWalker-CH
  kPrefixTree,      // SkyWalker
};

struct SkyWalkerConfig {
  RoutingPolicyKind policy = RoutingPolicyKind::kPrefixTree;

  // Heartbeat probe period for replicas and peer LBs (§4.1: 100 ms).
  SimDuration probe_interval = Milliseconds(100);

  // Optimistic pushes allowed per replica between probes: bounds burst
  // overshoot from probe staleness while letting an empty continuous batch
  // fill within one probe window (DESIGN.md §5.3).
  int push_slack = 32;

  // τ: small queue buffer for newly arriving requests (Listing 1, line 12).
  size_t queue_tau = 4;

  // A region advertises itself as overloaded (and refuses inbound offloads)
  // when the EWMA of its available-replica fraction falls below this.
  // Point-in-time probe snapshots flap at saturation; the EWMA separates
  // "briefly busy" from "no real headroom".
  double overload_avail_ewma_threshold = 0.25;

  // Flap damping: forward only after local replicas have been continuously
  // unavailable for this long. Saturated replicas flap between full and
  // momentarily-free at probe granularity; offloading on every flap migrates
  // conversations back and forth, and each migration re-prefills the whole
  // context in the other region. Persistent overload (the case offloading
  // is for) easily exceeds this window.
  SimDuration forward_patience = Milliseconds(250);

  // kPrefixTree: when the regional snapshot shows at least this fraction of
  // the prompt is cached at an available peer, the request stays with that
  // peer even if local replicas are free. Without stickiness an offloaded
  // conversation migrates home on the next availability flap and re-prefills
  // its entire context in both regions, turn after turn.
  double remote_affinity_threshold = 0.5;

  // kPrefixTree: below this prompt hit ratio, prefer under-utilized
  // replicas over prefix affinity (§5.1 "explores other replicas").
  double explore_threshold = 0.5;

  int64_t replica_trie_capacity = 4'000'000;
  int64_t snapshot_trie_capacity = 4'000'000;
  int ring_vnodes = 128;

  // Enables cross-region forwarding. Disabling yields the Region-Local
  // deployment baseline of Fig. 10.
  bool enable_forwarding = true;

  // §7 extension ("more advanced policies"): prompts shorter than this skip
  // prefix matching and go to the least-loaded available replica — short
  // prompts have little prefill to save, so balancing load is worth more
  // than cache affinity. 0 disables the heuristic.
  int64_t short_prompt_threshold = 0;

  // Optional constraint on forwarding pairs (GDPR, §7). Null allows all.
  std::function<bool(RegionId from, RegionId to)> forward_allowed;

  // Free-block-aware routing gate on the probe loop's KV snapshots: local
  // replicas below this free-block fraction are skipped (0 = off).
  double min_free_block_fraction = 0.0;

  // Preemption-aware selective pushing: least-loaded scans add this per
  // preemption a replica reported between its last two probes (0 = off).
  double preemption_penalty = 0.0;

  // Push mode handed to the dispatch engine. SkyWalker proper pushes
  // selectively by pending requests (§3.3); the blind-pushing baseline (BP)
  // is exposed for fleet-scale comparisons.
  PushMode push_mode = PushMode::kSelectivePending;

  // The engine-knob subset.
  DispatchConfig engine() const {
    DispatchConfig config;
    config.push_mode = push_mode;
    config.probe_interval = probe_interval;
    config.push_slack = push_slack;
    config.min_free_block_fraction = min_free_block_fraction;
    config.preemption_penalty = preemption_penalty;
    return config;
  }
};

class SkyWalkerLb : public Frontend,
                    private DispatchEngine::Host,
                    private ReplicaSelector {
 public:
  struct Stats {
    int64_t received_client = 0;
    int64_t received_forwarded = 0;
    int64_t dispatched_local = 0;
    int64_t forwarded_out = 0;
    int64_t probes_sent = 0;
    int64_t errors_reported = 0;
    int64_t max_queue_len = 0;
    Distribution queue_wait_sec;  // Time spent in the LB queue.
  };

  SkyWalkerLb(Simulator* sim, Network* net, LbId id, RegionId region,
              const SkyWalkerConfig& config);
  ~SkyWalkerLb() override;

  SkyWalkerLb(const SkyWalkerLb&) = delete;
  SkyWalkerLb& operator=(const SkyWalkerLb&) = delete;

  // --- topology management (controller API) ---
  void AttachReplica(Replica* replica);
  void DetachReplica(ReplicaId replica_id);
  void AddPeer(SkyWalkerLb* peer);
  void RemovePeer(LbId peer_id);
  std::vector<Replica*> ManagedReplicas() const;

  void Start();
  void Stop();

  // --- Frontend ---
  RegionId region() const override { return region_; }
  bool healthy() const override { return healthy_; }
  void HandleRequest(Request req, RequestCallbacks callbacks) override;

  // Peer entry point: a request another region decided to offload here.
  // `origin_lb_region` is the forwarding LB's region (response path hop).
  void HandleForwarded(Request req, RequestCallbacks callbacks,
                       RegionId origin_lb_region);

  // --- peer-visible probe state (PROBELB in Listing 1) ---
  int AvailableReplicaCount() const;
  size_t QueueSize() const { return engine_.queue_size(); }
  // True when this LB's own local capacity has been exhausted beyond the
  // patience window, i.e. it is (or is about to start) offloading. Peers
  // never forward into an overloaded region: that would only displace its
  // traffic and bounce conversations across regions.
  bool IsOverloaded() const;

  // --- fault injection (§4.2) ---
  // Fails the LB: pending queued requests error out (clients re-resolve);
  // probe loop stops; peers observe unavailability on their next probe.
  void Fail();
  void Recover();

  LbId id() const { return id_; }
  const SkyWalkerConfig& config() const { return config_; }
  // Assembled from the shared engine's counters plus the cross-region ones
  // this class tracks; returned by value.
  Stats stats() const;
  size_t num_replicas() const { return engine_.num_replicas(); }
  size_t num_peers() const { return peers_.size(); }

  // LB-tracked outstanding per local replica (imbalance metrics).
  std::vector<int> OutstandingSnapshot() const {
    return engine_.OutstandingSnapshot();
  }

 private:
  struct PeerState {
    SkyWalkerLb* peer = nullptr;
    int probed_avail_replicas = 0;
    size_t probed_queue_size = 0;
    bool probed_overloaded = false;
    int forwards_since_probe = 0;
    bool probed_once = false;
  };

  // --- ReplicaSelector: SELECTCANDIDATE over local replicas (Listing 1,
  // lines 17-26). ---
  ReplicaId SelectReplica(const Queued& queued,
                          const CandidateView& candidates) override;
  void OnReplicaAttached(Replica* replica) override;
  void OnReplicaDetached(ReplicaId replica_id) override;

  // --- DispatchEngine::Host: the cross-region half. ---
  bool ShouldDispatch() const override { return healthy_; }
  HeadAction OnQueueHead(Queued& head) override;
  HeadAction OnUnplaced(Queued& head) override;
  void OnLocalDispatch(const Queued& queued, ReplicaId replica_id) override;
  void OnProbeTick() override;
  void OnAfterReplicaProbes() override;
  void OnReplicaProbeResult() override;

  bool PeerAvailable(const PeerState& state) const;

  // SELECTCANDIDATE over peer LBs.
  LbId SelectPeer(const Queued& queued);
  // Available peer already holding this prompt's context (sticky affinity),
  // or kInvalidLb.
  LbId StickyRemotePeer(const Queued& queued);

  void Forward(Queued queued, LbId peer_id);
  PeerState* FindPeer(LbId id);

  Simulator* sim_;
  Network* net_;
  LbId id_;
  RegionId region_;
  SkyWalkerConfig config_;
  bool healthy_ = true;

  std::map<LbId, PeerState> peers_;

  HashRing replica_ring_;
  HashRing lb_ring_;
  RoutingTrie replica_trie_;
  RoutingTrie snapshot_trie_;

  DispatchEngine engine_;

  // Cross-region stat counters (engine counts the local-placement half).
  int64_t received_client_ = 0;
  int64_t received_forwarded_ = 0;
  int64_t forwarded_out_ = 0;
  int64_t peer_probes_sent_ = 0;
  int64_t errors_reported_ = 0;

  // Last simulated time at which some local replica was available.
  SimTime last_local_avail_ = 0;
  // EWMA of AvailableReplicaCount()/num_replicas, updated per probe cycle.
  double avail_fraction_ewma_ = 1.0;
};

}  // namespace skywalker

#endif  // SKYWALKER_CORE_SKYWALKER_LB_H_
