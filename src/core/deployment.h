// Deployment builder: assembles a full SkyWalker serving system — replicas
// per region, one regional LB per region with full peer meshing, a DNS
// resolver, and the centralized controller (paper Figure 7).
//
// This is the primary public entry point of the library; see
// examples/quickstart.cpp.

#ifndef SKYWALKER_CORE_DEPLOYMENT_H_
#define SKYWALKER_CORE_DEPLOYMENT_H_

#include <memory>
#include <vector>

#include "src/core/controller.h"
#include "src/core/dns.h"
#include "src/core/skywalker_lb.h"
#include "src/net/network.h"
#include "src/replica/replica.h"
#include "src/sim/simulator.h"

namespace skywalker {

struct DeploymentSpec {
  // replicas_per_region[i] replicas are provisioned in topology region i.
  std::vector<int> replicas_per_region;
  ReplicaConfig replica_config;
  SkyWalkerConfig lb_config;
  ControllerConfig controller_config;
  // Optional runtime-config store (ISSUE 7). When set, every LB subscribes
  // at build time: the store's current snapshot overrides lb_config's
  // mutable halves, and later PublishAt calls reswap knobs mid-run. Must
  // outlive the deployment. Null = static configs, the seed behavior.
  ConfigStore* config_store = nullptr;
};

class Deployment {
 public:
  // Builds (but does not start) the deployment. `net` must outlive it.
  static std::unique_ptr<Deployment> Build(Simulator* sim, Network* net,
                                           const DeploymentSpec& spec);

  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  // Starts LB probe loops and the controller.
  void Start();
  void Stop();

  FrontendResolver* resolver() { return &resolver_; }
  Controller* controller() { return controller_.get(); }

  const std::vector<std::unique_ptr<Replica>>& replicas() const {
    return replicas_;
  }
  const std::vector<std::unique_ptr<SkyWalkerLb>>& lbs() const { return lbs_; }

  SkyWalkerLb* LbInRegion(RegionId region);

  // Aggregate prefix-cache hit rate across all replicas (token-weighted).
  double AggregateCacheHitRate() const;
  // Sum of forwarded_out over all LBs.
  int64_t TotalForwarded() const;

 private:
  explicit Deployment(const Topology* topology) : resolver_(topology) {}

  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<std::unique_ptr<SkyWalkerLb>> lbs_;
  std::unique_ptr<Controller> controller_;
  NearestFrontendResolver resolver_;
};

}  // namespace skywalker

#endif  // SKYWALKER_CORE_DEPLOYMENT_H_
