// Per-region diurnal demand model (paper Fig. 2 / Fig. 3a).
//
// Each region's request rate over the day is a mixture of two wrapped
// Gaussian peaks (working-hours and evening) on top of a base rate, phase
// shifted by the region's timezone. This reproduces the qualitative WildChat
// behaviour the paper relies on: per-region peak-to-trough ratios of several
// x, with peaks offset across timezones so the *aggregate* is much flatter.

#ifndef SKYWALKER_WORKLOAD_DIURNAL_H_
#define SKYWALKER_WORKLOAD_DIURNAL_H_

#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/rng.h"

namespace skywalker {

struct DiurnalRegionProfile {
  std::string name;
  double utc_offset_hours = 0;  // Local peak positions shift by this.
  double base_rate = 0.1;       // Fraction of peak rate at the trough.
  double work_peak_local_hour = 14.0;
  double work_peak_width_hours = 3.5;
  double work_peak_weight = 1.0;
  double evening_peak_local_hour = 20.5;
  double evening_peak_width_hours = 2.0;
  double evening_peak_weight = 0.55;
  double scale = 1.0;  // Relative traffic volume of the region.
};

class DiurnalModel {
 public:
  explicit DiurnalModel(std::vector<DiurnalRegionProfile> profiles);

  // Relative request rate of region `r` at UTC hour `h` (fractional, [0,24)).
  double RateAt(size_t region, double utc_hour) const;

  // Expected requests per hour bucket over one day (24 bins), scaled so the
  // busiest region bucket equals `peak_requests`.
  BinnedSeries HourlySeries(size_t region, double peak_requests) const;

  // Sum of all regional rates at the given hour.
  double AggregateRateAt(double utc_hour) const;

  size_t num_regions() const { return profiles_.size(); }
  const DiurnalRegionProfile& profile(size_t region) const {
    return profiles_.at(region);
  }

  // Draws Poisson request counts per hour for one day.
  BinnedSeries SampleDay(size_t region, double peak_requests, Rng& rng) const;

  // Six-country profile matching Fig. 2 (US, Russia, China, UK, Germany,
  // France with their approximate traffic volumes in WildChat).
  static DiurnalModel WildChatCountries();

  // Five-cloud-region profile matching Fig. 3a.
  static DiurnalModel FiveCloudRegions();

 private:
  std::vector<DiurnalRegionProfile> profiles_;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_DIURNAL_H_
