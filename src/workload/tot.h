// Tree-of-Thoughts program synthesis (paper §5.1, GSM8K-style reasoning).
//
// A tree of depth D with branching factor B issues one expansion request per
// node over levels 0..D-1 (B=2, D=4 → 15 requests; B=4, D=4 → 85 requests,
// matching the paper's ToT and Mixed Tree workloads). A node's prompt is the
// question plus all ancestor thoughts, so nodes share prefixes up to their
// lowest common ancestor; siblings within a level run concurrently — the
// burstiness that breaks consistent hashing in Fig. 8d.

#ifndef SKYWALKER_WORKLOAD_TOT_H_
#define SKYWALKER_WORKLOAD_TOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/tokens.h"
#include "src/common/rng.h"
#include "src/workload/request.h"

namespace skywalker {

struct ToTConfig {
  int depth = 4;      // Expansion levels (root = level 0).
  int branching = 2;  // Children per node.
  int64_t question_len_mean = 160;
  int64_t thought_len_mean = 110;  // Output tokens per expansion.
  double len_jitter = 0.35;        // Uniform ± fraction around the mean.

  // When > 0, thought lengths are lognormal with this sigma instead of
  // uniformly jittered — reasoning steps have heavy-tailed lengths in
  // practice, which is the output-length unpredictability §2.3 highlights.
  double thought_len_sigma = 0.0;
  int64_t thought_len_max = 4000;

  // Total requests one tree issues: sum of branching^level.
  int RequestsPerTree() const;
};

class ToTGenerator {
 public:
  ToTGenerator(const ToTConfig& config, uint64_t seed);

  struct Node {
    int level = 0;
    int parent = -1;   // Index into Tree::nodes; -1 for the root.
    TokenSeq prompt;   // Question + ancestor thoughts.
    TokenSeq output;   // This node's thought (ground truth).
  };

  struct Tree {
    SessionId session_id = 0;
    std::string routing_key;  // Question id (the paper's CH key for ToT).
    std::vector<Node> nodes;
    std::vector<std::vector<int>> levels;  // Node indices per level.
  };

  Tree MakeTree();

  const ToTConfig& config() const { return config_; }

 private:
  int64_t JitteredLen(int64_t mean);
  int64_t ThoughtLen();
  void AppendFresh(TokenSeq* seq, int64_t n);

  ToTConfig config_;
  Rng rng_;
  Token next_token_ = 1'000'000'000;  // Disjoint from conversation tokens.
  SessionId next_session_ = 1;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_TOT_H_
