#include "src/workload/diurnal.h"

#include <cassert>
#include <cmath>

namespace skywalker {
namespace {

// Circular distance between two hours on a 24h clock.
double WrapDistance(double a, double b) {
  double d = std::fabs(a - b);
  return std::min(d, 24.0 - d);
}

double GaussianBump(double hour, double center, double width) {
  double d = WrapDistance(hour, center);
  return std::exp(-(d * d) / (2.0 * width * width));
}

}  // namespace

DiurnalModel::DiurnalModel(std::vector<DiurnalRegionProfile> profiles)
    : profiles_(std::move(profiles)) {
  assert(!profiles_.empty());
}

double DiurnalModel::RateAt(size_t region, double utc_hour) const {
  const DiurnalRegionProfile& p = profiles_.at(region);
  double local = std::fmod(utc_hour + p.utc_offset_hours + 48.0, 24.0);
  double rate = p.base_rate;
  rate += p.work_peak_weight *
          GaussianBump(local, p.work_peak_local_hour, p.work_peak_width_hours);
  rate += p.evening_peak_weight * GaussianBump(local, p.evening_peak_local_hour,
                                               p.evening_peak_width_hours);
  return rate * p.scale;
}

BinnedSeries DiurnalModel::HourlySeries(size_t region,
                                        double peak_requests) const {
  // Normalize: the peak *within this region* maps to peak_requests.
  double peak = 0;
  for (int h = 0; h < 24; ++h) {
    peak = std::max(peak, RateAt(region, h + 0.5));
  }
  BinnedSeries series(24);
  for (int h = 0; h < 24; ++h) {
    series.Add(static_cast<size_t>(h),
               RateAt(region, h + 0.5) / peak * peak_requests);
  }
  return series;
}

double DiurnalModel::AggregateRateAt(double utc_hour) const {
  double total = 0;
  for (size_t r = 0; r < profiles_.size(); ++r) {
    total += RateAt(r, utc_hour);
  }
  return total;
}

BinnedSeries DiurnalModel::SampleDay(size_t region, double peak_requests,
                                     Rng& rng) const {
  BinnedSeries expected = HourlySeries(region, peak_requests);
  BinnedSeries sampled(24);
  for (size_t h = 0; h < 24; ++h) {
    sampled.Add(h, static_cast<double>(rng.Poisson(expected.bin(h))));
  }
  return sampled;
}

DiurnalModel DiurnalModel::WildChatCountries() {
  std::vector<DiurnalRegionProfile> profiles;
  auto make = [](std::string name, double utc_offset, double scale) {
    DiurnalRegionProfile p;
    p.name = std::move(name);
    p.utc_offset_hours = utc_offset;
    p.scale = scale;
    return p;
  };
  // Scales approximate Fig. 2's relative volumes (US/China ~8000 peak,
  // Russia ~6000, France ~2500, UK ~2000, Germany ~1500).
  profiles.push_back(make("United States", -6, 1.00));
  profiles.push_back(make("Russia", 3, 0.75));
  profiles.push_back(make("China", 8, 1.00));
  profiles.push_back(make("United Kingdom", 0, 0.25));
  profiles.push_back(make("Germany", 1, 0.19));
  profiles.push_back(make("France", 1, 0.31));
  return DiurnalModel(std::move(profiles));
}

DiurnalModel DiurnalModel::FiveCloudRegions() {
  // Cloud regions serve broader (multi-timezone) client populations than a
  // single country, so their profiles are wider and have a higher base load
  // than the Fig. 2 country profiles; the scales approximate Fig. 3a. The
  // five regions aggregate to a much flatter curve (paper: per-region
  // variance 2.88-32.64x collapses to 1.29x after aggregation).
  std::vector<DiurnalRegionProfile> profiles;
  auto make = [](std::string name, double utc_offset, double scale) {
    DiurnalRegionProfile p;
    p.name = std::move(name);
    p.utc_offset_hours = utc_offset;
    p.scale = scale;
    p.base_rate = 0.10;
    p.work_peak_width_hours = 3.0;
    p.evening_peak_width_hours = 2.5;
    p.evening_peak_weight = 0.4;
    return p;
  };
  // Offsets model the *client populations* each region serves (not the data
  // center's own timezone): us-west skews toward late Pacific traffic and
  // us-east-2 absorbs Asia-Pacific overflow in this WildChat subset, which
  // is what pushes the five peaks apart and makes the aggregate flat.
  profiles.push_back(make("us-east-1", -5, 1.00));
  profiles.push_back(make("us-west", -10, 0.55));
  profiles.push_back(make("eu-west", 0, 0.60));
  profiles.push_back(make("eu-central", 3, 0.45));
  profiles.push_back(make("us-east-2", 9, 0.50));
  return DiurnalModel(std::move(profiles));
}

}  // namespace skywalker
