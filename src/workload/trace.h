// Request-trace recording and replay.
//
// The paper's evaluation replays recorded traces (WildChat, ChatBot Arena)
// against live systems. This module provides the equivalent capability for
// the simulator: capture the exact request stream of any workload run
// (open- or closed-loop) and replay it open-loop against a different
// serving system — same prompts, same arrival times — so two systems can be
// compared under identical offered load rather than identical client
// behaviour.
//
// Traces serialize to a line-oriented text format (one record per line) so
// they can be saved, diffed, and shipped:
//   <submit_us> <user> <session> <region> <key> <prompt-len> <p0> ... <out-len> <o0> ...

#ifndef SKYWALKER_WORKLOAD_TRACE_H_
#define SKYWALKER_WORKLOAD_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/workload/client.h"
#include "src/workload/request.h"

namespace skywalker {

struct TraceEntry {
  SimTime submit_time = 0;
  UserId user_id = 0;
  SessionId session_id = 0;
  RegionId client_region = 0;
  std::string routing_key;
  TokenSeq prompt;
  TokenSeq output;
};

class Trace {
 public:
  Trace() = default;

  void Add(TraceEntry entry);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<TraceEntry>& entries() const { return entries_; }

  // Sorts entries by submit time (stable), required before Replay.
  void SortByTime();

  // Serialization (line format documented above).
  void Serialize(std::ostream& os) const;
  static StatusOr<Trace> Deserialize(std::istream& is);

  // Aggregate statistics for sanity-checking captured traces.
  struct Summary {
    size_t requests = 0;
    size_t users = 0;
    size_t sessions = 0;
    int64_t prompt_tokens = 0;
    int64_t output_tokens = 0;
    SimTime first_submit = 0;
    SimTime last_submit = 0;
  };
  Summary Summarize() const;

 private:
  std::vector<TraceEntry> entries_;
};

// MetricsSink tee that captures a trace from outcomes is not possible
// (outcomes lack prompts), so recording hooks into submission instead:
// a Frontend decorator that records every request passing through it and
// forwards to the real frontend.
class RecordingFrontend : public Frontend {
 public:
  RecordingFrontend(Frontend* wrapped, Trace* trace)
      : wrapped_(wrapped), trace_(trace) {}

  RegionId region() const override { return wrapped_->region(); }
  bool healthy() const override { return wrapped_->healthy(); }
  void HandleRequest(Request req, RequestCallbacks callbacks) override;

 private:
  Frontend* wrapped_;
  Trace* trace_;
};

// Resolver decorator: records through whichever frontend the inner resolver
// picks (keeps nearest-LB semantics intact).
class RecordingResolver : public FrontendResolver {
 public:
  RecordingResolver(FrontendResolver* inner, Trace* trace)
      : inner_(inner), trace_(trace) {}
  ~RecordingResolver() override;

  Frontend* Resolve(RegionId client_region) override;

 private:
  FrontendResolver* inner_;
  Trace* trace_;
  std::vector<std::unique_ptr<RecordingFrontend>> wrappers_;
};

// Open-loop replayer: submits every trace entry at its recorded time
// through the resolver, regardless of completion pace.
class TraceReplayer {
 public:
  TraceReplayer(Simulator* sim, Network* net, FrontendResolver* resolver,
                MetricsSink* metrics, const Trace* trace);

  // Schedules all submissions; results arrive as the simulation runs.
  // `time_scale` stretches (>1) or compresses (<1) inter-arrival gaps.
  void Start(double time_scale = 1.0);

  size_t submitted() const { return submitted_; }
  size_t completed() const { return completed_; }

 private:
  void SubmitEntry(const TraceEntry& entry);

  Simulator* sim_;
  Network* net_;
  FrontendResolver* resolver_;
  MetricsSink* metrics_;
  const Trace* trace_;
  size_t submitted_ = 0;
  size_t completed_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_TRACE_H_
