#include "src/workload/trace.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

namespace skywalker {

void Trace::Add(TraceEntry entry) { entries_.push_back(std::move(entry)); }

void Trace::SortByTime() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.submit_time < b.submit_time;
                   });
}

void Trace::Serialize(std::ostream& os) const {
  for (const TraceEntry& e : entries_) {
    os << e.submit_time << ' ' << e.user_id << ' ' << e.session_id << ' '
       << e.client_region << ' ' << e.routing_key << ' ' << e.prompt.size();
    for (Token t : e.prompt) {
      os << ' ' << t;
    }
    os << ' ' << e.output.size();
    for (Token t : e.output) {
      os << ' ' << t;
    }
    os << '\n';
  }
}

StatusOr<Trace> Trace::Deserialize(std::istream& is) {
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    TraceEntry e;
    size_t prompt_len = 0;
    size_t output_len = 0;
    if (!(ls >> e.submit_time >> e.user_id >> e.session_id >>
          e.client_region >> e.routing_key >> prompt_len)) {
      return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                  ": malformed header");
    }
    e.prompt.resize(prompt_len);
    for (size_t i = 0; i < prompt_len; ++i) {
      if (!(ls >> e.prompt[i])) {
        return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                    ": truncated prompt");
      }
    }
    if (!(ls >> output_len)) {
      return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                  ": missing output length");
    }
    e.output.resize(output_len);
    for (size_t i = 0; i < output_len; ++i) {
      if (!(ls >> e.output[i])) {
        return InvalidArgumentError("trace line " + std::to_string(line_no) +
                                    ": truncated output");
      }
    }
    trace.Add(std::move(e));
  }
  return trace;
}

Trace::Summary Trace::Summarize() const {
  Summary summary;
  summary.requests = entries_.size();
  std::vector<UserId> users;
  std::vector<SessionId> sessions;
  bool first = true;
  for (const TraceEntry& e : entries_) {
    users.push_back(e.user_id);
    sessions.push_back(e.session_id);
    summary.prompt_tokens += static_cast<int64_t>(e.prompt.size());
    summary.output_tokens += static_cast<int64_t>(e.output.size());
    if (first || e.submit_time < summary.first_submit) {
      summary.first_submit = e.submit_time;
    }
    if (first || e.submit_time > summary.last_submit) {
      summary.last_submit = e.submit_time;
    }
    first = false;
  }
  std::sort(users.begin(), users.end());
  summary.users = static_cast<size_t>(
      std::unique(users.begin(), users.end()) - users.begin());
  std::sort(sessions.begin(), sessions.end());
  summary.sessions = static_cast<size_t>(
      std::unique(sessions.begin(), sessions.end()) - sessions.begin());
  return summary;
}

void RecordingFrontend::HandleRequest(Request req, RequestCallbacks callbacks) {
  TraceEntry entry;
  entry.submit_time = req.submit_time;
  entry.user_id = req.user_id;
  entry.session_id = req.session_id;
  entry.client_region = req.client_region;
  entry.routing_key = req.routing_key;
  entry.prompt = req.prompt;
  entry.output = req.output;
  trace_->Add(std::move(entry));
  wrapped_->HandleRequest(std::move(req), std::move(callbacks));
}

RecordingResolver::~RecordingResolver() = default;

Frontend* RecordingResolver::Resolve(RegionId client_region) {
  Frontend* target = inner_->Resolve(client_region);
  if (target == nullptr) {
    return nullptr;
  }
  for (const auto& wrapper : wrappers_) {
    if (wrapper->region() == target->region() && wrapper->healthy()) {
      return wrapper.get();
    }
  }
  wrappers_.push_back(std::make_unique<RecordingFrontend>(target, trace_));
  return wrappers_.back().get();
}

TraceReplayer::TraceReplayer(Simulator* sim, Network* net,
                             FrontendResolver* resolver, MetricsSink* metrics,
                             const Trace* trace)
    : sim_(sim),
      net_(net),
      resolver_(resolver),
      metrics_(metrics),
      trace_(trace) {}

void TraceReplayer::Start(double time_scale) {
  for (const TraceEntry& entry : trace_->entries()) {
    SimTime at = static_cast<SimTime>(
        static_cast<double>(entry.submit_time) * time_scale);
    sim_->ScheduleAt(at, [this, &entry] { SubmitEntry(entry); });
  }
}

void TraceReplayer::SubmitEntry(const TraceEntry& entry) {
  Frontend* frontend = resolver_->Resolve(entry.client_region);
  if (frontend == nullptr) {
    return;  // No healthy frontend; open-loop replay drops the request.
  }
  Request req;
  req.id = NextRequestId();
  req.user_id = entry.user_id;
  req.session_id = entry.session_id;
  req.client_region = entry.client_region;
  req.routing_key = entry.routing_key;
  req.prompt = entry.prompt;
  req.output = entry.output;

  ++submitted_;
  RequestCallbacks callbacks;
  callbacks.on_complete = [this](const RequestOutcome& outcome) {
    ++completed_;
    if (metrics_ != nullptr) {
      metrics_->RecordOutcome(outcome);
    }
  };
  SubmitViaNetwork(net_, entry.client_region, frontend, std::move(req),
                   std::move(callbacks));
}

}  // namespace skywalker
