#include "src/workload/spec.h"

#include <cmath>

namespace skywalker {

WorkloadSpec& WorkloadSpec::ScaleClients(double factor) {
  for (ClientGroup& group : groups) {
    group.count = static_cast<int>(
        std::ceil(static_cast<double>(group.count) * factor));
  }
  return *this;
}

ClientConfig ChatClientConfig() {
  ClientConfig config;
  config.think_time_mean = Seconds(2);
  config.program_gap_mean = Seconds(2);
  return config;
}

ClientConfig ToTClientConfig() {
  ClientConfig config;
  config.think_time_mean = Milliseconds(200);
  config.program_gap_mean = Seconds(1);
  return config;
}

MacroWorkloadCase ArenaMacroCase(uint64_t seed) {
  MacroWorkloadCase wc;
  wc.name = "ChatBot Arena";
  wc.replicas_per_region = {3, 3, 2};  // §5.1 unbalanced configuration.
  wc.spec.conversation = ConversationWorkloadConfig::Arena();
  wc.spec.seed = seed;
  for (RegionId r = 0; r < 3; ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kConversation;
    group.region = r;
    group.count = 80;  // 80 ongoing conversations per region.
    group.client = ChatClientConfig();
    wc.spec.groups.push_back(group);
  }
  return wc;
}

MacroWorkloadCase WildChatMacroCase(uint64_t seed) {
  MacroWorkloadCase wc;
  wc.name = "WildChat";
  wc.replicas_per_region = {3, 3, 2};
  wc.spec.conversation = ConversationWorkloadConfig::WildChat();
  wc.spec.seed = seed;
  const int counts[3] = {40, 30, 30};  // 40 US / 30 EU / 30 Asia clients.
  for (RegionId r = 0; r < 3; ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kConversation;
    group.region = r;
    group.count = counts[r];
    group.client = ChatClientConfig();
    wc.spec.groups.push_back(group);
  }
  return wc;
}

MacroWorkloadCase ToTMacroCase(uint64_t seed) {
  MacroWorkloadCase wc;
  wc.name = "ToT";
  wc.replicas_per_region = {4, 4, 4};  // Balanced, 12 replicas.
  wc.spec.seed = seed;
  const int counts[3] = {40, 20, 20};  // 40 US / 20 EU / 20 Asia clients.
  for (RegionId r = 0; r < 3; ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kToT;
    group.region = r;
    group.count = counts[r];
    group.tot.depth = 4;
    group.tot.branching = 2;  // 15 requests per tree.
    group.tot.question_len_mean = 1200;  // Few-shot ToT prompting.
    group.tot.thought_len_mean = 200;
    group.client = ToTClientConfig();
    wc.spec.groups.push_back(group);
  }
  return wc;
}

MacroWorkloadCase MixedTreeMacroCase(uint64_t seed) {
  MacroWorkloadCase wc;
  wc.name = "Mixed Tree";
  wc.replicas_per_region = {4, 4, 4};
  wc.spec.seed = seed;
  // US: two clients issuing 4-branch trees (85 requests per tree).
  ClientGroup heavy;
  heavy.kind = ClientGroup::Kind::kToT;
  heavy.region = 0;
  heavy.count = 2;
  heavy.tot.depth = 4;
  heavy.tot.branching = 4;
  heavy.tot.question_len_mean = 1200;
  heavy.tot.thought_len_mean = 200;
  heavy.client = ToTClientConfig();
  wc.spec.groups.push_back(heavy);
  // Other regions: 20 clients each with 2-branch trees.
  for (RegionId r = 0; r < 3; ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kToT;
    group.region = r;
    group.count = 20;
    group.tot.depth = 4;
    group.tot.branching = 2;
    group.tot.question_len_mean = 1200;
    group.tot.thought_len_mean = 200;
    group.client = ToTClientConfig();
    wc.spec.groups.push_back(group);
  }
  return wc;
}

WorkloadSpec SkewedChatWorkload(const std::vector<int>& counts,
                                uint64_t seed) {
  WorkloadSpec spec;
  spec.conversation = ConversationWorkloadConfig::WildChat();
  spec.seed = seed;
  for (RegionId r = 0; r < static_cast<RegionId>(counts.size()); ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kConversation;
    group.region = r;
    group.count = counts[static_cast<size_t>(r)];
    group.client.think_time_mean = Seconds(2);
    group.client.program_gap_mean = Seconds(2);
    spec.groups.push_back(group);
  }
  return spec;
}

// (UniformChatWorkload pacing is 1 s think / 1 s gap, tighter than the chat
// preset, matching the ablation studies' historical setup.)
WorkloadSpec UniformChatWorkload(int clients_per_region, uint64_t seed) {
  WorkloadSpec spec;
  spec.conversation = ConversationWorkloadConfig::WildChat();
  spec.seed = seed;
  for (RegionId r = 0; r < 3; ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kConversation;
    group.region = r;
    group.count = clients_per_region;
    group.client.think_time_mean = Seconds(1);
    group.client.program_gap_mean = Seconds(1);
    spec.groups.push_back(group);
  }
  return spec;
}

}  // namespace skywalker
