// Workload specification and the canonical workload presets of the paper's
// evaluation (§5.1). WorkloadSpec/ClientGroup moved here from
// src/harness/experiment.h so the workload layer owns its own configuration
// and benchmark scenarios can share one set of paper-calibrated builders
// instead of copy-pasting client tables.

#ifndef SKYWALKER_WORKLOAD_SPEC_H_
#define SKYWALKER_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/workload/client.h"

namespace skywalker {

// One group of identical closed-loop clients in one region.
struct ClientGroup {
  enum class Kind { kConversation, kToT };
  Kind kind = Kind::kConversation;
  RegionId region = 0;
  int count = 0;
  ToTConfig tot;  // Used when kind == kToT.
  ClientConfig client;
};

struct WorkloadSpec {
  // Conversation groups share one generator (shared template pools drive
  // cross-user prefix similarity); configure it here.
  ConversationWorkloadConfig conversation;
  std::vector<ClientGroup> groups;
  uint64_t seed = 42;

  // Multiplies every group's client count by `factor` (rounding up, so no
  // group vanishes). Smoke runs shrink workloads through this.
  WorkloadSpec& ScaleClients(double factor);
};

// The paper's chat-interactivity pacing (Fig. 8 chat workloads).
ClientConfig ChatClientConfig();
// Agentic pacing: near-back-to-back tree expansions (Fig. 8 ToT workloads).
ClientConfig ToTClientConfig();

// One macrobenchmark column of Fig. 8: the workload plus the paper's
// replica placement for it.
struct MacroWorkloadCase {
  std::string name;
  WorkloadSpec spec;
  std::vector<int> replicas_per_region;
};

// The four Fig. 8 workloads, with their canonical seeds.
MacroWorkloadCase ArenaMacroCase(uint64_t seed);
MacroWorkloadCase WildChatMacroCase(uint64_t seed);
MacroWorkloadCase ToTMacroCase(uint64_t seed);
MacroWorkloadCase MixedTreeMacroCase(uint64_t seed);

// Regionally skewed WildChat load (Fig. 10 / migration ablation):
// `counts[r]` clients per region at chat pacing.
WorkloadSpec SkewedChatWorkload(const std::vector<int>& counts, uint64_t seed);

// Uniform WildChat load, `clients_per_region` per region, 1 s pacing
// (the ablation studies' base workload).
WorkloadSpec UniformChatWorkload(int clients_per_region, uint64_t seed);

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_SPEC_H_
