#include "src/workload/conversation.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"

namespace skywalker {

ConversationWorkloadConfig ConversationWorkloadConfig::Arena() {
  ConversationWorkloadConfig c;
  c.num_global_templates = 10;
  c.templates_per_region = 0;
  c.region_local_template_prob = 0.0;
  c.template_zipf_s = 1.3;
  c.no_template_prob = 0.08;
  c.turns_mean = 4;
  c.user_template_loyalty = 0.55;
  return c;
}

ConversationWorkloadConfig ConversationWorkloadConfig::WildChat() {
  ConversationWorkloadConfig c;
  c.num_global_templates = 40;
  c.templates_per_region = 10;
  c.region_local_template_prob = 0.75;
  c.template_zipf_s = 1.05;
  c.no_template_prob = 0.20;
  c.turns_mean = 4;
  c.user_template_loyalty = 0.6;
  return c;
}

ConversationGenerator::ConversationGenerator(
    const ConversationWorkloadConfig& config, size_t num_regions,
    uint64_t seed)
    : config_(config),
      num_regions_(num_regions),
      rng_(seed),
      lengths_(config.lengths),
      num_global_templates_(config.num_global_templates) {
  size_t total = static_cast<size_t>(config_.num_global_templates) +
                 num_regions_ * static_cast<size_t>(config_.templates_per_region);
  auto templates = std::make_shared<std::vector<TokenSeq>>();
  templates->reserve(total);
  for (size_t i = 0; i < total; ++i) {
    TokenSeq t;
    AppendFresh(&t, rng_.UniformInt(config_.template_len_min,
                                    config_.template_len_max));
    templates->push_back(std::move(t));
  }
  templates_ = std::move(templates);
}

ConversationGenerator::ConversationGenerator(const ConversationGenerator& base,
                                             uint64_t client_index,
                                             uint64_t client_seed)
    : config_(base.config_),
      num_regions_(base.num_regions_),
      rng_(client_seed),
      lengths_(base.config_.lengths),
      templates_(base.templates_),
      num_global_templates_(base.num_global_templates_) {
  // Disjoint id namespaces: fresh tokens live in a 2^32-wide per-client band
  // well above anything the base (template bank) allocated; user and session
  // ids get a million-wide band each.
  next_token_ = static_cast<Token>((client_index + 1) << 32);
  next_user_ = static_cast<UserId>((client_index + 1) * 1'000'000 + 1);
  next_session_ = static_cast<SessionId>((client_index + 1) * 1'000'000 + 1);
}

void ConversationGenerator::AppendFresh(TokenSeq* seq, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    seq->push_back(next_token_++);
  }
}

ConversationGenerator::UserProfile ConversationGenerator::MakeUser(
    RegionId region) {
  UserProfile user;
  user.user_id = next_user_++;
  user.region = region;
  user.routing_key = StrFormat("user-%ld", static_cast<long>(user.user_id));
  return user;
}

int ConversationGenerator::PickTemplate(const UserProfile& user) {
  if (rng_.Bernoulli(config_.no_template_prob)) {
    return -1;
  }
  auto it = user_last_template_.find(user.user_id);
  if (it != user_last_template_.end() && it->second >= 0 &&
      rng_.Bernoulli(config_.user_template_loyalty)) {
    return it->second;
  }
  bool use_local = config_.templates_per_region > 0 &&
                   rng_.Bernoulli(config_.region_local_template_prob);
  int pool_base;
  int pool_size;
  if (use_local) {
    pool_base = num_global_templates_ +
                static_cast<int>(user.region) * config_.templates_per_region;
    pool_size = config_.templates_per_region;
  } else {
    pool_base = 0;
    pool_size = num_global_templates_;
  }
  if (pool_size <= 0) {
    return -1;
  }
  int rank = static_cast<int>(rng_.Zipf(pool_size, config_.template_zipf_s));
  return pool_base + rank - 1;
}

ConversationGenerator::Conversation ConversationGenerator::MakeConversation(
    const UserProfile& user) {
  Conversation conv;
  conv.session_id = next_session_++;
  conv.template_id = PickTemplate(user);
  user_last_template_[user.user_id] = conv.template_id;

  int turns = static_cast<int>(rng_.Geometric(1.0 / config_.turns_mean));
  turns = std::clamp(turns, 1, config_.turns_max);

  TokenSeq context;
  if (conv.template_id >= 0) {
    context = (*templates_)[static_cast<size_t>(conv.template_id)];
  }
  conv.turns.reserve(static_cast<size_t>(turns));
  for (int t = 0; t < turns; ++t) {
    Turn turn;
    AppendFresh(&context, lengths_.SampleInputLen(rng_));
    turn.prompt = context;
    AppendFresh(&turn.output, lengths_.SampleOutputLen(rng_));
    context.insert(context.end(), turn.output.begin(), turn.output.end());
    conv.turns.push_back(std::move(turn));
  }
  return conv;
}

std::vector<ConversationGenerator::TraceRecord>
ConversationGenerator::GenerateTrace(const std::vector<RegionId>& user_regions,
                                     int conversations_per_user) {
  std::vector<TraceRecord> trace;
  for (RegionId region : user_regions) {
    UserProfile user = MakeUser(region);
    for (int c = 0; c < conversations_per_user; ++c) {
      Conversation conv = MakeConversation(user);
      for (const Turn& turn : conv.turns) {
        trace.push_back(
            TraceRecord{user.user_id, region, conv.session_id, turn.prompt});
      }
    }
  }
  return trace;
}

}  // namespace skywalker
