// Token-length distributions calibrated to the WildChat CDFs in Fig. 4a:
// inputs cluster in the tens-to-hundreds of tokens, outputs are heavier
// tailed (hundreds, with a tail into the thousands; clamped at a max).

#ifndef SKYWALKER_WORKLOAD_LENGTH_MODEL_H_
#define SKYWALKER_WORKLOAD_LENGTH_MODEL_H_

#include <cstdint>

#include "src/common/rng.h"

namespace skywalker {

struct LengthModelConfig {
  // Lognormal parameters for user-message (input) token counts.
  double input_mu = 4.3;     // median ~74 tokens
  double input_sigma = 1.0;
  int64_t input_min = 4;
  int64_t input_max = 8192;

  // Lognormal parameters for assistant-output token counts (heavier tail).
  double output_mu = 5.4;    // median ~221 tokens
  double output_sigma = 0.9;
  int64_t output_min = 8;
  int64_t output_max = 10000;
};

class LengthModel {
 public:
  explicit LengthModel(const LengthModelConfig& config = {})
      : config_(config) {}

  int64_t SampleInputLen(Rng& rng) const;
  int64_t SampleOutputLen(Rng& rng) const;

  const LengthModelConfig& config() const { return config_; }

 private:
  static int64_t Clamp(double v, int64_t lo, int64_t hi);

  LengthModelConfig config_;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_LENGTH_MODEL_H_
