#include "src/workload/tot.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/common/strings.h"

namespace skywalker {

int ToTConfig::RequestsPerTree() const {
  int total = 0;
  int level_size = 1;
  for (int l = 0; l < depth; ++l) {
    total += level_size;
    level_size *= branching;
  }
  return total;
}

ToTGenerator::ToTGenerator(const ToTConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  assert(config_.depth >= 1);
  assert(config_.branching >= 1);
}

int64_t ToTGenerator::JitteredLen(int64_t mean) {
  double lo = static_cast<double>(mean) * (1.0 - config_.len_jitter);
  double hi = static_cast<double>(mean) * (1.0 + config_.len_jitter);
  return std::max<int64_t>(4, static_cast<int64_t>(rng_.Uniform(lo, hi)));
}

int64_t ToTGenerator::ThoughtLen() {
  if (config_.thought_len_sigma <= 0) {
    return JitteredLen(config_.thought_len_mean);
  }
  double sigma = config_.thought_len_sigma;
  // mu such that the lognormal mean equals thought_len_mean.
  double mu = std::log(static_cast<double>(config_.thought_len_mean)) -
              sigma * sigma / 2.0;
  int64_t len = static_cast<int64_t>(rng_.LogNormal(mu, sigma));
  return std::clamp<int64_t>(len, 4, config_.thought_len_max);
}

void ToTGenerator::AppendFresh(TokenSeq* seq, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    seq->push_back(next_token_++);
  }
}

ToTGenerator::Tree ToTGenerator::MakeTree() {
  Tree tree;
  tree.session_id = next_session_++;
  tree.routing_key =
      StrFormat("question-%ld", static_cast<long>(tree.session_id));
  tree.levels.resize(static_cast<size_t>(config_.depth));

  // Root.
  Node root;
  root.level = 0;
  root.parent = -1;
  AppendFresh(&root.prompt, JitteredLen(config_.question_len_mean));
  AppendFresh(&root.output, ThoughtLen());
  tree.nodes.push_back(std::move(root));
  tree.levels[0].push_back(0);

  for (int level = 1; level < config_.depth; ++level) {
    for (int parent_idx : tree.levels[static_cast<size_t>(level - 1)]) {
      for (int b = 0; b < config_.branching; ++b) {
        Node child;
        child.level = level;
        child.parent = parent_idx;
        const Node& parent = tree.nodes[static_cast<size_t>(parent_idx)];
        child.prompt = parent.prompt;
        child.prompt.insert(child.prompt.end(), parent.output.begin(),
                            parent.output.end());
        AppendFresh(&child.output, ThoughtLen());
        int idx = static_cast<int>(tree.nodes.size());
        tree.nodes.push_back(std::move(child));
        tree.levels[static_cast<size_t>(level)].push_back(idx);
      }
    }
  }
  assert(static_cast<int>(tree.nodes.size()) == config_.RequestsPerTree());
  return tree;
}

}  // namespace skywalker
