// Multi-turn conversation synthesis (substitute for the WildChat and ChatBot
// Arena traces; see DESIGN.md §2).
//
// Structure that drives prefix locality, mirroring §3.2's measurement study:
//  * turn t's prompt = system template ⊕ U1 ⊕ A1 ⊕ ... ⊕ U_t, so prompts
//    within one conversation are exact prefixes of each other (within-user
//    similarity);
//  * conversations pick a shared system-prompt template (Zipf popularity),
//    giving partial cross-user similarity;
//  * template pools can be region-local, giving within-region > across-region
//    similarity (WildChat-Region in Fig. 5a).
//
// All "fresh" content tokens come from a monotonically increasing counter, so
// the only shared prefixes are the ones constructed deliberately — prefix
// statistics are exact, not accidental.

#ifndef SKYWALKER_WORKLOAD_CONVERSATION_H_
#define SKYWALKER_WORKLOAD_CONVERSATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/tokens.h"
#include "src/common/rng.h"
#include "src/net/topology.h"
#include "src/workload/length_model.h"
#include "src/workload/request.h"

namespace skywalker {

struct ConversationWorkloadConfig {
  // Shared system-prompt templates.
  int num_global_templates = 12;
  int templates_per_region = 0;            // 0 disables region-local pools.
  double region_local_template_prob = 0.0; // P(conversation uses local pool).
  double template_zipf_s = 1.15;           // Popularity skew inside a pool.
  int64_t template_len_min = 60;
  int64_t template_len_max = 480;
  double no_template_prob = 0.10;          // Conversation with no template.

  // Conversation shape.
  int turns_mean = 4;  // Geometric; >= 1.
  int turns_max = 12;
  double user_template_loyalty = 0.5;  // Reuse user's previous template.

  LengthModelConfig lengths;

  // Preset approximating ChatBot Arena (single global template pool;
  // within-user 20.5% vs across-user 8.3% in the paper).
  static ConversationWorkloadConfig Arena();

  // Preset approximating WildChat (region-local template pools; within-user
  // 19.0% vs across-user 2.5%, within-region 10.9% vs across 2.5%).
  static ConversationWorkloadConfig WildChat();
};

class ConversationGenerator {
 public:
  ConversationGenerator(const ConversationWorkloadConfig& config,
                        size_t num_regions, uint64_t seed);

  // Per-client fork (sharded fleet runs): shares `base`'s immutable template
  // bank (no copy — the bank can be hundreds of MB across thousands of
  // clients) but draws from its own RNG stream and from disjoint token /
  // user / session namespaces, so each client's stream is a pure function of
  // (base workload, client_index, client_seed) — independent of the order
  // clients run in. The base generator must not be used for conversations
  // once forked fleets rely on namespace disjointness.
  ConversationGenerator(const ConversationGenerator& base,
                        uint64_t client_index, uint64_t client_seed);

  struct Turn {
    TokenSeq prompt;  // Full context: template + all prior turns + new msg.
    TokenSeq output;  // Assistant reply (ground truth for the simulator).
  };

  struct Conversation {
    SessionId session_id = 0;
    int template_id = -1;  // -1: no shared template.
    std::vector<Turn> turns;
  };

  struct UserProfile {
    UserId user_id = 0;
    RegionId region = kInvalidRegion;
    std::string routing_key;  // Hashed-IP-style key for consistent hashing.
  };

  UserProfile MakeUser(RegionId region);

  // Generates a full conversation for `user` (template loyalty tracked
  // per-user across calls).
  Conversation MakeConversation(const UserProfile& user);

  // Convenience for trace-analysis benches: users*convs_per_user
  // conversations for a region population.
  struct TraceRecord {
    UserId user_id;
    RegionId region;
    SessionId session_id;
    TokenSeq prompt;
  };
  std::vector<TraceRecord> GenerateTrace(
      const std::vector<RegionId>& user_regions, int conversations_per_user);

  const ConversationWorkloadConfig& config() const { return config_; }

 private:
  // Appends `n` fresh (globally unique) tokens to `seq`.
  void AppendFresh(TokenSeq* seq, int64_t n);

  // Chooses a template id for a new conversation of `user`; -1 for none.
  int PickTemplate(const UserProfile& user);

  ConversationWorkloadConfig config_;
  size_t num_regions_;
  Rng rng_;
  LengthModel lengths_;

  // Template id space: [0, num_global) are global; then region pools follow.
  // Immutable after construction; shared across per-client forks.
  std::shared_ptr<const std::vector<TokenSeq>> templates_;
  int num_global_templates_;

  Token next_token_ = 1;
  UserId next_user_ = 1;
  SessionId next_session_ = 1;
  std::map<UserId, int> user_last_template_;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_CONVERSATION_H_
