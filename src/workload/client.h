// Closed-loop client actors. Each client runs one program at a time (paper
// §5.1): a multi-turn conversation issued turn-by-turn, or a Tree-of-Thoughts
// tree issued level-by-level with concurrent siblings.
//
// Clients resolve a frontend through a FrontendResolver (the DNS layer) and
// submit over the network model, so TTFT measured at the client includes the
// client↔LB and LB↔replica paths exactly as in the paper's testbed.

#ifndef SKYWALKER_WORKLOAD_CLIENT_H_
#define SKYWALKER_WORKLOAD_CLIENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/workload/conversation.h"
#include "src/workload/request.h"
#include "src/workload/tot.h"

namespace skywalker {

// Destination for completed-request records; implemented by
// analysis::MetricsCollector. Kept abstract here so workload does not depend
// on the analysis library.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void RecordOutcome(const RequestOutcome& outcome) = 0;
};

// Globally unique request ids (single-threaded simulation).
RequestId NextRequestId();

// Stamps submit_time and delivers the request to the frontend after the
// client→frontend one-way latency.
void SubmitViaNetwork(Network* net, RegionId client_region, Frontend* frontend,
                      Request req, RequestCallbacks callbacks);

struct ClientConfig {
  SimDuration think_time_mean = Seconds(2);        // Between turns.
  SimDuration program_gap_mean = Seconds(3);       // Between programs.
  SimTime stop_issuing_after = kSimTimeMax;        // No new requests after.
  // Nonzero: the client draws ids from its own private range starting here
  // instead of the global atomic counter — required for run-to-run
  // determinism when clients execute on parallel simulator shards. Ranges
  // of distinct clients must not overlap.
  RequestId request_id_base = 0;
};

// Issues conversations sequentially: submit turn, await completion, think,
// next turn; new conversation when the previous ends.
class ConversationClient {
 public:
  ConversationClient(Simulator* sim, Network* net, FrontendResolver* resolver,
                     ConversationGenerator* generator, MetricsSink* metrics,
                     RegionId region, const ClientConfig& config,
                     uint64_t seed);

  // Begins the first conversation after `initial_delay`.
  void Start(SimDuration initial_delay = 0);

  size_t completed_requests() const { return completed_requests_; }
  size_t completed_conversations() const { return completed_conversations_; }
  size_t errors() const { return errors_; }
  // Submissions handed to the network (retries count again). Every issued
  // request eventually completes or errors; after a full drain,
  // issued - completed - errors is the number of requests swallowed by the
  // system — the lost-forever count the resilience scenarios assert on.
  size_t issued_requests() const { return issued_requests_; }

 private:
  void BeginConversation();
  void IssueTurn();
  void OnTurnComplete(const RequestOutcome& outcome);

  Simulator* sim_;
  Network* net_;
  FrontendResolver* resolver_;
  ConversationGenerator* generator_;
  MetricsSink* metrics_;
  RegionId region_;
  ClientConfig config_;
  Rng rng_;

  ConversationGenerator::UserProfile user_;
  ConversationGenerator::Conversation current_;
  RequestId next_request_id_ = 0;  // Private-range mode only.
  size_t next_turn_ = 0;
  size_t issued_requests_ = 0;
  size_t completed_requests_ = 0;
  size_t completed_conversations_ = 0;
  size_t errors_ = 0;
};

// Issues one ToT tree at a time: all nodes of a level concurrently, next
// level once every node of the current level completed.
class ToTClient {
 public:
  ToTClient(Simulator* sim, Network* net, FrontendResolver* resolver,
            ToTGenerator* generator, MetricsSink* metrics, RegionId region,
            const ClientConfig& config, uint64_t seed);

  void Start(SimDuration initial_delay = 0);

  size_t completed_requests() const { return completed_requests_; }
  size_t completed_trees() const { return completed_trees_; }

 private:
  void BeginTree();
  void IssueLevel();
  void OnNodeComplete(const RequestOutcome& outcome);

  Simulator* sim_;
  Network* net_;
  FrontendResolver* resolver_;
  ToTGenerator* generator_;
  MetricsSink* metrics_;
  RegionId region_;
  ClientConfig config_;
  Rng rng_;

  UserId user_id_;
  std::string routing_key_base_;
  RequestId next_request_id_ = 0;  // Private-range mode only.
  ToTGenerator::Tree current_;
  int current_level_ = 0;
  size_t level_pending_ = 0;
  size_t completed_requests_ = 0;
  size_t completed_trees_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_CLIENT_H_
