#include "src/workload/client.h"

#include <atomic>
#include <utility>

#include "src/common/logging.h"
#include "src/obs/trace.h"

namespace skywalker {

RequestId NextRequestId() {
  // Atomic because skybench runs independent simulator cells on a thread
  // pool. Ids only label requests (no routing or ordering decision reads
  // them), so cross-cell allocation order does not affect results — the
  // determinism tests verify byte-identical output across thread counts.
  static std::atomic<RequestId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void SubmitViaNetwork(Network* net, RegionId client_region, Frontend* frontend,
                      Request req, RequestCallbacks callbacks) {
  Simulator* sim = net->SimForRegion(client_region);
  req.submit_time = sim->now();
  if (Tracer* t = sim->tracer()) {
    EmitTrace(t, req.submit_time, TraceEventType::kSubmit, client_region,
              kInvalidReplica, static_cast<int64_t>(req.id),
              req.prompt_tokens());
  }
  RegionId to = frontend->region();
  net->Send(client_region, to,
            [frontend, req = std::move(req),
             callbacks = std::move(callbacks)]() mutable {
              frontend->HandleRequest(std::move(req), std::move(callbacks));
            });
}

ConversationClient::ConversationClient(
    Simulator* sim, Network* net, FrontendResolver* resolver,
    ConversationGenerator* generator, MetricsSink* metrics, RegionId region,
    const ClientConfig& config, uint64_t seed)
    : sim_(sim),
      net_(net),
      resolver_(resolver),
      generator_(generator),
      metrics_(metrics),
      region_(region),
      config_(config),
      rng_(seed) {
  user_ = generator_->MakeUser(region_);
  next_request_id_ = config_.request_id_base;
}

void ConversationClient::Start(SimDuration initial_delay) {
  // Keyed-ordering scope (no-op in plain mode): the kickoff event belongs
  // to this client's region.
  sim_->SetCurrentRegion(region_);
  sim_->ScheduleAfter(initial_delay, [this] { BeginConversation(); });
}

void ConversationClient::BeginConversation() {
  if (sim_->now() > config_.stop_issuing_after) {
    return;
  }
  current_ = generator_->MakeConversation(user_);
  next_turn_ = 0;
  IssueTurn();
}

void ConversationClient::IssueTurn() {
  if (sim_->now() > config_.stop_issuing_after) {
    return;
  }
  const auto& turn = current_.turns[next_turn_];
  Request req;
  req.id = config_.request_id_base == 0 ? NextRequestId() : next_request_id_++;
  req.user_id = user_.user_id;
  req.session_id = current_.session_id;
  req.client_region = region_;
  req.prompt = turn.prompt;
  req.output = turn.output;
  req.routing_key = user_.routing_key;

  RequestCallbacks callbacks;
  callbacks.on_complete = [this](const RequestOutcome& outcome) {
    OnTurnComplete(outcome);
  };
  callbacks.on_error = [this] {
    // Re-resolve DNS after a short backoff and retry the same turn.
    ++errors_;
    sim_->ScheduleAfter(Milliseconds(500), [this] { IssueTurn(); });
  };
  Frontend* frontend = resolver_->Resolve(region_);
  if (frontend == nullptr) {
    // No healthy frontend; retry after a backoff (DNS re-resolution).
    sim_->ScheduleAfter(Seconds(1), [this] { IssueTurn(); });
    return;
  }
  ++issued_requests_;
  SubmitViaNetwork(net_, region_, frontend, std::move(req),
                   std::move(callbacks));
}

void ConversationClient::OnTurnComplete(const RequestOutcome& outcome) {
  ++completed_requests_;
  if (metrics_ != nullptr) {
    metrics_->RecordOutcome(outcome);
  }
  ++next_turn_;
  if (next_turn_ < current_.turns.size()) {
    SimDuration think = static_cast<SimDuration>(
        rng_.Exponential(1.0 / ToSeconds(config_.think_time_mean)) * 1e6);
    sim_->ScheduleAfter(think, [this] { IssueTurn(); });
  } else {
    ++completed_conversations_;
    SimDuration gap = static_cast<SimDuration>(
        rng_.Exponential(1.0 / ToSeconds(config_.program_gap_mean)) * 1e6);
    sim_->ScheduleAfter(gap, [this] { BeginConversation(); });
  }
}

ToTClient::ToTClient(Simulator* sim, Network* net, FrontendResolver* resolver,
                     ToTGenerator* generator, MetricsSink* metrics,
                     RegionId region, const ClientConfig& config,
                     uint64_t seed)
    : sim_(sim),
      net_(net),
      resolver_(resolver),
      generator_(generator),
      metrics_(metrics),
      region_(region),
      config_(config),
      rng_(seed) {
  user_id_ = static_cast<UserId>(rng_.Next() >> 1);
  next_request_id_ = config_.request_id_base;
}

void ToTClient::Start(SimDuration initial_delay) {
  sim_->SetCurrentRegion(region_);
  sim_->ScheduleAfter(initial_delay, [this] { BeginTree(); });
}

void ToTClient::BeginTree() {
  if (sim_->now() > config_.stop_issuing_after) {
    return;
  }
  current_ = generator_->MakeTree();
  current_level_ = 0;
  IssueLevel();
}

void ToTClient::IssueLevel() {
  const auto& level =
      current_.levels[static_cast<size_t>(current_level_)];
  level_pending_ = level.size();
  Frontend* frontend = resolver_->Resolve(region_);
  if (frontend == nullptr) {
    sim_->ScheduleAfter(Seconds(1), [this] { IssueLevel(); });
    return;
  }
  for (int node_idx : level) {
    const auto& node = current_.nodes[static_cast<size_t>(node_idx)];
    Request req;
    req.id =
        config_.request_id_base == 0 ? NextRequestId() : next_request_id_++;
    req.user_id = user_id_;
    req.session_id = current_.session_id;
    req.client_region = region_;
    req.prompt = node.prompt;
    req.output = node.output;
    req.routing_key = current_.routing_key;

    RequestCallbacks callbacks;
    callbacks.on_complete = [this](const RequestOutcome& outcome) {
      OnNodeComplete(outcome);
    };
    SubmitViaNetwork(net_, region_, frontend, std::move(req),
                     std::move(callbacks));
  }
}

void ToTClient::OnNodeComplete(const RequestOutcome& outcome) {
  ++completed_requests_;
  if (metrics_ != nullptr) {
    metrics_->RecordOutcome(outcome);
  }
  SKYWALKER_CHECK(level_pending_ > 0);
  if (--level_pending_ > 0) {
    return;
  }
  ++current_level_;
  if (current_level_ < static_cast<int>(current_.levels.size())) {
    IssueLevel();
  } else {
    ++completed_trees_;
    SimDuration gap = static_cast<SimDuration>(
        rng_.Exponential(1.0 / ToSeconds(config_.program_gap_mean)) * 1e6);
    sim_->ScheduleAfter(gap, [this] { BeginTree(); });
  }
}

}  // namespace skywalker
