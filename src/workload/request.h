// Request vocabulary shared by clients, load balancers and replicas.
//
// A Request carries the full prompt as token ids plus the ground-truth output
// tokens the model "will generate". The output is invisible to the serving
// system until generated (routers cannot see output length in advance —
// the unpredictability that motivates selective pushing, §2.3); carrying it
// in the request lets the replica simulator produce the exact continuation
// that the client then folds into the next conversation turn, which is what
// makes KV prefix reuse across turns exact.

#ifndef SKYWALKER_WORKLOAD_REQUEST_H_
#define SKYWALKER_WORKLOAD_REQUEST_H_

#include <cstdint>
#include <functional>
#include <string>

#include "src/cache/tokens.h"
#include "src/common/sim_time.h"
#include "src/net/topology.h"

namespace skywalker {

using RequestId = uint64_t;
using UserId = int64_t;
using SessionId = int64_t;
using ReplicaId = int32_t;
using LbId = int32_t;

inline constexpr ReplicaId kInvalidReplica = -1;
inline constexpr LbId kInvalidLb = -1;

struct Request {
  RequestId id = 0;
  UserId user_id = 0;
  SessionId session_id = 0;
  RegionId client_region = kInvalidRegion;
  TokenSeq prompt;
  TokenSeq output;          // Ground truth; see file comment.
  std::string routing_key;  // Consistent-hashing key (user or session id).
  SimTime submit_time = 0;  // Stamped when the client sends the request.

  int64_t prompt_tokens() const { return static_cast<int64_t>(prompt.size()); }
  int64_t output_tokens() const { return static_cast<int64_t>(output.size()); }
};

// Everything the experiment harness needs to know about one finished (or
// first-token) request. Timestamps are client-observed (network included).
struct RequestOutcome {
  RequestId id = 0;
  UserId user_id = 0;
  RegionId client_region = kInvalidRegion;
  RegionId served_region = kInvalidRegion;
  ReplicaId replica = kInvalidReplica;
  SimTime submit_time = 0;
  SimTime first_token_time = 0;  // TTFT = first_token_time - submit_time.
  SimTime completion_time = 0;
  int64_t prompt_tokens = 0;
  int64_t cached_prompt_tokens = 0;  // KV prefix-cache hit length.
  int64_t output_tokens = 0;
  int hops = 1;            // LB hops traversed (1 local, 2 forwarded).
  bool forwarded = false;  // Served outside the client's first-contact LB.
};

struct RequestCallbacks {
  // Both fire at the client (response-path network latency applied by the
  // serving system). on_first_token carries a partially filled outcome.
  std::function<void(const RequestOutcome&)> on_first_token;
  std::function<void(const RequestOutcome&)> on_complete;
  // The serving side rejected or dropped the request (e.g. LB failure).
  // Clients re-resolve DNS and retry.
  std::function<void()> on_error;
};

// A network-reachable request entry point (a load balancer). Clients invoke
// HandleRequest *after* modelling client->frontend latency (see
// SubmitViaNetwork in client.h).
class Frontend {
 public:
  virtual ~Frontend() = default;

  // Region where this frontend runs (for latency computation).
  virtual RegionId region() const = 0;

  // Request arrival at the frontend.
  virtual void HandleRequest(Request req, RequestCallbacks callbacks) = 0;

  // True when the frontend can currently accept traffic (health/DNS).
  virtual bool healthy() const { return true; }
};

// Maps a client region to the frontend it should contact (the DNS layer in
// the paper's architecture, Figure 7).
class FrontendResolver {
 public:
  virtual ~FrontendResolver() = default;
  virtual Frontend* Resolve(RegionId client_region) = 0;
};

// Trivial resolver: every client talks to one fixed frontend (the
// centralized-baseline deployment, Figure 1(b)).
class SingleFrontendResolver : public FrontendResolver {
 public:
  explicit SingleFrontendResolver(Frontend* frontend) : frontend_(frontend) {}
  Frontend* Resolve(RegionId /*client_region*/) override {
    return frontend_;
  }

 private:
  Frontend* frontend_;
};

}  // namespace skywalker

#endif  // SKYWALKER_WORKLOAD_REQUEST_H_
