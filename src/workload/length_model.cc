#include "src/workload/length_model.h"

#include <algorithm>

namespace skywalker {

int64_t LengthModel::Clamp(double v, int64_t lo, int64_t hi) {
  int64_t n = static_cast<int64_t>(v);
  return std::max(lo, std::min(hi, n));
}

int64_t LengthModel::SampleInputLen(Rng& rng) const {
  return Clamp(rng.LogNormal(config_.input_mu, config_.input_sigma),
               config_.input_min, config_.input_max);
}

int64_t LengthModel::SampleOutputLen(Rng& rng) const {
  return Clamp(rng.LogNormal(config_.output_mu, config_.output_sigma),
               config_.output_min, config_.output_max);
}

}  // namespace skywalker
