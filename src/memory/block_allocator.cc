#include "src/memory/block_allocator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace skywalker {

BlockAllocator::BlockAllocator(int64_t capacity_blocks)
    : capacity_blocks_(capacity_blocks) {
  SKYWALKER_CHECK(capacity_blocks > 0) << "allocator needs capacity";
}

BlockId BlockAllocator::Allocate() {
  BlockId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<BlockId>(refs_.size());
    refs_.push_back(0);
  }
  refs_[static_cast<size_t>(id)] = 1;
  ++used_blocks_;
  ++stats_.allocated;
  stats_.peak_used_blocks = std::max(stats_.peak_used_blocks, used_blocks_);
  return id;
}

void BlockAllocator::AddRef(BlockId id) {
  SKYWALKER_CHECK(refs_[static_cast<size_t>(id)] > 0) << "addref dead block";
  ++refs_[static_cast<size_t>(id)];
}

bool BlockAllocator::Release(BlockId id) {
  int32_t& ref = refs_[static_cast<size_t>(id)];
  SKYWALKER_CHECK(ref > 0) << "release dead block";
  if (--ref > 0) {
    return false;
  }
  free_list_.push_back(id);
  --used_blocks_;
  ++stats_.freed;
  return true;
}

void BlockAllocator::Reserve(int64_t blocks) {
  refs_.reserve(static_cast<size_t>(blocks));
  free_list_.reserve(static_cast<size_t>(blocks));
}

bool BlockAllocator::CheckInvariants() const {
  int64_t live = 0;
  for (int32_t ref : refs_) {
    if (ref < 0) {
      return false;
    }
    if (ref > 0) {
      ++live;
    }
  }
  if (live != used_blocks_) {
    return false;
  }
  if (free_list_.size() != refs_.size() - static_cast<size_t>(live)) {
    return false;
  }
  for (BlockId id : free_list_) {
    if (refs_[static_cast<size_t>(id)] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace skywalker
