#include "src/memory/block_allocator.h"

#include <algorithm>

#include "src/common/logging.h"

namespace skywalker {

BlockAllocator::BlockAllocator(int64_t capacity_blocks)
    : capacity_blocks_(capacity_blocks) {
  SKYWALKER_CHECK(capacity_blocks > 0) << "allocator needs capacity";
}

void BlockAllocator::Reserve(int64_t blocks) {
  refs_.reserve(static_cast<size_t>(blocks));
  free_list_.reserve(static_cast<size_t>(blocks));
}

void BlockAllocator::AllocateSpan(int64_t n, BlockId* out) {
  int64_t i = 0;
  const int64_t from_free =
      std::min<int64_t>(n, static_cast<int64_t>(free_list_.size()));
  for (; i < from_free; ++i) {
    BlockId id = free_list_.back();
    free_list_.pop_back();
    refs_[static_cast<size_t>(id)] = 1;
    out[i] = id;
  }
  for (; i < n; ++i) {
    BlockId id = static_cast<BlockId>(refs_.size());
    refs_.push_back(1);
    out[i] = id;
  }
  used_blocks_ += n;
  stats_.allocated += n;
  stats_.peak_used_blocks = std::max(stats_.peak_used_blocks, used_blocks_);
}

int64_t BlockAllocator::ReleaseSpan(const BlockId* ids, int64_t n) {
  int64_t freed = 0;
  for (int64_t i = 0; i < n; ++i) {
    int32_t& ref = refs_[static_cast<size_t>(ids[i])];
    SKYWALKER_CHECK(ref > 0) << "release dead block";
    if (--ref == 0) {
      free_list_.push_back(ids[i]);
      ++freed;
    }
  }
  used_blocks_ -= freed;
  stats_.freed += freed;
  return freed;
}

int64_t BlockAllocator::live_refs() const {
  int64_t total = 0;
  for (int32_t ref : refs_) {
    total += ref;
  }
  return total;
}

bool BlockAllocator::CheckInvariants() const {
  int64_t live = 0;
  for (int32_t ref : refs_) {
    if (ref < 0) {
      return false;
    }
    if (ref > 0) {
      ++live;
    }
  }
  if (live != used_blocks_) {
    return false;
  }
  if (free_list_.size() != refs_.size() - static_cast<size_t>(live)) {
    return false;
  }
  for (BlockId id : free_list_) {
    if (refs_[static_cast<size_t>(id)] != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace skywalker
