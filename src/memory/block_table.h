// Per-sequence KV page table (ISSUE 4/5): the ordered list of blocks
// holding one logical token span, vLLM block-table style.
//
// A table owns one reference on each of its blocks. Growth fills the
// partially-used tail block before allocating a new one; a *shared* partial
// tail (refcount > 1, i.e. a copy-on-write fork boundary) is duplicated
// first — the CoW copy the paper-adjacent systems pay on fork divergence —
// so writers never mutate pages a sibling still reads. The one exception is
// the page a sequence shares with the prefix cache after publishing its
// prompt (ISSUE 5): the cache owns the page's earlier slots and the
// sequence extends into the free tail slots, which is slot-disjoint and
// needs no copy; `set_cow_exempt` marks that page.
//
// Since ISSUE 5 tables are *path-aligned*: a sequence whose private span
// starts at token position `base` of its radix path carries
// `skew = base % block_size`, so its block boundaries coincide with the
// prefix cache's per-node block spans and publishing a prompt is a
// reference transfer (the cache AddRefs the very pages the sequence
// filled), not a copy. `ReleasePrefix` then drops the published front of
// the table, keeping any straddled boundary page shared with the cache.
// With block_size == 1 the skew is always zero and every operation reduces
// to the seed token arithmetic.
//
// `ForkFrom` shares a prefix of another table by taking references, which
// is how prefix reuse maps to block refs instead of token copies. Internal
// fragmentation (allocated-but-unfilled slots, counting the skewed head) is
// observable per table; the *exact* global figure lives with the replica,
// which sees both sides of every shared page.
//
// Tables keep their vector capacity across Clear() so pooled reuse
// (KvController's sequence slots) stays allocation-free in steady state.

#ifndef SKYWALKER_MEMORY_BLOCK_TABLE_H_
#define SKYWALKER_MEMORY_BLOCK_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/memory/block_allocator.h"

namespace skywalker {

class BlockTable {
 public:
  int64_t num_tokens() const { return tokens_; }
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }
  const std::vector<BlockId>& blocks() const { return blocks_; }
  int32_t skew() const { return skew_; }

  int64_t padded_tokens(int32_t block_size) const {
    return num_blocks() * block_size;
  }
  // Slack slots assuming sole ownership: the skewed head (slots below the
  // path-aligned start) plus the unfilled tail. Overcounts pages shared
  // with the prefix cache, whose slots the cache occupies; the replica owns
  // the exact global figure.
  int64_t fragmentation_tokens(int32_t block_size) const {
    return padded_tokens(block_size) - skew_ - tokens_;
  }

  // Sets the path alignment of the table's first token (base % block_size).
  // Only valid on an empty table.
  void SetSkew(int32_t skew);

  // Marks `id` as exempt from the CoW-on-shared-tail rule: the sequence
  // extends into free slots of a page the prefix cache references (slot-
  // disjoint, no copy needed). The exemption only matters while the page is
  // the tail; it is cleared when the table releases the page (prefix drop,
  // truncate, clear), so a recycled id can never inherit it.
  void set_cow_exempt(BlockId id) { cow_exempt_ = id; }

  // Appends `tokens`, allocating blocks as needed. A shared partial tail is
  // copy-on-write duplicated before being written into (unless exempt, see
  // above). Returns the net number of blocks allocated (CoW replacement
  // allocates one without changing the block count).
  int64_t Append(BlockAllocator& alloc, int32_t block_size, int64_t tokens);

  // Becomes a fork of `parent`'s first `tokens` tokens by taking references
  // on the covering blocks (inheriting the parent's skew). The table must
  // be empty.
  void ForkFrom(BlockAllocator& alloc, const BlockTable& parent,
                int32_t block_size, int64_t tokens);

  // Drops the last `tokens` tokens, releasing blocks that become empty.
  // Returns the number of references released.
  int64_t Truncate(BlockAllocator& alloc, int32_t block_size, int64_t tokens);

  // Drops the first `tokens` tokens (the span just published to the prefix
  // cache): releases references on blocks fully before the new start and
  // advances the skew, keeping a straddled boundary page (now shared with
  // the cache) referenced. Returns the number of references released.
  int64_t ReleasePrefix(BlockAllocator& alloc, int32_t block_size,
                        int64_t tokens);

  // Releases every block reference; keeps vector capacity for reuse.
  // Returns the number of references released.
  int64_t Clear(BlockAllocator& alloc);

 private:
  std::vector<BlockId> blocks_;
  int64_t tokens_ = 0;
  int32_t skew_ = 0;
  BlockId cow_exempt_ = kInvalidBlockId;
};

// Inline: the decode loop appends one token per generated token per
// sequence (ISSUE 10 — tens of millions of calls per benchmark cell).
inline int64_t BlockTable::Append(BlockAllocator& alloc, int32_t block_size,
                                  int64_t tokens) {
  SKYWALKER_CHECK(tokens >= 0);
  if (tokens == 0) {
    return 0;
  }
  int64_t allocated = 0;
  // Free slots in the current tail block (skew slots belong to the cached
  // prefix frame, not to this table; an empty skewed table has no tail
  // block yet, so nothing is available).
  int64_t avail = blocks_.empty()
                      ? 0
                      : num_blocks() * block_size - skew_ - tokens_;
  if (avail > 0 && alloc.ref_count(blocks_.back()) > 1 &&
      blocks_.back() != cow_exempt_) {
    // Copy-on-write: the partial tail is shared with a fork; duplicate it
    // before writing. (Full shared blocks are immutable and stay shared;
    // the cache-shared boundary page is exempt — extension there fills
    // slots the cache never reads.)
    alloc.Release(blocks_.back());
    blocks_.back() = alloc.Allocate();
    alloc.NoteCowCopy();
    ++allocated;
  }
  int64_t remaining = tokens - (avail < tokens ? avail : tokens);
  while (remaining > 0) {
    blocks_.push_back(alloc.Allocate());
    ++allocated;
    remaining -= block_size < remaining ? block_size : remaining;
  }
  tokens_ += tokens;
  return allocated;
}

}  // namespace skywalker

#endif  // SKYWALKER_MEMORY_BLOCK_TABLE_H_
