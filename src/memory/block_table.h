// Per-sequence KV page table (ISSUE 4): the ordered list of blocks holding
// one logical token sequence, vLLM block-table style.
//
// A table owns one reference on each of its blocks. Growth fills the
// partially-used tail block before allocating a new one; a *shared* partial
// tail (refcount > 1, i.e. a copy-on-write fork boundary) is duplicated
// first — the CoW copy the paper-adjacent systems pay on fork divergence —
// so writers never mutate pages a sibling still reads.
//
// `ForkFrom` shares a prefix of another table by taking references, which
// is how prefix reuse maps to block refs instead of token copies. Internal
// fragmentation (allocated-but-unfilled tail slots) is observable per table
// and aggregated by the KvController into the replica's load snapshot.
//
// Tables keep their vector capacity across Clear() so pooled reuse
// (KvController's sequence slots) stays allocation-free in steady state.

#ifndef SKYWALKER_MEMORY_BLOCK_TABLE_H_
#define SKYWALKER_MEMORY_BLOCK_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/memory/block_allocator.h"

namespace skywalker {

class BlockTable {
 public:
  int64_t num_tokens() const { return tokens_; }
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }
  const std::vector<BlockId>& blocks() const { return blocks_; }

  int64_t padded_tokens(int32_t block_size) const {
    return num_blocks() * block_size;
  }
  // Allocated-but-unfilled tail slots; zero when block_size == 1.
  int64_t fragmentation_tokens(int32_t block_size) const {
    return padded_tokens(block_size) - tokens_;
  }

  // Appends `tokens`, allocating blocks as needed. A shared partial tail is
  // copy-on-write duplicated before being written into. Returns the net
  // number of blocks allocated (CoW replacement allocates one without
  // changing the block count).
  int64_t Append(BlockAllocator& alloc, int32_t block_size, int64_t tokens);

  // Becomes a fork of `parent`'s first `tokens` tokens by taking references
  // on the covering blocks. The table must be empty.
  void ForkFrom(BlockAllocator& alloc, const BlockTable& parent,
                int32_t block_size, int64_t tokens);

  // Drops the last `tokens` tokens, releasing blocks that become empty.
  // Returns the number of references released.
  int64_t Truncate(BlockAllocator& alloc, int32_t block_size, int64_t tokens);

  // Releases every block reference; keeps vector capacity for reuse.
  // Returns the number of references released.
  int64_t Clear(BlockAllocator& alloc);

 private:
  std::vector<BlockId> blocks_;
  int64_t tokens_ = 0;
};

}  // namespace skywalker

#endif  // SKYWALKER_MEMORY_BLOCK_TABLE_H_
