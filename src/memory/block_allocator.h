// Fixed-size KV page allocator (vLLM-style PagedAttention pool, ISSUE 4).
//
// The GPU's KV budget is carved into pages of `block_size_tokens` tokens;
// every live token of KV state — shared prefix-cache content and per-
// sequence private state alike — occupies exactly one slot of exactly one
// block. Blocks are refcounted so copy-on-write forks (shared prompt
// prefixes, beam/parallel-sampling style) map to shared references instead
// of token copies, and a freed block returns to a LIFO free list so
// steady-state churn (admit/decode/evict/preempt cycles) recycles ids
// without touching the heap (tests/kv_memory_alloc_test.cc pins this).
//
// Blocks here are *bookkeeping*, not storage — the simulator never holds
// real KV bytes — so allocation past `capacity_blocks` is permitted and
// simply drives free_blocks() negative. This mirrors the replica engine's
// semantics, where force-admission and decode growth may transiently
// overshoot the budget and the reclaim path (eviction, then preemption)
// restores the invariant after the step. Admission control is the layer
// that keeps overshoot bounded; the allocator just counts truthfully.
//
// With block_size_tokens == 1 the pool degenerates to one token per block
// and every derived quantity reduces to the seed's token-counter
// arithmetic — the coarse compatibility mode that keeps historical
// BENCH_*.json goldens byte-identical (DESIGN.md §9).

#ifndef SKYWALKER_MEMORY_BLOCK_ALLOCATOR_H_
#define SKYWALKER_MEMORY_BLOCK_ALLOCATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace skywalker {

using BlockId = int32_t;
inline constexpr BlockId kInvalidBlockId = -1;

struct BlockAllocatorStats {
  int64_t allocated = 0;   // Cumulative Allocate() calls.
  int64_t freed = 0;       // Cumulative blocks returned to the free list.
  int64_t cow_copies = 0;  // Copy-on-write duplications (BlockTable).
  int64_t peak_used_blocks = 0;
};

class BlockAllocator {
 public:
  explicit BlockAllocator(int64_t capacity_blocks);

  BlockAllocator(const BlockAllocator&) = delete;
  BlockAllocator& operator=(const BlockAllocator&) = delete;

  // Returns a block with ref_count == 1. Never fails (see file comment);
  // callers gate on free_blocks() for admission decisions.
  BlockId Allocate();

  // Fills out[0..n) with fresh single-reference blocks — id-for-id the same
  // sequence n Allocate() calls would return, with the bookkeeping updated
  // once (the radix cache provisions whole node spans through this).
  void AllocateSpan(int64_t n, BlockId* out);

  // Drops one reference on each of ids[0..n) (span teardown counterpart).
  // Returns how many blocks actually became free — the figure eviction
  // accounting wants, since references shared with surviving holders free
  // nothing.
  int64_t ReleaseSpan(const BlockId* ids, int64_t n);

  // Shares an existing block (copy-on-write fork).
  void AddRef(BlockId id);

  // Drops one reference; returns true when the block became free.
  bool Release(BlockId id);

  // Pre-sizes metadata and the free list so later Allocate/Release cycles
  // below `blocks` live blocks never allocate heap memory.
  void Reserve(int64_t blocks);

  int64_t capacity_blocks() const { return capacity_blocks_; }
  int64_t used_blocks() const { return used_blocks_; }
  // May be negative during transient overshoot (see file comment).
  int64_t free_blocks() const { return capacity_blocks_ - used_blocks_; }

  int32_t ref_count(BlockId id) const {
    return refs_[static_cast<size_t>(id)];
  }

  // Sum of all reference counts (each shared block counted once per holder).
  // O(ids ever allocated) — a test/diagnostics view for the conservation
  // invariant (cache-held + sequence-held refs == live_refs), not a hot-path
  // quantity.
  int64_t live_refs() const;

  const BlockAllocatorStats& stats() const { return stats_; }
  void NoteCowCopy() { ++stats_.cow_copies; }

  // Structural soundness: used_blocks matches the number of ids with a
  // positive refcount and the free list holds exactly the zero-ref ids.
  bool CheckInvariants() const;

 private:
  int64_t capacity_blocks_;
  std::vector<int32_t> refs_;       // Indexed by BlockId.
  std::vector<BlockId> free_list_;  // LIFO: deterministic, cache-friendly.
  int64_t used_blocks_ = 0;
  BlockAllocatorStats stats_;
};

// Allocate/AddRef/Release are defined inline: with block_size_tokens == 1
// the decode hot loop hits them once per generated token — tens of millions
// of calls per benchmark cell — and the out-of-line call overhead was
// measurable (ISSUE 10).
inline BlockId BlockAllocator::Allocate() {
  BlockId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
  } else {
    id = static_cast<BlockId>(refs_.size());
    refs_.push_back(0);
  }
  refs_[static_cast<size_t>(id)] = 1;
  ++used_blocks_;
  ++stats_.allocated;
  stats_.peak_used_blocks = std::max(stats_.peak_used_blocks, used_blocks_);
  return id;
}

inline void BlockAllocator::AddRef(BlockId id) {
  SKYWALKER_CHECK(refs_[static_cast<size_t>(id)] > 0) << "addref dead block";
  ++refs_[static_cast<size_t>(id)];
}

inline bool BlockAllocator::Release(BlockId id) {
  int32_t& ref = refs_[static_cast<size_t>(id)];
  SKYWALKER_CHECK(ref > 0) << "release dead block";
  if (--ref > 0) {
    return false;
  }
  free_list_.push_back(id);
  --used_blocks_;
  ++stats_.freed;
  return true;
}

}  // namespace skywalker

#endif  // SKYWALKER_MEMORY_BLOCK_ALLOCATOR_H_
