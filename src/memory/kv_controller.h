// Paged KV memory controller (ISSUE 4/5): the sequence-side ledger and
// preemption policy the replica engine runs its memory decisions through.
//
// The controller owns the BlockAllocator — the one page pool the whole
// replica shares. Since ISSUE 5 the prefix cache charges that pool
// *directly* (each radix node owns a span of page ids, src/cache), so the
// controller's admission arithmetic sees the exact unified occupancy in
// `used_blocks()` and keeps no parallel cache accounting of its own. What
// it does track:
//   * per-sequence path-aligned block tables for private KV (prefill chunks
//     and generated tokens; `skew` aligns a table's pages with the radix
//     path so publishing a prompt is a reference transfer into the cache),
//   * committed future — prefill still to compute plus the unconsumed
//     output reserve of each admitted sequence, counted per sequence in
//     ceil-blocks. This is the explicit `reserved_tokens` lifecycle: the
//     reserve is charged at admission, consumed token-by-token as decode
//     proceeds, and returned exactly once when the sequence completes, is
//     preempted, or aborts (tests/replica_test.cc pins return-on-
//     completion; the property test pins the arithmetic).
//
// Admission asks CanAdmit(prefill, reserve): the ceil-block need must fit
// under total - used - committed - watermark. With block_size_tokens == 1
// and watermark_blocks == 0 every ceil is the identity and the check
// reduces exactly to the seed replica's token arithmetic
// (need <= capacity - Resident() - CommittedFuture()) — the coarse
// compatibility mode that keeps historical BENCH goldens byte-identical.
//
// Preemption policy selects what a reclaim victim costs:
//   * kRecompute — drop the victim's blocks; it re-prefills from scratch on
//     re-admission (the seed behavior, usually cheap under a warm prefix
//     cache).
//   * kSwap — the victim's private blocks move to host memory over PCIe
//     (modeled: swap_us_per_token each direction; ~5 us/token ≈ 128 KiB of
//     KV over ~24 GiB/s effective PCIe 4.0 x16) and restore later without
//     recomputation. The controller owns the transfer-time model and the
//     swap counters; the replica owns victim choice and scheduling.

#ifndef SKYWALKER_MEMORY_KV_CONTROLLER_H_
#define SKYWALKER_MEMORY_KV_CONTROLLER_H_

#include <cstdint>
#include <vector>

#include "src/common/logging.h"
#include "src/common/sim_time.h"
#include "src/memory/block_allocator.h"
#include "src/memory/block_table.h"

namespace skywalker {

enum class PreemptPolicy {
  kRecompute,  // Drop KV; re-prefill on re-admission (seed behavior).
  kSwap,       // Move KV to host over PCIe; restore without recompute.
};

struct KvConfig {
  int64_t capacity_tokens = 49152;

  // 1 = coarse compatibility mode: token-granular pages, every block
  // quantity reduces to the seed token-counter arithmetic.
  int32_t block_size_tokens = 1;

  // Admission keeps at least this many blocks free (decode headroom).
  int64_t watermark_blocks = 0;

  PreemptPolicy preempt_policy = PreemptPolicy::kRecompute;

  // Host<->device transfer cost per token, each direction. Default models
  // 128 KiB/token KV over ~24 GiB/s effective PCIe 4.0 x16.
  double swap_us_per_token = 5.2;
};

struct KvCounters {
  int64_t preempt_recompute = 0;
  int64_t preempt_swap = 0;      // Swap-outs.
  int64_t swap_ins = 0;
  int64_t swapped_out_tokens = 0;
  int64_t swapped_in_tokens = 0;
  double swap_transfer_us = 0;   // Modeled PCIe time, both directions.
  int64_t watermark_rejections = 0;
  int64_t peak_fragmentation_tokens = 0;
};

// Element-wise sum for fleet-level metric rows.
KvCounters& operator+=(KvCounters& lhs, const KvCounters& rhs);

class KvController {
 public:
  using SeqId = int32_t;
  static constexpr SeqId kInvalidSeq = -1;

  explicit KvController(const KvConfig& config);

  KvController(const KvController&) = delete;
  KvController& operator=(const KvController&) = delete;

  // The shared page pool. The prefix cache borrows this and charges its
  // per-node spans straight into it — there is exactly one ledger.
  BlockAllocator& allocator() { return alloc_; }
  const BlockAllocator& allocator() const { return alloc_; }

  // --- sequence ledger -------------------------------------------------
  // Registers an admitted sequence: `prefill_tokens` still to compute and
  // `reserve_tokens` of unconsumed output reserve become committed future.
  // `skew` = (cached prefix length) % block_size path-aligns the sequence's
  // table with the radix tree. No blocks are held yet; they materialize as
  // compute proceeds.
  SeqId AdmitSeq(int64_t prefill_tokens, int64_t reserve_tokens,
                 int32_t skew = 0);

  // A prefill chunk materialized: tokens move from committed to resident.
  void OnPrefillChunk(SeqId id, int64_t tokens);

  // One output token materialized: consumes one token of reserve (floor 0)
  // and grows the sequence's table.
  void OnDecodeToken(SeqId id);

  // Re-sets the sequence's committed output reserve (per-step decode
  // admission tops the reserve up one block at a time instead of holding
  // the full estimate).
  void SetReserve(SeqId id, int64_t reserve_tokens);

  // Prefill completion published the prompt to the shared cache: drop the
  // first `tokens` of the sequence's span. References the cache now also
  // holds (the transferred pages, including a straddled boundary page)
  // survive in the allocator; pages only this sequence used are freed.
  void ReleaseSeqPrefix(SeqId id, int64_t tokens);

  // Marks the page the sequence may extend without copy-on-write (the
  // boundary page shared with the cache after publish; slot-disjoint).
  void SetCowExempt(SeqId id, BlockId block);

  // Re-materializes `tokens` already-generated output tokens into the
  // sequence's table without touching committed future (a recompute-
  // preemption victim's first output token re-appears this way at publish:
  // its reserve was consumed in its first life and the seed accounting
  // never re-charges it).
  void RestoreDecodedTokens(SeqId id, int64_t tokens);

  int64_t SeqTokens(SeqId id) const;
  const BlockTable& table(SeqId id) const { return entry(id).table; }

  // Completion / abort / recompute-preemption: frees the sequence's blocks
  // and returns its committed future (the reserve comes back here, exactly
  // once). Returns the resident tokens freed.
  int64_t ReleaseSeq(SeqId id);

  // --- swap ledger (kSwap policy) --------------------------------------
  // Swap-out: frees the victim's blocks now, records the transfer, and
  // returns the modeled PCIe time (the caller gates swap-in eligibility on
  // it). The slot is released; swap-in creates a fresh one.
  SimDuration SwapOut(SeqId id);

  // Swap-in admission: re-charges `tokens` of restored KV immediately plus
  // the remaining committed future; `*transfer` gets the restore latency.
  // Restored KV lands in fresh pages at the sequence's original path
  // alignment (`skew`); a page formerly shared with the cache cannot be
  // re-merged.
  SeqId BeginSwapIn(int64_t tokens, int64_t prefill_remaining,
                    int64_t reserve_remaining, int32_t skew,
                    SimDuration* transfer);

  // --- admission / reclaim arithmetic ----------------------------------
  int64_t total_blocks() const { return total_blocks_; }
  int64_t used_blocks() const { return alloc_.used_blocks(); }
  int64_t free_blocks() const { return alloc_.free_blocks(); }
  int64_t committed_blocks() const { return committed_blocks_total_; }

  // Token-granular views of the sequence side. The cache side lives in the
  // radix tree (cache.size_tokens / cache.block_refs); the replica owns the
  // combined figures.
  int64_t seq_resident_tokens() const { return seq_tokens_total_; }
  int64_t committed_tokens() const {
    return committed_prefill_total_ + committed_reserve_total_;
  }
  int64_t committed_reserve_tokens() const {
    return committed_reserve_total_;
  }

  // Whether `prefill` + `reserve` fits under the watermark right now.
  bool CanAdmit(int64_t prefill_tokens, int64_t reserve_tokens) const;
  // Same, ignoring the watermark (distinguishes watermark rejections from
  // genuine capacity exhaustion for the counters).
  bool CanAdmitIgnoringWatermark(int64_t prefill_tokens,
                                 int64_t reserve_tokens) const;
  void NoteWatermarkRejection() { ++counters_.watermark_rejections; }
  void NoteRecomputePreemption() { ++counters_.preempt_recompute; }
  // Peak-tracks the replica-computed exact fragmentation figure
  // (used_blocks * block_size - cache tokens - sequence tokens).
  void NoteFragmentationSample(int64_t fragmentation_tokens);

  // Cache *blocks* to free before the need fits (0 when it already fits) —
  // the unit PrefixCache::Evict takes and returns, so the replica subtracts
  // eviction results from the deficit directly instead of re-reading the
  // ledger (ISSUE 8). Coarse mode: one block is one token, seed arithmetic.
  int64_t AdmissionDeficitBlocks(int64_t prefill_tokens,
                                 int64_t reserve_tokens) const;

  // Swap-in admission check/deficit, priced exactly as BeginSwapIn charges:
  // restored resident tokens, remaining prefill, and remaining reserve each
  // ceil to blocks separately. The deficit is in blocks (see above).
  bool CanAdmitRestore(int64_t tokens, int64_t prefill_remaining,
                       int64_t reserve_remaining) const;
  int64_t RestoreDeficitBlocks(int64_t tokens, int64_t prefill_remaining,
                               int64_t reserve_remaining) const;

  // Blocks over hard capacity — the reclaim target after a step.
  int64_t ReclaimNeededBlocks() const;

  SimDuration SwapDuration(int64_t tokens) const;

  const KvConfig& config() const { return config_; }
  const KvCounters& counters() const { return counters_; }
  const BlockAllocatorStats& allocator_stats() const { return alloc_.stats(); }
  int64_t live_seqs() const { return live_seqs_; }
  // Page references held by live sequence tables (conservation checks).
  int64_t seq_block_refs() const;

  // Pre-sizes slots, tables, and the allocator for allocation-free reuse.
  void Reserve(int64_t seqs, int64_t blocks);

  // Validates ledger totals against a full rescan (tests / debug).
  bool CheckConsistency() const;

 private:
  struct SeqEntry {
    BlockTable table;
    int64_t committed_prefill = 0;
    int64_t committed_reserve = 0;
    bool live = false;
  };

  int64_t CeilBlocks(int64_t tokens) const {
    // Coarse compatibility mode (block_size_tokens == 1, every fleet-scale
    // config) makes ceil the identity; skipping the integer divide matters
    // at tens of millions of SetCommitted calls per cell (ISSUE 10).
    if (config_.block_size_tokens == 1) {
      return tokens;
    }
    return (tokens + config_.block_size_tokens - 1) / config_.block_size_tokens;
  }
  // Free blocks after committed future, before the watermark.
  int64_t FreeBlocksForAdmission() const {
    return total_blocks_ - used_blocks() - committed_blocks_total_;
  }
  SeqEntry& entry(SeqId id);
  const SeqEntry& entry(SeqId id) const;
  // Adjusts the committed totals (tokens and ceil-blocks) for one entry.
  void SetCommitted(SeqEntry& e, int64_t prefill, int64_t reserve);

  KvConfig config_;
  int64_t total_blocks_;
  BlockAllocator alloc_;
  std::vector<SeqEntry> seqs_;
  std::vector<SeqId> free_slots_;
  int64_t live_seqs_ = 0;
  int64_t seq_tokens_total_ = 0;
  int64_t committed_prefill_total_ = 0;
  int64_t committed_reserve_total_ = 0;
  int64_t committed_blocks_total_ = 0;
  KvCounters counters_;
};

// The per-token ledger operations are defined inline (ISSUE 10): with
// block_size_tokens == 1 the decode hot loop runs entry lookup + committed
// adjustment + table append once per generated token — tens of millions of
// calls per benchmark cell — and the cross-TU call overhead was measurable.
inline KvController::SeqEntry& KvController::entry(SeqId id) {
  SeqEntry& e = seqs_[static_cast<size_t>(id)];
  SKYWALKER_CHECK(e.live) << "dead sequence slot";
  return e;
}

inline const KvController::SeqEntry& KvController::entry(SeqId id) const {
  const SeqEntry& e = seqs_[static_cast<size_t>(id)];
  SKYWALKER_CHECK(e.live) << "dead sequence slot";
  return e;
}

inline void KvController::SetCommitted(SeqEntry& e, int64_t prefill,
                                       int64_t reserve) {
  committed_prefill_total_ += prefill - e.committed_prefill;
  committed_reserve_total_ += reserve - e.committed_reserve;
  committed_blocks_total_ +=
      (CeilBlocks(prefill) + CeilBlocks(reserve)) -
      (CeilBlocks(e.committed_prefill) + CeilBlocks(e.committed_reserve));
  e.committed_prefill = prefill;
  e.committed_reserve = reserve;
}

inline void KvController::OnPrefillChunk(SeqId id, int64_t tokens) {
  SeqEntry& e = entry(id);
  SKYWALKER_CHECK(tokens <= e.committed_prefill) << "chunk beyond commitment";
  SetCommitted(e, e.committed_prefill - tokens, e.committed_reserve);
  e.table.Append(alloc_, config_.block_size_tokens, tokens);
  seq_tokens_total_ += tokens;
}

inline void KvController::OnDecodeToken(SeqId id) {
  SeqEntry& e = entry(id);
  if (e.committed_reserve > 0) {
    SetCommitted(e, e.committed_prefill, e.committed_reserve - 1);
  }
  e.table.Append(alloc_, config_.block_size_tokens, 1);
  seq_tokens_total_ += 1;
}

inline void KvController::SetReserve(SeqId id, int64_t reserve_tokens) {
  SeqEntry& e = entry(id);
  SetCommitted(e, e.committed_prefill, reserve_tokens);
}

}  // namespace skywalker

#endif  // SKYWALKER_MEMORY_KV_CONTROLLER_H_
