#include "src/memory/block_table.h"

#include "src/common/logging.h"

namespace skywalker {

void BlockTable::SetSkew(int32_t skew) {
  SKYWALKER_CHECK(blocks_.empty() && tokens_ == 0) << "skew on live table";
  SKYWALKER_CHECK(skew >= 0) << "negative skew";
  skew_ = skew;
}

void BlockTable::ForkFrom(BlockAllocator& alloc, const BlockTable& parent,
                          int32_t block_size, int64_t tokens) {
  SKYWALKER_CHECK(blocks_.empty() && tokens_ == 0) << "fork into empty table";
  SKYWALKER_CHECK(tokens <= parent.tokens_) << "fork beyond parent";
  skew_ = parent.skew_;
  int64_t cover = (skew_ + tokens + block_size - 1) / block_size;
  for (int64_t i = 0; i < cover; ++i) {
    BlockId id = parent.blocks_[static_cast<size_t>(i)];
    alloc.AddRef(id);
    blocks_.push_back(id);
  }
  tokens_ = tokens;
}

int64_t BlockTable::Truncate(BlockAllocator& alloc, int32_t block_size,
                             int64_t tokens) {
  SKYWALKER_CHECK(tokens >= 0 && tokens <= tokens_) << "truncate range";
  tokens_ -= tokens;
  // Truncation drops from the back: the base (and so the skew) is
  // unchanged even when the table empties.
  int64_t keep = tokens_ == 0
                     ? 0
                     : (skew_ + tokens_ + block_size - 1) / block_size;
  int64_t released = 0;
  while (num_blocks() > keep) {
    if (blocks_.back() == cow_exempt_) {
      cow_exempt_ = kInvalidBlockId;  // The exemption dies with the page.
    }
    alloc.Release(blocks_.back());
    blocks_.pop_back();
    ++released;
  }
  return released;
}

int64_t BlockTable::ReleasePrefix(BlockAllocator& alloc, int32_t block_size,
                                  int64_t tokens) {
  SKYWALKER_CHECK(tokens >= 0 && tokens <= tokens_) << "prefix range";
  if (tokens == 0) {
    return 0;
  }
  tokens_ -= tokens;
  const int64_t drop = skew_ + tokens;
  int64_t released = 0;
  if (tokens_ == 0) {
    // Everything published/dropped: nothing of ours remains in any page,
    // but the table's path alignment advances past the dropped span — a
    // re-materialized token (RestoreDecodedTokens) must land at its true
    // path position, so skew survives the empty state.
    for (BlockId id : blocks_) {
      if (id == cow_exempt_) {
        cow_exempt_ = kInvalidBlockId;
      }
      alloc.Release(id);
      ++released;
    }
    blocks_.clear();
    skew_ = static_cast<int32_t>(drop % block_size);
    return released;
  }
  // Path offset of the new start within the current block frame; pages
  // fully before it hold only published content and drop here. A straddled
  // boundary page stays (its later slots are still ours; its earlier slots
  // now belong to the cache, which holds its own reference).
  const int64_t full = drop / block_size;
  for (int64_t i = 0; i < full; ++i) {
    if (blocks_[static_cast<size_t>(i)] == cow_exempt_) {
      cow_exempt_ = kInvalidBlockId;  // The exemption dies with the page.
    }
    alloc.Release(blocks_[static_cast<size_t>(i)]);
    ++released;
  }
  blocks_.erase(blocks_.begin(), blocks_.begin() + full);
  skew_ = static_cast<int32_t>(drop % block_size);
  return released;
}

int64_t BlockTable::Clear(BlockAllocator& alloc) {
  int64_t released = static_cast<int64_t>(blocks_.size());
  for (BlockId id : blocks_) {
    alloc.Release(id);
  }
  blocks_.clear();  // Capacity retained for pooled reuse.
  tokens_ = 0;
  skew_ = 0;
  cow_exempt_ = kInvalidBlockId;
  return released;
}

}  // namespace skywalker
