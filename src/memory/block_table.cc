#include "src/memory/block_table.h"

#include "src/common/logging.h"

namespace skywalker {

int64_t BlockTable::Append(BlockAllocator& alloc, int32_t block_size,
                           int64_t tokens) {
  SKYWALKER_CHECK(tokens >= 0);
  if (tokens == 0) {
    return 0;
  }
  int64_t allocated = 0;
  int64_t tail_fill = tokens_ % block_size;
  if (tail_fill != 0 && alloc.ref_count(blocks_.back()) > 1) {
    // Copy-on-write: the partial tail is shared with a fork; duplicate it
    // before writing. (Full shared blocks are immutable and stay shared.)
    alloc.Release(blocks_.back());
    blocks_.back() = alloc.Allocate();
    alloc.NoteCowCopy();
    ++allocated;
  }
  int64_t remaining = tokens;
  if (tail_fill != 0) {
    int64_t slots = block_size - tail_fill;
    remaining -= slots < remaining ? slots : remaining;
  }
  while (remaining > 0) {
    blocks_.push_back(alloc.Allocate());
    ++allocated;
    remaining -= block_size < remaining ? block_size : remaining;
  }
  tokens_ += tokens;
  return allocated;
}

void BlockTable::ForkFrom(BlockAllocator& alloc, const BlockTable& parent,
                          int32_t block_size, int64_t tokens) {
  SKYWALKER_CHECK(blocks_.empty() && tokens_ == 0) << "fork into empty table";
  SKYWALKER_CHECK(tokens <= parent.tokens_) << "fork beyond parent";
  int64_t cover = (tokens + block_size - 1) / block_size;
  for (int64_t i = 0; i < cover; ++i) {
    BlockId id = parent.blocks_[static_cast<size_t>(i)];
    alloc.AddRef(id);
    blocks_.push_back(id);
  }
  tokens_ = tokens;
}

int64_t BlockTable::Truncate(BlockAllocator& alloc, int32_t block_size,
                             int64_t tokens) {
  SKYWALKER_CHECK(tokens >= 0 && tokens <= tokens_) << "truncate range";
  tokens_ -= tokens;
  int64_t keep = (tokens_ + block_size - 1) / block_size;
  int64_t released = 0;
  while (num_blocks() > keep) {
    alloc.Release(blocks_.back());
    blocks_.pop_back();
    ++released;
  }
  return released;
}

int64_t BlockTable::Clear(BlockAllocator& alloc) {
  int64_t released = static_cast<int64_t>(blocks_.size());
  for (BlockId id : blocks_) {
    alloc.Release(id);
  }
  blocks_.clear();  // Capacity retained for pooled reuse.
  tokens_ = 0;
  return released;
}

}  // namespace skywalker
