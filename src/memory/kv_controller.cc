#include "src/memory/kv_controller.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace skywalker {

KvCounters& operator+=(KvCounters& lhs, const KvCounters& rhs) {
  lhs.preempt_recompute += rhs.preempt_recompute;
  lhs.preempt_swap += rhs.preempt_swap;
  lhs.swap_ins += rhs.swap_ins;
  lhs.swapped_out_tokens += rhs.swapped_out_tokens;
  lhs.swapped_in_tokens += rhs.swapped_in_tokens;
  lhs.swap_transfer_us += rhs.swap_transfer_us;
  lhs.watermark_rejections += rhs.watermark_rejections;
  lhs.peak_fragmentation_tokens += rhs.peak_fragmentation_tokens;
  return lhs;
}

KvController::KvController(const KvConfig& config)
    : config_(config),
      total_blocks_(config.capacity_tokens / config.block_size_tokens),
      alloc_(total_blocks_) {
  SKYWALKER_CHECK(config.block_size_tokens >= 1) << "block size";
  SKYWALKER_CHECK(config.watermark_blocks >= 0) << "watermark";
  SKYWALKER_CHECK(total_blocks_ > 0) << "capacity below one block";
}

void KvController::NoteFragmentationSample(int64_t fragmentation_tokens) {
  counters_.peak_fragmentation_tokens =
      std::max(counters_.peak_fragmentation_tokens, fragmentation_tokens);
}

KvController::SeqId KvController::AdmitSeq(int64_t prefill_tokens,
                                           int64_t reserve_tokens,
                                           int32_t skew) {
  SeqId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<SeqId>(seqs_.size());
    seqs_.emplace_back();
  }
  SeqEntry& e = seqs_[static_cast<size_t>(id)];
  e.live = true;
  e.table.SetSkew(skew);
  SetCommitted(e, prefill_tokens, reserve_tokens);
  ++live_seqs_;
  return id;
}

void KvController::ReleaseSeqPrefix(SeqId id, int64_t tokens) {
  SeqEntry& e = entry(id);
  e.table.ReleasePrefix(alloc_, config_.block_size_tokens, tokens);
  seq_tokens_total_ -= tokens;
}

void KvController::SetCowExempt(SeqId id, BlockId block) {
  entry(id).table.set_cow_exempt(block);
}

void KvController::RestoreDecodedTokens(SeqId id, int64_t tokens) {
  SeqEntry& e = entry(id);
  e.table.Append(alloc_, config_.block_size_tokens, tokens);
  seq_tokens_total_ += tokens;
}

int64_t KvController::SeqTokens(SeqId id) const {
  return entry(id).table.num_tokens();
}

int64_t KvController::ReleaseSeq(SeqId id) {
  SeqEntry& e = entry(id);
  int64_t tokens = e.table.num_tokens();
  e.table.Clear(alloc_);
  seq_tokens_total_ -= tokens;
  SetCommitted(e, 0, 0);
  e.live = false;
  --live_seqs_;
  free_slots_.push_back(id);
  return tokens;
}

SimDuration KvController::SwapOut(SeqId id) {
  int64_t tokens = SeqTokens(id);
  ReleaseSeq(id);
  ++counters_.preempt_swap;
  counters_.swapped_out_tokens += tokens;
  SimDuration transfer = SwapDuration(tokens);
  counters_.swap_transfer_us += static_cast<double>(transfer);
  return transfer;
}

KvController::SeqId KvController::BeginSwapIn(int64_t tokens,
                                              int64_t prefill_remaining,
                                              int64_t reserve_remaining,
                                              int32_t skew,
                                              SimDuration* transfer) {
  SeqId id = AdmitSeq(prefill_remaining, reserve_remaining, skew);
  SeqEntry& e = entry(id);
  e.table.Append(alloc_, config_.block_size_tokens, tokens);
  seq_tokens_total_ += tokens;
  ++counters_.swap_ins;
  counters_.swapped_in_tokens += tokens;
  *transfer = SwapDuration(tokens);
  counters_.swap_transfer_us += static_cast<double>(*transfer);
  return id;
}

bool KvController::CanAdmit(int64_t prefill_tokens,
                            int64_t reserve_tokens) const {
  return CeilBlocks(prefill_tokens) + CeilBlocks(reserve_tokens) +
             config_.watermark_blocks <=
         FreeBlocksForAdmission();
}

bool KvController::CanAdmitIgnoringWatermark(int64_t prefill_tokens,
                                             int64_t reserve_tokens) const {
  return CeilBlocks(prefill_tokens) + CeilBlocks(reserve_tokens) <=
         FreeBlocksForAdmission();
}

int64_t KvController::AdmissionDeficitBlocks(int64_t prefill_tokens,
                                             int64_t reserve_tokens) const {
  int64_t deficit_blocks = CeilBlocks(prefill_tokens) +
                           CeilBlocks(reserve_tokens) +
                           config_.watermark_blocks -
                           FreeBlocksForAdmission();
  return std::max<int64_t>(0, deficit_blocks);
}

bool KvController::CanAdmitRestore(int64_t tokens, int64_t prefill_remaining,
                                   int64_t reserve_remaining) const {
  return CeilBlocks(tokens) + CeilBlocks(prefill_remaining) +
             CeilBlocks(reserve_remaining) + config_.watermark_blocks <=
         FreeBlocksForAdmission();
}

int64_t KvController::RestoreDeficitBlocks(int64_t tokens,
                                           int64_t prefill_remaining,
                                           int64_t reserve_remaining) const {
  int64_t deficit_blocks =
      CeilBlocks(tokens) + CeilBlocks(prefill_remaining) +
      CeilBlocks(reserve_remaining) + config_.watermark_blocks -
      FreeBlocksForAdmission();
  return std::max<int64_t>(0, deficit_blocks);
}

int64_t KvController::ReclaimNeededBlocks() const {
  return std::max<int64_t>(0, used_blocks() - total_blocks_);
}

SimDuration KvController::SwapDuration(int64_t tokens) const {
  return static_cast<SimDuration>(
      std::llround(static_cast<double>(tokens) * config_.swap_us_per_token));
}

void KvController::Reserve(int64_t seqs, int64_t blocks) {
  seqs_.reserve(static_cast<size_t>(seqs));
  free_slots_.reserve(static_cast<size_t>(seqs));
  alloc_.Reserve(blocks);
}

int64_t KvController::seq_block_refs() const {
  int64_t refs = 0;
  for (const SeqEntry& e : seqs_) {
    if (e.live) {
      refs += e.table.num_blocks();
    }
  }
  return refs;
}

bool KvController::CheckConsistency() const {
  int64_t seq_tokens = 0;
  int64_t prefill = 0;
  int64_t reserve = 0;
  int64_t committed_blocks = 0;
  int64_t live = 0;
  for (const SeqEntry& e : seqs_) {
    if (!e.live) {
      continue;
    }
    ++live;
    seq_tokens += e.table.num_tokens();
    prefill += e.committed_prefill;
    reserve += e.committed_reserve;
    committed_blocks +=
        CeilBlocks(e.committed_prefill) + CeilBlocks(e.committed_reserve);
    // Every table's span must cover its tokens exactly (path-aligned).
    if (e.table.num_blocks() !=
        (e.table.skew() + e.table.num_tokens() + config_.block_size_tokens -
         1) /
                config_.block_size_tokens &&
        !(e.table.num_tokens() == 0 && e.table.num_blocks() == 0)) {
      return false;
    }
  }
  // The allocator is shared with the prefix cache, so sequence-held pages
  // are a subset of used pages; exact conservation (cache refs + sequence
  // refs == allocator refs) is asserted by the property tests that see both
  // sides.
  return live == live_seqs_ && seq_tokens == seq_tokens_total_ &&
         prefill == committed_prefill_total_ &&
         reserve == committed_reserve_total_ &&
         committed_blocks == committed_blocks_total_ &&
         seq_block_refs() <= alloc_.live_refs() && alloc_.CheckInvariants();
}

}  // namespace skywalker
