#include "src/memory/kv_controller.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace skywalker {

KvCounters& operator+=(KvCounters& lhs, const KvCounters& rhs) {
  lhs.preempt_recompute += rhs.preempt_recompute;
  lhs.preempt_swap += rhs.preempt_swap;
  lhs.swap_ins += rhs.swap_ins;
  lhs.swapped_out_tokens += rhs.swapped_out_tokens;
  lhs.swapped_in_tokens += rhs.swapped_in_tokens;
  lhs.swap_transfer_us += rhs.swap_transfer_us;
  lhs.watermark_rejections += rhs.watermark_rejections;
  lhs.peak_fragmentation_tokens += rhs.peak_fragmentation_tokens;
  return lhs;
}

KvController::KvController(const KvConfig& config)
    : config_(config),
      total_blocks_(config.capacity_tokens / config.block_size_tokens),
      alloc_(total_blocks_) {
  SKYWALKER_CHECK(config.block_size_tokens >= 1) << "block size";
  SKYWALKER_CHECK(config.watermark_blocks >= 0) << "watermark";
  SKYWALKER_CHECK(total_blocks_ > 0) << "capacity below one block";
}

KvController::SeqEntry& KvController::entry(SeqId id) {
  SeqEntry& e = seqs_[static_cast<size_t>(id)];
  SKYWALKER_CHECK(e.live) << "dead sequence slot";
  return e;
}

const KvController::SeqEntry& KvController::entry(SeqId id) const {
  const SeqEntry& e = seqs_[static_cast<size_t>(id)];
  SKYWALKER_CHECK(e.live) << "dead sequence slot";
  return e;
}

void KvController::SetCommitted(SeqEntry& e, int64_t prefill,
                                int64_t reserve) {
  committed_prefill_total_ += prefill - e.committed_prefill;
  committed_reserve_total_ += reserve - e.committed_reserve;
  committed_blocks_total_ +=
      (CeilBlocks(prefill) + CeilBlocks(reserve)) -
      (CeilBlocks(e.committed_prefill) + CeilBlocks(e.committed_reserve));
  e.committed_prefill = prefill;
  e.committed_reserve = reserve;
}

void KvController::NoteFragmentation() {
  counters_.peak_fragmentation_tokens =
      std::max(counters_.peak_fragmentation_tokens, fragmentation_tokens());
}

KvController::SeqId KvController::AdmitSeq(int64_t prefill_tokens,
                                           int64_t reserve_tokens) {
  SeqId id;
  if (!free_slots_.empty()) {
    id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    id = static_cast<SeqId>(seqs_.size());
    seqs_.emplace_back();
  }
  SeqEntry& e = seqs_[static_cast<size_t>(id)];
  e.live = true;
  SetCommitted(e, prefill_tokens, reserve_tokens);
  ++live_seqs_;
  return id;
}

void KvController::OnPrefillChunk(SeqId id, int64_t tokens) {
  SeqEntry& e = entry(id);
  SKYWALKER_CHECK(tokens <= e.committed_prefill) << "chunk beyond commitment";
  SetCommitted(e, e.committed_prefill - tokens, e.committed_reserve);
  e.table.Append(alloc_, config_.block_size_tokens, tokens);
  seq_tokens_total_ += tokens;
  NoteFragmentation();
}

void KvController::OnDecodeToken(SeqId id) {
  SeqEntry& e = entry(id);
  if (e.committed_reserve > 0) {
    SetCommitted(e, e.committed_prefill, e.committed_reserve - 1);
  }
  e.table.Append(alloc_, config_.block_size_tokens, 1);
  seq_tokens_total_ += 1;
  NoteFragmentation();
}

void KvController::RebaseTokens(SeqId id, int64_t tokens) {
  SeqEntry& e = entry(id);
  int64_t current = e.table.num_tokens();
  if (tokens < current) {
    e.table.Truncate(alloc_, config_.block_size_tokens, current - tokens);
  } else if (tokens > current) {
    e.table.Append(alloc_, config_.block_size_tokens, tokens - current);
  }
  seq_tokens_total_ += tokens - current;
  NoteFragmentation();
}

int64_t KvController::SeqTokens(SeqId id) const {
  return entry(id).table.num_tokens();
}

int64_t KvController::ReleaseSeq(SeqId id) {
  SeqEntry& e = entry(id);
  int64_t tokens = e.table.num_tokens();
  e.table.Clear(alloc_);
  seq_tokens_total_ -= tokens;
  SetCommitted(e, 0, 0);
  e.live = false;
  --live_seqs_;
  free_slots_.push_back(id);
  return tokens;
}

SimDuration KvController::SwapOut(SeqId id) {
  int64_t tokens = SeqTokens(id);
  ReleaseSeq(id);
  ++counters_.preempt_swap;
  counters_.swapped_out_tokens += tokens;
  SimDuration transfer = SwapDuration(tokens);
  counters_.swap_transfer_us += static_cast<double>(transfer);
  return transfer;
}

KvController::SeqId KvController::BeginSwapIn(int64_t tokens,
                                              int64_t prefill_remaining,
                                              int64_t reserve_remaining,
                                              SimDuration* transfer) {
  SeqId id = AdmitSeq(prefill_remaining, reserve_remaining);
  SeqEntry& e = entry(id);
  e.table.Append(alloc_, config_.block_size_tokens, tokens);
  seq_tokens_total_ += tokens;
  ++counters_.swap_ins;
  counters_.swapped_in_tokens += tokens;
  *transfer = SwapDuration(tokens);
  counters_.swap_transfer_us += static_cast<double>(*transfer);
  NoteFragmentation();
  return id;
}

void KvController::SyncCacheTokens(int64_t cache_size_tokens) {
  if (cache_size_tokens > cache_tokens_) {
    cache_table_.Append(alloc_, config_.block_size_tokens,
                        cache_size_tokens - cache_tokens_);
  } else if (cache_size_tokens < cache_tokens_) {
    cache_table_.Truncate(alloc_, config_.block_size_tokens,
                          cache_tokens_ - cache_size_tokens);
  }
  cache_tokens_ = cache_size_tokens;
  NoteFragmentation();
}

bool KvController::CanAdmit(int64_t prefill_tokens,
                            int64_t reserve_tokens) const {
  return CeilBlocks(prefill_tokens) + CeilBlocks(reserve_tokens) +
             config_.watermark_blocks <=
         FreeBlocksForAdmission();
}

bool KvController::CanAdmitIgnoringWatermark(int64_t prefill_tokens,
                                             int64_t reserve_tokens) const {
  return CeilBlocks(prefill_tokens) + CeilBlocks(reserve_tokens) <=
         FreeBlocksForAdmission();
}

int64_t KvController::AdmissionDeficitTokens(int64_t prefill_tokens,
                                             int64_t reserve_tokens) const {
  int64_t deficit_blocks = CeilBlocks(prefill_tokens) +
                           CeilBlocks(reserve_tokens) +
                           config_.watermark_blocks -
                           FreeBlocksForAdmission();
  return std::max<int64_t>(0, deficit_blocks * config_.block_size_tokens);
}

bool KvController::CanAdmitRestore(int64_t tokens, int64_t prefill_remaining,
                                   int64_t reserve_remaining) const {
  return CeilBlocks(tokens) + CeilBlocks(prefill_remaining) +
             CeilBlocks(reserve_remaining) + config_.watermark_blocks <=
         FreeBlocksForAdmission();
}

int64_t KvController::RestoreDeficitTokens(int64_t tokens,
                                           int64_t prefill_remaining,
                                           int64_t reserve_remaining) const {
  int64_t deficit_blocks =
      CeilBlocks(tokens) + CeilBlocks(prefill_remaining) +
      CeilBlocks(reserve_remaining) + config_.watermark_blocks -
      FreeBlocksForAdmission();
  return std::max<int64_t>(0, deficit_blocks * config_.block_size_tokens);
}

int64_t KvController::ReclaimNeededTokens() const {
  return std::max<int64_t>(0, (used_blocks() - total_blocks_) *
                                  config_.block_size_tokens);
}

SimDuration KvController::SwapDuration(int64_t tokens) const {
  return static_cast<SimDuration>(
      std::llround(static_cast<double>(tokens) * config_.swap_us_per_token));
}

void KvController::Reserve(int64_t seqs, int64_t blocks) {
  seqs_.reserve(static_cast<size_t>(seqs));
  free_slots_.reserve(static_cast<size_t>(seqs));
  alloc_.Reserve(blocks);
}

bool KvController::CheckConsistency() const {
  int64_t seq_tokens = 0;
  int64_t prefill = 0;
  int64_t reserve = 0;
  int64_t committed_blocks = 0;
  int64_t live = 0;
  int64_t table_blocks = cache_table_.num_blocks();
  for (const SeqEntry& e : seqs_) {
    if (!e.live) {
      continue;
    }
    ++live;
    seq_tokens += e.table.num_tokens();
    prefill += e.committed_prefill;
    reserve += e.committed_reserve;
    committed_blocks +=
        CeilBlocks(e.committed_prefill) + CeilBlocks(e.committed_reserve);
    table_blocks += e.table.num_blocks();
  }
  return live == live_seqs_ && seq_tokens == seq_tokens_total_ &&
         prefill == committed_prefill_total_ &&
         reserve == committed_reserve_total_ &&
         committed_blocks == committed_blocks_total_ &&
         cache_table_.num_tokens() == cache_tokens_ &&
         table_blocks == alloc_.used_blocks() && alloc_.CheckInvariants() &&
         fragmentation_tokens() >= 0;
}

}  // namespace skywalker
