// Quickstart: build a three-region SkyWalker deployment, drive it with a
// handful of conversation clients, and print the headline serving metrics.
//
//   $ ./build/examples/quickstart
//
// This walks the full public API surface in ~80 lines:
//   Topology -> Network -> Deployment (regional LBs + controller + DNS)
//   ConversationGenerator -> ConversationClient -> MetricsCollector.

#include <cstdio>

#include "src/analysis/metrics.h"
#include "src/core/deployment.h"
#include "src/workload/client.h"

using namespace skywalker;  // Example code; the library never does this.

int main() {
  // 1. A world: three continents with realistic inter-region latencies.
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());

  // 2. A deployment: two replicas per region, one SkyWalker LB per region
  //    (prefix-tree routing + selective pushing), full peer mesh, DNS, and
  //    the health-probing controller.
  DeploymentSpec spec;
  spec.replicas_per_region = {2, 2, 2};
  auto deployment = Deployment::Build(&sim, &net, spec);
  deployment->Start();

  // 3. A workload: 10 closed-loop conversation clients per region issuing
  //    multi-turn chats with shared system-prompt templates.
  MetricsCollector metrics;
  ConversationGenerator generator(ConversationWorkloadConfig::Arena(),
                                  net.topology().num_regions(), /*seed=*/1);
  ClientConfig client_config;
  client_config.think_time_mean = Seconds(1);
  std::vector<std::unique_ptr<ConversationClient>> clients;
  for (RegionId region = 0; region < 3; ++region) {
    for (int i = 0; i < 10; ++i) {
      clients.push_back(std::make_unique<ConversationClient>(
          &sim, &net, deployment->resolver(), &generator, &metrics, region,
          client_config, /*seed=*/100 + clients.size()));
      clients.back()->Start(Milliseconds(100 * static_cast<int>(i)));
    }
  }

  // 4. Run five simulated minutes.
  sim.RunUntil(Minutes(5));

  // 5. Report.
  Distribution ttft = metrics.TtftSeconds();
  Distribution e2e = metrics.E2eSeconds();
  std::printf("SkyWalker quickstart (3 regions x 2 replicas, 30 clients)\n");
  std::printf("  completed requests : %zu\n", metrics.total_recorded());
  std::printf("  throughput         : %.0f tok/s\n",
              metrics.ThroughputTokensPerSec());
  std::printf("  TTFT p50 / p90     : %.3f s / %.3f s\n", ttft.Percentile(50),
              ttft.Percentile(90));
  std::printf("  E2E  p50 / p90     : %.2f s / %.2f s\n", e2e.Percentile(50),
              e2e.Percentile(90));
  std::printf("  prefix-cache hits  : %.1f%%\n",
              deployment->AggregateCacheHitRate() * 100);
  std::printf("  cross-region fwd   : %.1f%% of requests\n",
              metrics.ForwardedFraction() * 100);
  return 0;
}
