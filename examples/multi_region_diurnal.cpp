// Diurnal cross-region offloading demo (the scenario that motivates the
// paper, §1-2): client load follows timezone-shifted day/night cycles, so a
// region's peak lands while another idles. The example runs a compressed
// 24-hour cycle and shows SkyWalker forwarding traffic from the loaded
// region to the idle ones, then prints the provisioning-cost implication.
//
//   $ ./build/examples/multi_region_diurnal

#include <cstdio>
#include <memory>
#include <vector>

#include "src/analysis/cost_model.h"
#include "src/analysis/metrics.h"
#include "src/core/deployment.h"
#include "src/workload/client.h"
#include "src/workload/diurnal.h"

using namespace skywalker;  // Example code; the library never does this.

namespace {

// One simulated "hour" is compressed to 30 s so the full cycle runs quickly.
constexpr SimDuration kHour = Seconds(30);

}  // namespace

int main() {
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());

  DeploymentSpec spec;
  spec.replicas_per_region = {2, 2, 2};
  spec.replica_config.max_running_requests = 32;  // L4 band.
  auto deployment = Deployment::Build(&sim, &net, spec);
  deployment->Start();

  MetricsCollector metrics;
  ConversationGenerator generator(ConversationWorkloadConfig::WildChat(), 3,
                                  /*seed=*/7);
  ClientConfig client_config;
  client_config.think_time_mean = Milliseconds(500);
  client_config.program_gap_mean = Milliseconds(500);

  // Diurnal client activation: each region's clients are awake only during
  // the region's active hours [8r, 8r + 10) — offset by 8 "hours" per
  // region, so one region's peak lands while the others idle. Per-region
  // demand (48 busy clients) exceeds the region's own 2 replicas, which is
  // what drives cross-region offloading to the sleeping regions.
  const int kClientsPerRegion = 48;
  std::vector<std::unique_ptr<ConversationClient>> clients;
  for (RegionId region = 0; region < 3; ++region) {
    SimTime wake = kHour * (8 * region);
    ClientConfig window_config = client_config;
    window_config.stop_issuing_after = wake + kHour * 10;
    for (int i = 0; i < kClientsPerRegion; ++i) {
      clients.push_back(std::make_unique<ConversationClient>(
          &sim, &net, deployment->resolver(), &generator, &metrics, region,
          window_config, 500 + clients.size()));
      clients.back()->Start(wake + Milliseconds(200 * i));
    }
  }

  // Observe forwarding per "hour".
  std::printf("hour | forwarded so far | note\n");
  int64_t last_forwarded = 0;
  for (int hour = 1; hour <= 24; ++hour) {
    sim.RunUntil(kHour * hour);
    int64_t forwarded = deployment->TotalForwarded();
    const char* note = "";
    if (forwarded > last_forwarded + 20) {
      note = "<- heavy cross-region offloading";
    }
    if (hour % 4 == 0 || note[0] != '\0') {
      std::printf("%4d | %16ld | %s\n", hour, static_cast<long>(forwarded),
                  note);
    }
    last_forwarded = forwarded;
  }

  std::printf("\nTotals after one diurnal cycle:\n");
  std::printf("  requests completed : %zu\n", metrics.total_recorded());
  std::printf("  forwarded fraction : %.1f%%\n",
              metrics.ForwardedFraction() * 100);
  std::printf("  cache hit rate     : %.1f%%\n",
              deployment->AggregateCacheHitRate() * 100);

  // Cost implication: provisioning for the aggregated global peak instead of
  // three regional peaks (paper Fig. 3b).
  DiurnalModel model = DiurnalModel::FiveCloudRegions();
  CostModel cost;
  std::vector<RegionDemand> demand;
  for (size_t r = 0; r < model.num_regions(); ++r) {
    demand.push_back(CostModel::DemandFromRequests(
        model.HourlySeries(r, 4000 * model.profile(r).scale), 250));
  }
  double region_local = cost.RegionLocalReservedCost(demand);
  double aggregated = cost.AggregatedReservedCost(demand);
  std::printf(
      "\nReservation for aggregated global peak saves %.1f%% vs per-region "
      "peaks\n($%.0f vs $%.0f per day for the five-region WildChat "
      "profile).\n",
      100.0 * (1.0 - aggregated / region_local), aggregated, region_local);
  return 0;
}
