// Load-balancer failure and recovery walkthrough (§4.2): a regional LB
// fails mid-traffic; the controller detects it via health probes, reassigns
// its replicas to the geographically nearest healthy LB, DNS steers clients
// to the next-closest region, and service continues. When the LB recovers,
// its replicas transfer back.
//
//   $ ./build/examples/failover_recovery

#include <cstdio>

#include "src/analysis/metrics.h"
#include "src/core/deployment.h"
#include "src/workload/client.h"

using namespace skywalker;  // Example code; the library never does this.

int main() {
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());

  DeploymentSpec spec;
  spec.replicas_per_region = {2, 2, 2};
  spec.controller_config.health_probe_interval = Milliseconds(500);
  spec.controller_config.auto_recovery_delay = 0;  // Manual recovery below.
  auto deployment = Deployment::Build(&sim, &net, spec);
  deployment->Start();

  MetricsCollector metrics;
  ConversationGenerator generator(ConversationWorkloadConfig::Arena(), 3, 11);
  ClientConfig client_config;
  client_config.think_time_mean = Seconds(1);
  std::vector<std::unique_ptr<ConversationClient>> clients;
  for (RegionId region = 0; region < 3; ++region) {
    for (int i = 0; i < 8; ++i) {
      clients.push_back(std::make_unique<ConversationClient>(
          &sim, &net, deployment->resolver(), &generator, &metrics, region,
          client_config, 900 + clients.size()));
      clients.back()->Start(Milliseconds(100 * static_cast<int>(i)));
    }
  }

  auto snapshot = [&](const char* phase) {
    SkyWalkerLb* us = deployment->LbInRegion(0);
    SkyWalkerLb* eu = deployment->LbInRegion(1);
    SkyWalkerLb* ap = deployment->LbInRegion(2);
    std::printf("%-22s t=%5.0fs  replicas us/eu/ap = %zu/%zu/%zu  "
                "completed=%zu  errors=%ld\n",
                phase, ToSeconds(sim.now()), us->num_replicas(),
                eu->num_replicas(), ap->num_replicas(),
                metrics.total_recorded(),
                static_cast<long>(eu->stats().errors_reported));
  };

  sim.RunFor(Seconds(30));
  snapshot("steady state");

  // Fail the EU load balancer.
  SkyWalkerLb* eu = deployment->LbInRegion(1);
  eu->Fail();
  std::printf("\n>>> EU load balancer fails\n");
  sim.RunFor(Seconds(2));
  snapshot("after detection");

  // Traffic continues: EU clients re-resolve DNS to the nearest healthy LB,
  // and the controller has moved EU's replicas under it.
  size_t before = metrics.total_recorded();
  sim.RunFor(Seconds(30));
  snapshot("serving through fail");
  std::printf("    requests completed during failure: %zu\n",
              metrics.total_recorded() - before);

  // Recover.
  std::printf("\n>>> controller recovers the EU load balancer\n");
  deployment->controller()->RecoverLb(eu->id());
  sim.RunFor(Seconds(30));
  snapshot("after recovery");

  const Controller::Stats& cstats = deployment->controller()->stats();
  std::printf(
      "\ncontroller: %ld failovers handled, %ld replicas reassigned, %ld "
      "recoveries\n",
      static_cast<long>(cstats.failovers_handled),
      static_cast<long>(cstats.replicas_reassigned),
      static_cast<long>(cstats.recoveries_completed));
  return 0;
}
