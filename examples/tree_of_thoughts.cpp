// Tree-of-Thoughts serving demo (§5.1): reasoning programs issue trees of
// expansion requests whose nodes share prefixes up to their lowest common
// ancestor, and whose siblings run concurrently. The example contrasts the
// prefix-tree SkyWalker deployment against a round-robin baseline on the
// same trees, showing the cache-hit and latency difference prefix-aware
// routing buys on this workload.
//
//   $ ./build/examples/tree_of_thoughts

#include <cstdio>
#include <memory>
#include <vector>

#include "src/analysis/metrics.h"
#include "src/harness/experiment.h"

using namespace skywalker;  // Example code; the library never does this.

namespace {

WorkloadSpec TreeWorkload() {
  WorkloadSpec spec;
  spec.seed = 404;
  for (RegionId region = 0; region < 3; ++region) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kToT;
    group.region = region;
    group.count = 8;
    group.tot.depth = 4;
    group.tot.branching = 2;  // 15 expansion requests per tree.
    group.tot.question_len_mean = 600;
    group.tot.thought_len_mean = 150;
    group.client.think_time_mean = Milliseconds(200);
    group.client.program_gap_mean = Seconds(1);
    spec.groups.push_back(group);
  }
  return spec;
}

void RunOne(SystemKind kind) {
  SystemSpec spec;
  spec.kind = kind;
  spec.replicas_per_region = {2, 2, 2};
  ExperimentConfig config;
  config.warmup = Seconds(20);
  config.measure = Seconds(120);
  ExperimentResult result = RunExperiment(Topology::ThreeContinents(), spec,
                                          TreeWorkload(), config);
  std::printf("%-14s tput %6.0f tok/s | TTFT p50 %6.3f s | hit %5.1f%% | "
              "%zu requests\n",
              std::string(result.system).c_str(), result.throughput_tok_s,
              result.ttft_p50_s, result.cache_hit_rate * 100,
              result.completed);
}

}  // namespace

int main() {
  std::printf("Tree-of-Thoughts: 24 clients, depth-4 binary trees, "
              "6 replicas on 3 continents\n\n");
  RunOne(SystemKind::kRoundRobin);
  RunOne(SystemKind::kSkyWalker);
  std::printf(
      "\nEach tree's 15 expansions share the question + ancestor thoughts;\n"
      "prefix-aware routing keeps a tree on one replica and reuses its KV,\n"
      "while round robin re-prefills the shared context on every replica.\n");
  return 0;
}
