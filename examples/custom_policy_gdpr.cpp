// Custom routing policy demo (§4.1/§7): GDPR-style forwarding constraints.
//
// Setup: eu-west and eu-central are GDPR regions; us-east is not. The
// forward_allowed predicate encodes the paper's §7 policy:
//   * EU traffic may only be offloaded to other EU regions;
//   * non-EU traffic MAY be offloaded to EU regions (that direction does not
//     export EU personal data).
// The example overloads each side in turn and shows where traffic lands.
//
//   $ ./build/examples/custom_policy_gdpr

#include <cstdio>

#include "src/analysis/metrics.h"
#include "src/core/deployment.h"
#include "src/workload/client.h"

using namespace skywalker;  // Example code; the library never does this.

namespace {

Topology GdprTopology() {
  Topology t;
  t.AddRegion("us-east", Milliseconds(1));     // Region 0: non-EU.
  t.AddRegion("eu-west", Milliseconds(1));     // Region 1: EU.
  t.AddRegion("eu-central", Milliseconds(1));  // Region 2: EU.
  t.SetLatency(0, 1, Milliseconds(40));
  t.SetLatency(0, 2, Milliseconds(45));
  t.SetLatency(1, 2, Milliseconds(10));
  return t;
}

bool IsEu(RegionId region) { return region == 1 || region == 2; }

void RunPhase(const char* title, int us_clients, int eu_clients) {
  Simulator sim;
  Network net(&sim, GdprTopology());

  DeploymentSpec spec;
  spec.replicas_per_region = {2, 2, 2};
  spec.replica_config.max_running_requests = 24;
  spec.replica_config.kv_capacity_tokens = 16384;
  // §7: EU data never leaves the EU; non-EU regions may offload into the EU.
  spec.lb_config.forward_allowed = [](RegionId from, RegionId to) {
    if (IsEu(from)) {
      return IsEu(to);
    }
    return true;
  };
  auto deployment = Deployment::Build(&sim, &net, spec);
  deployment->Start();

  MetricsCollector metrics;
  ConversationGenerator generator(ConversationWorkloadConfig::WildChat(), 3,
                                  77);
  ClientConfig client_config;
  client_config.think_time_mean = Milliseconds(300);
  client_config.program_gap_mean = Milliseconds(300);
  std::vector<std::unique_ptr<ConversationClient>> clients;
  auto add_clients = [&](RegionId region, int count) {
    for (int i = 0; i < count; ++i) {
      clients.push_back(std::make_unique<ConversationClient>(
          &sim, &net, deployment->resolver(), &generator, &metrics, region,
          client_config, 3000 + clients.size()));
      clients.back()->Start(Milliseconds(50 * static_cast<int>(i)));
    }
  };
  add_clients(0, us_clients);
  add_clients(1, eu_clients);
  add_clients(2, eu_clients);

  sim.RunUntil(Minutes(3));

  // Where did each origin's requests execute?
  int64_t eu_outside_eu = 0;
  int64_t us_in_eu = 0;
  int64_t forwarded = 0;
  for (const RequestOutcome& o : metrics.outcomes()) {
    if (o.forwarded) {
      ++forwarded;
    }
    if (IsEu(o.client_region) && !IsEu(o.served_region)) {
      ++eu_outside_eu;
    }
    if (!IsEu(o.client_region) && IsEu(o.served_region)) {
      ++us_in_eu;
    }
  }
  std::printf("%s\n", title);
  std::printf("  completed=%zu forwarded=%ld\n", metrics.total_recorded(),
              static_cast<long>(forwarded));
  std::printf("  EU-origin requests served outside the EU : %ld (must be 0)\n",
              static_cast<long>(eu_outside_eu));
  std::printf("  US-origin requests served inside the EU  : %ld (allowed)\n\n",
              static_cast<long>(us_in_eu));
}

}  // namespace

int main() {
  std::printf("GDPR routing-constraint demo (us-east | eu-west, eu-central)\n\n");
  RunPhase("Phase 1: US overloaded (36 US vs 6+6 EU clients)", 36, 6);
  RunPhase("Phase 2: EU overloaded (6 US vs 30+30 EU clients)", 6, 30);
  std::printf(
      "EU overflow stays within EU regions; US overflow may use idle EU\n"
      "capacity. The same predicate hook supports arbitrary compliance\n"
      "policies (data residency, sovereignty tiers, allow/deny lists).\n");
  return 0;
}
