// Differential + structural property tests for the unified block ledger
// (ISSUE 4/5).
//
// The seed replica accounted memory with bare token counters:
//   Resident   = cache.size_tokens + Σ running private_tokens
//   Committed  = Σ running (prefill_remaining + max(0, reserve - generated))
//   admit iff  need <= capacity - Resident - Committed
//   reclaim    = max(0, Resident - capacity)
// `RefModel` below is a verbatim transcription of that arithmetic. The
// coarse test drives randomized admit / prefill / decode / cache-churn /
// preempt / complete traces through the reference and the *real* unified
// ledger — a KvController plus a block-native PrefixCache sharing its
// allocator — in coarse mode (block_size 1, no watermark), asserting
// identical admission decisions and identical resident/committed series at
// every step: the contract that keeps the historical BENCH goldens
// byte-identical now that the cache charge is the sum of node-held pages.
//
// The unified-ledger test then replays the full replica publish protocol
// (admit with pin + skew, chunked prefill, publish-by-reference-transfer,
// decode into the shared boundary page, complete, preempt, evict, fork)
// at real block sizes, asserting after every op the block-conservation
// invariant of ISSUE 5:
//     cache-held refs + sequence-held refs == allocator refs,
//     every used page has a holder, free pages have none,
// plus tree/ledger self-consistency and non-negative exact fragmentation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/cache/prefix_cache.h"
#include "src/common/rng.h"
#include "src/memory/kv_controller.h"

namespace skywalker {
namespace {

// Verbatim seed accounting (src/replica/replica.cc before ISSUE 4).
struct RefSeq {
  int64_t prefill_remaining = 0;
  int64_t generated = 0;
  int64_t private_tokens = 0;
  int64_t id = 0;
};

struct RefModel {
  int64_t capacity;
  int64_t reserve;
  int64_t cache_tokens = 0;
  std::vector<RefSeq> running;

  explicit RefModel(int64_t capacity_tokens, int64_t reserve_tokens)
      : capacity(capacity_tokens), reserve(reserve_tokens) {}

  int64_t Resident() const {
    int64_t resident = cache_tokens;
    for (const RefSeq& seq : running) {
      resident += seq.private_tokens;
    }
    return resident;
  }

  int64_t CommittedFuture() const {
    int64_t committed = 0;
    for (const RefSeq& seq : running) {
      committed += seq.prefill_remaining;
      committed += std::max<int64_t>(0, reserve - seq.generated);
    }
    return committed;
  }

  bool CanAdmit(int64_t need) const {
    return need <= capacity - Resident() - CommittedFuture();
  }
};

struct TraceConfig {
  int64_t capacity = 8192;
  int64_t reserve = 128;
  int ops = 4000;
  uint64_t seed = 1;
};

// One generated trace step, interpreted identically by both models.
enum class Op { kTryAdmit, kPrefillChunk, kDecode, kComplete, kPreempt,
                kCacheGrow, kCacheShrink };

class CoarseDifferentialTest : public ::testing::TestWithParam<TraceConfig> {};

TEST_P(CoarseDifferentialTest, AdmissionAndSeriesMatchSeedAccounting) {
  const TraceConfig trace = GetParam();
  Rng rng(trace.seed);

  RefModel ref(trace.capacity, trace.reserve);
  KvConfig config;
  config.capacity_tokens = trace.capacity;
  config.block_size_tokens = 1;  // Coarse compatibility mode.
  KvController kv(config);
  // The real cache side: node spans charge kv's allocator directly.
  PrefixCache cache(trace.capacity, &kv.allocator(), 1);

  // Paired sequence handles: ref.running[i] <-> kv_ids[i].
  std::vector<KvController::SeqId> kv_ids;
  int64_t next_id = 1;
  Token next_cache_token = 1'000'000;
  SimTime now = 0;
  std::vector<int64_t> resident_series;
  std::vector<int64_t> committed_series;
  auto resident = [&] {
    return cache.size_tokens() + kv.seq_resident_tokens();
  };

  for (int step = 0; step < trace.ops; ++step) {
    Op op = static_cast<Op>(rng.UniformInt(0, 6));
    switch (op) {
      case Op::kTryAdmit: {
        int64_t prompt = rng.UniformInt(8, 900);
        int64_t cached = rng.UniformInt(0, prompt - 1);
        int64_t prefill = prompt - cached;
        int64_t need = prefill + trace.reserve;
        bool ref_admits = ref.CanAdmit(need);
        bool kv_admits = kv.CanAdmit(prefill, trace.reserve);
        ASSERT_EQ(ref_admits, kv_admits)
            << "admission decisions diverged at op " << step;
        ASSERT_EQ(need - (trace.capacity - ref.Resident() -
                          ref.CommittedFuture()) >
                      0,
                  kv.AdmissionDeficitBlocks(prefill, trace.reserve) > 0);
        // Admit anyway when the batch is empty (force-admit path).
        if (ref_admits || ref.running.empty()) {
          RefSeq seq;
          seq.prefill_remaining = prefill;
          seq.id = next_id++;
          ref.running.push_back(seq);
          kv_ids.push_back(kv.AdmitSeq(prefill, trace.reserve));
        }
        break;
      }
      case Op::kPrefillChunk: {
        if (ref.running.empty()) {
          break;
        }
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ref.running.size()) - 1));
        RefSeq& seq = ref.running[i];
        if (seq.prefill_remaining == 0) {
          break;
        }
        int64_t chunk =
            rng.UniformInt(1, std::min<int64_t>(seq.prefill_remaining, 256));
        seq.prefill_remaining -= chunk;
        seq.private_tokens += chunk;
        kv.OnPrefillChunk(kv_ids[i], chunk);
        break;
      }
      case Op::kDecode: {
        if (ref.running.empty()) {
          break;
        }
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ref.running.size()) - 1));
        RefSeq& seq = ref.running[i];
        if (seq.prefill_remaining > 0) {
          break;  // Decode only after prefill, as in the engine.
        }
        ++seq.generated;
        ++seq.private_tokens;
        kv.OnDecodeToken(kv_ids[i]);
        break;
      }
      case Op::kComplete: {
        if (ref.running.empty()) {
          break;
        }
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ref.running.size()) - 1));
        ref.running.erase(ref.running.begin() +
                          static_cast<std::ptrdiff_t>(i));
        kv.ReleaseSeq(kv_ids[i]);
        kv_ids.erase(kv_ids.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case Op::kPreempt: {
        // Seed ReclaimMemory: youngest victim, memory dropped entirely.
        if (ref.running.size() < 2) {
          break;
        }
        ref.running.pop_back();
        kv.ReleaseSeq(kv_ids.back());
        kv_ids.pop_back();
        break;
      }
      case Op::kCacheGrow: {
        // A fresh sequence lands in the cache; node pages charge the shared
        // allocator on insert (auto-evicting past capacity, like the real
        // cache under a smaller budget than the pool's).
        int64_t grow = rng.UniformInt(1, 512);
        TokenSeq seq;
        for (int64_t t = 0; t < grow; ++t) {
          seq.push_back(next_cache_token++);
        }
        cache.Insert(seq, ++now);
        ref.cache_tokens = cache.size_tokens();
        break;
      }
      case Op::kCacheShrink: {
        int64_t shrink = rng.UniformInt(0, cache.size_tokens());
        cache.Evict(shrink);
        ref.cache_tokens = cache.size_tokens();
        break;
      }
    }
    ASSERT_EQ(ref.Resident(), resident()) << "op " << step;
    ASSERT_EQ(ref.CommittedFuture(), kv.committed_tokens()) << "op " << step;
    // Coarse mode: a block is a token, so the block-unit reclaim target is
    // exactly the seed token arithmetic.
    ASSERT_EQ(std::max<int64_t>(0, ref.Resident() - ref.capacity),
              kv.ReclaimNeededBlocks())
        << "op " << step;
    resident_series.push_back(resident());
    committed_series.push_back(kv.committed_tokens());
  }

  // Coarse mode never fragments and both ledgers stay sound; every
  // allocator reference is owned by exactly one holder.
  EXPECT_EQ(kv.used_blocks(), resident());
  EXPECT_EQ(cache.block_refs() + kv.seq_block_refs(),
            kv.allocator().live_refs());
  EXPECT_TRUE(kv.CheckConsistency());
  EXPECT_TRUE(cache.CheckInvariants());

  // Replaying the recorded series through a fresh reference must reproduce
  // it (series are a pure function of the trace — determinism guard).
  ASSERT_EQ(resident_series.size(), static_cast<size_t>(trace.ops));
  ASSERT_EQ(committed_series.size(), static_cast<size_t>(trace.ops));
}

INSTANTIATE_TEST_SUITE_P(
    Traces, CoarseDifferentialTest,
    ::testing::Values(TraceConfig{8192, 128, 4000, 1},
                      TraceConfig{8192, 128, 4000, 2},
                      TraceConfig{2048, 256, 4000, 3},   // Memory-starved.
                      TraceConfig{49152, 128, 4000, 4},  // Default L4.
                      TraceConfig{512, 64, 2000, 5}));   // Pathological.

// --- Unified-ledger conservation under the full publish protocol ---------

struct LiveSeq {
  KvController::SeqId id = KvController::kInvalidSeq;
  PinId pin = kInvalidPin;
  TokenSeq prompt;
  int64_t base = 0;  // Path position of the table's first token.
  int64_t prefill_left = 0;
  int64_t generated = 0;
  bool published = false;
};

class UnifiedLedgerPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<int32_t, uint64_t, EvictionPolicy>> {};

TEST_P(UnifiedLedgerPropertyTest, BlockConservationHoldsUnderChurn) {
  auto [block_size, seed, policy] = GetParam();
  Rng rng(seed);
  KvConfig config;
  config.capacity_tokens = 8192;
  config.block_size_tokens = block_size;
  config.watermark_blocks = block_size > 1 ? 4 : 0;
  KvController kv(config);
  // The kColdSubtree replays exercise subtree eviction (plus its LRU-leaf
  // fallback) under the full publish protocol: conservation and aggregate
  // soundness (CheckInvariants validates the subtree aggregates whenever
  // the policy maintains them) must hold after every eviction.
  PrefixCache cache(config.capacity_tokens, &kv.allocator(), block_size,
                    policy);
  const int64_t reserve = 96;

  std::vector<LiveSeq> live;
  std::vector<TokenSeq> history;  // Prompt pool; extensions share prefixes.
  Token next_token = 1;
  Token next_output = 50'000'000;
  SimTime now = 0;

  auto check = [&](int step) {
    // ISSUE 5 conservation: every allocator reference is held by exactly
    // one owner — a cache node span or a sequence table. (Pages shared at
    // boundaries carry one ref per owner; free pages carry none, which
    // BlockAllocator::CheckInvariants pins.)
    ASSERT_EQ(cache.block_refs() + kv.seq_block_refs(),
              kv.allocator().live_refs())
        << "conservation broke at op " << step;
    ASSERT_TRUE(cache.CheckInvariants()) << "op " << step;
    ASSERT_TRUE(kv.CheckConsistency()) << "op " << step;
    // Exact fragmentation is non-negative: pages hold at least as many
    // slots as the tokens occupying them (token positions are disjoint
    // across the cache and sequence sides of a shared page).
    ASSERT_GE(kv.used_blocks() * block_size -
                  (cache.size_tokens() + kv.seq_resident_tokens()),
              0)
        << "op " << step;
  };

  auto publish = [&](LiveSeq& s) {
    // Mirror Replica::OnPrefillComplete: first output token, then publish
    // by reference transfer, re-pin, drop the published span.
    s.generated = 1;
    kv.OnDecodeToken(s.id);
    cache.Insert(s.prompt, ++now, &kv.table(s.id), s.base);
    cache.Unref(s.pin);
    auto m = cache.MatchAndRef(s.prompt, ++now);
    s.pin = m.pin;
    const int64_t prompt_len = static_cast<int64_t>(s.prompt.size());
    const int64_t target = (prompt_len - m.cached_len) + s.generated;
    const int64_t current = kv.SeqTokens(s.id);
    ASSERT_LE(target, current);
    kv.ReleaseSeqPrefix(s.id, current - target);
    s.base += current - target;
    if (block_size > 1 && prompt_len % block_size != 0) {
      const int64_t idx =
          (prompt_len - 1) / block_size - s.base / block_size;
      if (idx >= 0 && idx < kv.table(s.id).num_blocks()) {
        kv.SetCowExempt(s.id,
                        kv.table(s.id).blocks()[static_cast<size_t>(idx)]);
      }
    }
    s.published = true;
  };

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 6));
    if (op == 0 && live.size() < 24) {  // Admit.
      LiveSeq s;
      if (!history.empty() && rng.UniformInt(0, 1) == 0) {
        // Conversation turn: extend a previous prompt (shared prefix).
        s.prompt = history[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(history.size()) - 1))];
      }
      const int64_t extra = rng.UniformInt(5, 300);
      for (int64_t t = 0; t < extra; ++t) {
        s.prompt.push_back(next_token++);
      }
      auto m = cache.MatchAndRef(s.prompt, ++now);
      const int64_t cached = std::min(
          m.cached_len, static_cast<int64_t>(s.prompt.size()) - 1);
      s.pin = m.pin;
      s.base = cached;
      s.prefill_left = static_cast<int64_t>(s.prompt.size()) - cached;
      if (!kv.CanAdmit(s.prefill_left, reserve)) {
        cache.Evict(kv.AdmissionDeficitBlocks(s.prefill_left, reserve));
      }
      if (!kv.CanAdmit(s.prefill_left, reserve) && !live.empty()) {
        cache.Unref(s.pin);  // Stay pending (dropped here).
      } else {
        s.id = kv.AdmitSeq(s.prefill_left, reserve,
                           static_cast<int32_t>(cached % block_size));
        history.push_back(s.prompt);
        live.push_back(std::move(s));
      }
    } else if (op == 1 && !live.empty()) {  // Prefill chunk (+publish).
      LiveSeq& s = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      if (s.prefill_left > 0) {
        const int64_t chunk =
            rng.UniformInt(1, std::min<int64_t>(s.prefill_left, 256));
        s.prefill_left -= chunk;
        kv.OnPrefillChunk(s.id, chunk);
        if (s.prefill_left == 0) {
          publish(s);
        }
      }
    } else if (op == 2 && !live.empty()) {  // Decode.
      LiveSeq& s = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      if (s.published) {
        ++s.generated;
        kv.OnDecodeToken(s.id);
      }
    } else if (op == 3 && !live.empty()) {  // Complete.
      const size_t i = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      LiveSeq s = std::move(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      if (s.published) {
        TokenSeq full = s.prompt;
        for (int64_t t = 0; t < s.generated; ++t) {
          full.push_back(next_output++);
        }
        cache.Insert(full, ++now, &kv.table(s.id), s.base);
      }
      cache.Unref(s.pin);
      kv.ReleaseSeq(s.id);
    } else if (op == 4 && live.size() > 1) {  // Preempt (recompute-style).
      LiveSeq s = std::move(live.back());
      live.pop_back();
      cache.Unref(s.pin);
      kv.ReleaseSeq(s.id);
      kv.NoteRecomputePreemption();
    } else if (op == 5) {  // Eviction pressure (Evict takes blocks now).
      cache.Evict(rng.UniformInt(0, 2048) / block_size);
    } else if (op == 6 && !live.empty()) {  // Fork a table, then drop it.
      const LiveSeq& s = live[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      const int64_t tokens = kv.SeqTokens(s.id);
      if (tokens > 0) {
        BlockTable fork;
        fork.ForkFrom(kv.allocator(), kv.table(s.id), block_size,
                      rng.UniformInt(1, tokens));
        ASSERT_EQ(cache.block_refs() + kv.seq_block_refs() +
                      fork.num_blocks(),
                  kv.allocator().live_refs());
        fork.Clear(kv.allocator());
      }
    }
    check(step);
  }

  // Drain: complete everything, drop the cache, and the pool must be empty.
  for (LiveSeq& s : live) {
    cache.Unref(s.pin);
    kv.ReleaseSeq(s.id);
  }
  live.clear();
  cache.Clear();
  EXPECT_EQ(cache.size_tokens(), 0);
  EXPECT_EQ(kv.used_blocks(), 0);
  EXPECT_EQ(kv.allocator().live_refs(), 0);
  EXPECT_TRUE(kv.CheckConsistency());
  EXPECT_TRUE(cache.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, UnifiedLedgerPropertyTest,
    ::testing::Combine(::testing::Values(int32_t{1}, int32_t{16},
                                         int32_t{32}),
                       ::testing::Values(11u, 12u, 13u),
                       ::testing::Values(EvictionPolicy::kLruLeaf,
                                         EvictionPolicy::kColdSubtree)));

}  // namespace
}  // namespace skywalker
