// Differential property test for the paged KV subsystem (ISSUE 4).
//
// The seed replica accounted memory with bare token counters:
//   Resident   = cache.size_tokens + Σ running private_tokens
//   Committed  = Σ running (prefill_remaining + max(0, reserve - generated))
//   admit iff  need <= capacity - Resident - Committed
//   reclaim    = max(0, Resident - capacity)
// `RefModel` below is a verbatim transcription of that arithmetic. The test
// drives randomized admit / prefill / decode / cache-churn / preempt /
// complete traces through both the reference and a KvController in coarse
// mode (block_size 1, no watermark), asserting identical admission
// decisions and identical resident/committed memory series at every step —
// the contract that keeps the historical BENCH goldens byte-identical.
//
// The same traces then replay against paged controllers (block 16/32),
// where exact token equality no longer holds, checking the structural
// invariants instead: ledger consistency, block conservation, bounded
// fragmentation, and monotonicity (paged admission is never more permissive
// than coarse admission at equal watermark).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/memory/kv_controller.h"

namespace skywalker {
namespace {

// Verbatim seed accounting (src/replica/replica.cc before ISSUE 4).
struct RefSeq {
  int64_t prefill_remaining = 0;
  int64_t generated = 0;
  int64_t private_tokens = 0;
  int64_t id = 0;
};

struct RefModel {
  int64_t capacity;
  int64_t reserve;
  int64_t cache_tokens = 0;
  std::vector<RefSeq> running;

  explicit RefModel(int64_t capacity_tokens, int64_t reserve_tokens)
      : capacity(capacity_tokens), reserve(reserve_tokens) {}

  int64_t Resident() const {
    int64_t resident = cache_tokens;
    for (const RefSeq& seq : running) {
      resident += seq.private_tokens;
    }
    return resident;
  }

  int64_t CommittedFuture() const {
    int64_t committed = 0;
    for (const RefSeq& seq : running) {
      committed += seq.prefill_remaining;
      committed += std::max<int64_t>(0, reserve - seq.generated);
    }
    return committed;
  }

  bool CanAdmit(int64_t need) const {
    return need <= capacity - Resident() - CommittedFuture();
  }
};

struct TraceConfig {
  int64_t capacity = 8192;
  int64_t reserve = 128;
  int ops = 4000;
  uint64_t seed = 1;
};

// One generated trace step, interpreted identically by both models.
enum class Op { kTryAdmit, kPrefillChunk, kDecode, kComplete, kPreempt,
                kCacheGrow, kCacheShrink };

class CoarseDifferentialTest : public ::testing::TestWithParam<TraceConfig> {};

TEST_P(CoarseDifferentialTest, AdmissionAndSeriesMatchSeedAccounting) {
  const TraceConfig trace = GetParam();
  Rng rng(trace.seed);

  RefModel ref(trace.capacity, trace.reserve);
  KvConfig config;
  config.capacity_tokens = trace.capacity;
  config.block_size_tokens = 1;  // Coarse compatibility mode.
  KvController kv(config);

  // Paired sequence handles: ref.running[i] <-> kv_ids[i].
  std::vector<KvController::SeqId> kv_ids;
  int64_t next_id = 1;
  std::vector<int64_t> resident_series;
  std::vector<int64_t> committed_series;

  for (int step = 0; step < trace.ops; ++step) {
    Op op = static_cast<Op>(rng.UniformInt(0, 6));
    switch (op) {
      case Op::kTryAdmit: {
        int64_t prompt = rng.UniformInt(8, 900);
        int64_t cached = rng.UniformInt(0, prompt - 1);
        int64_t prefill = prompt - cached;
        int64_t need = prefill + trace.reserve;
        bool ref_admits = ref.CanAdmit(need);
        bool kv_admits = kv.CanAdmit(prefill, trace.reserve);
        ASSERT_EQ(ref_admits, kv_admits)
            << "admission decisions diverged at op " << step;
        ASSERT_EQ(need - (trace.capacity - ref.Resident() -
                          ref.CommittedFuture()) >
                      0,
                  kv.AdmissionDeficitTokens(prefill, trace.reserve) > 0);
        // Admit anyway when the batch is empty (force-admit path).
        if (ref_admits || ref.running.empty()) {
          RefSeq seq;
          seq.prefill_remaining = prefill;
          seq.id = next_id++;
          ref.running.push_back(seq);
          kv_ids.push_back(kv.AdmitSeq(prefill, trace.reserve));
        }
        break;
      }
      case Op::kPrefillChunk: {
        if (ref.running.empty()) {
          break;
        }
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ref.running.size()) - 1));
        RefSeq& seq = ref.running[i];
        if (seq.prefill_remaining == 0) {
          break;
        }
        int64_t chunk =
            rng.UniformInt(1, std::min<int64_t>(seq.prefill_remaining, 256));
        seq.prefill_remaining -= chunk;
        seq.private_tokens += chunk;
        kv.OnPrefillChunk(kv_ids[i], chunk);
        break;
      }
      case Op::kDecode: {
        if (ref.running.empty()) {
          break;
        }
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ref.running.size()) - 1));
        RefSeq& seq = ref.running[i];
        if (seq.prefill_remaining > 0) {
          break;  // Decode only after prefill, as in the engine.
        }
        ++seq.generated;
        ++seq.private_tokens;
        kv.OnDecodeToken(kv_ids[i]);
        break;
      }
      case Op::kComplete: {
        if (ref.running.empty()) {
          break;
        }
        size_t i = static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(ref.running.size()) - 1));
        ref.running.erase(ref.running.begin() +
                          static_cast<std::ptrdiff_t>(i));
        kv.ReleaseSeq(kv_ids[i]);
        kv_ids.erase(kv_ids.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case Op::kPreempt: {
        // Seed ReclaimMemory: youngest victim, memory dropped entirely.
        if (ref.running.size() < 2) {
          break;
        }
        ref.running.pop_back();
        kv.ReleaseSeq(kv_ids.back());
        kv_ids.pop_back();
        break;
      }
      case Op::kCacheGrow: {
        int64_t grow = rng.UniformInt(0, 512);
        ref.cache_tokens += grow;
        kv.SyncCacheTokens(ref.cache_tokens);
        break;
      }
      case Op::kCacheShrink: {
        int64_t shrink = rng.UniformInt(0, ref.cache_tokens);
        ref.cache_tokens -= shrink;
        kv.SyncCacheTokens(ref.cache_tokens);
        break;
      }
    }
    ASSERT_EQ(ref.Resident(), kv.resident_tokens()) << "op " << step;
    ASSERT_EQ(ref.CommittedFuture(), kv.committed_tokens()) << "op " << step;
    ASSERT_EQ(std::max<int64_t>(0, ref.Resident() - ref.capacity),
              kv.ReclaimNeededTokens())
        << "op " << step;
    resident_series.push_back(kv.resident_tokens());
    committed_series.push_back(kv.committed_tokens());
  }

  // Coarse mode never fragments and the ledger stays sound.
  EXPECT_EQ(kv.fragmentation_tokens(), 0);
  EXPECT_TRUE(kv.CheckConsistency());

  // Replaying the recorded series through a fresh reference must reproduce
  // it (series are a pure function of the trace — determinism guard).
  ASSERT_EQ(resident_series.size(), static_cast<size_t>(trace.ops));
  ASSERT_EQ(committed_series.size(), static_cast<size_t>(trace.ops));
}

INSTANTIATE_TEST_SUITE_P(
    Traces, CoarseDifferentialTest,
    ::testing::Values(TraceConfig{8192, 128, 4000, 1},
                      TraceConfig{8192, 128, 4000, 2},
                      TraceConfig{2048, 256, 4000, 3},   // Memory-starved.
                      TraceConfig{49152, 128, 4000, 4},  // Default L4.
                      TraceConfig{512, 64, 2000, 5}));   // Pathological.

class PagedInvariantTest
    : public ::testing::TestWithParam<std::tuple<int32_t, uint64_t>> {};

TEST_P(PagedInvariantTest, LedgerInvariantsHoldUnderChurn) {
  auto [block_size, seed] = GetParam();
  Rng rng(seed);
  KvConfig config;
  config.capacity_tokens = 8192;
  config.block_size_tokens = block_size;
  config.watermark_blocks = 4;
  KvController kv(config);
  // Coarse twin at the same watermark (in tokens) for the monotonicity
  // check: paged ceil-rounding must never admit what coarse rejects.
  KvConfig coarse_config;
  coarse_config.capacity_tokens = 8192;
  coarse_config.watermark_blocks =
      static_cast<int64_t>(config.watermark_blocks) * block_size;
  KvController coarse(coarse_config);

  std::vector<KvController::SeqId> paged_ids;
  std::vector<KvController::SeqId> coarse_ids;
  std::vector<int64_t> prefill_left;
  int64_t cache = 0;

  for (int step = 0; step < 4000; ++step) {
    int64_t live = static_cast<int64_t>(paged_ids.size());
    int op = static_cast<int>(rng.UniformInt(0, 5));
    if (op == 0) {
      int64_t prefill = rng.UniformInt(1, 700);
      // Ceil-rounding only shrinks headroom: paged admit => coarse admit.
      if (kv.CanAdmit(prefill, 128)) {
        EXPECT_TRUE(coarse.CanAdmit(prefill, 128))
            << "paged admission more permissive than coarse at op " << step;
        paged_ids.push_back(kv.AdmitSeq(prefill, 128));
        coarse_ids.push_back(coarse.AdmitSeq(prefill, 128));
        prefill_left.push_back(prefill);
      }
    } else if (op == 1 && live > 0) {
      size_t i = static_cast<size_t>(rng.UniformInt(0, live - 1));
      if (prefill_left[i] > 0) {
        int64_t chunk = rng.UniformInt(1, prefill_left[i]);
        prefill_left[i] -= chunk;
        kv.OnPrefillChunk(paged_ids[i], chunk);
        coarse.OnPrefillChunk(coarse_ids[i], chunk);
      }
    } else if (op == 2 && live > 0) {
      size_t i = static_cast<size_t>(rng.UniformInt(0, live - 1));
      if (prefill_left[i] == 0) {
        kv.OnDecodeToken(paged_ids[i]);
        coarse.OnDecodeToken(coarse_ids[i]);
      }
    } else if (op == 3 && live > 0) {
      size_t i = static_cast<size_t>(rng.UniformInt(0, live - 1));
      kv.ReleaseSeq(paged_ids[i]);
      coarse.ReleaseSeq(coarse_ids[i]);
      paged_ids.erase(paged_ids.begin() + static_cast<std::ptrdiff_t>(i));
      coarse_ids.erase(coarse_ids.begin() + static_cast<std::ptrdiff_t>(i));
      prefill_left.erase(prefill_left.begin() +
                         static_cast<std::ptrdiff_t>(i));
    } else if (op == 4) {
      cache = rng.UniformInt(0, 2048);
      kv.SyncCacheTokens(cache);
      coarse.SyncCacheTokens(cache);
    } else if (op == 5 && live > 0) {
      // Swap round-trip: out then straight back in.
      int64_t tokens = kv.SeqTokens(paged_ids.back());
      kv.SwapOut(paged_ids.back());
      SimDuration transfer = 0;
      paged_ids.back() =
          kv.BeginSwapIn(tokens, prefill_left.back(), 128, &transfer);
      EXPECT_EQ(transfer, kv.SwapDuration(tokens));
    }

    // Token ledgers agree between granularities at all times.
    EXPECT_EQ(kv.resident_tokens(), coarse.resident_tokens());
    // Fragmentation is bounded: at most block_size-1 wasted slots per live
    // table (sequences + the cache charge).
    EXPECT_GE(kv.fragmentation_tokens(), 0);
    EXPECT_LE(kv.fragmentation_tokens(),
              (static_cast<int64_t>(paged_ids.size()) + 1) * (block_size - 1));
    // Block conservation: cumulative allocated = freed + in use.
    EXPECT_EQ(kv.allocator_stats().allocated,
              kv.allocator_stats().freed + kv.used_blocks());
  }
  ASSERT_TRUE(kv.CheckConsistency());
  ASSERT_TRUE(coarse.CheckConsistency());
  for (size_t i = 0; i < paged_ids.size(); ++i) {
    kv.ReleaseSeq(paged_ids[i]);
    coarse.ReleaseSeq(coarse_ids[i]);
  }
  kv.SyncCacheTokens(0);
  EXPECT_EQ(kv.used_blocks(), 0);
  EXPECT_EQ(kv.fragmentation_tokens(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, PagedInvariantTest,
    ::testing::Combine(::testing::Values(int32_t{16}, int32_t{32}),
                       ::testing::Values(11u, 12u, 13u)));

}  // namespace
}  // namespace skywalker
