// Unit tests for the GKE-Gateway-style multi-cluster baseline: local-first
// routing, capacity spill to the nearest cluster, least-connection placement
// within a cluster, and response-path accounting.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/lb/gateway.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace skywalker {
namespace {

struct GatewayBench {
  Simulator sim;
  Topology topology = Topology::ThreeContinents();
  std::unique_ptr<Network> net;
  std::unique_ptr<GatewayLb> gateway;
  std::vector<std::unique_ptr<Replica>> replicas;

  explicit GatewayBench(GatewayConfig config = {},
                        ReplicaConfig rconfig = {}) {
    net = std::make_unique<Network>(&sim, topology);
    gateway = std::make_unique<GatewayLb>(&sim, net.get(), config);
    ReplicaId next = 0;
    for (RegionId region = 0; region < 3; ++region) {
      for (int i = 0; i < 2; ++i) {
        replicas.push_back(
            std::make_unique<Replica>(&sim, next++, region, rconfig));
        gateway->AttachReplica(replicas.back().get());
      }
    }
  }

  int64_t EnqueuedInRegion(RegionId region) {
    int64_t total = 0;
    for (auto& replica : replicas) {
      if (replica->region() == region) {
        total += replica->stats().enqueued;
      }
    }
    return total;
  }
};

Request MakeRequest(RequestId id, RegionId client_region, int64_t prompt_len,
                    int64_t output_len, Token base) {
  Request req;
  req.id = id;
  req.client_region = client_region;
  for (int64_t i = 0; i < prompt_len; ++i) {
    req.prompt.push_back(base + static_cast<Token>(i));
  }
  for (int64_t i = 0; i < output_len; ++i) {
    req.output.push_back(700000 + base + static_cast<Token>(i));
  }
  return req;
}

TEST(GatewayTest, RoutesToLocalClusterWhenUnderThreshold) {
  GatewayBench bench;
  int completed = 0;
  RequestCallbacks callbacks;
  callbacks.on_complete = [&](const RequestOutcome& o) {
    ++completed;
    EXPECT_FALSE(o.forwarded);
    EXPECT_EQ(o.served_region, 1);
  };
  Frontend* eu = bench.gateway->EndpointFor(1);
  for (int i = 0; i < 4; ++i) {
    eu->HandleRequest(MakeRequest(static_cast<RequestId>(i), 1, 64, 8,
                                  static_cast<Token>(i) * 1000),
                      callbacks);
  }
  bench.sim.Run();
  EXPECT_EQ(completed, 4);
  EXPECT_EQ(bench.EnqueuedInRegion(1), 4);
  EXPECT_EQ(bench.gateway->stats().spilled, 0);
}

TEST(GatewayTest, SpillsToNearestClusterWhenSaturated) {
  GatewayConfig config;
  config.spill_outstanding_per_replica = 2.0;  // Saturates quickly.
  GatewayBench bench(config);
  int completed = 0;
  RequestCallbacks callbacks;
  callbacks.on_complete = [&](const RequestOutcome&) { ++completed; };
  Frontend* us = bench.gateway->EndpointFor(0);
  for (int i = 0; i < 24; ++i) {
    // Long decodes keep outstanding counts up.
    us->HandleRequest(MakeRequest(static_cast<RequestId>(i), 0, 64, 200,
                                  static_cast<Token>(i) * 100000),
                      callbacks);
  }
  bench.sim.RunFor(Milliseconds(200));
  EXPECT_GT(bench.gateway->stats().spilled, 0);
  // Spill goes to eu-west (nearest to us-east in ThreeContinents).
  EXPECT_GT(bench.EnqueuedInRegion(1), 0);
  bench.sim.Run();
  EXPECT_EQ(completed, 24);
}

TEST(GatewayTest, LeastConnectionWithinCluster) {
  GatewayBench bench;
  int completed = 0;
  RequestCallbacks callbacks;
  callbacks.on_complete = [&](const RequestOutcome&) { ++completed; };
  Frontend* ap = bench.gateway->EndpointFor(2);
  for (int i = 0; i < 8; ++i) {
    ap->HandleRequest(MakeRequest(static_cast<RequestId>(i), 2, 64, 64,
                                  static_cast<Token>(i) * 10000),
                      callbacks);
  }
  bench.sim.Run();
  EXPECT_EQ(completed, 8);
  // Both ap replicas took work (least-connection alternates).
  EXPECT_EQ(bench.replicas[4]->stats().enqueued, 4);
  EXPECT_EQ(bench.replicas[5]->stats().enqueued, 4);
}

TEST(GatewayTest, EndpointPerRegionIsStable) {
  GatewayBench bench;
  Frontend* a = bench.gateway->EndpointFor(0);
  Frontend* b = bench.gateway->EndpointFor(0);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->region(), 0);
  EXPECT_NE(bench.gateway->EndpointFor(1), a);
}

TEST(GatewayTest, SpilledResponsePathCountsTwoHops) {
  GatewayConfig config;
  config.spill_outstanding_per_replica = 0.5;  // Spill almost immediately.
  GatewayBench bench(config);
  std::vector<RequestOutcome> outcomes;
  RequestCallbacks callbacks;
  callbacks.on_complete = [&](const RequestOutcome& o) {
    outcomes.push_back(o);
  };
  Frontend* us = bench.gateway->EndpointFor(0);
  for (int i = 0; i < 6; ++i) {
    us->HandleRequest(MakeRequest(static_cast<RequestId>(i), 0, 64, 150,
                                  static_cast<Token>(i) * 100000),
                      callbacks);
  }
  bench.sim.Run();
  ASSERT_EQ(outcomes.size(), 6u);
  bool saw_spill = false;
  for (const auto& o : outcomes) {
    if (o.forwarded) {
      saw_spill = true;
      EXPECT_EQ(o.hops, 2);
      EXPECT_NE(o.served_region, 0);
    }
  }
  EXPECT_TRUE(saw_spill);
}

}  // namespace
}  // namespace skywalker
