// Steady-state allocation regression test for the event queue (ISSUE 3).
//
// The seed implementation kept std::function callbacks inside the heap
// entries: every Push allocated (std::function spill) and every heap growth
// re-moved every pending callback. The slot/generation rewrite must push and
// pop against a warm queue — even one holding a MILLION pending events —
// without a single heap allocation: slots and heap capacity are recycled,
// and small callbacks live inline in InlineFunction.
//
// Allocations are counted with a global operator new/delete replacement
// (standard-sanctioned, and composes with ASan, which intercepts the
// underlying malloc). Counters are only *asserted* inside windows the test
// controls, so gtest's own allocations don't interfere.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "src/common/inline_function.h"
#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

// GCC's inliner pierces the replaced operators and then flags the
// malloc/free pairing inside them as mismatched new/delete — a false
// positive for allocation-function replacements, which the standard requires
// to be callable this way. Keep them out of line and mute the warning.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#define SKYWALKER_NOINLINE __attribute__((noinline))
#else
#define SKYWALKER_NOINLINE
#endif

namespace {
std::atomic<long long> g_news{0};
std::atomic<long long> g_deletes{0};
}  // namespace

SKYWALKER_NOINLINE void* operator new(size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
SKYWALKER_NOINLINE void* operator new[](size_t size) { return ::operator new(size); }
SKYWALKER_NOINLINE void* operator new(size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  void* p = std::aligned_alloc(static_cast<size_t>(align),
                               (size + static_cast<size_t>(align) - 1) &
                                   ~(static_cast<size_t>(align) - 1));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
SKYWALKER_NOINLINE void* operator new[](size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
SKYWALKER_NOINLINE void operator delete(void* p) noexcept {
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
SKYWALKER_NOINLINE void operator delete[](void* p) noexcept { ::operator delete(p); }
SKYWALKER_NOINLINE void operator delete(void* p, size_t) noexcept { ::operator delete(p); }
SKYWALKER_NOINLINE void operator delete[](void* p, size_t) noexcept { ::operator delete(p); }
SKYWALKER_NOINLINE void operator delete(void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}
SKYWALKER_NOINLINE void operator delete[](void* p, std::align_val_t) noexcept {
  ::operator delete(p);
}

namespace skywalker {
namespace {

constexpr size_t kBacklog = 1'000'000;

long long NewCount() { return g_news.load(std::memory_order_relaxed); }

// Deterministic pseudo-times: spread pushes across a wide range so heap
// sifts exercise real depths.
SimTime PseudoTime(uint64_t i) { return static_cast<SimTime>(i * 2654435761u % 100000000u); }

TEST(EventQueueAllocTest, MillionEventSteadyStateDoesNotAllocate) {
  EventQueue q;
  // Warm-up: grow slots and heap capacity to the high-water mark, then
  // drain so every later phase operates strictly below it.
  for (size_t i = 0; i < kBacklog; ++i) {
    q.Push(PseudoTime(i), [] {});
  }
  ASSERT_EQ(q.size(), kBacklog);
  while (!q.empty()) {
    q.Pop();
  }

  // Phase 1: re-fill the full backlog. Every slot comes off the free list
  // and the heap vector reuses its capacity: zero allocations.
  long long baseline = NewCount();
  for (size_t i = 0; i < kBacklog; ++i) {
    q.Push(PseudoTime(i * 31 + 7), [] {});
  }
  EXPECT_EQ(NewCount() - baseline, 0)
      << "Push against warm capacity must not allocate";
  ASSERT_EQ(q.size(), kBacklog);

  // Phase 2: pop/push churn at full backlog (the simulator's steady state).
  baseline = NewCount();
  SimTime now = 0;
  for (size_t i = 0; i < 200'000; ++i) {
    EventQueue::Event event = q.Pop();
    now = event.at;
    q.Push(now + static_cast<SimTime>(i % 1024) + 1, [] {});
  }
  EXPECT_EQ(NewCount() - baseline, 0)
      << "steady-state pop+push must not allocate";
  ASSERT_EQ(q.size(), kBacklog);

  // Phase 3: cancellation is generation-stamped — no tombstone side sets to
  // grow, so cancel/push/pop churn is allocation-free too. Stale heap
  // entries accumulate temporarily but stay within the warm capacity.
  while (q.size() > kBacklog / 2) {
    q.Pop();
  }
  std::vector<EventId> ring(1024, kInvalidEventId);
  baseline = NewCount();
  for (size_t i = 0; i < 100'000; ++i) {
    size_t at = i % ring.size();
    if (ring[at] != kInvalidEventId) {
      q.Cancel(ring[at]);  // Often already popped; stale cancel is fine.
    }
    ring[at] = q.Push(now + static_cast<SimTime>(at) + 1, [] {});
    now = q.Pop().at;
  }
  EXPECT_EQ(NewCount() - baseline, 0)
      << "cancel/push/pop churn must not allocate";
}

TEST(EventQueueAllocTest, InlineCallablesStayInline) {
  // A capture the size of a few pointers must be stored inline by
  // InlineFunction; only oversized captures may fall back to the heap.
  long long sink = 0;
  long long* sink_ptr = &sink;
  int a = 1, b = 2, c = 3, d = 4;
  EventQueue q;
  q.Push(1, [] {});  // Warm slot + heap capacity.
  q.Pop();

  long long baseline = NewCount();
  q.Push(2, [sink_ptr, a, b, c, d] { *sink_ptr = a + b + c + d; });
  EXPECT_EQ(NewCount() - baseline, 0);
  q.Pop().fn();
  EXPECT_EQ(sink, 10);

  // Oversized capture: documents (rather than forbids) the fallback.
  struct Big {
    char bytes[128] = {0};
  };
  Big big;
  baseline = NewCount();
  q.Push(3, [big, sink_ptr] { *sink_ptr = big.bytes[0] + 1; });
  EXPECT_EQ(NewCount() - baseline, 1);  // Exactly one spill allocation.
  q.Pop().fn();
  EXPECT_EQ(sink, 1);
}

TEST(EventQueueAllocTest, PeriodicTaskSteadyStateTicksDoNotAllocate) {
  // PeriodicTask holds its callback as an EventFn (ISSUE 6): the stored
  // callable is *invoked* each tick, never copied, and the re-arming lambda
  // ([this]{Tick();}) fits inline — so a running heartbeat allocates
  // nothing, tick after tick.
  Simulator sim;
  long long ticks = 0;
  long long* ticks_ptr = &ticks;
  PeriodicTask task(&sim, Milliseconds(10), [ticks_ptr] { ++*ticks_ptr; });
  task.Start();
  sim.RunUntil(Milliseconds(100));  // Warm slot + heap capacity.
  long long baseline = NewCount();
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(NewCount() - baseline, 0)
      << "steady-state periodic ticks must not allocate";
  task.Stop();
  EXPECT_GE(ticks, 990);

  // Same contract on a keyed (sharded-mode) simulator: the per-origin key
  // path adds ordering metadata, not allocations.
  Simulator keyed;
  keyed.EnableKeyedOrdering(1);
  keyed.SetCurrentRegion(0);
  long long keyed_ticks = 0;
  long long* keyed_ptr = &keyed_ticks;
  PeriodicTask keyed_task(&keyed, Milliseconds(10),
                          [keyed_ptr] { ++*keyed_ptr; });
  keyed_task.Start();
  keyed.RunUntil(Milliseconds(100));
  baseline = NewCount();
  keyed.RunUntil(Seconds(10));
  EXPECT_EQ(NewCount() - baseline, 0)
      << "keyed-mode periodic ticks must not allocate";
  keyed_task.Stop();
  EXPECT_GE(keyed_ticks, 990);
}

TEST(EventQueueAllocTest, HeapSiftingNeverTouchesCallbacks) {
  // Regression for the seed bug: callbacks lived inside the heap entries, so
  // every sift-down during Pop moved ~log2(n) std::functions (and every heap
  // growth re-moved all of them). Callbacks now live in slots the heap only
  // references, so draining the queue moves each callable a constant number
  // of times (slot -> Event), not O(log n).
  static int moves = 0;
  struct CountsMoves {
    CountsMoves() = default;
    CountsMoves(CountsMoves&&) noexcept { ++moves; }
    CountsMoves(const CountsMoves&) = delete;
    void operator()() const {}
  };

  EventQueue q;
  constexpr int kEvents = 100'000;  // log2 ≈ 17: sifting would dominate.
  for (int i = 0; i < kEvents; ++i) {
    q.Push(PseudoTime(static_cast<uint64_t>(i)), CountsMoves());
  }
  moves = 0;
  int popped = 0;
  while (!q.empty()) {
    q.Pop().fn();
    ++popped;
  }
  EXPECT_EQ(popped, kEvents);
  // Exactly one move out of the slot per pop (plus returned-Event handling);
  // the seed layout would register ~17 per pop here.
  EXPECT_LE(moves, kEvents * 3);
}

}  // namespace
}  // namespace skywalker
