// Tests for the runtime-config snapshot store (src/core/runtime_config.h):
// synchronous initial delivery, version stamping, scheduled delivery at the
// published simulated time, cancellation semantics (including updates
// already scheduled when the subscription dies), and current() tracking.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/runtime_config.h"
#include "src/sim/simulator.h"

namespace skywalker {
namespace {

struct Seen {
  int64_t version;
  SimTime at;
};

TEST(ConfigStoreTest, SubscribeDeliversInitialSnapshotSynchronously) {
  Simulator sim;
  RuntimeConfig initial;
  initial.routing.queue_tau = 7;
  ConfigStore store(initial);

  std::vector<Seen> seen;
  ConfigSubscription sub = store.Subscribe(
      &sim, /*region=*/0,
      [&](const RuntimeConfig& c) { seen.push_back({c.version, sim.now()}); });

  // No event ran yet: the initial snapshot arrived inline, version 0.
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].version, 0);
  EXPECT_EQ(store.version(), 0);
  EXPECT_EQ(store.current().routing.queue_tau, 7u);
}

TEST(ConfigStoreTest, PublishStampsVersionsAndDeliversAtPublishedTime) {
  Simulator sim;
  ConfigStore store(RuntimeConfig{});
  std::vector<Seen> seen;
  ConfigSubscription sub = store.Subscribe(
      &sim, 0,
      [&](const RuntimeConfig& c) { seen.push_back({c.version, sim.now()}); });

  RuntimeConfig a;
  a.routing.queue_tau = 1;
  RuntimeConfig b;
  b.routing.queue_tau = 2;
  store.PublishAt(Seconds(5), a);
  store.PublishAt(Seconds(9), b);

  // current() tracks the latest scheduled snapshot immediately.
  EXPECT_EQ(store.version(), 2);
  EXPECT_EQ(store.publishes(), 2);

  sim.RunUntil(Seconds(20));
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[1].version, 1);
  EXPECT_EQ(seen[1].at, Seconds(5));
  EXPECT_EQ(seen[2].version, 2);
  EXPECT_EQ(seen[2].at, Seconds(9));
}

TEST(ConfigStoreTest, EverySubscriberHearsEveryPublish) {
  Simulator sim;
  ConfigStore store(RuntimeConfig{});
  int first = 0;
  int second = 0;
  ConfigSubscription sub_a =
      store.Subscribe(&sim, 0, [&](const RuntimeConfig&) { ++first; });
  ConfigSubscription sub_b =
      store.Subscribe(&sim, 1, [&](const RuntimeConfig&) { ++second; });
  store.PublishAt(Seconds(1), RuntimeConfig{});
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(first, 2);   // Initial + published.
  EXPECT_EQ(second, 2);
}

TEST(ConfigStoreTest, CancelDropsAlreadyScheduledDeliveries) {
  Simulator sim;
  ConfigStore store(RuntimeConfig{});
  int calls = 0;
  ConfigSubscription sub =
      store.Subscribe(&sim, 0, [&](const RuntimeConfig&) { ++calls; });
  store.PublishAt(Seconds(5), RuntimeConfig{});
  // The delivery event is in the queue; cancelling now must silence it.
  sub.Cancel();
  EXPECT_FALSE(sub.active());
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(calls, 1);  // The synchronous initial delivery only.
}

TEST(ConfigStoreTest, DestructionCancels) {
  Simulator sim;
  ConfigStore store(RuntimeConfig{});
  int calls = 0;
  {
    ConfigSubscription sub =
        store.Subscribe(&sim, 0, [&](const RuntimeConfig&) { ++calls; });
    store.PublishAt(Seconds(5), RuntimeConfig{});
  }
  sim.RunUntil(Seconds(10));
  EXPECT_EQ(calls, 1);
}

TEST(ConfigStoreTest, MoveKeepsTheSubscriptionAlive) {
  Simulator sim;
  ConfigStore store(RuntimeConfig{});
  int calls = 0;
  ConfigSubscription outer;
  {
    ConfigSubscription inner =
        store.Subscribe(&sim, 0, [&](const RuntimeConfig&) { ++calls; });
    outer = std::move(inner);
  }
  store.PublishAt(Seconds(1), RuntimeConfig{});
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(outer.active());
}

TEST(ConfigStoreTest, PublishedSnapshotsAreImmutableValues) {
  Simulator sim;
  ConfigStore store(RuntimeConfig{});
  size_t seen_tau = 0;
  ConfigSubscription sub = store.Subscribe(
      &sim, 0,
      [&](const RuntimeConfig& c) { seen_tau = c.routing.queue_tau; });
  RuntimeConfig next;
  next.routing.queue_tau = 11;
  store.PublishAt(Seconds(1), next);
  // Mutating the caller's copy after publishing must not leak through.
  next.routing.queue_tau = 99;
  sim.RunUntil(Seconds(2));
  EXPECT_EQ(seen_tau, 11u);
  EXPECT_EQ(store.current().routing.queue_tau, 11u);
}

}  // namespace
}  // namespace skywalker
