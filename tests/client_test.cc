// Unit tests for the closed-loop client actors against a scripted fake
// frontend: turn sequencing, think times, ToT level barriers, error retry,
// and metrics delivery.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/workload/client.h"

namespace skywalker {
namespace {

// Frontend that completes every request after a fixed latency, recording
// arrival order. Lives in region 0.
class ScriptedFrontend : public Frontend {
 public:
  ScriptedFrontend(Simulator* sim, SimDuration latency)
      : sim_(sim), latency_(latency) {}

  RegionId region() const override { return 0; }

  void HandleRequest(Request req, RequestCallbacks callbacks) override {
    arrivals.push_back(req);
    if (fail_next > 0) {
      --fail_next;
      if (callbacks.on_error) {
        callbacks.on_error();
      }
      return;
    }
    RequestOutcome outcome;
    outcome.id = req.id;
    outcome.user_id = req.user_id;
    outcome.client_region = req.client_region;
    outcome.submit_time = req.submit_time;
    outcome.prompt_tokens = req.prompt_tokens();
    outcome.output_tokens = req.output_tokens();
    SimTime first = sim_->now() + latency_ / 2;
    SimTime done = sim_->now() + latency_;
    outcome.first_token_time = first;
    outcome.completion_time = done;
    sim_->ScheduleAt(done, [callbacks, outcome] {
      if (callbacks.on_first_token) {
        callbacks.on_first_token(outcome);
      }
      if (callbacks.on_complete) {
        callbacks.on_complete(outcome);
      }
    });
  }

  std::vector<Request> arrivals;
  int fail_next = 0;

 private:
  Simulator* sim_;
  SimDuration latency_;
};

class CountingSink : public MetricsSink {
 public:
  void RecordOutcome(const RequestOutcome& outcome) override {
    outcomes.push_back(outcome);
  }
  std::vector<RequestOutcome> outcomes;
};

struct ClientBench {
  Simulator sim;
  Topology topology;
  std::unique_ptr<Network> net;
  std::unique_ptr<ScriptedFrontend> frontend;
  std::unique_ptr<SingleFrontendResolver> resolver;
  CountingSink sink;

  explicit ClientBench(SimDuration latency = Milliseconds(500)) {
    topology.AddRegion("local", Milliseconds(1));
    net = std::make_unique<Network>(&sim, topology);
    frontend = std::make_unique<ScriptedFrontend>(&sim, latency);
    resolver = std::make_unique<SingleFrontendResolver>(frontend.get());
  }
};

TEST(ConversationClientTest, IssuesTurnsSequentially) {
  ClientBench bench;
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 1, 5);
  ClientConfig config;
  config.think_time_mean = Milliseconds(200);
  config.program_gap_mean = Milliseconds(200);
  ConversationClient client(&bench.sim, bench.net.get(), bench.resolver.get(),
                            &gen, &bench.sink, 0, config, 9);
  client.Start();
  bench.sim.RunUntil(Seconds(30));
  EXPECT_GT(client.completed_requests(), 5u);
  EXPECT_GT(client.completed_conversations(), 0u);
  EXPECT_EQ(bench.sink.outcomes.size(), client.completed_requests());
  // Sequential: at most one request outstanding at any time, so arrivals
  // must be strictly ordered by submit time with no overlap.
  const auto& arrivals = bench.frontend->arrivals;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i].submit_time, arrivals[i - 1].submit_time);
  }
}

TEST(ConversationClientTest, TurnPromptsGrowWithinConversation) {
  ClientBench bench;
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 1, 6);
  ClientConfig config;
  config.think_time_mean = Milliseconds(100);
  ConversationClient client(&bench.sim, bench.net.get(), bench.resolver.get(),
                            &gen, &bench.sink, 0, config, 10);
  client.Start();
  bench.sim.RunUntil(Seconds(20));
  const auto& arrivals = bench.frontend->arrivals;
  ASSERT_GT(arrivals.size(), 2u);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i].session_id == arrivals[i - 1].session_id) {
      EXPECT_GT(arrivals[i].prompt.size(), arrivals[i - 1].prompt.size());
      // Later turn extends the earlier turn's prompt.
      EXPECT_EQ(CommonPrefixLen(arrivals[i - 1].prompt, arrivals[i].prompt),
                arrivals[i - 1].prompt.size());
    }
  }
}

TEST(ConversationClientTest, RetriesAfterError) {
  ClientBench bench;
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 1, 7);
  ClientConfig config;
  config.think_time_mean = Milliseconds(100);
  ConversationClient client(&bench.sim, bench.net.get(), bench.resolver.get(),
                            &gen, &bench.sink, 0, config, 11);
  bench.frontend->fail_next = 2;  // First two submissions rejected.
  client.Start();
  bench.sim.RunUntil(Seconds(10));
  EXPECT_EQ(client.errors(), 2u);
  EXPECT_GT(client.completed_requests(), 0u);
  // The retried turn was re-submitted: arrivals > completions.
  EXPECT_GT(bench.frontend->arrivals.size(), client.completed_requests());
}

TEST(ConversationClientTest, StopsIssuingAfterDeadline) {
  ClientBench bench;
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 1, 8);
  ClientConfig config;
  config.think_time_mean = Milliseconds(100);
  config.stop_issuing_after = Seconds(5);
  ConversationClient client(&bench.sim, bench.net.get(), bench.resolver.get(),
                            &gen, &bench.sink, 0, config, 12);
  client.Start();
  bench.sim.RunUntil(Seconds(30));
  for (const Request& req : bench.frontend->arrivals) {
    EXPECT_LE(req.submit_time, Seconds(5) + Milliseconds(10));
  }
}

TEST(ToTClientTest, IssuesLevelsAsBarriers) {
  ClientBench bench;
  ToTConfig tot;
  tot.depth = 3;
  tot.branching = 2;  // Levels of 1, 2, 4 -> 7 requests per tree.
  ToTGenerator gen(tot, 13);
  ClientConfig config;
  config.program_gap_mean = Milliseconds(100);
  ToTClient client(&bench.sim, bench.net.get(), bench.resolver.get(), &gen,
                   &bench.sink, 0, config, 14);
  client.Start();
  bench.sim.RunUntil(Seconds(10));
  ASSERT_GE(client.completed_trees(), 1u);
  // First tree: 1 root, then 2, then 4, all sharing a session id.
  const auto& arrivals = bench.frontend->arrivals;
  ASSERT_GE(arrivals.size(), 7u);
  SessionId first_session = arrivals[0].session_id;
  std::vector<size_t> level_sizes;
  SimTime last_time = -1;
  for (size_t i = 0; i < 7; ++i) {
    ASSERT_EQ(arrivals[i].session_id, first_session);
    if (arrivals[i].submit_time != last_time) {
      level_sizes.push_back(1);
      last_time = arrivals[i].submit_time;
    } else {
      ++level_sizes.back();
    }
  }
  EXPECT_EQ(level_sizes, (std::vector<size_t>{1, 2, 4}));
}

TEST(ToTClientTest, CompletesTreesBackToBack) {
  ClientBench bench(Milliseconds(100));
  ToTConfig tot;
  tot.depth = 2;
  tot.branching = 2;  // 3 requests per tree.
  ToTGenerator gen(tot, 15);
  ClientConfig config;
  config.program_gap_mean = Milliseconds(50);
  ToTClient client(&bench.sim, bench.net.get(), bench.resolver.get(), &gen,
                   &bench.sink, 0, config, 16);
  client.Start();
  bench.sim.RunUntil(Seconds(20));
  EXPECT_GT(client.completed_trees(), 10u);
  EXPECT_EQ(client.completed_requests(), client.completed_trees() * 3);
}

TEST(RequestIdTest, MonotonicallyUnique) {
  RequestId a = NextRequestId();
  RequestId b = NextRequestId();
  RequestId c = NextRequestId();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(SubmitViaNetworkTest, StampsSubmitTimeAndAppliesLatency) {
  Simulator sim;
  Topology topology;
  RegionId a = topology.AddRegion("a");
  RegionId b = topology.AddRegion("b");
  topology.SetLatency(a, b, Milliseconds(70));
  Network net(&sim, topology);

  class CaptureFrontend : public Frontend {
   public:
    RegionId region() const override { return 1; }
    void HandleRequest(Request req, RequestCallbacks /*callbacks*/) override {
      received = req;
      got = true;
    }
    Request received;
    bool got = false;
  };
  CaptureFrontend frontend;

  sim.RunUntil(Milliseconds(5));
  Request req;
  req.id = 1;
  req.client_region = a;
  req.prompt = {1, 2};
  req.output = {3};
  SubmitViaNetwork(&net, a, &frontend, req, {});
  sim.Run();
  ASSERT_TRUE(frontend.got);
  EXPECT_EQ(frontend.received.submit_time, Milliseconds(5));
  EXPECT_EQ(sim.now(), Milliseconds(75));  // 5 + 70 one-way.
}

}  // namespace
}  // namespace skywalker
