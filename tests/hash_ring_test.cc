// Unit and property tests for the consistent-hash ring: stability,
// availability skipping, balance, and minimal disruption on membership
// change (the property that makes CH cache-friendly).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/cache/hash_ring.h"
#include "src/common/rng.h"

namespace skywalker {
namespace {

TEST(HashRingTest, EmptyRingReturnsInvalid) {
  HashRing ring;
  EXPECT_EQ(ring.Lookup(123), kInvalidTarget);
  EXPECT_EQ(ring.LookupAvailable(123, [](TargetId) { return true; }),
            kInvalidTarget);
}

TEST(HashRingTest, SingleTargetOwnsEverything) {
  HashRing ring;
  ring.AddTarget(5);
  for (uint64_t key = 0; key < 1000; key += 37) {
    EXPECT_EQ(ring.Lookup(Mix64(key)), 5);
  }
}

TEST(HashRingTest, LookupIsStable) {
  HashRing ring;
  ring.AddTarget(1);
  ring.AddTarget(2);
  ring.AddTarget(3);
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(ring.Lookup(Mix64(key)), ring.Lookup(Mix64(key)));
  }
}

TEST(HashRingTest, DuplicateAddIsNoOp) {
  HashRing ring(64);
  ring.AddTarget(1);
  size_t vnodes = ring.num_vnodes();
  ring.AddTarget(1);
  EXPECT_EQ(ring.num_vnodes(), vnodes);
  EXPECT_EQ(ring.num_targets(), 1u);
}

TEST(HashRingTest, RemoveTargetReassignsKeys) {
  HashRing ring;
  ring.AddTarget(1);
  ring.AddTarget(2);
  ring.RemoveTarget(1);
  EXPECT_FALSE(ring.Contains(1));
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(ring.Lookup(Mix64(key)), 2);
  }
}

TEST(HashRingTest, WeightIncreasesShare) {
  HashRing ring(64);
  ring.AddTarget(1, /*weight=*/1);
  ring.AddTarget(2, /*weight=*/3);
  std::map<TargetId, int> counts;
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    ++counts[ring.Lookup(rng.Next())];
  }
  double ratio = static_cast<double>(counts[2]) /
                 static_cast<double>(counts[1]);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(HashRingTest, LookupAvailableSkipsUnavailable) {
  HashRing ring;
  ring.AddTarget(1);
  ring.AddTarget(2);
  ring.AddTarget(3);
  auto only3 = [](TargetId id) { return id == 3; };
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(ring.LookupAvailable(Mix64(key), only3), 3);
  }
  auto none = [](TargetId) { return false; };
  EXPECT_EQ(ring.LookupAvailable(42, none), kInvalidTarget);
}

TEST(HashRingTest, LookupAvailableMatchesLookupWhenAllAvailable) {
  HashRing ring;
  for (TargetId t = 0; t < 8; ++t) {
    ring.AddTarget(t);
  }
  auto all = [](TargetId) { return true; };
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_EQ(ring.LookupAvailable(Mix64(key), all), ring.Lookup(Mix64(key)));
  }
}

TEST(HashRingTest, LookupNReturnsDistinctTargets) {
  HashRing ring;
  for (TargetId t = 0; t < 5; ++t) {
    ring.AddTarget(t);
  }
  auto set = ring.LookupN(Mix64(7), 3);
  ASSERT_EQ(set.size(), 3u);
  std::set<TargetId> distinct(set.begin(), set.end());
  EXPECT_EQ(distinct.size(), 3u);
  // First element is the primary owner.
  EXPECT_EQ(set[0], ring.Lookup(Mix64(7)));
}

TEST(HashRingTest, BalanceAcrossTargets) {
  HashRing ring(128);
  const int kTargets = 10;
  for (TargetId t = 0; t < kTargets; ++t) {
    ring.AddTarget(t);
  }
  std::map<TargetId, int> counts;
  Rng rng(11);
  const int kKeys = 100000;
  for (int i = 0; i < kKeys; ++i) {
    ++counts[ring.Lookup(rng.Next())];
  }
  // With 128 vnodes/target, imbalance should stay within ~35% of fair share.
  double fair = static_cast<double>(kKeys) / kTargets;
  for (const auto& [target, count] : counts) {
    EXPECT_GT(count, fair * 0.65) << "target " << target;
    EXPECT_LT(count, fair * 1.35) << "target " << target;
  }
}

// The consistent-hashing property: removing one target only moves keys that
// were owned by it.
class HashRingDisruptionTest : public ::testing::TestWithParam<int> {};

TEST_P(HashRingDisruptionTest, RemovalOnlyMovesVictimKeys) {
  const int kTargets = GetParam();
  HashRing ring(128);
  for (TargetId t = 0; t < kTargets; ++t) {
    ring.AddTarget(t);
  }
  std::map<uint64_t, TargetId> before;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Next();
    before[key] = ring.Lookup(key);
  }
  const TargetId victim = 0;
  ring.RemoveTarget(victim);
  for (const auto& [key, owner] : before) {
    TargetId now = ring.Lookup(key);
    if (owner != victim) {
      EXPECT_EQ(now, owner) << "non-victim key moved";
    } else {
      EXPECT_NE(now, victim);
    }
  }
}

TEST_P(HashRingDisruptionTest, AdditionOnlyStealsKeys) {
  const int kTargets = GetParam();
  HashRing ring(128);
  for (TargetId t = 0; t < kTargets; ++t) {
    ring.AddTarget(t);
  }
  std::map<uint64_t, TargetId> before;
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    uint64_t key = rng.Next();
    before[key] = ring.Lookup(key);
  }
  const TargetId fresh = 1000;
  ring.AddTarget(fresh);
  for (const auto& [key, owner] : before) {
    TargetId now = ring.Lookup(key);
    // A key either keeps its owner or moves to the new target — never to a
    // different pre-existing target.
    EXPECT_TRUE(now == owner || now == fresh);
  }
}

INSTANTIATE_TEST_SUITE_P(TargetCounts, HashRingDisruptionTest,
                         ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace skywalker
