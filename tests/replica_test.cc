// Unit tests for the replica simulator: prefill/decode timing, continuous
// batching, pending-queue semantics (the SP-P signal), prefix-cache reuse,
// memory-pressure behaviour, and the paper's calibration targets.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "src/replica/replica.h"
#include "src/sim/simulator.h"

namespace skywalker {
namespace {

Request MakeRequest(RequestId id, int64_t prompt_len, int64_t output_len,
                    Token prompt_base = 0) {
  Request req;
  req.id = id;
  req.client_region = 0;
  for (int64_t i = 0; i < prompt_len; ++i) {
    req.prompt.push_back(prompt_base + static_cast<Token>(i));
  }
  for (int64_t i = 0; i < output_len; ++i) {
    req.output.push_back(1'000'000 + prompt_base + static_cast<Token>(i));
  }
  return req;
}

struct Completion {
  SimTime first_token = -1;
  SimTime completed = -1;
  int64_t cached = -1;
};

Replica::Handlers Record(Simulator* sim, Completion* out) {
  Replica::Handlers handlers;
  handlers.on_first_token = [sim, out](const Request&, int64_t cached) {
    out->first_token = sim->now();
    out->cached = cached;
  };
  handlers.on_complete = [sim, out](const Request&, int64_t /*cached*/) {
    out->completed = sim->now();
  };
  return handlers;
}

TEST(ReplicaTest, PrefillLatencyMatchesPaperCalibration) {
  // Paper §2.1: 512-token prompt on an L4 -> ~300 ms prefill.
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 512, 1), Record(&sim, &c));
  sim.Run();
  ASSERT_GT(c.first_token, 0);
  EXPECT_GT(c.first_token, Milliseconds(250));
  EXPECT_LT(c.first_token, Milliseconds(400));
}

TEST(ReplicaTest, FirstTokenPrecedesCompletion) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 100, 50), Record(&sim, &c));
  sim.Run();
  ASSERT_GT(c.first_token, 0);
  ASSERT_GT(c.completed, 0);
  EXPECT_LT(c.first_token, c.completed);
  EXPECT_EQ(replica.stats().completed, 1);
  EXPECT_EQ(replica.stats().output_tokens_generated, 50);
}

TEST(ReplicaTest, DecodeRateIsTensOfMsPerToken) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  const int64_t kOutput = 100;
  replica.Enqueue(MakeRequest(1, 64, kOutput), Record(&sim, &c));
  sim.Run();
  double per_token_ms =
      ToMilliseconds(c.completed - c.first_token) / static_cast<double>(kOutput);
  EXPECT_GT(per_token_ms, 5.0);
  EXPECT_LT(per_token_ms, 60.0);
}

TEST(ReplicaTest, PrefixCacheCutsPrefillTime) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});

  Completion first;
  replica.Enqueue(MakeRequest(1, 512, 4), Record(&sim, &first));
  sim.Run();
  SimTime t0 = sim.now();

  // Same prompt extended slightly: should hit the cache for 516 tokens.
  Request follow = MakeRequest(2, 512, 4);
  follow.prompt.push_back(9999);
  follow.prompt.push_back(9998);
  Completion second;
  replica.Enqueue(follow, Record(&sim, &second));
  sim.Run();

  ASSERT_GT(second.first_token, t0);
  EXPECT_GE(second.cached, 500);
  // TTFT for the cached request must be far below the cold 300 ms prefill.
  EXPECT_LT(second.first_token - t0, Milliseconds(100));
  EXPECT_GT(replica.cache().HitRate(), 0.3);
}

TEST(ReplicaTest, FullyCachedPromptStillProducesToken) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion a;
  replica.Enqueue(MakeRequest(1, 64, 4), Record(&sim, &a));
  sim.Run();
  // Identical prompt: everything cached; engine must still emit tokens.
  Completion b;
  replica.Enqueue(MakeRequest(2, 64, 4), Record(&sim, &b));
  sim.Run();
  EXPECT_GT(b.first_token, a.completed);
  EXPECT_GT(b.completed, b.first_token);
  EXPECT_EQ(b.cached, 63);  // prompt_len - 1: last token recomputed.
}

TEST(ReplicaTest, PendingQueueSignalsFullBatch) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 2048;  // Tiny: few concurrent requests.
  config.output_reserve_tokens = 256;
  Replica replica(&sim, 0, 0, config);

  std::vector<Completion> done(16);
  for (int i = 0; i < 16; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 256, 64,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  // Before running: everything pending (nothing admitted synchronously
  // beyond what memory allows after the first step planning).
  sim.RunFor(Milliseconds(50));
  EXPECT_GT(replica.pending_count(), 0)
      << "memory pressure must leave requests in the pending queue";
  sim.Run();
  EXPECT_EQ(replica.pending_count(), 0);
  EXPECT_EQ(replica.stats().completed, 16);
  for (const auto& c : done) {
    EXPECT_GT(c.completed, 0);
  }
}

TEST(ReplicaTest, ConcurrentRequestsInPaperBand) {
  // Paper §3.3: Llama-3.1-8B on an L4 sustains 20-50 concurrent requests.
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  std::vector<Completion> done(80);
  for (int i = 0; i < 80; ++i) {
    // Typical conversation-sized requests: ~700 prompt + 300 output tokens.
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 700, 300,
                                static_cast<Token>(i) * 100000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_GE(replica.stats().peak_running, 20);
  EXPECT_LE(replica.stats().peak_running, 64);
  EXPECT_EQ(replica.stats().completed, 80);
}

TEST(ReplicaTest, MemoryNeverExceedsCapacityAfterReclaim) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(32);
  for (int i = 0; i < 32; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 400,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 32);
  // Peak utilization may transiently exceed 1.0 slightly around a step
  // boundary but must stay bounded.
  EXPECT_LT(replica.stats().peak_memory_utilization, 1.3);
}

TEST(ReplicaTest, SharedPrefixAdmitsMoreConcurrency) {
  // ToT-style: many requests sharing a large prompt should batch wider than
  // the same requests with disjoint prompts (shared KV counted once).
  auto run = [](bool shared) {
    Simulator sim;
    ReplicaConfig config;
    config.kv_capacity_tokens = 8192;
    Replica replica(&sim, 0, 0, config);
    std::vector<Completion> done(24);
    for (int i = 0; i < 24; ++i) {
      Token base = shared ? 0 : static_cast<Token>(i) * 100000;
      Request req = MakeRequest(static_cast<RequestId>(i), 600, 60, base);
      if (shared) {
        req.output.clear();
        for (int64_t k = 0; k < 60; ++k) {
          req.output.push_back(5'000'000 + static_cast<Token>(i) * 1000 +
                               static_cast<Token>(k));
        }
      }
      replica.Enqueue(req, Record(&sim, &done[static_cast<size_t>(i)]));
    }
    sim.Run();
    return replica.stats();
  };
  Replica::Stats shared = run(true);
  Replica::Stats disjoint = run(false);
  EXPECT_EQ(shared.completed, 24);
  EXPECT_EQ(disjoint.completed, 24);
  EXPECT_GT(shared.peak_running, disjoint.peak_running);
  EXPECT_GT(shared.cached_tokens_reused, disjoint.cached_tokens_reused);
}

TEST(ReplicaTest, DisabledCacheNeverReuses) {
  Simulator sim;
  ReplicaConfig config;
  config.enable_prefix_cache = false;
  Replica replica(&sim, 0, 0, config);
  Completion a;
  Completion b;
  replica.Enqueue(MakeRequest(1, 128, 4), Record(&sim, &a));
  sim.Run();
  replica.Enqueue(MakeRequest(2, 128, 4), Record(&sim, &b));
  sim.Run();
  EXPECT_EQ(b.cached, 0);
  EXPECT_EQ(replica.stats().cached_tokens_reused, 0);
}

TEST(ReplicaTest, BatchingAmortizesStepOverhead) {
  // Total time for N concurrent decodes must be far below N * serial time.
  auto elapsed = [](int n) {
    Simulator sim;
    Replica replica(&sim, 0, 0, ReplicaConfig{});
    std::vector<Completion> done(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 32, 100,
                                  static_cast<Token>(i) * 10000),
                      Record(&sim, &done[static_cast<size_t>(i)]));
    }
    sim.Run();
    return sim.now();
  };
  SimTime one = elapsed(1);
  SimTime sixteen = elapsed(16);
  EXPECT_LT(sixteen, 4 * one) << "continuous batching should amortize steps";
}

TEST(ReplicaTest, MemorySeriesIsSampled) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 256, 64), Record(&sim, &c));
  sim.Run();
  EXPECT_FALSE(replica.memory_series().empty());
  for (const auto& [t, util] : replica.memory_series()) {
    EXPECT_GE(util, 0.0);
  }
}

TEST(ReplicaTest, CrashDropsAllWork) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 256, 64), Record(&sim, &c));
  sim.RunFor(Milliseconds(50));
  replica.Crash();
  sim.Run();
  EXPECT_EQ(c.completed, -1);  // No completion callback after crash.
  EXPECT_EQ(replica.running_count(), 0);
  EXPECT_EQ(replica.pending_count(), 0);
  EXPECT_EQ(replica.memory_used_tokens(), 0);
}

TEST(ReplicaTest, BusyFractionPositiveUnderLoad) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 512, 128), Record(&sim, &c));
  sim.Run();
  EXPECT_GT(replica.BusyFraction(), 0.5);
  EXPECT_LE(replica.BusyFraction(), 1.01);
}

// --- Reserved-memory lifecycle (ISSUE 4 regression) ----------------------

TEST(ReplicaReserveTest, ReserveReturnedWhenSequenceFinishesEarly) {
  // A request generating far fewer tokens than output_reserve_tokens must
  // hand its unconsumed reserve back exactly once at completion: the
  // committed ledger returns to zero, never double-counts, and admission
  // headroom fully recovers.
  Simulator sim;
  ReplicaConfig config;
  config.output_reserve_tokens = 256;
  Replica replica(&sim, 0, 0, config);
  EXPECT_EQ(replica.reserved_future_tokens(), 0);

  Completion c;
  replica.Enqueue(MakeRequest(1, 128, 4), Record(&sim, &c));
  sim.RunFor(Milliseconds(30));  // Mid-flight: reserve is committed.
  EXPECT_GT(replica.reserved_future_tokens(), 0);
  EXPECT_LE(replica.reserved_future_tokens(), 256);
  sim.Run();
  ASSERT_GT(c.completed, 0);
  EXPECT_EQ(replica.reserved_future_tokens(), 0)
      << "unconsumed output reserve must be returned at completion";
  EXPECT_EQ(replica.kv().committed_tokens(), 0);
  // Resident is now cache-only: no sequence KV left behind.
  EXPECT_EQ(replica.kv().seq_resident_tokens(), 0);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaReserveTest, ReserveReturnedOnCrashAbort) {
  Simulator sim;
  ReplicaConfig config;
  config.output_reserve_tokens = 256;
  Replica replica(&sim, 0, 0, config);
  for (int i = 0; i < 8; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 200,
                                static_cast<Token>(i) * 10000),
                    {});
  }
  sim.RunFor(Milliseconds(80));
  EXPECT_GT(replica.reserved_future_tokens(), 0);
  replica.Crash();
  EXPECT_EQ(replica.reserved_future_tokens(), 0)
      << "aborted sequences must return their reserve";
  EXPECT_EQ(replica.kv().committed_tokens(), 0);
  EXPECT_EQ(replica.memory_used_tokens(), 0);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaReserveTest, PreemptionReturnsReserveExactlyOnce) {
  // Recompute preemption drops the victim back to pending; its reserve must
  // leave the ledger with it and be re-charged on re-admission — never held
  // twice. Conservation check: after everything completes the ledger is
  // empty even though preemptions occurred.
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.output_reserve_tokens = 128;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(32);
  for (int i = 0; i < 32; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 400,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 32);
  EXPECT_GT(replica.stats().preemptions, 0);
  EXPECT_EQ(replica.reserved_future_tokens(), 0);
  EXPECT_EQ(replica.kv().committed_tokens(), 0);
  EXPECT_EQ(replica.kv().live_seqs(), 0);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

// --- Paged mode (block_size > 1) -----------------------------------------

TEST(ReplicaPagedTest, CoarseDefaultIsTokenGranular) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  EXPECT_EQ(replica.kv().total_blocks(),
            replica.config().kv_capacity_tokens);
  EXPECT_EQ(replica.kv().config().block_size_tokens, 1);
}

TEST(ReplicaPagedTest, PagedModeCompletesWorkWithPreemptions) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  config.output_reserve_tokens = 64;
  Replica replica(&sim, 0, 0, config);
  EXPECT_EQ(replica.kv().total_blocks(), 256);
  std::vector<Completion> done(32);
  for (int i = 0; i < 32; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 400,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 32);
  EXPECT_GT(replica.stats().preemptions, 0);
  for (const auto& c : done) {
    EXPECT_GT(c.completed, 0);
  }
  // Paged bookkeeping saw real fragmentation at some point.
  EXPECT_GT(replica.kv().counters().peak_fragmentation_tokens, 0);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaPagedTest, WatermarkThrottlesAdmissionButCompletes) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  config.kv_watermark_blocks = 32;  // Hold back 512 tokens of headroom.
  config.output_reserve_tokens = 64;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(24);
  for (int i = 0; i < 24; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 256, 128,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 24);
  EXPECT_GT(replica.kv().counters().watermark_rejections, 0);
}

TEST(ReplicaPagedTest, SwapPolicyRoundTripsSequences) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  config.kv_preempt_policy = PreemptPolicy::kSwap;
  config.output_reserve_tokens = 64;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(32);
  for (int i = 0; i < 32; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 400,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 32);
  for (const auto& c : done) {
    EXPECT_GT(c.completed, 0);
  }
  const KvCounters& kv = replica.kv().counters();
  EXPECT_GT(kv.preempt_swap, 0);
  EXPECT_EQ(kv.swap_ins, kv.preempt_swap)
      << "every swapped-out sequence must be restored";
  EXPECT_EQ(kv.swapped_in_tokens, kv.swapped_out_tokens);
  EXPECT_GT(kv.swap_transfer_us, 0);
  EXPECT_EQ(replica.swapped_count(), 0);
  EXPECT_EQ(replica.kv().live_seqs(), 0);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaPagedTest, SwapPolicyCrashMidFlight) {
  // Crash with sequences swapped out / restoring must not fire callbacks or
  // leak pins, blocks, or reserve.
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 2048;
  config.kv_block_size_tokens = 16;
  config.kv_preempt_policy = PreemptPolicy::kSwap;
  config.output_reserve_tokens = 64;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(24);
  for (int i = 0; i < 24; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 200, 300,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.RunFor(Seconds(3));
  replica.Crash();
  sim.Run();
  EXPECT_EQ(replica.memory_used_tokens(), 0);
  EXPECT_EQ(replica.swapped_count(), 0);
  EXPECT_EQ(replica.reserved_future_tokens(), 0);
  EXPECT_EQ(replica.cache().active_pins(), 0u);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaPagedTest, SnapshotReportsHeadroomSignals) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  Replica replica(&sim, 0, 0, config);
  Replica::LoadSnapshot idle = replica.Snapshot();
  EXPECT_EQ(idle.total_blocks, 256);
  EXPECT_EQ(idle.free_blocks, 256);
  EXPECT_EQ(idle.pending, 0);

  std::vector<Completion> done(16);
  for (int i = 0; i < 16; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 200,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.RunFor(Seconds(1));
  Replica::LoadSnapshot busy = replica.Snapshot();
  EXPECT_LT(busy.free_blocks, idle.free_blocks);
  EXPECT_GT(busy.running, 0);
  sim.Run();
  Replica::LoadSnapshot drained = replica.Snapshot();
  // Evictable cache counts as free again once sequences drain.
  EXPECT_EQ(drained.free_blocks, 256);
  EXPECT_EQ(drained.preemptions, replica.stats().preemptions);
}

TEST(ReplicaTest, PerStepDecodeAdmissionCommitsOneBlockAtATime) {
  // ISSUE 5: with per_step_decode_admission the output reserve is committed
  // one block ahead instead of in full, so the committed-future ledger
  // stays below running * block_size during decode; pressure from the
  // uncommitted growth resolves through preemption, and everything still
  // completes.
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  config.output_reserve_tokens = 128;
  config.per_step_decode_admission = true;
  Replica replica(&sim, 0, 0, config);
  constexpr int kRequests = 12;
  std::vector<Completion> done(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 200, 200,
                                static_cast<Token>(i) * 10'000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  int64_t peak_reserve = 0;
  int peak_running = 0;
  for (int tick = 0; tick < 4000 && replica.stats().completed < kRequests;
       ++tick) {
    sim.RunFor(Milliseconds(100));
    peak_reserve =
        std::max(peak_reserve, replica.reserved_future_tokens());
    peak_running = std::max(peak_running, replica.running_count());
  }
  EXPECT_EQ(replica.stats().completed, kRequests);
  // One block per running sequence is the commitment ceiling — far below
  // the full-reserve regime's 128 per sequence.
  EXPECT_LE(peak_reserve,
            static_cast<int64_t>(peak_running) * config.kv_block_size_tokens);
  EXPECT_EQ(replica.reserved_future_tokens(), 0);
  EXPECT_EQ(replica.kv().seq_resident_tokens(), 0);  // Ledger drained.
  for (const Completion& c : done) {
    EXPECT_GE(c.completed, 0);
  }
}

// --- Per-step batch composition (ISSUE 8) --------------------------------

// Runs `n` identical mixed prefill/decode requests to completion and
// returns (completion time of the last one, engine steps taken).
std::pair<SimTime, int64_t> RunComposition(const ReplicaConfig& config,
                                           int n = 4) {
  Simulator sim;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 512, 30,
                                static_cast<Token>(i) * 10'000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  SimTime last = 0;
  for (const Completion& c : done) {
    EXPECT_GT(c.completed, 0);
    last = std::max(last, c.completed);
  }
  EXPECT_EQ(replica.stats().completed, n);
  return {last, replica.stats().engine_steps};
}

TEST(ReplicaCompositionTest, PolicyAndPressureGateAreInertWithoutBudget) {
  // The knobs must be pure opt-in: a decode-first policy with no shared
  // budget, and a decode cap whose pressure gate never trips, both replay
  // the seed plan step for step.
  auto [seed_done, seed_steps] = RunComposition(ReplicaConfig{});

  ReplicaConfig policy_only;
  policy_only.composition.policy = BatchCompositionPolicy::kDecodeFirst;
  auto [p_done, p_steps] = RunComposition(policy_only);
  EXPECT_EQ(p_done, seed_done);
  EXPECT_EQ(p_steps, seed_steps);

  ReplicaConfig gated_cap;
  gated_cap.composition.max_decode_batch = 1;
  gated_cap.composition.pressure_free_blocks = 1;  // free_blocks < 1: never.
  auto [g_done, g_steps] = RunComposition(gated_cap);
  EXPECT_EQ(g_done, seed_done);
  EXPECT_EQ(g_steps, seed_steps);
}

TEST(ReplicaCompositionTest, DecodeFirstBudgetChunksPrefillAndCompletes) {
  auto [seed_done, seed_steps] = RunComposition(ReplicaConfig{});

  ReplicaConfig budgeted;
  budgeted.composition.policy = BatchCompositionPolicy::kDecodeFirst;
  budgeted.composition.step_token_budget = 64;
  auto [b_done, b_steps] = RunComposition(budgeted);
  // A 512-token prompt now prefills in 64-token slices, so the run takes
  // many more (smaller) steps — but decode progress is guaranteed each
  // step, so everything still drains.
  EXPECT_GT(b_steps, seed_steps);
  EXPECT_GT(b_done, 0);
}

TEST(ReplicaCompositionTest, PrefillFirstBudgetNeverStarvesDecode) {
  ReplicaConfig budgeted;
  budgeted.composition.policy = BatchCompositionPolicy::kPrefillFirst;
  budgeted.composition.step_token_budget = 64;
  // Prefill claims the whole 64-token budget while ramping, leaving a zero
  // remainder — the floor of one decode per step must still drain decodes.
  auto [done, steps] = RunComposition(budgeted);
  EXPECT_GT(done, 0);
  EXPECT_GT(steps, 0);
}

TEST(ReplicaCompositionTest, DecodeCapBoundsDecodesPerStep) {
  auto [seed_done, seed_steps] = RunComposition(ReplicaConfig{});

  ReplicaConfig capped;
  capped.composition.max_decode_batch = 1;  // pressure_free_blocks 0: always.
  auto [c_done, c_steps] = RunComposition(capped);
  // 4 seqs x 29 post-prefill output tokens (the first token rides the
  // prefill-completion step), at most one decode per step: at least 116
  // decode steps where the seed batches 4-wide (~30).
  EXPECT_GE(c_steps, 116);
  EXPECT_GT(c_steps, seed_steps);
  EXPECT_GT(c_done, seed_done);  // Serialized decode costs wall time.
}

TEST(ReplicaCompositionTest, CompositionIsHotSwappable) {
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 256, 400), Record(&sim, &c));
  sim.RunFor(Seconds(1));
  BatchCompositionConfig comp;
  comp.max_decode_batch = 1;
  replica.ApplyComposition(comp);  // Mid-run reswap; next plan uses it.
  EXPECT_EQ(replica.config().composition.max_decode_batch, 1);
  sim.Run();
  EXPECT_GT(c.completed, 0);
  EXPECT_EQ(replica.stats().completed, 1);
}

TEST(ReplicaCompositionTest, CacheEvictionPolicyIsHotSwappable) {
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  Replica replica(&sim, 0, 0, config);
  Completion c;
  replica.Enqueue(MakeRequest(1, 256, 64), Record(&sim, &c));
  sim.RunFor(Milliseconds(500));
  replica.ApplyCacheEvictionPolicy(EvictionPolicy::kColdSubtree);
  EXPECT_EQ(replica.cache().eviction_policy(), EvictionPolicy::kColdSubtree);
  EXPECT_TRUE(replica.cache().CheckInvariants());  // Aggregates rebuilt.
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 1);
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaCompositionTest, ColdSubtreeReplicaDrainsSaturatedLoad) {
  // End-to-end: a paged replica under sustained pressure with the new
  // eviction policy completes everything and keeps the unified ledger
  // consistent.
  Simulator sim;
  ReplicaConfig config;
  config.kv_capacity_tokens = 4096;
  config.kv_block_size_tokens = 16;
  config.output_reserve_tokens = 64;
  config.cache_eviction_policy = EvictionPolicy::kColdSubtree;
  Replica replica(&sim, 0, 0, config);
  std::vector<Completion> done(32);
  for (int i = 0; i < 32; ++i) {
    replica.Enqueue(MakeRequest(static_cast<RequestId>(i), 300, 400,
                                static_cast<Token>(i) * 10000),
                    Record(&sim, &done[static_cast<size_t>(i)]));
  }
  sim.Run();
  EXPECT_EQ(replica.stats().completed, 32);
  for (const auto& c : done) {
    EXPECT_GT(c.completed, 0);
  }
  EXPECT_TRUE(replica.cache().CheckInvariants());
  EXPECT_TRUE(replica.kv().CheckConsistency());
}

TEST(ReplicaCompositionTest, EwmaOnlyFoldsStepsThatDecoded) {
  // ISSUE 8 fix: prefill-only steps must not grow the probe-visible decode
  // EWMA sample count. One sequence, 1536-token prompt (two chunked prefill
  // steps), 20 output tokens: exactly 20 decode steps fold in.
  Simulator sim;
  Replica replica(&sim, 0, 0, ReplicaConfig{});
  Completion c;
  replica.Enqueue(MakeRequest(1, 1536, 20), Record(&sim, &c));
  sim.Run();
  ASSERT_GT(c.completed, 0);
  ProbePayload probe = replica.Probe();
  // 19 decode steps (the first output token rides the prefill-completion
  // step); the two prefill-only steps are exactly the ones not folded.
  EXPECT_EQ(probe.latency_samples, 19);
  EXPECT_GT(probe.ewma_decode_us_per_token, 0.0);
  EXPECT_EQ(replica.stats().engine_steps, probe.latency_samples + 2);
}

TEST(ReplicaProbeTest, MidStepArrivalHiddenOnlyUnderAdmissionBlockedPending) {
  // ISSUE 8: a request that arrives while a step is in flight is admittable
  // at the next step boundary — raw probes count it, admission-blocked
  // probes must not (that's the starvation signal SP-P misreads).
  for (bool blocked_mode : {false, true}) {
    Simulator sim;
    ReplicaConfig config;
    config.probe_admission_blocked_pending = blocked_mode;
    Replica replica(&sim, 0, 0, config);
    Completion a, b;
    replica.Enqueue(MakeRequest(1, 512, 8), Record(&sim, &a));
    sim.RunFor(Milliseconds(1));  // Prefill step (~300 ms) now in flight.
    replica.Enqueue(MakeRequest(2, 512, 8, 10000), Record(&sim, &b));
    ProbePayload probe = replica.Probe();
    EXPECT_EQ(probe.pending, blocked_mode ? 0 : 1);
    sim.Run();  // The arrival still admits and completes normally.
    EXPECT_EQ(replica.stats().completed, 2);
  }
}

TEST(ReplicaProbeTest, MemoryBlockedPendingStaysVisible) {
  // The knob must not hide genuine saturation: once an admission pass fails
  // on memory, the probe reports the blocked queue in both modes.
  for (bool blocked_mode : {false, true}) {
    Simulator sim;
    ReplicaConfig config;
    config.kv_capacity_tokens = 1024;
    config.kv_block_size_tokens = 16;
    config.probe_admission_blocked_pending = blocked_mode;
    Replica replica(&sim, 0, 0, config);
    Completion a, b;
    replica.Enqueue(MakeRequest(1, 768, 256), Record(&sim, &a));
    replica.Enqueue(MakeRequest(2, 768, 256, 10000), Record(&sim, &b));
    // Several step boundaries pass; each Admit() finds request 2 blocked on
    // memory (768 + reserve won't fit beside request 1's footprint).
    sim.RunFor(Milliseconds(500));
    ASSERT_EQ(replica.running_count(), 1);
    ASSERT_EQ(replica.pending_count(), 1);
    ProbePayload probe = replica.Probe();
    EXPECT_EQ(probe.pending, 1);
    sim.Run();
    EXPECT_EQ(replica.stats().completed, 2);
  }
}

}  // namespace
}  // namespace skywalker
