// Differential property tests for the arena-backed radix structures
// (ISSUE 3): randomized insert/match/pin/unpin/evict traces run through the
// new PrefixCache/RoutingTrie AND byte-for-byte copies of the seed std::map
// implementations, asserting identical observable behavior after every
// operation — match lengths, insert/evict returns, candidate orderings,
// size/node/pin counters — plus CheckInvariants() on the new structures.
//
// The references below are the pre-ISSUE-3 implementations, kept verbatim
// (modulo class names): they define the behavior the PR's determinism
// guardrail freezes. If an optimization ever changes eviction tie-breaking,
// split shapes, or candidate order, these tests fail before the BENCH_*.json
// golden diff does.

#include <gtest/gtest.h>

#include <cassert>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/cache/prefix_cache.h"
#include "src/cache/routing_trie.h"
#include "src/common/rng.h"

namespace skywalker {
namespace {

// ---------------------------------------------------------------------------
// Reference implementations (seed code, pointer-based std::map layout).
// ---------------------------------------------------------------------------

class ReferencePrefixCache {
 public:
  explicit ReferencePrefixCache(int64_t capacity_tokens)
      : capacity_tokens_(capacity_tokens), root_(std::make_unique<Node>()) {}

  struct MatchRef {
    int64_t cached_len = 0;
    PinId pin = kInvalidPin;
  };

  MatchRef MatchAndRef(const TokenSeq& seq, SimTime now) {
    std::vector<Node*> path;
    int64_t len = WalkAndSplit(seq, now, &path);
    for (Node* n : path) {
      ++n->ref_count;
    }
    PinId id = next_pin_++;
    Pin pin;
    pin.prefix.assign(seq.begin(), seq.begin() + static_cast<ptrdiff_t>(len));
    pins_.emplace(id, std::move(pin));
    lookup_tokens_ += static_cast<int64_t>(seq.size());
    hit_tokens_ += len;
    return MatchRef{len, id};
  }

  int64_t MatchPrefix(const TokenSeq& seq, SimTime now) {
    return WalkAndSplit(seq, now, nullptr);
  }

  void Unref(PinId pin) {
    auto it = pins_.find(pin);
    ASSERT_TRUE(it != pins_.end());
    const TokenSeq& prefix = it->second.prefix;
    AdjustRefs(prefix, static_cast<int64_t>(prefix.size()), -1);
    pins_.erase(it);
  }

  int64_t Insert(const TokenSeq& seq, SimTime now) {
    std::vector<Node*> path;
    int64_t matched = WalkAndSplit(seq, now, &path);
    int64_t added = 0;
    if (matched < static_cast<int64_t>(seq.size())) {
      Node* parent = path.empty() ? root_.get() : path.back();
      auto leaf = std::make_unique<Node>();
      leaf->edge.assign(seq.begin() + matched, seq.end());
      leaf->parent = parent;
      leaf->last_access = now;
      added = static_cast<int64_t>(leaf->edge.size());
      Token first = leaf->edge.front();
      parent->children.emplace(first, std::move(leaf));
      ++num_nodes_;
      size_tokens_ += added;
    }
    if (size_tokens_ > capacity_tokens_) {
      Evict(size_tokens_ - capacity_tokens_);
    }
    return added;
  }

  int64_t Evict(int64_t tokens) {
    int64_t freed = 0;
    while (freed < tokens) {
      Node* victim = nullptr;
      SimTime oldest = std::numeric_limits<SimTime>::max();
      std::vector<Node*> stack{root_.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        for (auto& [token, child] : n->children) {
          stack.push_back(child.get());
        }
        if (n != root_.get() && n->children.empty() && n->ref_count == 0 &&
            n->last_access < oldest) {
          oldest = n->last_access;
          victim = n;
        }
      }
      if (victim == nullptr) {
        break;
      }
      freed += static_cast<int64_t>(victim->edge.size());
      RemoveLeaf(victim);
    }
    return freed;
  }

  void Clear() { Evict(std::numeric_limits<int64_t>::max()); }

  int64_t size_tokens() const { return size_tokens_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t active_pins() const { return pins_.size(); }
  int64_t lookup_tokens() const { return lookup_tokens_; }
  int64_t hit_tokens() const { return hit_tokens_; }

  int64_t pinned_tokens() const {
    int64_t total = 0;
    std::vector<const Node*> stack{root_.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      for (const auto& [token, child] : n->children) {
        stack.push_back(child.get());
      }
      if (n->ref_count > 0) {
        total += static_cast<int64_t>(n->edge.size());
      }
    }
    return total;
  }

 private:
  struct Node {
    TokenSeq edge;
    std::map<Token, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    int64_t ref_count = 0;
    SimTime last_access = 0;
  };
  struct Pin {
    TokenSeq prefix;
  };

  int64_t WalkAndSplit(const TokenSeq& seq, SimTime now,
                       std::vector<Node*>* path) {
    Node* node = root_.get();
    size_t pos = 0;
    while (pos < seq.size()) {
      auto it = node->children.find(seq[pos]);
      if (it == node->children.end()) {
        break;
      }
      Node* child = it->second.get();
      const TokenSeq& edge = child->edge;
      size_t matched = 0;
      while (matched < edge.size() && pos + matched < seq.size() &&
             edge[matched] == seq[pos + matched]) {
        ++matched;
      }
      if (matched == 0) {
        break;
      }
      if (matched < edge.size()) {
        SplitNode(child, matched);
      }
      child->last_access = now;
      pos += matched;
      if (path != nullptr) {
        path->push_back(child);
      }
      node = child;
    }
    return static_cast<int64_t>(pos);
  }

  void SplitNode(Node* node, size_t keep) {
    auto tail = std::make_unique<Node>();
    tail->edge.assign(node->edge.begin() + static_cast<ptrdiff_t>(keep),
                      node->edge.end());
    tail->children = std::move(node->children);
    for (auto& [token, child] : tail->children) {
      child->parent = tail.get();
    }
    tail->ref_count = node->ref_count;
    tail->last_access = node->last_access;
    tail->parent = node;
    node->edge.resize(keep);
    node->children.clear();
    Token first = tail->edge.front();
    node->children.emplace(first, std::move(tail));
    ++num_nodes_;
  }

  void AdjustRefs(const TokenSeq& seq, int64_t len, int64_t delta) {
    Node* node = root_.get();
    int64_t pos = 0;
    while (pos < len) {
      auto it = node->children.find(seq[static_cast<size_t>(pos)]);
      ASSERT_TRUE(it != node->children.end());
      Node* child = it->second.get();
      int64_t edge_len = static_cast<int64_t>(child->edge.size());
      ASSERT_TRUE(pos + edge_len <= len);
      child->ref_count += delta;
      ASSERT_TRUE(child->ref_count >= 0);
      pos += edge_len;
      node = child;
    }
  }

  void RemoveLeaf(Node* leaf) {
    Node* parent = leaf->parent;
    size_tokens_ -= static_cast<int64_t>(leaf->edge.size());
    --num_nodes_;
    parent->children.erase(leaf->edge.front());
  }

  int64_t capacity_tokens_;
  std::unique_ptr<Node> root_;
  int64_t size_tokens_ = 0;
  size_t num_nodes_ = 0;
  std::unordered_map<PinId, Pin> pins_;
  PinId next_pin_ = 1;
  int64_t lookup_tokens_ = 0;
  int64_t hit_tokens_ = 0;
};

class ReferenceRoutingTrie {
 public:
  explicit ReferenceRoutingTrie(int64_t capacity_tokens)
      : capacity_tokens_(capacity_tokens), root_(std::make_unique<Node>()) {}

  using TargetPredicate = RoutingTrie::TargetPredicate;

  void Insert(const TokenSeq& seq, TargetId target) {
    uint64_t gen = next_gen_++;
    Node* node = root_.get();
    node->targets[target] = gen;
    size_t pos = 0;
    while (pos < seq.size()) {
      auto it = node->children.find(seq[pos]);
      if (it == node->children.end()) {
        auto leaf = std::make_unique<Node>();
        leaf->edge.assign(seq.begin() + static_cast<ptrdiff_t>(pos),
                          seq.end());
        leaf->parent = node;
        leaf->targets[target] = gen;
        leaf->last_insert_gen = gen;
        size_tokens_ += static_cast<int64_t>(leaf->edge.size());
        ++num_nodes_;
        node->children.emplace(leaf->edge.front(), std::move(leaf));
        break;
      }
      Node* child = it->second.get();
      size_t matched = 0;
      while (matched < child->edge.size() && pos + matched < seq.size() &&
             child->edge[matched] == seq[pos + matched]) {
        ++matched;
      }
      if (matched < child->edge.size()) {
        SplitNode(child, matched);
      }
      child->targets[target] = gen;
      child->last_insert_gen = gen;
      pos += matched;
      node = child;
    }
    EvictToCapacity();
  }

  RoutingTrie::Match MatchBest(const TokenSeq& seq,
                               const TargetPredicate& pred) const {
    RoutingTrie::Match result;
    const Node* best = root_.get();
    int64_t best_len = 0;
    const Node* node = root_.get();
    size_t pos = 0;
    while (pos < seq.size()) {
      auto it = node->children.find(seq[pos]);
      if (it == node->children.end()) {
        break;
      }
      const Node* child = it->second.get();
      size_t matched = 0;
      while (matched < child->edge.size() && pos + matched < seq.size() &&
             child->edge[matched] == seq[pos + matched]) {
        ++matched;
      }
      if (matched == 0) {
        break;
      }
      bool any_available = false;
      for (const auto& [target, gen] : child->targets) {
        (void)gen;
        if (!pred || pred(target)) {
          any_available = true;
          break;
        }
      }
      if (!any_available) {
        break;
      }
      pos += matched;
      best = child;
      best_len = static_cast<int64_t>(pos);
      if (matched < child->edge.size()) {
        break;
      }
      node = child;
    }
    result.match_len = best_len;
    FillAvailable(best, pred, &result.candidates);
    return result;
  }

  void RemoveTarget(TargetId target) {
    std::vector<Node*> stack{root_.get()};
    std::vector<Node*> order;
    while (!stack.empty()) {
      Node* n = stack.back();
      stack.pop_back();
      order.push_back(n);
      for (auto& [token, child] : n->children) {
        stack.push_back(child.get());
      }
    }
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      Node* n = *it;
      n->targets.erase(target);
      if (n != root_.get() && n->children.empty() && n->targets.empty()) {
        RemoveLeaf(n);
      }
    }
  }

  int64_t size_tokens() const { return size_tokens_; }
  size_t num_nodes() const { return num_nodes_; }

 private:
  struct Node {
    TokenSeq edge;
    std::map<Token, std::unique_ptr<Node>> children;
    Node* parent = nullptr;
    std::map<TargetId, uint64_t> targets;
    uint64_t last_insert_gen = 0;
  };

  void SplitNode(Node* node, size_t keep) {
    auto tail = std::make_unique<Node>();
    tail->edge.assign(node->edge.begin() + static_cast<ptrdiff_t>(keep),
                      node->edge.end());
    tail->children = std::move(node->children);
    for (auto& [token, child] : tail->children) {
      child->parent = tail.get();
    }
    tail->targets = node->targets;
    tail->last_insert_gen = node->last_insert_gen;
    tail->parent = node;
    node->edge.resize(keep);
    node->children.clear();
    node->children.emplace(tail->edge.front(), std::move(tail));
    ++num_nodes_;
  }

  void FillAvailable(const Node* node, const TargetPredicate& pred,
                     std::vector<TargetId>* out) const {
    out->clear();
    std::vector<std::pair<uint64_t, TargetId>> avail;
    for (const auto& [target, gen] : node->targets) {
      if (!pred || pred(target)) {
        avail.emplace_back(gen, target);
      }
    }
    std::sort(avail.begin(), avail.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    out->reserve(avail.size());
    for (const auto& [gen, target] : avail) {
      (void)gen;
      out->push_back(target);
    }
  }

  void EvictToCapacity() {
    while (size_tokens_ > capacity_tokens_) {
      Node* victim = nullptr;
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      std::vector<Node*> stack{root_.get()};
      while (!stack.empty()) {
        Node* n = stack.back();
        stack.pop_back();
        for (auto& [token, child] : n->children) {
          stack.push_back(child.get());
        }
        if (n != root_.get() && n->children.empty() &&
            n->last_insert_gen < oldest) {
          oldest = n->last_insert_gen;
          victim = n;
        }
      }
      if (victim == nullptr) {
        break;
      }
      RemoveLeaf(victim);
    }
  }

  void RemoveLeaf(Node* leaf) {
    Node* parent = leaf->parent;
    size_tokens_ -= static_cast<int64_t>(leaf->edge.size());
    --num_nodes_;
    parent->children.erase(leaf->edge.front());
  }

  int64_t capacity_tokens_;
  std::unique_ptr<Node> root_;
  int64_t size_tokens_ = 0;
  size_t num_nodes_ = 0;
  uint64_t next_gen_ = 1;
};

// ---------------------------------------------------------------------------
// Trace generators.
// ---------------------------------------------------------------------------

// Conversation-shaped random sequence: extends/truncates earlier sequences
// (prefix structure, splits) or draws fresh tokens from a small alphabet
// (fan-out, collisions).
TokenSeq RandomSeq(Rng& rng, const std::vector<TokenSeq>& history) {
  TokenSeq seq;
  if (!history.empty() && rng.Bernoulli(0.6)) {
    const TokenSeq& base = history[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(history.size()) - 1))];
    size_t keep = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(base.size())));
    seq.assign(base.begin(), base.begin() + static_cast<ptrdiff_t>(keep));
    int64_t extra = rng.UniformInt(0, 8);
    for (int64_t i = 0; i < extra; ++i) {
      seq.push_back(static_cast<Token>(rng.UniformInt(0, 9)));
    }
  } else {
    int64_t len = rng.UniformInt(1, 16);
    for (int64_t i = 0; i < len; ++i) {
      seq.push_back(static_cast<Token>(rng.UniformInt(0, 9)));
    }
  }
  return seq;
}

struct CacheParams {
  uint64_t seed = 0;
  int64_t capacity = 0;
  // Divisor applied to the step counter when stamping SimTime: > 1 forces
  // duplicate LRU timestamps, stressing eviction-scan tie-breaking.
  SimTime time_divisor = 1;
};

class PrefixCacheDifferentialTest
    : public ::testing::TestWithParam<CacheParams> {};

TEST_P(PrefixCacheDifferentialTest, MatchesSeedImplementationExactly) {
  const CacheParams params = GetParam();
  Rng rng(params.seed);
  PrefixCache cache(params.capacity);
  ReferencePrefixCache ref(params.capacity);

  std::vector<TokenSeq> history;
  std::vector<std::pair<PinId, PinId>> pins;  // {new, reference}

  for (int step = 0; step < 1200; ++step) {
    SCOPED_TRACE(step);
    const SimTime now = static_cast<SimTime>(step) / params.time_divisor;
    const double roll = rng.NextDouble();
    if (roll < 0.35) {
      TokenSeq seq = RandomSeq(rng, history);
      history.push_back(seq);
      ASSERT_EQ(cache.Insert(seq, now), ref.Insert(seq, now));
    } else if (roll < 0.55) {
      TokenSeq seq = RandomSeq(rng, history);
      ASSERT_EQ(cache.MatchPrefix(seq, now), ref.MatchPrefix(seq, now));
    } else if (roll < 0.75) {
      TokenSeq seq = RandomSeq(rng, history);
      auto got = cache.MatchAndRef(seq, now);
      auto want = ref.MatchAndRef(seq, now);
      ASSERT_EQ(got.cached_len, want.cached_len);
      pins.emplace_back(got.pin, want.pin);
    } else if (roll < 0.85 && !pins.empty()) {
      size_t idx = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pins.size()) - 1));
      cache.Unref(pins[idx].first);
      ref.Unref(pins[idx].second);
      pins.erase(pins.begin() + static_cast<ptrdiff_t>(idx));
    } else {
      int64_t tokens = rng.UniformInt(1, 64);
      ASSERT_EQ(cache.Evict(tokens), ref.Evict(tokens));
    }
    ASSERT_EQ(cache.size_tokens(), ref.size_tokens());
    ASSERT_EQ(cache.num_nodes(), ref.num_nodes());
    ASSERT_EQ(cache.pinned_tokens(), ref.pinned_tokens());
    ASSERT_EQ(cache.active_pins(), ref.active_pins());
    ASSERT_EQ(cache.lookup_tokens(), ref.lookup_tokens());
    ASSERT_EQ(cache.hit_tokens(), ref.hit_tokens());
    ASSERT_TRUE(cache.CheckInvariants());
  }

  // Drain: release every pin, then everything must evict identically.
  for (const auto& [mine, theirs] : pins) {
    cache.Unref(mine);
    ref.Unref(theirs);
  }
  ASSERT_EQ(cache.Evict(1 << 30), ref.Evict(1 << 30));
  ASSERT_EQ(cache.size_tokens(), 0);
  ASSERT_TRUE(cache.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(
    Traces, PrefixCacheDifferentialTest,
    ::testing::Values(CacheParams{1, 1'000'000, 1},   // No eviction.
                      CacheParams{2, 200, 1},          // Heavy eviction.
                      CacheParams{3, 200, 4},          // Eviction + LRU ties.
                      CacheParams{4, 50, 1},           // Brutal eviction.
                      CacheParams{5, 1000, 8},         // Many ties.
                      CacheParams{99, 400, 2}));

struct TrieParams {
  uint64_t seed = 0;
  int64_t capacity = 0;
};

class RoutingTrieDifferentialTest
    : public ::testing::TestWithParam<TrieParams> {};

TEST_P(RoutingTrieDifferentialTest, MatchesSeedImplementationExactly) {
  const TrieParams params = GetParam();
  Rng rng(params.seed);
  RoutingTrie trie(params.capacity);
  ReferenceRoutingTrie ref(params.capacity);

  std::vector<TokenSeq> history;
  constexpr TargetId kTargets = 6;

  for (int step = 0; step < 1200; ++step) {
    SCOPED_TRACE(step);
    const double roll = rng.NextDouble();
    if (roll < 0.45) {
      TokenSeq seq = RandomSeq(rng, history);
      history.push_back(seq);
      TargetId target = static_cast<TargetId>(rng.UniformInt(0, kTargets - 1));
      trie.Insert(seq, target);
      ref.Insert(seq, target);
    } else if (roll < 0.9) {
      TokenSeq seq = RandomSeq(rng, history);
      std::set<TargetId> avail;
      for (TargetId t = 0; t < kTargets; ++t) {
        if (rng.Bernoulli(0.6)) {
          avail.insert(t);
        }
      }
      auto pred = [&avail](TargetId id) { return avail.count(id) > 0; };
      auto got = trie.MatchBest(seq, pred);
      auto want = ref.MatchBest(seq, pred);
      ASSERT_EQ(got.match_len, want.match_len);
      ASSERT_EQ(got.candidates, want.candidates);  // Order included.
    } else {
      TargetId target = static_cast<TargetId>(rng.UniformInt(0, kTargets - 1));
      trie.RemoveTarget(target);
      ref.RemoveTarget(target);
    }
    ASSERT_EQ(trie.size_tokens(), ref.size_tokens());
    ASSERT_EQ(trie.num_nodes(), ref.num_nodes());
    ASSERT_TRUE(trie.CheckInvariants());
  }

  // Teardown: removing every target must empty both tries identically.
  for (TargetId t = 0; t < kTargets; ++t) {
    trie.RemoveTarget(t);
    ref.RemoveTarget(t);
    ASSERT_EQ(trie.size_tokens(), ref.size_tokens());
    ASSERT_EQ(trie.num_nodes(), ref.num_nodes());
    ASSERT_TRUE(trie.CheckInvariants());
  }
  ASSERT_EQ(trie.num_nodes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Traces, RoutingTrieDifferentialTest,
                         ::testing::Values(TrieParams{11, 1'000'000},
                                           TrieParams{12, 300},
                                           TrieParams{13, 60},
                                           TrieParams{14, 1000},
                                           TrieParams{77, 150}));

}  // namespace
}  // namespace skywalker
