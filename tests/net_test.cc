// Unit tests for the topology and network model.

#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/net/topology.h"
#include "src/sim/sharded_simulator.h"
#include "src/sim/simulator.h"

namespace skywalker {
namespace {

TEST(TopologyTest, AddRegionAssignsSequentialIds) {
  Topology t;
  EXPECT_EQ(t.AddRegion("a"), 0);
  EXPECT_EQ(t.AddRegion("b"), 1);
  EXPECT_EQ(t.num_regions(), 2u);
  EXPECT_EQ(t.name(0), "a");
}

TEST(TopologyTest, IntraRegionLatencyDefaults) {
  Topology t;
  RegionId a = t.AddRegion("a", Milliseconds(2));
  EXPECT_EQ(t.Latency(a, a), Milliseconds(2));
}

TEST(TopologyTest, SetLatencySymmetric) {
  Topology t;
  RegionId a = t.AddRegion("a");
  RegionId b = t.AddRegion("b");
  t.SetLatency(a, b, Milliseconds(42));
  EXPECT_EQ(t.Latency(a, b), Milliseconds(42));
  EXPECT_EQ(t.Latency(b, a), Milliseconds(42));
}

TEST(TopologyTest, UnsetPairsUseDefault) {
  Topology t;
  RegionId a = t.AddRegion("a");
  RegionId b = t.AddRegion("b");
  EXPECT_EQ(t.Latency(a, b), Topology::kDefaultInterRegionLatency);
}

TEST(TopologyTest, LatenciesSurviveLaterAddRegion) {
  Topology t;
  RegionId a = t.AddRegion("a");
  RegionId b = t.AddRegion("b");
  t.SetLatency(a, b, Milliseconds(33));
  RegionId c = t.AddRegion("c");
  EXPECT_EQ(t.Latency(a, b), Milliseconds(33));
  EXPECT_EQ(t.Latency(a, c), Topology::kDefaultInterRegionLatency);
}

TEST(TopologyTest, FindRegionByName) {
  Topology t = Topology::ThreeContinents();
  auto us = t.FindRegion("us-east");
  ASSERT_TRUE(us.ok());
  EXPECT_EQ(*us, 0);
  EXPECT_FALSE(t.FindRegion("mars").ok());
}

TEST(TopologyTest, NearestPicksLowestLatency) {
  Topology t = Topology::ThreeContinents();
  RegionId us = 0;
  RegionId eu = 1;
  RegionId ap = 2;
  EXPECT_EQ(t.Nearest(us, {eu, ap}), eu);
  EXPECT_EQ(t.Nearest(ap, {us, eu}), us);
  EXPECT_EQ(t.Nearest(us, {}), kInvalidRegion);
  EXPECT_EQ(t.Nearest(us, {us, eu, ap}), us);  // Self is nearest.
}

TEST(TopologyTest, ThreeContinentsWithinPaperEnvelope) {
  Topology t = Topology::ThreeContinents();
  ASSERT_EQ(t.num_regions(), 3u);
  for (RegionId a = 0; a < 3; ++a) {
    for (RegionId b = 0; b < 3; ++b) {
      if (a == b) {
        EXPECT_LE(t.Latency(a, b), Milliseconds(5));
      } else {
        // One-way <= 100 ms, i.e. RTT <= 200 ms (§2.1).
        EXPECT_LE(t.Latency(a, b), Milliseconds(100));
        EXPECT_GE(t.Latency(a, b), Milliseconds(20));
      }
    }
  }
}

TEST(NetworkTest, DeliversAfterLatency) {
  Simulator sim;
  Topology t;
  RegionId a = t.AddRegion("a");
  RegionId b = t.AddRegion("b");
  t.SetLatency(a, b, Milliseconds(40));
  Network net(&sim, t);

  SimTime delivered = -1;
  net.Send(a, b, [&] { delivered = sim.now(); });
  sim.Run();
  EXPECT_EQ(delivered, Milliseconds(40));
}

TEST(NetworkTest, CountsCrossRegionMessages) {
  Simulator sim;
  Topology t;
  RegionId a = t.AddRegion("a");
  RegionId b = t.AddRegion("b");
  Network net(&sim, t);
  net.Send(a, a, [] {});
  net.Send(a, b, [] {});
  net.Send(b, a, [] {});
  sim.Run();
  EXPECT_EQ(net.messages_sent(), 3u);
  EXPECT_EQ(net.cross_region_messages(), 2u);
}

TEST(NetworkTest, ShardedCountersAggregateAcrossShards) {
  // Under sharding the counters are kept per sender shard (ISSUE 6,
  // satellite: no shared cacheline between worker threads); the accessors
  // must still report fleet-wide totals.
  Topology topo = Topology::FourRegions();
  ShardedSimulator sim(topo, /*num_shards=*/4, /*num_threads=*/4);
  Network net(&sim);
  // One local send plus a cross-region send from every region, issued from
  // each region's own shard.
  for (RegionId r = 0; r < 4; ++r) {
    Simulator* shard_sim = net.SimForRegion(r);
    shard_sim->SetCurrentRegion(r);
    shard_sim->ScheduleAt(0, [&net, r] {
      net.Send(r, r, [] {});
      net.Send(r, (r + 1) % 4, [] {});
    });
  }
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(net.messages_sent(), 8u);
  EXPECT_EQ(net.cross_region_messages(), 4u);
}

TEST(NetworkTest, ShardedDeliverHonorsMinimumLatency) {
  // Deliver() routes a reply along an explicit (from, to) edge; cross-shard
  // edges must respect the topology latency floor that the lookahead window
  // is derived from.
  Topology topo = Topology::FourRegions();
  ShardedSimulator sim(topo, /*num_shards=*/2, /*num_threads=*/1);
  Network net(&sim);
  SimTime arrival = -1;
  Simulator* sim0 = net.SimForRegion(0);
  sim0->SetCurrentRegion(0);
  sim0->ScheduleAt(0, [&] {
    net.Deliver(0, 1, topo.Latency(0, 1) + Milliseconds(5),
                [&] { arrival = net.SimForRegion(1)->now(); });
  });
  sim.RunUntil(Seconds(1));
  EXPECT_EQ(arrival, topo.Latency(0, 1) + Milliseconds(5));
}

TEST(NetworkTest, JitterStaysWithinBounds) {
  Simulator sim;
  Topology t;
  RegionId a = t.AddRegion("a");
  RegionId b = t.AddRegion("b");
  t.SetLatency(a, b, Milliseconds(100));
  Network net(&sim, t, /*jitter_fraction=*/0.1, /*seed=*/7);

  for (int i = 0; i < 200; ++i) {
    SimTime start = sim.now();
    SimTime arrival = -1;
    net.Send(a, b, [&] { arrival = sim.now(); });
    sim.Run();
    SimDuration latency = arrival - start;
    EXPECT_GE(latency, Milliseconds(90));
    EXPECT_LE(latency, Milliseconds(110));
  }
}

TEST(NetworkTest, ZeroJitterIsExact) {
  Simulator sim;
  Topology t = Topology::ThreeContinents();
  Network net(&sim, t);
  SimTime arrival = -1;
  net.Send(0, 2, [&] { arrival = sim.now(); });
  sim.Run();
  EXPECT_EQ(arrival, t.Latency(0, 2));
}

}  // namespace
}  // namespace skywalker
