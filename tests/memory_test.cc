// Unit tests for the paged KV memory subsystem (src/memory/, ISSUE 4):
// BlockAllocator refcounting and free-list recycling, BlockTable growth /
// copy-on-write forks / truncation, and KvController admission, commitment,
// watermark, and swap-ledger arithmetic.

#include <gtest/gtest.h>

#include "src/cache/prefix_cache.h"
#include "src/memory/block_allocator.h"
#include "src/memory/block_table.h"
#include "src/memory/kv_controller.h"

namespace skywalker {
namespace {

TEST(BlockAllocatorTest, AllocateReleaseRecyclesIds) {
  BlockAllocator alloc(8);
  BlockId a = alloc.Allocate();
  BlockId b = alloc.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.used_blocks(), 2);
  EXPECT_EQ(alloc.free_blocks(), 6);
  EXPECT_TRUE(alloc.Release(b));
  // LIFO free list: the freed id comes straight back.
  EXPECT_EQ(alloc.Allocate(), b);
  EXPECT_TRUE(alloc.Release(a));
  EXPECT_TRUE(alloc.Release(b));
  EXPECT_EQ(alloc.used_blocks(), 0);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockAllocatorTest, RefcountSharingDelaysFree) {
  BlockAllocator alloc(4);
  BlockId a = alloc.Allocate();
  alloc.AddRef(a);
  EXPECT_EQ(alloc.ref_count(a), 2);
  EXPECT_FALSE(alloc.Release(a));  // Still shared.
  EXPECT_EQ(alloc.used_blocks(), 1);
  EXPECT_TRUE(alloc.Release(a));
  EXPECT_EQ(alloc.used_blocks(), 0);
}

TEST(BlockAllocatorTest, OvercommitGoesNegativeButCounts) {
  // Blocks are bookkeeping: allocation past capacity must succeed (the
  // replica's force-admit path relies on it) and free_blocks goes negative.
  BlockAllocator alloc(2);
  for (int i = 0; i < 5; ++i) {
    alloc.Allocate();
  }
  EXPECT_EQ(alloc.used_blocks(), 5);
  EXPECT_EQ(alloc.free_blocks(), -3);
  EXPECT_EQ(alloc.stats().peak_used_blocks, 5);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockTableTest, AppendPacksPartialTail) {
  BlockAllocator alloc(64);
  BlockTable table;
  EXPECT_EQ(table.Append(alloc, 16, 10), 1);  // One block, 6 slots spare.
  EXPECT_EQ(table.fragmentation_tokens(16), 6);
  EXPECT_EQ(table.Append(alloc, 16, 6), 0);  // Fills the tail, no alloc.
  EXPECT_EQ(table.fragmentation_tokens(16), 0);
  EXPECT_EQ(table.Append(alloc, 16, 33), 3);  // 2 full + 1 partial.
  EXPECT_EQ(table.num_tokens(), 49);
  EXPECT_EQ(table.num_blocks(), 4);
  table.Clear(alloc);
  EXPECT_EQ(alloc.used_blocks(), 0);
}

TEST(BlockTableTest, BlockSizeOneIsTokenGranular) {
  BlockAllocator alloc(1024);
  BlockTable table;
  table.Append(alloc, 1, 100);
  EXPECT_EQ(table.num_blocks(), 100);
  EXPECT_EQ(table.fragmentation_tokens(1), 0);
  table.Truncate(alloc, 1, 40);
  EXPECT_EQ(table.num_blocks(), 60);
  EXPECT_EQ(alloc.used_blocks(), 60);
  table.Clear(alloc);
}

TEST(BlockTableTest, ForkSharesBlocksAndCowsOnDivergence) {
  BlockAllocator alloc(64);
  BlockTable parent;
  parent.Append(alloc, 16, 40);  // 3 blocks, tail holds 8 tokens.
  BlockTable child;
  child.ForkFrom(alloc, parent, 16, 40);
  EXPECT_EQ(alloc.used_blocks(), 3);  // Fully shared: no new blocks.
  EXPECT_EQ(alloc.ref_count(parent.blocks()[2]), 2);

  // Divergence: the shared partial tail must be CoW-duplicated; full
  // shared blocks stay shared.
  int64_t before_cow = alloc.stats().cow_copies;
  child.Append(alloc, 16, 4);
  EXPECT_EQ(alloc.stats().cow_copies, before_cow + 1);
  EXPECT_EQ(alloc.used_blocks(), 4);
  EXPECT_NE(child.blocks()[2], parent.blocks()[2]);
  EXPECT_EQ(child.blocks()[0], parent.blocks()[0]);
  EXPECT_EQ(alloc.ref_count(parent.blocks()[2]), 1);

  // Parent appending into its (now exclusive) tail needs no CoW.
  before_cow = alloc.stats().cow_copies;
  parent.Append(alloc, 16, 4);
  EXPECT_EQ(alloc.stats().cow_copies, before_cow);

  child.Clear(alloc);
  EXPECT_EQ(alloc.used_blocks(), 3);  // Parent's blocks survive.
  parent.Clear(alloc);
  EXPECT_EQ(alloc.used_blocks(), 0);
  EXPECT_TRUE(alloc.CheckInvariants());
}

TEST(BlockTableTest, TruncateReleasesEmptiedBlocksOnly) {
  BlockAllocator alloc(64);
  BlockTable table;
  table.Append(alloc, 16, 48);  // 3 full blocks.
  EXPECT_EQ(table.Truncate(alloc, 16, 8), 0);  // Tail still half full.
  EXPECT_EQ(table.num_blocks(), 3);
  EXPECT_EQ(table.Truncate(alloc, 16, 8), 1);  // Tail emptied.
  EXPECT_EQ(table.num_blocks(), 2);
  table.Clear(alloc);
}

TEST(BlockTableTest, SkewPathAlignsTheFirstBlock) {
  // A table starting at path position 10 (skew 10) holds only 6 slots in
  // its first page — its pages sit at the positions the radix tree would
  // charge them, so publishing is a reference transfer.
  BlockAllocator alloc(64);
  BlockTable table;
  table.SetSkew(10);
  EXPECT_EQ(table.Append(alloc, 16, 6), 1);  // Fills the first page.
  EXPECT_EQ(table.fragmentation_tokens(16), 0);
  EXPECT_EQ(table.Append(alloc, 16, 1), 1);  // Next page.
  EXPECT_EQ(table.num_blocks(), 2);
  EXPECT_EQ(table.num_tokens(), 7);
  table.Clear(alloc);
  EXPECT_EQ(table.skew(), 0);  // Clear resets alignment.
  EXPECT_EQ(alloc.used_blocks(), 0);
}

TEST(BlockTableTest, ReleasePrefixKeepsTheStraddledBoundaryPage) {
  BlockAllocator alloc(64);
  BlockTable table;
  table.Append(alloc, 16, 40);  // Pages [0,16) [16,32) [32,40).
  // Publish the first 20 tokens: page 0 drops, page 1 straddles the new
  // start (tokens 20..31 are still ours) and must survive.
  BlockId straddle = table.blocks()[1];
  EXPECT_EQ(table.ReleasePrefix(alloc, 16, 20), 1);
  EXPECT_EQ(table.num_tokens(), 20);
  EXPECT_EQ(table.skew(), 4);
  EXPECT_EQ(table.num_blocks(), 2);
  EXPECT_EQ(table.blocks()[0], straddle);
  // Dropping everything releases even the straddled page, but the path
  // alignment advances past the dropped span: a token re-materialized into
  // the empty table must land at its true path position (40 % 16 == 8).
  EXPECT_EQ(table.ReleasePrefix(alloc, 16, 20), 2);
  EXPECT_EQ(alloc.used_blocks(), 0);
  EXPECT_EQ(table.skew(), 8);
  // Appending from the emptied-but-skewed state opens a page with only the
  // remaining 8 slots.
  EXPECT_EQ(table.Append(alloc, 16, 8), 1);
  EXPECT_EQ(table.Append(alloc, 16, 1), 1);
  table.Clear(alloc);
  EXPECT_EQ(table.skew(), 0);  // Clear is the full reset.
  EXPECT_EQ(alloc.used_blocks(), 0);
}

TEST(BlockTableTest, CowExemptPageExtendsWithoutCopy) {
  // The page a sequence shares with the prefix cache after publish: the
  // cache holds a reference, but decode extends into slot-disjoint space,
  // so no copy-on-write fires for that page (and only that page).
  BlockAllocator alloc(64);
  BlockTable table;
  table.Append(alloc, 16, 20);          // Pages 0,1; tail holds 4 tokens.
  BlockId shared = table.blocks()[1];
  alloc.AddRef(shared);                 // "The cache" takes its reference.
  int64_t before = alloc.stats().cow_copies;
  table.set_cow_exempt(shared);
  table.Append(alloc, 16, 4);           // Extends the shared tail: no CoW.
  EXPECT_EQ(alloc.stats().cow_copies, before);
  EXPECT_EQ(table.blocks()[1], shared);
  // A non-exempt shared partial tail still CoWs.
  BlockTable other;
  other.Append(alloc, 16, 20);
  BlockId forked = other.blocks()[1];
  alloc.AddRef(forked);
  other.Append(alloc, 16, 2);
  EXPECT_EQ(alloc.stats().cow_copies, before + 1);
  EXPECT_NE(other.blocks()[1], forked);
  alloc.Release(forked);
  alloc.Release(shared);
  other.Clear(alloc);
  table.Clear(alloc);
  EXPECT_EQ(alloc.used_blocks(), 0);
  EXPECT_TRUE(alloc.CheckInvariants());
}

// --- KvController ------------------------------------------------------

TEST(KvControllerTest, CoarseModeMatchesSeedArithmetic) {
  // block_size 1, no watermark: CanAdmit must be exactly
  // need <= capacity - resident - committed. The cache side charges the
  // shared allocator directly (here emulated by an external table).
  KvConfig config;
  config.capacity_tokens = 1000;
  KvController kv(config);
  BlockTable cache_side;
  cache_side.Append(kv.allocator(), 1, 300);
  KvController::SeqId seq = kv.AdmitSeq(200, 100);
  EXPECT_EQ(kv.used_blocks(), 300);
  EXPECT_EQ(kv.committed_tokens(), 300);
  // free = 1000 - 300 - 300 = 400.
  EXPECT_TRUE(kv.CanAdmit(300, 100));
  EXPECT_FALSE(kv.CanAdmit(301, 100));
  EXPECT_EQ(kv.AdmissionDeficitBlocks(301, 100), 1);

  kv.OnPrefillChunk(seq, 200);  // Committed -> resident, free unchanged.
  EXPECT_EQ(kv.used_blocks(), 500);
  EXPECT_EQ(kv.seq_resident_tokens(), 200);
  EXPECT_EQ(kv.committed_tokens(), 100);
  EXPECT_TRUE(kv.CanAdmit(300, 100));
  EXPECT_FALSE(kv.CanAdmit(301, 100));

  kv.OnDecodeToken(seq);  // Reserve shrinks as output materializes.
  EXPECT_EQ(kv.used_blocks(), 501);
  EXPECT_EQ(kv.committed_reserve_tokens(), 99);

  EXPECT_EQ(kv.ReleaseSeq(seq), 201);
  EXPECT_EQ(kv.committed_tokens(), 0);
  EXPECT_EQ(kv.used_blocks(), 300);
  EXPECT_TRUE(kv.CheckConsistency());
  cache_side.Clear(kv.allocator());
}

TEST(KvControllerTest, PagedCeilsPerSequence) {
  KvConfig config;
  config.capacity_tokens = 160;  // 10 blocks of 16.
  config.block_size_tokens = 16;
  KvController kv(config);
  EXPECT_EQ(kv.total_blocks(), 10);
  // 17 prefill -> 2 blocks, 17 reserve -> 2 blocks: 4 of 10.
  KvController::SeqId seq = kv.AdmitSeq(17, 17);
  EXPECT_EQ(kv.committed_blocks(), 4);
  // Another identical admission fits (8 of 10); a third does not.
  EXPECT_TRUE(kv.CanAdmit(17, 17));
  KvController::SeqId seq2 = kv.AdmitSeq(17, 17);
  EXPECT_FALSE(kv.CanAdmit(17, 17));
  EXPECT_EQ(kv.AdmissionDeficitBlocks(17, 17), 2);  // Deficit in blocks.

  // Prefill materializes into real blocks; fragmentation appears.
  kv.OnPrefillChunk(seq, 17);
  EXPECT_EQ(kv.used_blocks(), 2);
  EXPECT_EQ(kv.used_blocks() * 16 - kv.seq_resident_tokens(), 2 * 16 - 17);
  kv.ReleaseSeq(seq);
  kv.ReleaseSeq(seq2);
  EXPECT_TRUE(kv.CheckConsistency());
}

TEST(KvControllerTest, WatermarkHoldsBlocksBack) {
  KvConfig config;
  config.capacity_tokens = 160;
  config.block_size_tokens = 16;
  config.watermark_blocks = 4;
  KvController kv(config);
  // 6 blocks of need fits only if 6 + 4 <= 10.
  EXPECT_TRUE(kv.CanAdmit(48, 48));
  EXPECT_FALSE(kv.CanAdmit(48, 64));
  EXPECT_TRUE(kv.CanAdmitIgnoringWatermark(48, 64));
}

TEST(KvControllerTest, SwapLedgerModelsPcieTime) {
  KvConfig config;
  config.capacity_tokens = 1000;
  config.swap_us_per_token = 5.0;
  KvController kv(config);
  KvController::SeqId seq = kv.AdmitSeq(100, 50);
  kv.OnPrefillChunk(seq, 100);
  ASSERT_EQ(kv.SeqTokens(seq), 100);

  SimDuration out = kv.SwapOut(seq);
  EXPECT_EQ(out, 500);  // 100 tokens * 5 us.
  EXPECT_EQ(kv.seq_resident_tokens(), 0);
  EXPECT_EQ(kv.committed_tokens(), 0);  // Reserve returned on swap-out.
  EXPECT_EQ(kv.counters().preempt_swap, 1);
  EXPECT_EQ(kv.counters().swapped_out_tokens, 100);

  SimDuration in = 0;
  KvController::SeqId restored = kv.BeginSwapIn(100, 0, 50, /*skew=*/0, &in);
  EXPECT_EQ(in, 500);
  EXPECT_EQ(kv.SeqTokens(restored), 100);
  EXPECT_EQ(kv.committed_reserve_tokens(), 50);
  EXPECT_EQ(kv.counters().swap_ins, 1);
  EXPECT_DOUBLE_EQ(kv.counters().swap_transfer_us, 1000.0);
  kv.ReleaseSeq(restored);
  EXPECT_TRUE(kv.CheckConsistency());
}

TEST(KvControllerTest, CacheChargesTheSharedAllocatorDirectly) {
  // ISSUE 5: no shadow cache table — the radix cache's node spans ARE the
  // cache charge, visible to admission through used_blocks().
  KvConfig config;
  config.capacity_tokens = 320;
  config.block_size_tokens = 16;
  KvController kv(config);
  PrefixCache cache(320, &kv.allocator(), 16);
  TokenSeq seq;
  for (Token t = 0; t < 100; ++t) {
    seq.push_back(t);
  }
  cache.Insert(seq, 1);
  EXPECT_EQ(kv.used_blocks(), 7);  // ceil(100/16), exactly one node's span.
  EXPECT_EQ(cache.block_refs(), 7);
  EXPECT_EQ(cache.CountBlocks().held_blocks, 7);
  // Admission sees the cache charge with no reconciliation step.
  EXPECT_TRUE(kv.CanAdmit(16 * 13, 0));
  EXPECT_FALSE(kv.CanAdmit(16 * 13 + 1, 0));
  cache.Evict(100);
  EXPECT_EQ(kv.used_blocks(), 0);
  EXPECT_TRUE(kv.CheckConsistency());
  EXPECT_TRUE(cache.CheckInvariants());
}

TEST(KvControllerTest, ReclaimNeededAfterOvercommit) {
  KvConfig config;
  config.capacity_tokens = 64;
  config.block_size_tokens = 16;
  KvController kv(config);
  KvController::SeqId seq = kv.AdmitSeq(100, 0);  // Force-admit analogue.
  kv.OnPrefillChunk(seq, 100);
  EXPECT_EQ(kv.used_blocks(), 7);
  EXPECT_EQ(kv.ReclaimNeededBlocks(), 3);  // 7 used over a 4-block budget.
  kv.ReleaseSeq(seq);
  EXPECT_EQ(kv.ReclaimNeededBlocks(), 0);
}

TEST(KvControllerTest, SlotReuseKeepsLedgerConsistent) {
  KvConfig config;
  config.capacity_tokens = 10000;
  config.block_size_tokens = 16;
  KvController kv(config);
  for (int round = 0; round < 50; ++round) {
    KvController::SeqId a = kv.AdmitSeq(33, 20);
    KvController::SeqId b = kv.AdmitSeq(7, 20);
    kv.OnPrefillChunk(a, 33);
    kv.OnPrefillChunk(b, 7);
    for (int i = 0; i < 20; ++i) {
      kv.OnDecodeToken(a);
    }
    kv.ReleaseSeqPrefix(a, 48);  // Publish: drop to 5 private tokens.
    EXPECT_EQ(kv.SeqTokens(a), 5);
    kv.ReleaseSeq(a);
    kv.ReleaseSeq(b);
  }
  EXPECT_EQ(kv.live_seqs(), 0);
  EXPECT_EQ(kv.seq_resident_tokens(), 0);
  EXPECT_EQ(kv.committed_tokens(), 0);
  EXPECT_EQ(kv.used_blocks(), 0);
  EXPECT_TRUE(kv.CheckConsistency());
}

}  // namespace
}  // namespace skywalker
