// Golden-schema test for the skybench harness: every registered scenario,
// run in smoke mode, must emit a BENCH_*.json document that (a) parses as
// strict JSON, (b) carries the envelope fields tooling depends on, and
// (c) contains every declared metric key in every row — the contract CI
// regression checks are built on.

#include <gtest/gtest.h>

#include <set>

#include "bench/scenarios/scenarios.h"
#include "src/common/json.h"
#include "src/harness/runner.h"

namespace skywalker {
namespace {

class SkybenchSchemaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { RegisterAllScenarios(); }
};

RunConfig SmokeConfig() {
  RunConfig config;
  config.trials = 1;
  config.seed = 42;
  config.smoke = true;
  config.threads = 2;
  return config;
}

void ExpectRowsCarryKeys(const Json& rows, const Scenario& scenario) {
  ASSERT_TRUE(rows.is_array()) << scenario.name;
  ASSERT_FALSE(rows.elements().empty()) << scenario.name;
  std::set<std::string> labels;
  for (const Json& row : rows.elements()) {
    const Json* label = row.Find("label");
    ASSERT_NE(label, nullptr) << scenario.name;
    EXPECT_TRUE(label->is_string());
    EXPECT_FALSE(label->AsString().empty()) << scenario.name;
    EXPECT_TRUE(labels.insert(label->AsString()).second)
        << scenario.name << ": duplicate row label " << label->AsString();
    const Json* metrics = row.Find("metrics");
    ASSERT_NE(metrics, nullptr) << scenario.name;
    ASSERT_TRUE(metrics->is_object());
    for (const std::string& key : scenario.metric_keys) {
      const Json* value = metrics->Find(key);
      ASSERT_NE(value, nullptr)
          << scenario.name << " row '" << label->AsString()
          << "' missing metric '" << key << "'";
      EXPECT_TRUE(value->is_number() || value->is_null())
          << scenario.name << "/" << key;
    }
  }
}

TEST_F(SkybenchSchemaTest, RegistryIsPopulated) {
  // The historical 11 bench executables map onto at least this many
  // scenarios; losing one silently would gut CI coverage.
  EXPECT_GE(ScenarioRegistry::Get().All().size(), 19u);
}

TEST_F(SkybenchSchemaTest, EveryScenarioEmitsValidJsonWithDeclaredKeys) {
  for (const Scenario* scenario : ScenarioRegistry::Get().All()) {
    SCOPED_TRACE(scenario->name);
    ASSERT_FALSE(scenario->metric_keys.empty());
    const std::vector<ScenarioRunResult> results =
        RunScenarios({scenario}, SmokeConfig());
    ASSERT_EQ(results.size(), 1u);
    const std::string text = ScenarioRunJson(results[0]).Dump();

    std::optional<Json> doc = Json::Parse(text);
    ASSERT_TRUE(doc.has_value()) << "invalid JSON for " << scenario->name;

    // Envelope.
    ASSERT_NE(doc->Find("schema_version"), nullptr);
    EXPECT_EQ(doc->Find("schema_version")->AsDouble(), 1);
    ASSERT_NE(doc->Find("scenario"), nullptr);
    EXPECT_EQ(doc->Find("scenario")->AsString(), scenario->name);
    ASSERT_NE(doc->Find("metric_keys"), nullptr);
    EXPECT_EQ(doc->Find("metric_keys")->size(),
              scenario->metric_keys.size());
    ASSERT_NE(doc->Find("smoke"), nullptr);
    EXPECT_TRUE(doc->Find("smoke")->AsBool());

    // Per-trial rows and the cross-trial summary obey the metric contract.
    const Json* trials = doc->Find("trial_results");
    ASSERT_NE(trials, nullptr);
    ASSERT_EQ(trials->size(), 1u);
    const Json& trial = trials->elements()[0];
    EXPECT_EQ(trial.Find("trial")->AsDouble(), 0);
    // Seed streams serialize as decimal strings (64-bit values would lose
    // precision as JSON doubles); trial 0 is canonical.
    EXPECT_EQ(trial.Find("seed_stream")->AsString(), "0");
    ExpectRowsCarryKeys(*trial.Find("rows"), *scenario);
    const Json* summary = doc->Find("summary");
    ASSERT_NE(summary, nullptr);
    ExpectRowsCarryKeys(*summary->Find("rows"), *scenario);
  }
}

TEST_F(SkybenchSchemaTest, MultiTrialSummaryAveragesAcrossTrials) {
  const Scenario* scenario = ScenarioRegistry::Get().Find("fig04a");
  ASSERT_NE(scenario, nullptr);
  RunConfig config = SmokeConfig();
  config.trials = 3;
  const std::vector<ScenarioRunResult> results =
      RunScenarios({scenario}, config);
  ASSERT_EQ(results[0].trials.size(), 3u);
  // Trial 0 is canonical; later trials get distinct nonzero streams.
  EXPECT_EQ(results[0].trials[0].seed_stream, 0u);
  EXPECT_NE(results[0].trials[1].seed_stream, 0u);
  EXPECT_NE(results[0].trials[2].seed_stream, 0u);
  EXPECT_NE(results[0].trials[1].seed_stream,
            results[0].trials[2].seed_stream);

  // The summary row is the mean of the per-trial rows.
  const std::string key = "input_len";
  double sum = 0;
  for (const TrialResult& trial : results[0].trials) {
    sum += *trial.report.rows[0].Find(key);
  }
  std::optional<Json> doc = Json::Parse(ScenarioRunJson(results[0]).Dump());
  ASSERT_TRUE(doc.has_value());
  const Json& summary_row =
      doc->Find("summary")->Find("rows")->elements()[0];
  EXPECT_NEAR(summary_row.Find("metrics")->Find(key)->AsDouble(), sum / 3,
              1e-9);
}

}  // namespace
}  // namespace skywalker
