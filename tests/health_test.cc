// Tests for the passive outlier-ejection vocabulary (src/routing/health.h):
// the max-ejection-fraction clamp, the consecutive-failure path, the
// latency-strike path, half-open recovery, and the ejection backoff — all
// pure state-machine tests, no simulator.

#include <gtest/gtest.h>

#include "src/routing/health.h"

namespace skywalker {
namespace {

OutlierConfig TestConfig() {
  OutlierConfig config;
  config.enabled = true;
  config.consecutive_failures = 3;
  config.latency_strikes_to_eject = 3;
  config.base_ejection_time = Seconds(5);
  config.max_ejection_backoff = 4;
  return config;
}

TEST(EjectionAllowedTest, ZeroFractionForbidsEverything) {
  EXPECT_FALSE(EjectionAllowed(0, 4, 0.0));
  EXPECT_FALSE(EjectionAllowed(0, 4, -1.0));
}

TEST(EjectionAllowedTest, FirstEjectionAlwaysAllowed) {
  // Even when the fraction rounds to less than one host (2 * 0.1 = 0.2),
  // a small fleet must still be able to shed its one straggler.
  EXPECT_TRUE(EjectionAllowed(0, 2, 0.1));
  EXPECT_TRUE(EjectionAllowed(0, 1, 0.5));
}

TEST(EjectionAllowedTest, FractionClampsFurtherEjections) {
  // 4 hosts at 0.5: two may be out at once, never three.
  EXPECT_TRUE(EjectionAllowed(0, 4, 0.5));
  EXPECT_TRUE(EjectionAllowed(1, 4, 0.5));
  EXPECT_FALSE(EjectionAllowed(2, 4, 0.5));
}

TEST(ReplicaHealthTest, StartsHealthyAndServing) {
  ReplicaHealth health;
  EXPECT_EQ(health.status(), HealthStatus::kHealthy);
  EXPECT_TRUE(CanServe(health.status()));
}

TEST(ReplicaHealthTest, FirstFailureDegradesThresholdEjects) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  EXPECT_FALSE(health.RecordFailure(config));  // 1st: degrade.
  EXPECT_EQ(health.status(), HealthStatus::kDegraded);
  EXPECT_TRUE(CanServe(health.status()));  // Degraded still serves.
  EXPECT_FALSE(health.RecordFailure(config));  // 2nd: still below.
  EXPECT_TRUE(health.RecordFailure(config));   // 3rd: wants ejection.
}

TEST(ReplicaHealthTest, ProbeSuccessClearsConsecutiveFailures) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  health.RecordFailure(config);
  health.RecordFailure(config);
  health.RecordProbeSuccess();
  // The streak restarts: two more failures stay below the threshold.
  EXPECT_FALSE(health.RecordFailure(config));
  EXPECT_FALSE(health.RecordFailure(config));
  EXPECT_TRUE(health.RecordFailure(config));
}

TEST(ReplicaHealthTest, EjectionTimerAndLinearBackoff) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  health.Eject(config, /*now=*/Seconds(100));
  EXPECT_EQ(health.status(), HealthStatus::kEjected);
  EXPECT_FALSE(CanServe(health.status()));
  EXPECT_EQ(health.ejected_until(), Seconds(105));
  EXPECT_FALSE(health.EjectionExpired(Seconds(104)));
  EXPECT_TRUE(health.EjectionExpired(Seconds(105)));

  // Second ejection doubles the duration; the cap bounds repeat offenders.
  health.BeginRecovery();
  health.Eject(config, Seconds(200));
  EXPECT_EQ(health.ejected_until(), Seconds(210));
  for (int i = 0; i < 10; ++i) {
    health.BeginRecovery();
    health.Eject(config, Seconds(300));
  }
  EXPECT_EQ(health.ejected_until(),
            Seconds(300) + config.base_ejection_time *
                               config.max_ejection_backoff);
}

TEST(ReplicaHealthTest, HalfOpenSuccessRecoversFailureReEjects) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  health.Eject(config, 0);
  health.BeginRecovery();
  EXPECT_EQ(health.status(), HealthStatus::kRecovering);
  EXPECT_TRUE(CanServe(health.status()));  // Half-open takes one request.

  // Any failure while half-open is immediately disqualifying.
  EXPECT_TRUE(health.RecordFailure(config));

  health.Eject(config, 0);
  health.BeginRecovery();
  EXPECT_TRUE(health.RecordSuccess());
  EXPECT_EQ(health.status(), HealthStatus::kHealthy);
}

TEST(ReplicaHealthTest, BeginRecoveryOnlyFromEjected) {
  ReplicaHealth health;
  health.BeginRecovery();
  EXPECT_EQ(health.status(), HealthStatus::kHealthy);
}

TEST(ReplicaHealthTest, LatencyStrikesDegradeThenEject) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  EXPECT_EQ(health.EvaluateLatency(config, /*outlier=*/true, true),
            LatencyVerdict::kDegraded);
  EXPECT_EQ(health.status(), HealthStatus::kDegraded);
  EXPECT_EQ(health.EvaluateLatency(config, true, true), LatencyVerdict::kNone);
  EXPECT_EQ(health.EvaluateLatency(config, true, true),
            LatencyVerdict::kWantsEject);
}

TEST(ReplicaHealthTest, CleanRoundHealsLatencyDegradedOnly) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth latency_degraded;
  latency_degraded.EvaluateLatency(config, true, true);
  ASSERT_EQ(latency_degraded.status(), HealthStatus::kDegraded);
  EXPECT_EQ(latency_degraded.EvaluateLatency(config, false, true),
            LatencyVerdict::kNone);
  EXPECT_EQ(latency_degraded.status(), HealthStatus::kHealthy);

  // Degraded-by-failure heals through RecordSuccess, not a clean latency
  // round (the failure streak is still open).
  ReplicaHealth failure_degraded;
  failure_degraded.RecordFailure(config);
  ASSERT_EQ(failure_degraded.status(), HealthStatus::kDegraded);
  failure_degraded.EvaluateLatency(config, false, true);
  EXPECT_EQ(failure_degraded.status(), HealthStatus::kDegraded);
  failure_degraded.RecordSuccess();
  failure_degraded.EvaluateLatency(config, false, true);
  EXPECT_EQ(failure_degraded.status(), HealthStatus::kHealthy);
}

TEST(ReplicaHealthTest, HalfOpenLatencyNeedsFreshSample) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  health.Eject(config, 0);
  health.BeginRecovery();
  // Probe reachability alone (stale EWMA) must not close the half-open
  // state in either direction.
  EXPECT_EQ(health.EvaluateLatency(config, true, /*fresh_sample=*/false),
            LatencyVerdict::kNone);
  EXPECT_EQ(health.status(), HealthStatus::kRecovering);
  // A fresh sample that is still an outlier re-ejects ...
  EXPECT_EQ(health.EvaluateLatency(config, true, true),
            LatencyVerdict::kWantsEject);
  // ... and a clean fresh sample recovers.
  health.Eject(config, 0);
  health.BeginRecovery();
  EXPECT_EQ(health.EvaluateLatency(config, false, true),
            LatencyVerdict::kRecovered);
  EXPECT_EQ(health.status(), HealthStatus::kHealthy);
}

TEST(ReplicaHealthTest, ResetRestoresPristineState) {
  const OutlierConfig config = TestConfig();
  ReplicaHealth health;
  health.RecordFailure(config);
  health.Eject(config, Seconds(50));
  health.Reset();
  EXPECT_EQ(health.status(), HealthStatus::kHealthy);
  EXPECT_EQ(health.consecutive_failures(), 0);
  EXPECT_EQ(health.ejection_count(), 0);
  EXPECT_EQ(health.ejected_until(), 0);
  // Backoff history is gone: the next ejection uses the base duration.
  health.Eject(config, 0);
  EXPECT_EQ(health.ejected_until(), config.base_ejection_time);
}

}  // namespace
}  // namespace skywalker
