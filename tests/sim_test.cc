// Unit tests for the discrete-event core: event ordering, cancellation,
// deterministic FIFO tie-breaking, periodic tasks.

#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/simulator.h"

namespace skywalker {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoTieBreakAtSameTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.Push(100, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  EventId id = q.Push(10, [&] { ++fired; });
  q.Push(20, [&] { ++fired; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // Double cancel fails.
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, CancelledHeadSkipped) {
  EventQueue q;
  int fired = 0;
  EventId first = q.Push(5, [&] { fired = 1; });
  q.Push(10, [&] { fired = 2; });
  q.Cancel(first);
  EXPECT_EQ(q.PeekTime(), 10);
  q.Pop().fn();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime observed = -1;
  sim.ScheduleAt(500, [&] { observed = sim.now(); });
  sim.Run();
  EXPECT_EQ(observed, 500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime second = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { second = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(second, 150);
}

TEST(SimulatorTest, PastEventsClampToNow) {
  Simulator sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  SimTime fired_at = -1;
  sim.ScheduleAt(10, [&] { fired_at = sim.now(); });  // In the past.
  sim.Run();
  EXPECT_EQ(fired_at, 100);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(100, [&] { ++fired; });
  sim.ScheduleAt(200, [&] { ++fired; });
  sim.ScheduleAt(300, [&] { ++fired; });
  size_t executed = sim.RunUntil(250);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 250);
  EXPECT_TRUE(sim.HasPendingEvents());
}

TEST(SimulatorTest, RunUntilAdvancesClockWithoutEvents) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.now(), 1000);
}

TEST(SimulatorTest, CancelScheduledEvent) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.ScheduleAt(10, [&] { ++fired; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, EventsScheduledDuringRunExecute) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleAt(10, [&] {
    times.push_back(sim.now());
    sim.ScheduleAfter(5, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(PeriodicTaskTest, TicksAtInterval) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(&sim, 100, [&] { ticks.push_back(sim.now()); });
  task.Start();
  sim.RunUntil(350);
  task.Stop();
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 300}));
}

TEST(PeriodicTaskTest, StartWithDelayZeroFiresImmediately) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(&sim, 100, [&] { ticks.push_back(sim.now()); });
  task.StartWithDelay(0);
  sim.RunUntil(250);
  task.Stop();
  EXPECT_EQ(ticks, (std::vector<SimTime>{0, 100, 200}));
}

TEST(PeriodicTaskTest, StopInsideCallbackHalts) {
  Simulator sim;
  int ticks = 0;
  PeriodicTask task(&sim, 10, [&] {
    ++ticks;
    // Self-stop after 3 ticks.
  });
  task.Start();
  sim.ScheduleAt(35, [&] { task.Stop(); });
  sim.Run();
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTaskTest, DestructorCancelsPendingTick) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTask task(&sim, 10, [&] { ++ticks; });
    task.Start();
  }  // Destroyed before any tick.
  sim.Run();
  EXPECT_EQ(ticks, 0);
}

TEST(PeriodicTaskTest, RestartResetsPhase) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTask task(&sim, 100, [&] { ticks.push_back(sim.now()); });
  task.Start();
  sim.RunUntil(150);               // One tick at 100.
  task.StartWithDelay(30);         // Next at 180.
  sim.RunUntil(200);
  task.Stop();
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 180}));
}

}  // namespace
}  // namespace skywalker
