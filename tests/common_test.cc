// Unit tests for src/common: Status/StatusOr, RNG distributions, hashing,
// statistics containers, strings and table rendering.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/hash.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/table.h"

namespace skywalker {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("replica 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "replica 7");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: replica 7");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(OkStatus(), OkStatus());
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InvalidArgumentError("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(v.value_or(7), 7);
}

Status FailsThenPropagates() {
  SKYWALKER_RETURN_IF_ERROR(InternalError("inner"));
  return OkStatus();
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 17);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(9, 9), 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(2.0);  // mean 0.5
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) {
    stat.Add(rng.Normal(10.0, 3.0));
  }
  EXPECT_NEAR(stat.mean(), 10.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(RngTest, LogNormalIsPositiveAndSkewed) {
  Rng rng(17);
  Distribution d;
  for (int i = 0; i < 20000; ++i) {
    d.Add(rng.LogNormal(5.0, 1.0));
  }
  EXPECT_GT(d.min(), 0.0);
  // Heavy right tail: mean greater than median.
  EXPECT_GT(d.mean(), d.Median());
}

TEST(RngTest, PoissonMeanApproximatelyCorrect) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(4.2));
  }
  EXPECT_NEAR(sum / n, 4.2, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApproximation) {
  Rng rng(21);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Poisson(200.0);
    EXPECT_GE(v, 0);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, GeometricMeanApproximatelyCorrect) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    int64_t v = rng.Geometric(0.25);  // mean 4
    EXPECT_GE(v, 1);
    sum += static_cast<double>(v);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, ZipfRanksBoundedAndSkewed) {
  Rng rng(29);
  const int64_t n = 100;
  int64_t ones = 0;
  int64_t total = 20000;
  for (int64_t i = 0; i < total; ++i) {
    int64_t v = rng.Zipf(n, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, n);
    if (v == 1) {
      ++ones;
    }
  }
  // Rank 1 should dominate under s=1.2 (analytically ~26%).
  EXPECT_GT(static_cast<double>(ones) / static_cast<double>(total), 0.15);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int64_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / static_cast<double>(counts[0]),
              3.0, 0.2);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(37);
  Rng child1 = parent.Fork(1);
  Rng child2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.Next() == child2.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(HashTest, Mix64Avalanche) {
  // Flipping one input bit should flip many output bits.
  uint64_t h1 = Mix64(0x1234);
  uint64_t h2 = Mix64(0x1235);
  int diff = __builtin_popcountll(h1 ^ h2);
  EXPECT_GT(diff, 16);
}

TEST(HashTest, HashStringStable) {
  EXPECT_EQ(HashString("user-42"), HashString("user-42"));
  EXPECT_NE(HashString("user-42"), HashString("user-43"));
  EXPECT_NE(HashString("a", 1), HashString("a", 2));  // Seed matters.
}

TEST(HashTest, HashCombineOrderDependent) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all;
  RunningStat a;
  RunningStat b;
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(3, 2);
    all.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(DistributionTest, ExactPercentiles) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) {
    d.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(d.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(d.Percentile(100), 100.0);
  EXPECT_NEAR(d.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(d.Percentile(90), 90.1, 1e-9);
}

TEST(DistributionTest, EmptyIsZero) {
  Distribution d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(DistributionTest, MergeCombinesSamples) {
  Distribution a;
  Distribution b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(BinnedSeriesTest, PeakToTroughRatio) {
  BinnedSeries s(4);
  s.Add(0, 10);
  s.Add(1, 40);
  s.Add(2, 20);
  s.Add(3, 10);
  EXPECT_DOUBLE_EQ(s.Total(), 80);
  EXPECT_DOUBLE_EQ(s.MaxBin(), 40);
  EXPECT_DOUBLE_EQ(s.PeakToTroughRatio(), 4.0);
}

TEST(SimTimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(Seconds(2), 2'000'000);
  EXPECT_EQ(Milliseconds(3), 3'000);
  EXPECT_EQ(Hours(1), 3'600'000'000LL);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(5)), 5.0);
  EXPECT_EQ(SecondsF(0.3), 300'000);
}

TEST(SimTimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Seconds(2)), "2.000s");
  EXPECT_EQ(FormatDuration(Milliseconds(250)), "250.0ms");
  EXPECT_EQ(FormatDuration(Microseconds(42)), "42us");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin({"x", "y"}, "::"), "x::y");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("skywalker", "sky"));
  EXPECT_FALSE(StartsWith("sky", "skywalker"));
}

TEST(TableTest, AsciiAndCsvRender) {
  Table t({"name", "value"});
  t.AddRow({"tput", Table::Num(12.345, 1)});
  std::string ascii = t.ToAscii();
  EXPECT_NE(ascii.find("tput"), std::string::npos);
  EXPECT_NE(ascii.find("12.3"), std::string::npos);
  std::string csv = t.ToCsv();
  EXPECT_EQ(csv, "name,value\ntput,12.3\n");
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.ToAscii().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace skywalker
