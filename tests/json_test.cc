// Tests for the JSON document model: serialization stability (insertion
// order, shortest round-trip numbers), escaping, and the strict parser.

#include <gtest/gtest.h>

#include "src/common/json.h"

namespace skywalker {
namespace {

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json obj = Json::Object();
  obj.Set("zeta", 1);
  obj.Set("alpha", 2);
  obj.Set("mid", 3);
  EXPECT_EQ(obj.Dump(false), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(JsonTest, SetOverwritesInPlace) {
  Json obj = Json::Object();
  obj.Set("a", 1);
  obj.Set("b", 2);
  obj.Set("a", 3);
  EXPECT_EQ(obj.Dump(false), "{\"a\":3,\"b\":2}");
}

TEST(JsonTest, NumberFormattingRoundTrips) {
  EXPECT_EQ(Json::FormatNumber(0), "0");
  EXPECT_EQ(Json::FormatNumber(42), "42");
  EXPECT_EQ(Json::FormatNumber(-7), "-7");
  EXPECT_EQ(Json::FormatNumber(0.5), "0.5");
  // Shortest representation that parses back exactly.
  EXPECT_EQ(Json::FormatNumber(0.1), "0.1");
  const double v = 1.0 / 3.0;
  EXPECT_EQ(std::strtod(Json::FormatNumber(v).c_str(), nullptr), v);
  // Non-finite values have no JSON encoding; they serialize as null.
  EXPECT_EQ(Json::FormatNumber(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonTest, StringEscaping) {
  Json s("line\nwith \"quotes\" and \\slash");
  EXPECT_EQ(s.Dump(false), "\"line\\nwith \\\"quotes\\\" and \\\\slash\"");
}

TEST(JsonTest, ParseRoundTrip) {
  Json doc = Json::Object();
  doc.Set("name", "fig09");
  doc.Set("trials", 3);
  doc.Set("smoke", false);
  doc.Set("ratio", 1.2748);
  Json rows = Json::Array();
  Json row = Json::Object();
  row.Set("label", "BP");
  row.Set("value", -17.5);
  rows.Append(std::move(row));
  rows.Append(Json());  // null element
  doc.Set("rows", std::move(rows));

  for (bool indent : {false, true}) {
    std::optional<Json> parsed = Json::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(parsed->Dump(indent), doc.Dump(indent));
  }
}

TEST(JsonTest, ParseAcceptsEscapes) {
  std::optional<Json> parsed =
      Json::Parse("{\"k\": \"a\\u0041\\n\\t\\\"\"}");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->Find("k")->AsString(), "aA\n\t\"");
}

TEST(JsonTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Json::Parse("").has_value());
  EXPECT_FALSE(Json::Parse("{").has_value());
  EXPECT_FALSE(Json::Parse("[1,]").has_value());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Json::Parse("nul").has_value());
  EXPECT_FALSE(Json::Parse("1 2").has_value());  // Trailing garbage.
  EXPECT_FALSE(Json::Parse("\"unterminated").has_value());
  // RFC 8259: raw control characters inside strings must be escaped.
  EXPECT_FALSE(Json::Parse("\"a\nb\"").has_value());
  EXPECT_FALSE(Json::Parse("\"a\tb\"").has_value());
  EXPECT_TRUE(Json::Parse("\"a\\nb\"").has_value());
}

TEST(JsonTest, ParseBoundsNestingDepth) {
  // Pathological nesting fails with nullopt instead of a stack overflow.
  std::string deep(100000, '[');
  EXPECT_FALSE(Json::Parse(deep).has_value());
  std::string ok = std::string(100, '[') + std::string(100, ']');
  EXPECT_TRUE(Json::Parse(ok).has_value());
}

TEST(JsonTest, ParseEnforcesJsonNumberGrammar) {
  EXPECT_FALSE(Json::Parse("+5").has_value());
  EXPECT_FALSE(Json::Parse("007").has_value());
  EXPECT_FALSE(Json::Parse(".5").has_value());
  EXPECT_FALSE(Json::Parse("1.").has_value());
  EXPECT_FALSE(Json::Parse("1e").has_value());
  EXPECT_FALSE(Json::Parse("-").has_value());
  ASSERT_TRUE(Json::Parse("-0.5e-3").has_value());
  EXPECT_EQ(Json::Parse("-0.5e-3")->AsDouble(), -0.5e-3);
  EXPECT_EQ(Json::Parse("10").has_value(), true);
  EXPECT_EQ(Json::Parse("0").has_value(), true);
}

TEST(JsonTest, FindReturnsNullForMissingKey) {
  Json obj = Json::Object();
  obj.Set("present", 1);
  EXPECT_NE(obj.Find("present"), nullptr);
  EXPECT_EQ(obj.Find("absent"), nullptr);
}

}  // namespace
}  // namespace skywalker
