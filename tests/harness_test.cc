// Tests for the experiment harness: system construction for every kind,
// workload drivers, and result invariants across seeds (the property layer
// the figure benches stand on).

#include <gtest/gtest.h>

#include "src/harness/experiment.h"
#include "src/net/topology.h"

namespace skywalker {
namespace {

SystemSpec TinySystem(SystemKind kind) {
  SystemSpec spec;
  spec.kind = kind;
  spec.replicas_per_region = {1, 1, 1};
  spec.replica_config.kv_capacity_tokens = 16384;
  return spec;
}

WorkloadSpec TinyWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.conversation = ConversationWorkloadConfig::Arena();
  spec.conversation.lengths.output_max = 1500;
  spec.seed = seed;
  for (RegionId r = 0; r < 3; ++r) {
    ClientGroup group;
    group.kind = ClientGroup::Kind::kConversation;
    group.region = r;
    group.count = 4;
    group.client.think_time_mean = Milliseconds(300);
    group.client.program_gap_mean = Milliseconds(300);
    spec.groups.push_back(group);
  }
  return spec;
}

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.warmup = Seconds(10);
  config.measure = Seconds(40);
  return config;
}

TEST(ServingSystemTest, BuildsEveryKindWithExpectedShape) {
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());
  for (SystemKind kind :
       {SystemKind::kGkeGateway, SystemKind::kRoundRobin,
        SystemKind::kLeastLoad, SystemKind::kConsistentHash,
        SystemKind::kSglRouter, SystemKind::kSkyWalkerCh,
        SystemKind::kSkyWalker, SystemKind::kRegionLocal}) {
    auto system = ServingSystem::Build(&sim, &net, TinySystem(kind));
    EXPECT_EQ(system->replicas().size(), 3u) << SystemKindName(kind);
    EXPECT_NE(system->resolver(), nullptr);
    bool is_skywalker = kind == SystemKind::kSkyWalker ||
                        kind == SystemKind::kSkyWalkerCh ||
                        kind == SystemKind::kRegionLocal;
    EXPECT_EQ(system->deployment() != nullptr, is_skywalker);
    EXPECT_EQ(system->gateway() != nullptr, kind == SystemKind::kGkeGateway);
  }
}

TEST(ServingSystemTest, CentralBaselineResolvesToOneRegion) {
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());
  SystemSpec spec = TinySystem(SystemKind::kLeastLoad);
  spec.central_lb_region = 2;
  auto system = ServingSystem::Build(&sim, &net, spec);
  for (RegionId client = 0; client < 3; ++client) {
    Frontend* fe = system->resolver()->Resolve(client);
    ASSERT_NE(fe, nullptr);
    EXPECT_EQ(fe->region(), 2);
  }
}

TEST(ServingSystemTest, RegionalSystemsResolveLocally) {
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());
  auto system =
      ServingSystem::Build(&sim, &net, TinySystem(SystemKind::kSkyWalker));
  for (RegionId client = 0; client < 3; ++client) {
    Frontend* fe = system->resolver()->Resolve(client);
    ASSERT_NE(fe, nullptr);
    EXPECT_EQ(fe->region(), client);
  }
}

TEST(RunExperimentTest, ResultFieldsAreConsistent) {
  ExperimentResult result =
      RunExperiment(Topology::ThreeContinents(),
                    TinySystem(SystemKind::kSkyWalker), TinyWorkload(5),
                    TinyConfig());
  EXPECT_GT(result.completed, 0u);
  EXPECT_EQ(result.ttft.count(), result.completed);
  EXPECT_EQ(result.e2e.count(), result.completed);
  EXPECT_GE(result.throughput_tok_s, result.output_throughput_tok_s);
  EXPECT_GE(result.ttft_p90_s, result.ttft_p50_s);
  EXPECT_GE(result.e2e_p90_s, result.e2e_p50_s);
  EXPECT_GE(result.cache_hit_rate, 0.0);
  EXPECT_LE(result.cache_hit_rate, 1.0);
  EXPECT_GE(result.forwarded_fraction, 0.0);
  EXPECT_LE(result.forwarded_fraction, 1.0);
}

// Property: per-request TTFT <= E2E must hold for every outcome, for every
// system kind, across seeds.
class HarnessPropertyTest
    : public ::testing::TestWithParam<std::tuple<SystemKind, uint64_t>> {};

TEST_P(HarnessPropertyTest, TtftNeverExceedsE2e) {
  auto [kind, seed] = GetParam();
  Simulator sim;
  Network net(&sim, Topology::ThreeContinents());
  auto system = ServingSystem::Build(&sim, &net, TinySystem(kind));
  MetricsCollector metrics;
  WorkloadDriver driver(&sim, &net, system->resolver(), &metrics,
                        TinyWorkload(seed), 3);
  system->Start();
  driver.Start();
  sim.RunUntil(Seconds(60));
  ASSERT_GT(metrics.total_recorded(), 10u);
  for (const RequestOutcome& o : metrics.outcomes()) {
    EXPECT_LE(o.submit_time, o.first_token_time);
    EXPECT_LE(o.first_token_time, o.completion_time);
    EXPECT_GE(o.cached_prompt_tokens, 0);
    EXPECT_LT(o.cached_prompt_tokens, o.prompt_tokens);
    EXPECT_TRUE(o.hops == 1 || o.hops == 2);
    EXPECT_EQ(o.hops == 2, o.forwarded);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, HarnessPropertyTest,
    ::testing::Combine(::testing::Values(SystemKind::kSkyWalker,
                                         SystemKind::kSkyWalkerCh,
                                         SystemKind::kSglRouter,
                                         SystemKind::kGkeGateway),
                       ::testing::Values(11u, 22u, 33u)));

// Property: deterministic replay — identical specs and seeds give identical
// results for every system kind.
class DeterminismPropertyTest : public ::testing::TestWithParam<SystemKind> {};

TEST_P(DeterminismPropertyTest, IdenticalAcrossRuns) {
  ExperimentResult a =
      RunExperiment(Topology::ThreeContinents(), TinySystem(GetParam()),
                    TinyWorkload(9), TinyConfig());
  ExperimentResult b =
      RunExperiment(Topology::ThreeContinents(), TinySystem(GetParam()),
                    TinyWorkload(9), TinyConfig());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.throughput_tok_s, b.throughput_tok_s);
  EXPECT_DOUBLE_EQ(a.ttft_p90_s, b.ttft_p90_s);
  EXPECT_DOUBLE_EQ(a.cache_hit_rate, b.cache_hit_rate);
}

INSTANTIATE_TEST_SUITE_P(Kinds, DeterminismPropertyTest,
                         ::testing::Values(SystemKind::kGkeGateway,
                                           SystemKind::kConsistentHash,
                                           SystemKind::kSkyWalker,
                                           SystemKind::kRegionLocal));

}  // namespace
}  // namespace skywalker
