// Unit tests for workload synthesis: length distributions, diurnal model,
// conversation generator (prefix structure + similarity ordering), ToT
// generator (tree shape + prefix sharing).

#include <gtest/gtest.h>

#include <set>

#include "src/workload/conversation.h"
#include "src/workload/diurnal.h"
#include "src/workload/length_model.h"
#include "src/workload/tot.h"

namespace skywalker {
namespace {

TEST(LengthModelTest, SamplesRespectBounds) {
  LengthModel model;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    int64_t in = model.SampleInputLen(rng);
    int64_t out = model.SampleOutputLen(rng);
    EXPECT_GE(in, model.config().input_min);
    EXPECT_LE(in, model.config().input_max);
    EXPECT_GE(out, model.config().output_min);
    EXPECT_LE(out, model.config().output_max);
  }
}

TEST(LengthModelTest, OutputsHeavierTailedThanInputs) {
  // Fig. 4a: output lengths dominate input lengths in the tail.
  LengthModel model;
  Rng rng(2);
  Distribution inputs;
  Distribution outputs;
  for (int i = 0; i < 20000; ++i) {
    inputs.Add(static_cast<double>(model.SampleInputLen(rng)));
    outputs.Add(static_cast<double>(model.SampleOutputLen(rng)));
  }
  EXPECT_GT(outputs.Percentile(50), inputs.Percentile(50));
  EXPECT_GT(outputs.Percentile(99), inputs.Percentile(99));
  // Long tail exists (thousands of tokens), as in WildChat.
  EXPECT_GT(outputs.Percentile(99), 1000);
}

TEST(DiurnalModelTest, RatesArePositiveAndPeriodic) {
  DiurnalModel model = DiurnalModel::WildChatCountries();
  for (size_t r = 0; r < model.num_regions(); ++r) {
    for (int h = 0; h < 24; ++h) {
      EXPECT_GT(model.RateAt(r, h), 0.0);
    }
    EXPECT_NEAR(model.RateAt(r, 0.0), model.RateAt(r, 24.0), 1e-9);
  }
}

TEST(DiurnalModelTest, RegionsPeakAtDifferentUtcHours) {
  DiurnalModel model = DiurnalModel::WildChatCountries();
  auto peak_hour = [&](size_t region) {
    double best = -1;
    int best_h = 0;
    for (int h = 0; h < 24; ++h) {
      double rate = model.RateAt(region, h + 0.5);
      if (rate > best) {
        best = rate;
        best_h = h;
      }
    }
    return best_h;
  };
  // US (UTC-6) and China (UTC+8) peaks must be far apart on the UTC clock.
  int us = peak_hour(0);
  int cn = peak_hour(2);
  int diff = std::abs(us - cn);
  diff = std::min(diff, 24 - diff);
  EXPECT_GE(diff, 6);
}

TEST(DiurnalModelTest, AggregationFlattensVariance) {
  // Fig. 3a: per-region peak-to-trough is large; the aggregate is flat.
  DiurnalModel model = DiurnalModel::FiveCloudRegions();
  double worst_regional_ratio = 0;
  for (size_t r = 0; r < model.num_regions(); ++r) {
    BinnedSeries series = model.HourlySeries(r, 1000);
    worst_regional_ratio =
        std::max(worst_regional_ratio, series.PeakToTroughRatio());
  }
  BinnedSeries aggregate(24);
  for (int h = 0; h < 24; ++h) {
    aggregate.Add(static_cast<size_t>(h), model.AggregateRateAt(h + 0.5));
  }
  double aggregate_ratio = aggregate.PeakToTroughRatio();
  EXPECT_GT(worst_regional_ratio, 2.5);
  EXPECT_LT(aggregate_ratio, worst_regional_ratio / 1.8);
  EXPECT_LT(aggregate_ratio, 2.0);
}

TEST(DiurnalModelTest, SampleDayIsPoissonNoisy) {
  DiurnalModel model = DiurnalModel::WildChatCountries();
  Rng rng(3);
  BinnedSeries day = model.SampleDay(0, 5000, rng);
  EXPECT_GT(day.Total(), 0);
  // Sampled counts track the expectation roughly.
  BinnedSeries expected = model.HourlySeries(0, 5000);
  EXPECT_NEAR(day.Total() / expected.Total(), 1.0, 0.1);
}

TEST(ConversationTest, TurnPromptsAreExactPrefixExtensions) {
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 3, 42);
  auto user = gen.MakeUser(0);
  auto conv = gen.MakeConversation(user);
  ASSERT_GE(conv.turns.size(), 1u);
  for (size_t t = 1; t < conv.turns.size(); ++t) {
    const TokenSeq& prev = conv.turns[t - 1].prompt;
    const TokenSeq& cur = conv.turns[t].prompt;
    ASSERT_GT(cur.size(), prev.size());
    // prev prompt + prev output is a prefix of the current prompt.
    EXPECT_EQ(CommonPrefixLen(prev, cur), prev.size());
    size_t expected_prefix = prev.size() + conv.turns[t - 1].output.size();
    TokenSeq prev_full = prev;
    prev_full.insert(prev_full.end(), conv.turns[t - 1].output.begin(),
                     conv.turns[t - 1].output.end());
    EXPECT_EQ(CommonPrefixLen(prev_full, cur), expected_prefix);
  }
}

TEST(ConversationTest, UsersAndSessionsGetUniqueIds) {
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 3, 42);
  std::set<UserId> users;
  std::set<SessionId> sessions;
  for (int i = 0; i < 20; ++i) {
    auto user = gen.MakeUser(i % 3);
    EXPECT_TRUE(users.insert(user.user_id).second);
    for (int c = 0; c < 3; ++c) {
      auto conv = gen.MakeConversation(user);
      EXPECT_TRUE(sessions.insert(conv.session_id).second);
    }
  }
}

TEST(ConversationTest, SimilarityOrderingMatchesPaper) {
  // Fig. 5a ordering: within-user >> across-user, and both positive for the
  // Arena-style single template pool.
  ConversationGenerator gen(ConversationWorkloadConfig::Arena(), 3, 7);
  std::vector<RegionId> population;
  for (int i = 0; i < 60; ++i) {
    population.push_back(i % 3);
  }
  auto trace = gen.GenerateTrace(population, 4);
  ASSERT_GT(trace.size(), 200u);

  // Within-user vs across-user mean similarity (sampled).
  Rng rng(9);
  double within_sum = 0;
  int within_n = 0;
  double across_sum = 0;
  int across_n = 0;
  for (int k = 0; k < 20000; ++k) {
    size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(trace.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(trace.size()) - 1));
    if (a == b) {
      continue;
    }
    double sim = PrefixSimilarity(trace[a].prompt, trace[b].prompt);
    if (trace[a].user_id == trace[b].user_id) {
      within_sum += sim;
      ++within_n;
    } else {
      across_sum += sim;
      ++across_n;
    }
  }
  ASSERT_GT(within_n, 50);
  ASSERT_GT(across_n, 1000);
  double within = within_sum / within_n;
  double across = across_sum / across_n;
  EXPECT_GT(within, across * 1.8) << "within=" << within
                                  << " across=" << across;
  EXPECT_GT(across, 0.005);
}

TEST(ConversationTest, WildChatRegionalityCreatesRegionAffinity) {
  ConversationGenerator gen(ConversationWorkloadConfig::WildChat(), 3, 11);
  std::vector<RegionId> population;
  for (int i = 0; i < 90; ++i) {
    population.push_back(i % 3);
  }
  auto trace = gen.GenerateTrace(population, 3);
  Rng rng(13);
  double within_sum = 0;
  int within_n = 0;
  double across_sum = 0;
  int across_n = 0;
  for (int k = 0; k < 40000; ++k) {
    size_t a = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(trace.size()) - 1));
    size_t b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(trace.size()) - 1));
    if (a == b || trace[a].user_id == trace[b].user_id) {
      continue;
    }
    double sim = PrefixSimilarity(trace[a].prompt, trace[b].prompt);
    if (trace[a].region == trace[b].region) {
      within_sum += sim;
      ++within_n;
    } else {
      across_sum += sim;
      ++across_n;
    }
  }
  double within = within_sum / within_n;
  double across = across_sum / across_n;
  EXPECT_GT(within, across * 1.5) << "within=" << within
                                  << " across=" << across;
}

TEST(ToTTest, RequestCountMatchesPaper) {
  ToTConfig two_branch;
  two_branch.depth = 4;
  two_branch.branching = 2;
  EXPECT_EQ(two_branch.RequestsPerTree(), 15);  // §5.1.
  ToTConfig four_branch;
  four_branch.depth = 4;
  four_branch.branching = 4;
  EXPECT_EQ(four_branch.RequestsPerTree(), 85);  // Mixed Tree.
}

TEST(ToTTest, TreeStructureIsSound) {
  ToTConfig config;
  config.depth = 4;
  config.branching = 2;
  ToTGenerator gen(config, 5);
  auto tree = gen.MakeTree();
  ASSERT_EQ(tree.nodes.size(), 15u);
  ASSERT_EQ(tree.levels.size(), 4u);
  EXPECT_EQ(tree.levels[0].size(), 1u);
  EXPECT_EQ(tree.levels[1].size(), 2u);
  EXPECT_EQ(tree.levels[2].size(), 4u);
  EXPECT_EQ(tree.levels[3].size(), 8u);
  for (size_t i = 1; i < tree.nodes.size(); ++i) {
    const auto& node = tree.nodes[i];
    ASSERT_GE(node.parent, 0);
    const auto& parent = tree.nodes[static_cast<size_t>(node.parent)];
    EXPECT_EQ(node.level, parent.level + 1);
    // Child prompt = parent prompt + parent output.
    EXPECT_EQ(node.prompt.size(),
              parent.prompt.size() + parent.output.size());
    EXPECT_EQ(CommonPrefixLen(node.prompt, parent.prompt),
              parent.prompt.size());
  }
}

TEST(ToTTest, SiblingsShareFullPrompt) {
  ToTGenerator gen(ToTConfig{}, 5);
  auto tree = gen.MakeTree();
  // Level-1 nodes share the root prompt+output entirely.
  const auto& a = tree.nodes[static_cast<size_t>(tree.levels[1][0])];
  const auto& b = tree.nodes[static_cast<size_t>(tree.levels[1][1])];
  EXPECT_EQ(a.prompt, b.prompt);
  EXPECT_NE(a.output, b.output);
}

TEST(ToTTest, TreesAreTokenDisjoint) {
  ToTGenerator gen(ToTConfig{}, 5);
  auto t1 = gen.MakeTree();
  auto t2 = gen.MakeTree();
  EXPECT_EQ(CommonPrefixLen(t1.nodes[0].prompt, t2.nodes[0].prompt), 0u);
  EXPECT_NE(t1.routing_key, t2.routing_key);
}

}  // namespace
}  // namespace skywalker
